"""Unit tests for traversals and node numbering."""

from hypothesis import given, settings

from repro.trees import (
    levelorder,
    node_positions,
    number_postorder,
    number_preorder,
    parse_bracket,
    postorder,
    postorder_labels,
    preorder,
    preorder_labels,
)
from tests.strategies import trees

SAMPLE = "a(b(c,d),e)"


class TestOrders:
    def test_preorder(self):
        assert preorder_labels(parse_bracket(SAMPLE)) == ["a", "b", "c", "d", "e"]

    def test_postorder(self):
        assert postorder_labels(parse_bracket(SAMPLE)) == ["c", "d", "b", "e", "a"]

    def test_levelorder(self):
        labels = [n.label for n in levelorder(parse_bracket(SAMPLE))]
        assert labels == ["a", "b", "e", "c", "d"]

    def test_single_node(self):
        tree = parse_bracket("x")
        assert preorder_labels(tree) == postorder_labels(tree) == ["x"]

    @given(trees())
    @settings(max_examples=50, deadline=None)
    def test_orders_cover_all_nodes(self, tree):
        pre = list(preorder(tree))
        post = list(postorder(tree))
        level = list(levelorder(tree))
        assert len(pre) == len(post) == len(level) == tree.size
        assert {id(n) for n in pre} == {id(n) for n in post} == {id(n) for n in level}

    @given(trees())
    @settings(max_examples=50, deadline=None)
    def test_root_first_in_preorder_last_in_postorder(self, tree):
        assert next(preorder(tree)) is tree
        assert list(postorder(tree))[-1] is tree


class TestNumbering:
    def test_paper_figure_2_numbers_t1(self):
        # T1 of Figure 1; Figure 2 annotates each node with (pre, post):
        # a(1,8) b(2,3) c(3,1) d(4,2) b(5,6) c(6,4) d(7,5) e(8,7)
        tree = parse_bracket("a(b(c,d),b(c,d),e)")
        positions = node_positions(tree)
        annotated = [(n.label, positions[id(n)]) for n in preorder(tree)]
        assert annotated == [
            ("a", (1, 8)),
            ("b", (2, 3)),
            ("c", (3, 1)),
            ("d", (4, 2)),
            ("b", (5, 6)),
            ("c", (6, 4)),
            ("d", (7, 5)),
            ("e", (8, 7)),
        ]

    def test_paper_figure_2_numbers_t2(self):
        # T2 of Figure 1: a(1,9) b(2,5) c(3,1) d(4,2) b(5,4) e(6,3)
        # c(7,6) d(8,7) e(9,8)
        tree = parse_bracket("a(b(c,d,b(e)),c,d,e)")
        positions = node_positions(tree)
        annotated = [(n.label, positions[id(n)]) for n in preorder(tree)]
        assert annotated == [
            ("a", (1, 9)),
            ("b", (2, 5)),
            ("c", (3, 1)),
            ("d", (4, 2)),
            ("b", (5, 4)),
            ("e", (6, 3)),
            ("c", (7, 6)),
            ("d", (8, 7)),
            ("e", (9, 8)),
        ]

    def test_preorder_numbers_are_one_based_consecutive(self):
        tree = parse_bracket(SAMPLE)
        numbers = sorted(number_preorder(tree).values())
        assert numbers == [1, 2, 3, 4, 5]

    def test_postorder_numbers_root_is_last(self):
        tree = parse_bracket(SAMPLE)
        assert number_postorder(tree)[id(tree)] == tree.size

    @given(trees())
    @settings(max_examples=50, deadline=None)
    def test_ancestor_relation_encoded(self, tree):
        # u is an ancestor of v  <=>  pre(u) < pre(v) and post(u) > post(v)
        positions = node_positions(tree)
        for node in preorder(tree):
            for ancestor in node.ancestors():
                pre_a, post_a = positions[id(ancestor)]
                pre_n, post_n = positions[id(node)]
                assert pre_a < pre_n
                assert post_a > post_n
