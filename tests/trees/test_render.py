"""Unit tests for tree rendering."""

from hypothesis import given, settings

from repro.trees import parse_bracket, render_outline, render_tree
from tests.strategies import trees


class TestRenderTree:
    def test_single_node(self):
        assert render_tree(parse_bracket("a")) == "a"

    def test_connectors(self):
        text = render_tree(parse_bracket("a(b(c,d),e)"))
        assert text.splitlines() == [
            "a",
            "├── b",
            "│   ├── c",
            "│   └── d",
            "└── e",
        ]

    def test_last_child_gets_corner(self):
        text = render_tree(parse_bracket("a(b,c)"))
        assert "└── c" in text
        assert "├── b" in text

    def test_long_labels_truncated(self):
        tree = parse_bracket('"' + "x" * 100 + '"')
        text = render_tree(tree, max_label=10)
        assert len(text) == 10
        assert text.endswith("…")

    @given(trees())
    @settings(max_examples=40, deadline=None)
    def test_one_line_per_node(self, tree):
        assert len(render_tree(tree).splitlines()) == tree.size

    @given(trees())
    @settings(max_examples=40, deadline=None)
    def test_labels_in_preorder(self, tree):
        rendered = render_tree(tree)
        stripped = [
            line.split("── ")[-1] for line in rendered.splitlines()
        ]
        expected = [str(n.label)[:40] for n in tree.iter_preorder()]
        assert stripped == expected


class TestRenderOutline:
    def test_indentation(self):
        assert render_outline(parse_bracket("a(b(c),d)")) == "a\n  b\n    c\n  d"

    def test_custom_indent(self):
        text = render_outline(parse_bracket("a(b)"), indent="....")
        assert text == "a\n....b"

    @given(trees())
    @settings(max_examples=40, deadline=None)
    def test_one_line_per_node(self, tree):
        assert len(render_outline(tree).splitlines()) == tree.size
