"""Unit tests for the binary tree representation (paper §2.3, §3.2)."""

import pickle

import pytest
from hypothesis import given, settings

from repro.exceptions import InvalidTreeError
from repro.trees import (
    EPSILON,
    BinaryTreeNode,
    binary_inorder,
    binary_postorder,
    binary_preorder,
    binary_size,
    binary_to_forest,
    binary_to_tree,
    forest_to_binary,
    normalize_binary,
    parse_bracket,
    postorder_labels,
    preorder_labels,
    tree_to_binary,
)
from tests.strategies import trees


class TestEpsilon:
    def test_singleton(self):
        assert EPSILON is type(EPSILON)()

    def test_repr(self):
        assert repr(EPSILON) == "ε"

    def test_pickle_preserves_identity(self):
        assert pickle.loads(pickle.dumps(EPSILON)) is EPSILON


class TestTransform:
    def test_single_node(self):
        binary = tree_to_binary(parse_bracket("a"))
        assert binary.label == "a"
        assert binary.left is None
        assert binary.right is None

    def test_first_child_becomes_left(self):
        binary = tree_to_binary(parse_bracket("a(b,c)"))
        assert binary.left.label == "b"
        assert binary.right is None

    def test_sibling_becomes_right(self):
        binary = tree_to_binary(parse_bracket("a(b,c)"))
        assert binary.left.right.label == "c"

    def test_paper_figure_2_left_tree(self):
        # T1 of Figure 1: a(b(c,d), b(c,d), e) — reconstructed from the
        # (pre, post) annotations of Figure 2.
        t1 = parse_bracket("a(b(c,d),b(c,d),e)")
        binary = tree_to_binary(t1)
        assert binary.label == "a"
        first_b = binary.left
        assert first_b.label == "b"
        assert first_b.left.label == "c"  # first child of b
        assert first_b.left.right.label == "d"  # c's sibling
        second_b = first_b.right  # b's sibling
        assert second_b.label == "b"
        assert second_b.left.label == "c"
        assert second_b.right.label == "e"
        assert binary.right is None  # the root has no sibling

    def test_round_trip_tree(self):
        tree = parse_bracket("a(b(c,d),b(c,d),e)")
        assert binary_to_tree(tree_to_binary(tree)) == tree

    def test_forest_round_trip(self):
        forest = [parse_bracket("a(b)"), parse_bracket("c"), parse_bracket("d(e,f)")]
        assert binary_to_forest(forest_to_binary(forest)) == forest

    def test_empty_forest(self):
        assert forest_to_binary([]) is None
        assert binary_to_forest(None) == []

    def test_binary_to_tree_rejects_forest(self):
        binary = forest_to_binary([parse_bracket("a"), parse_bracket("b")])
        with pytest.raises(InvalidTreeError):
            binary_to_tree(binary)

    @given(trees())
    @settings(max_examples=60, deadline=None)
    def test_round_trip_random(self, tree):
        assert binary_to_tree(tree_to_binary(tree)) == tree

    @given(trees())
    @settings(max_examples=60, deadline=None)
    def test_node_count_preserved(self, tree):
        assert binary_size(tree_to_binary(tree)) == tree.size


class TestNormalization:
    def test_all_original_nodes_have_two_children(self):
        binary = normalize_binary(tree_to_binary(parse_bracket("a(b(c,d),e)")))
        stack = [binary]
        while stack:
            node = stack.pop()
            if node.is_epsilon:
                assert node.left is None and node.right is None
                continue
            assert node.left is not None and node.right is not None
            stack.extend([node.left, node.right])

    def test_epsilon_count(self):
        # a full binary tree with n internal nodes has n + 1 leaves
        tree = parse_bracket("a(b(c,d),e)")
        binary = normalize_binary(tree_to_binary(tree))
        total = binary_size(binary, count_epsilon=True)
        assert total == 2 * tree.size + 1

    @given(trees())
    @settings(max_examples=60, deadline=None)
    def test_epsilon_count_random(self, tree):
        binary = normalize_binary(tree_to_binary(tree))
        assert binary_size(binary, count_epsilon=True) == 2 * tree.size + 1
        assert binary_size(binary) == tree.size

    def test_normalize_returns_same_object(self):
        binary = tree_to_binary(parse_bracket("a"))
        assert normalize_binary(binary) is binary


class TestTraversalCorrespondence:
    """The identities the positional filter relies on (§4.2)."""

    @given(trees())
    @settings(max_examples=60, deadline=None)
    def test_preorder_of_binary_matches_tree(self, tree):
        binary = tree_to_binary(tree)
        binary_labels = [
            n.label for n in binary_preorder(binary) if not n.is_epsilon
        ]
        assert binary_labels == preorder_labels(tree)

    @given(trees())
    @settings(max_examples=60, deadline=None)
    def test_inorder_of_binary_matches_tree_postorder(self, tree):
        binary = tree_to_binary(tree)
        binary_labels = [
            n.label for n in binary_inorder(binary) if not n.is_epsilon
        ]
        assert binary_labels == postorder_labels(tree)

    def test_postorder_traversal(self):
        binary = tree_to_binary(parse_bracket("a(b,c)"))
        labels = [n.label for n in binary_postorder(binary)]
        assert labels == ["c", "b", "a"]

    def test_traversals_of_none(self):
        assert list(binary_preorder(None)) == []
        assert list(binary_inorder(None)) == []
        assert list(binary_postorder(None)) == []


class TestBinaryNodeEquality:
    def test_equal_trees(self):
        a = tree_to_binary(parse_bracket("a(b,c)"))
        b = tree_to_binary(parse_bracket("a(b,c)"))
        assert a == b
        assert hash(a) == hash(b)

    def test_left_right_distinguished(self):
        left_only = BinaryTreeNode("a", left=BinaryTreeNode("b"))
        right_only = BinaryTreeNode("a", right=BinaryTreeNode("b"))
        assert left_only != right_only

    def test_not_equal_to_other_types(self):
        assert BinaryTreeNode("a").__eq__("a") is NotImplemented
