"""Unit tests for executable edit operations (paper §2.1)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import InvalidEditOperationError
from repro.trees import (
    Delete,
    Insert,
    Relabel,
    apply_operation,
    apply_script,
    parse_bracket,
    prune_subtree,
    random_edit_script,
    random_operation,
    to_bracket,
)
from tests.strategies import trees

LABELS = ["a", "b", "c", "x"]


class TestRelabel:
    def test_relabel_root(self):
        tree = parse_bracket("a(b)")
        apply_operation(tree, Relabel(1, "z"))
        assert tree.label == "z"

    def test_relabel_inner(self):
        tree = parse_bracket("a(b(c),d)")
        apply_operation(tree, Relabel(2, "z"))
        assert to_bracket(tree) == "a(z(c),d)"

    def test_bad_position(self):
        tree = parse_bracket("a(b)")
        with pytest.raises(InvalidEditOperationError):
            apply_operation(tree, Relabel(3, "z"))
        with pytest.raises(InvalidEditOperationError):
            apply_operation(tree, Relabel(0, "z"))

    def test_describe(self):
        assert "relabel" in Relabel(1, "z").describe()


class TestDelete:
    def test_delete_leaf(self):
        tree = parse_bracket("a(b,c)")
        apply_operation(tree, Delete(2))
        assert to_bracket(tree) == "a(c)"

    def test_delete_splices_children_in_place(self):
        # the paper's Figure 1 walk-through: deleting the second b of
        # a(b(c,d),b(c,d),e) puts c and d between the first b and e
        tree = parse_bracket("a(b(c,d),b(c,d),e)")
        apply_operation(tree, Delete(5))
        assert to_bracket(tree) == "a(b(c,d),c,d,e)"

    def test_delete_root_rejected(self):
        tree = parse_bracket("a(b)")
        with pytest.raises(InvalidEditOperationError):
            apply_operation(tree, Delete(1))

    def test_describe(self):
        assert "delete" in Delete(2).describe()


class TestInsert:
    def test_insert_leaf_under_leaf(self):
        tree = parse_bracket("a(b)")
        apply_operation(tree, Insert(2, 0, 0, "z"))
        assert to_bracket(tree) == "a(b(z))"

    def test_insert_adopting_middle_children(self):
        tree = parse_bracket("a(b,c,d,e)")
        apply_operation(tree, Insert(1, 1, 2, "z"))
        assert to_bracket(tree) == "a(b,z(c,d),e)"

    def test_insert_adopting_all_children(self):
        tree = parse_bracket("a(b,c)")
        apply_operation(tree, Insert(1, 0, 2, "z"))
        assert to_bracket(tree) == "a(z(b,c))"

    def test_insert_is_inverse_of_delete(self):
        original = parse_bracket("a(b(c,d),b(c,d),e)")
        tree = original.clone()
        apply_operation(tree, Delete(5))
        apply_operation(tree, Insert(1, 1, 2, "b"))
        assert tree == original

    def test_out_of_range_slice(self):
        tree = parse_bracket("a(b,c)")
        with pytest.raises(InvalidEditOperationError):
            apply_operation(tree, Insert(1, 1, 2, "z"))
        with pytest.raises(InvalidEditOperationError):
            apply_operation(tree, Insert(1, -1, 1, "z"))

    def test_describe(self):
        assert "insert" in Insert(1, 0, 0, "z").describe()


class TestPruneSubtree:
    """Whole-subtree removal — the shrinker's reduction primitive."""

    def test_differs_from_delete(self):
        # Delete splices children up; prune drops the whole subtree
        tree = parse_bracket("a(b(c,d),e)")
        assert to_bracket(prune_subtree(tree, 2)) == "a(e)"
        apply_operation(tree, Delete(2))
        assert to_bracket(tree) == "a(c,d,e)"

    def test_root_rejected(self):
        with pytest.raises(InvalidEditOperationError):
            prune_subtree(parse_bracket("a(b)"), 1)

    @given(trees(), st.integers(0, 2**31))
    @settings(max_examples=40, deadline=None)
    def test_size_drops_by_exactly_the_subtree(self, tree, seed):
        if tree.size < 2:
            return
        position = 2 + random.Random(seed).randrange(tree.size - 1)
        victim_size = list(tree.iter_preorder())[position - 1].size
        pruned = prune_subtree(tree, position)
        assert pruned.size == tree.size - victim_size
        assert tree.size == sum(1 for _ in tree.iter_preorder())  # untouched


class TestScripts:
    def test_apply_script_clones(self):
        tree = parse_bracket("a(b)")
        result = apply_script(tree, [Relabel(1, "z")])
        assert tree.label == "a"
        assert result.label == "z"

    def test_unknown_operation_rejected(self):
        with pytest.raises(InvalidEditOperationError):
            apply_operation(parse_bracket("a"), "bogus")

    def test_empty_script_is_identity(self):
        tree = parse_bracket("a(b(c))")
        assert apply_script(tree, []) == tree


class TestRandomOperations:
    @given(trees(), st.integers(0, 2**31))
    @settings(max_examples=60, deadline=None)
    def test_random_operation_always_applicable(self, tree, seed):
        rng = random.Random(seed)
        operation = random_operation(tree, LABELS, rng)
        apply_operation(tree, operation)  # must not raise

    @given(trees(), st.integers(0, 2**31), st.integers(0, 6))
    @settings(max_examples=40, deadline=None)
    def test_random_script_size_change_bounded(self, tree, seed, count):
        rng = random.Random(seed)
        mutated, script = random_edit_script(tree, count, LABELS, rng)
        assert len(script) == count
        assert abs(mutated.size - tree.size) <= count

    def test_single_node_tree_never_deleted(self):
        rng = random.Random(0)
        tree = parse_bracket("a")
        for _ in range(50):
            operation = random_operation(tree, LABELS, rng)
            assert not isinstance(operation, Delete)
