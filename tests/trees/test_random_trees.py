"""Unit tests for the random tree generation primitives."""

import random

import pytest

from repro.trees import gaussian_int, random_forest, random_tree

LABELS = ["a", "b", "c", "d"]


class TestGaussianInt:
    def test_clamped_from_below(self):
        rng = random.Random(0)
        for _ in range(100):
            assert gaussian_int(rng, mean=0.0, stddev=5.0, minimum=1) >= 1

    def test_concentrates_near_mean(self):
        rng = random.Random(1)
        samples = [gaussian_int(rng, 50.0, 2.0) for _ in range(500)]
        assert 49 <= sum(samples) / len(samples) <= 51


class TestRandomTree:
    def test_deterministic_given_seed(self):
        t1 = random_tree(random.Random(42), LABELS)
        t2 = random_tree(random.Random(42), LABELS)
        assert t1 == t2

    def test_size_near_target(self):
        rng = random.Random(7)
        sizes = [
            random_tree(rng, LABELS, size_mean=50, size_stddev=2).size
            for _ in range(30)
        ]
        assert 40 <= sum(sizes) / len(sizes) <= 55
        assert all(size <= 60 for size in sizes)

    def test_max_size_respected(self):
        rng = random.Random(3)
        for _ in range(20):
            assert random_tree(rng, LABELS, max_size=10).size <= 10

    def test_labels_drawn_from_alphabet(self):
        tree = random_tree(random.Random(5), LABELS)
        assert all(n.label in LABELS for n in tree.iter_preorder())

    def test_empty_labels_rejected(self):
        with pytest.raises(ValueError):
            random_tree(random.Random(0), [])

    def test_fanout_roughly_respected(self):
        rng = random.Random(11)
        tree = random_tree(rng, LABELS, size_mean=200, size_stddev=5,
                           fanout_mean=4, fanout_stddev=0.5)
        internal = [n.degree for n in tree.iter_preorder() if not n.is_leaf]
        # all but the budget-truncated last node should have fanout near 4
        near_four = sum(1 for d in internal if 3 <= d <= 5)
        assert near_four >= len(internal) - 1


class TestRandomForest:
    def test_count(self):
        forest = random_forest(random.Random(0), 5, LABELS, size_mean=10)
        assert len(forest) == 5

    def test_trees_independent(self):
        forest = random_forest(random.Random(0), 10, LABELS, size_mean=20)
        assert len({id(t) for t in forest}) == 10
