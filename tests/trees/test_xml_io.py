"""Unit tests for XML <-> tree conversion."""

import xml.etree.ElementTree as ET

import pytest

from repro.exceptions import TreeParseError
from repro.trees import parse_xml_file, parse_xml_string, tree_to_xml, xml_to_tree

ARTICLE = """
<article key="yang05">
  <author>Rui Yang</author>
  <title>Similarity Evaluation</title>
  <year>2005</year>
</article>
"""


class TestXmlToTree:
    def test_tags_become_labels(self):
        tree = parse_xml_string(ARTICLE)
        assert tree.label == "article"
        child_labels = [c.label for c in tree.children]
        assert "author" in child_labels
        assert "title" in child_labels

    def test_attributes_become_children(self):
        tree = parse_xml_string(ARTICLE)
        assert tree.children[0].label == "@key=yang05"

    def test_attributes_sorted_by_name(self):
        tree = parse_xml_string('<r b="2" a="1"/>')
        assert [c.label for c in tree.children] == ["@a=1", "@b=2"]

    def test_text_becomes_leaf(self):
        tree = parse_xml_string(ARTICLE)
        author = next(c for c in tree.children if c.label == "author")
        assert author.children[0].label == "Rui Yang"

    def test_attributes_can_be_excluded(self):
        tree = parse_xml_string(ARTICLE, include_attributes=False)
        assert all(not str(c.label).startswith("@") for c in tree.children)

    def test_text_can_be_excluded(self):
        tree = parse_xml_string(ARTICLE, include_text=False)
        author = next(c for c in tree.children if c.label == "author")
        assert author.is_leaf

    def test_max_text_truncates(self):
        tree = parse_xml_string("<r>abcdefgh</r>", max_text=3)
        assert tree.children[0].label == "abc"

    def test_tail_text_preserved_in_order(self):
        tree = parse_xml_string("<r>one<x/>two<y/></r>")
        assert [c.label for c in tree.children] == ["one", "x", "two", "y"]

    def test_whitespace_only_text_skipped(self):
        tree = parse_xml_string("<r>  \n  <x/></r>")
        assert [c.label for c in tree.children] == ["x"]

    def test_invalid_xml_raises(self):
        with pytest.raises(TreeParseError):
            parse_xml_string("<unclosed>")

    def test_parse_xml_file(self, tmp_path):
        path = tmp_path / "doc.xml"
        path.write_text(ARTICLE)
        tree = parse_xml_file(str(path))
        assert tree.label == "article"

    def test_parse_xml_file_invalid(self, tmp_path):
        path = tmp_path / "bad.xml"
        path.write_text("<broken")
        with pytest.raises(TreeParseError):
            parse_xml_file(str(path))

    def test_nested_elements_depth(self):
        tree = parse_xml_string("<a><b><c><d/></c></b></a>")
        assert tree.height == 3


class TestTreeToXml:
    def test_round_trip(self):
        tree = parse_xml_string(ARTICLE)
        element = tree_to_xml(tree)
        again = xml_to_tree(element)
        assert again == tree

    def test_attributes_restored(self):
        tree = parse_xml_string('<r a="1"><x/></r>')
        element = tree_to_xml(tree)
        assert element.get("a") == "1"

    def test_text_restored(self):
        # leaf labels that cannot be XML tags (here: a space) come back as
        # text; tag-like leaf labels round-trip as empty elements instead
        tree = parse_xml_string("<r>hello world</r>")
        element = tree_to_xml(tree)
        assert element.text == "hello world"

    def test_invalid_root_label_rejected(self):
        from repro.trees import TreeNode

        with pytest.raises(TreeParseError):
            tree_to_xml(TreeNode("not a tag!"))

    def test_serializable(self):
        tree = parse_xml_string(ARTICLE)
        text = ET.tostring(tree_to_xml(tree))
        assert b"article" in text
