"""Unit tests for bracket notation parsing/serialization."""

import pytest

from repro.exceptions import TreeParseError
from repro.trees import (
    TreeNode,
    forest_to_bracket,
    parse_bracket,
    parse_forest,
    to_bracket,
)


class TestParse:
    def test_single_node(self):
        tree = parse_bracket("a")
        assert tree.label == "a"
        assert tree.is_leaf

    def test_nested(self):
        tree = parse_bracket("a(b(c,d),e)")
        assert tree.size == 5
        assert [n.label for n in tree.iter_preorder()] == ["a", "b", "c", "d", "e"]

    def test_whitespace_tolerated(self):
        tree = parse_bracket(" a ( b , c ) ")
        assert [c.label for c in tree.children] == ["b", "c"]

    def test_multichar_labels(self):
        tree = parse_bracket("article(author,title)")
        assert tree.label == "article"

    def test_quoted_labels(self):
        tree = parse_bracket('"a(b)"("x,y")')
        assert tree.label == "a(b)"
        assert tree.children[0].label == "x,y"

    def test_quoted_label_with_escapes(self):
        tree = parse_bracket(r'"say \"hi\" \\now"')
        assert tree.label == 'say "hi" \\now'

    def test_deep_nesting_no_recursion_error(self):
        depth = 3000
        text = "x(" * depth + "x" + ")" * depth
        tree = parse_bracket(text)
        assert tree.size == depth + 1

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "a(b",
            "a(b,)",
            "a(,b)",
            "a)b",
            "a(b))",
            "a b",
            '"unterminated',
            '"dangling\\',
            "(a)",
        ],
    )
    def test_invalid_inputs(self, bad):
        with pytest.raises(TreeParseError):
            parse_bracket(bad)


class TestSerialize:
    def test_simple(self):
        assert to_bracket(parse_bracket("a(b,c)")) == "a(b,c)"

    def test_leaf(self):
        assert to_bracket(TreeNode("a")) == "a"

    def test_quoting_applied(self):
        tree = TreeNode("a,b", [TreeNode('q"q')])
        text = to_bracket(tree)
        assert parse_bracket(text) == tree

    def test_non_string_labels_stringified(self):
        tree = TreeNode(1, [TreeNode(2)])
        assert to_bracket(tree) == "1(2)"

    @pytest.mark.parametrize(
        "text",
        [
            "a",
            "a(b)",
            "a(b,c,d)",
            "a(b(c(d(e))))",
            "root(x(y,z),x(y,z),w)",
            'a("weird (label)",b)',
        ],
    )
    def test_round_trip(self, text):
        tree = parse_bracket(text)
        assert parse_bracket(to_bracket(tree)) == tree


class TestForest:
    def test_parse_forest(self):
        forest = parse_forest("a(b),c,d(e,f)")
        assert [t.label for t in forest] == ["a", "c", "d"]
        assert forest[2].size == 3

    def test_forest_round_trip(self):
        forest = parse_forest("a(b),c")
        assert parse_forest(forest_to_bracket(forest)) == forest

    def test_single_tree_forest(self):
        assert len(parse_forest("a(b,c)")) == 1

    def test_trailing_garbage_rejected(self):
        with pytest.raises(TreeParseError):
            parse_forest("a(b),")
