"""Unit tests for repro.trees.node.TreeNode."""

import pytest

from repro.trees import TreeNode, parse_bracket


def build_sample():
    # a(b(c,d),e)
    return TreeNode("a", [TreeNode("b", [TreeNode("c"), TreeNode("d")]), TreeNode("e")])


class TestConstruction:
    def test_leaf(self):
        node = TreeNode("x")
        assert node.label == "x"
        assert node.is_leaf
        assert node.is_root
        assert node.degree == 0
        assert node.children == ()

    def test_children_attached_in_order(self):
        tree = build_sample()
        assert [child.label for child in tree.children] == ["b", "e"]

    def test_parent_pointers_set(self):
        tree = build_sample()
        b, e = tree.children
        assert b.parent is tree
        assert e.parent is tree
        assert b.children[0].parent is b

    def test_non_node_child_rejected(self):
        with pytest.raises(TypeError):
            TreeNode("a", ["not-a-node"])

    def test_reattaching_parented_node_rejected(self):
        tree = build_sample()
        child = tree.children[0]
        with pytest.raises(ValueError):
            TreeNode("other", [child])

    def test_self_child_rejected(self):
        node = TreeNode("a")
        with pytest.raises(ValueError):
            node.add_child(node)

    def test_non_string_labels_allowed(self):
        node = TreeNode(42, [TreeNode((1, 2))])
        assert node.label == 42
        assert node.children[0].label == (1, 2)


class TestManipulation:
    def test_add_child_returns_child(self):
        root = TreeNode("r")
        child = root.add_child(TreeNode("c"))
        assert child.label == "c"
        assert child.parent is root

    def test_insert_child_position(self):
        root = TreeNode("r", [TreeNode("a"), TreeNode("c")])
        root.insert_child(1, TreeNode("b"))
        assert [c.label for c in root.children] == ["a", "b", "c"]

    def test_remove_child_detaches(self):
        root = build_sample()
        b = root.children[0]
        root.remove_child(b)
        assert b.parent is None
        assert [c.label for c in root.children] == ["e"]

    def test_remove_missing_child_raises(self):
        root = TreeNode("r")
        with pytest.raises(ValueError):
            root.remove_child(TreeNode("x"))

    def test_replace_children(self):
        root = TreeNode("r", [TreeNode("a")])
        old = root.children[0]
        root.replace_children([TreeNode("x"), TreeNode("y")])
        assert old.parent is None
        assert [c.label for c in root.children] == ["x", "y"]


class TestNavigation:
    def test_first_child(self):
        tree = build_sample()
        assert tree.first_child.label == "b"
        assert tree.children[1].first_child is None

    def test_next_sibling(self):
        tree = build_sample()
        b, e = tree.children
        assert b.next_sibling is e
        assert e.next_sibling is None
        assert tree.next_sibling is None

    def test_prev_sibling(self):
        tree = build_sample()
        b, e = tree.children
        assert e.prev_sibling is b
        assert b.prev_sibling is None
        assert tree.prev_sibling is None

    def test_child_index(self):
        tree = build_sample()
        b, e = tree.children
        assert b.child_index() == 0
        assert e.child_index() == 1
        with pytest.raises(ValueError):
            tree.child_index()

    def test_root_property(self):
        tree = build_sample()
        deep = tree.children[0].children[1]
        assert deep.root is tree
        assert tree.root is tree

    def test_ancestors(self):
        tree = build_sample()
        c = tree.children[0].children[0]
        assert [a.label for a in c.ancestors()] == ["b", "a"]


class TestAggregates:
    def test_size(self):
        assert build_sample().size == 5
        assert TreeNode("x").size == 1

    def test_len(self):
        assert len(build_sample()) == 5

    def test_height(self):
        assert build_sample().height == 2
        assert TreeNode("x").height == 0

    def test_depth(self):
        tree = build_sample()
        assert tree.depth == 0
        assert tree.children[0].children[0].depth == 2

    def test_deep_tree_no_recursion_error(self):
        root = TreeNode("0")
        node = root
        for i in range(1, 5000):
            node = node.add_child(TreeNode(str(i)))
        assert root.size == 5000
        assert root.height == 4999
        assert node.depth == 4999


class TestIteration:
    def test_preorder(self):
        labels = [n.label for n in build_sample().iter_preorder()]
        assert labels == ["a", "b", "c", "d", "e"]

    def test_postorder(self):
        labels = [n.label for n in build_sample().iter_postorder()]
        assert labels == ["c", "d", "b", "e", "a"]

    def test_leaves(self):
        labels = [n.label for n in build_sample().leaves()]
        assert labels == ["c", "d", "e"]

    def test_single_node_iterators(self):
        node = TreeNode("x")
        assert [n.label for n in node.iter_preorder()] == ["x"]
        assert [n.label for n in node.iter_postorder()] == ["x"]
        assert [n.label for n in node.leaves()] == ["x"]


class TestCopyEquality:
    def test_clone_is_equal_but_distinct(self):
        tree = build_sample()
        copy = tree.clone()
        assert copy == tree
        assert copy is not tree
        assert copy.children[0] is not tree.children[0]

    def test_clone_drops_parent(self):
        tree = build_sample()
        sub = tree.children[0].clone()
        assert sub.parent is None
        assert sub.size == 3

    def test_clone_mutation_does_not_affect_original(self):
        tree = build_sample()
        copy = tree.clone()
        copy.children[0].label = "changed"
        assert tree.children[0].label == "b"

    def test_equality_differs_on_label(self):
        assert parse_bracket("a(b)") != parse_bracket("a(c)")

    def test_equality_differs_on_shape(self):
        assert parse_bracket("a(b,c)") != parse_bracket("a(b(c))")

    def test_equality_respects_sibling_order(self):
        assert parse_bracket("a(b,c)") != parse_bracket("a(c,b)")

    def test_equality_against_non_tree(self):
        assert TreeNode("a") != "a"
        assert not TreeNode("a") == 17

    def test_hash_consistent_with_equality(self):
        t1 = parse_bracket("a(b(c,d),e)")
        t2 = parse_bracket("a(b(c,d),e)")
        assert hash(t1) == hash(t2)
        assert len({t1, t2}) == 1

    def test_repr_smoke(self):
        assert "TreeNode" in repr(build_sample())
        assert "TreeNode" in repr(TreeNode("leaf"))
