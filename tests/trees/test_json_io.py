"""Unit and property tests for JSON <-> tree conversion."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.editdist import tree_edit_distance
from repro.exceptions import TreeParseError
from repro.trees import TreeNode
from repro.trees.json_io import json_to_tree, parse_json_string, tree_to_json

json_values = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(-1000, 1000)
    | st.floats(allow_nan=False, allow_infinity=False, width=32)
    | st.text(max_size=8),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=5), children, max_size=4),
    max_leaves=10,
)


class TestEncoding:
    def test_object(self):
        tree = json_to_tree({"x": 1})
        assert tree.label == "{}"
        assert tree.children[0].label == "x"
        assert tree.children[0].children[0].label == "num:1"

    def test_array_order_preserved(self):
        tree = json_to_tree([1, 2, 3])
        assert [c.label for c in tree.children] == ["num:1", "num:2", "num:3"]

    def test_scalars_typed(self):
        assert json_to_tree("1").label == "str:1"
        assert json_to_tree(1).label == "num:1"
        assert json_to_tree(True).label == "bool:true"
        assert json_to_tree(None).label == "null"

    def test_string_vs_number_distinct(self):
        assert json_to_tree("1") != json_to_tree(1)

    def test_object_key_order_matters_for_distance(self):
        a = json_to_tree({"x": 1, "y": 2})
        b = json_to_tree({"y": 2, "x": 1})
        assert tree_edit_distance(a, b) > 0  # ordered semantics

    def test_unsupported_type(self):
        with pytest.raises(TreeParseError):
            json_to_tree({"x": object()})

    def test_parse_json_string(self):
        tree = parse_json_string('{"a": [1]}')
        assert tree.size == 4

    def test_parse_invalid_json(self):
        with pytest.raises(TreeParseError):
            parse_json_string("{not json")


class TestDecoding:
    def test_round_trip_basics(self):
        for value in [None, True, False, 0, 3.5, "hi", [], {}, {"a": [1, "x"]}]:
            assert tree_to_json(json_to_tree(value)) == value

    @given(json_values)
    @settings(max_examples=80, deadline=None)
    def test_round_trip_random(self, value):
        assert tree_to_json(json_to_tree(value)) == value

    def test_malformed_key_node(self):
        tree = TreeNode("{}", [TreeNode("key")])  # key with no value child
        with pytest.raises(TreeParseError):
            tree_to_json(tree)

    def test_scalar_with_children_rejected(self):
        tree = TreeNode("num:1", [TreeNode("null")])
        with pytest.raises(TreeParseError):
            tree_to_json(tree)

    def test_unknown_label_rejected(self):
        with pytest.raises(TreeParseError):
            tree_to_json(TreeNode("mystery"))
        with pytest.raises(TreeParseError):
            tree_to_json(TreeNode(42))

    def test_deep_tree_does_not_recurse(self):
        # would have blown the recursion limit before the explicit-stack
        # rewrite: tree inputs (unlike json.loads output) have no depth
        # bound, e.g. trees converted from XML or corpus generators
        import sys

        depth = sys.getrecursionlimit() + 500
        node = TreeNode("num:1")
        for _ in range(depth):
            node = TreeNode("[]", [node])
        result = tree_to_json(node)
        # verify iteratively too — comparing nested lists for equality
        # would itself recurse in the interpreter
        levels = 0
        while isinstance(result, list):
            assert len(result) == 1
            result = result[0]
            levels += 1
        assert levels == depth
        assert result == 1

    def test_deep_object_chain_does_not_recurse(self):
        import sys

        depth = sys.getrecursionlimit() + 500
        node = TreeNode("null")
        for _ in range(depth):
            key = TreeNode("k", [node])
            node = TreeNode("{}", [key])
        result = tree_to_json(node)
        levels = 0
        while isinstance(result, dict):
            result = result["k"]
            levels += 1
        assert levels == depth
        assert result is None


class TestSimilarityUseCase:
    def test_small_change_small_distance(self):
        before = parse_json_string('{"name": "app", "replicas": 2}')
        after = parse_json_string('{"name": "app", "replicas": 3}')
        assert tree_edit_distance(before, after) == 1

    def test_search_over_json_documents(self):
        from repro import TreeDatabase

        documents = [
            parse_json_string(text)
            for text in [
                '{"kind": "a", "items": [1, 2]}',
                '{"kind": "a", "items": [1, 2, 3]}',
                '{"kind": "b"}',
            ]
        ]
        db = TreeDatabase(documents)
        matches, _ = db.range_query(documents[0], 1)
        assert [index for index, _ in matches] == [0, 1]
