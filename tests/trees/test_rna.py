"""Unit tests for the RNA secondary structure encoding."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.editdist import tree_edit_distance
from repro.exceptions import TreeParseError
from repro.trees.rna import pair_table, rna_to_tree


class TestPairTable:
    def test_simple_hairpin(self):
        assert pair_table("((..))") == [5, 4, None, None, 1, 0]

    def test_all_unpaired(self):
        assert pair_table("....") == [None] * 4

    def test_nested_and_adjacent(self):
        table = pair_table("(())()")
        assert table[0] == 3 and table[1] == 2 and table[4] == 5

    def test_unmatched_close(self):
        with pytest.raises(TreeParseError):
            pair_table("())")

    def test_unmatched_open(self):
        with pytest.raises(TreeParseError):
            pair_table("(()")

    def test_invalid_symbol(self):
        with pytest.raises(TreeParseError):
            pair_table("(.x.)")


class TestRnaToTree:
    def test_hairpin_structure(self):
        tree = rna_to_tree("GGGAAACCC", "(((...)))")
        # three nested pair nodes, then three unpaired leaves
        assert tree.size == 1 + 3 + 3
        node = tree.children[0]
        assert node.label == "GC"
        assert node.children[0].label == "GC"

    def test_multiloop(self):
        #  root with two stems and a joining unpaired base
        tree = rna_to_tree("GCAAUAGC", "()..()..")
        labels = [c.label for c in tree.children]
        assert labels == ["GC", "A", "A", "UA", "G", "C"]

    def test_case_insensitive(self):
        assert rna_to_tree("gggcaaccc", "(((...)))") == rna_to_tree(
            "GGGCAACCC", "(((...)))"
        )

    def test_length_mismatch(self):
        with pytest.raises(TreeParseError):
            rna_to_tree("GGG", "((..))")

    def test_unpaired_only(self):
        tree = rna_to_tree("ACGU", "....")
        assert [c.label for c in tree.children] == ["A", "C", "G", "U"]
        assert all(c.is_leaf for c in tree.children)

    def test_edit_distance_reflects_structural_change(self):
        # a bulge insertion should be a small edit away
        original = rna_to_tree("GGGAAACCC", "(((...)))")
        bulged = rna_to_tree("GGGAAAACCC", "(((...).))")
        distance = tree_edit_distance(original, bulged)
        assert 1 <= distance <= 4

    @given(st.integers(1, 6), st.integers(0, 5))
    @settings(max_examples=30, deadline=None)
    def test_stem_loop_sizes(self, stem, loop):
        sequence = "G" * stem + "A" * loop + "C" * stem
        structure = "(" * stem + "." * loop + ")" * stem
        tree = rna_to_tree(sequence, structure)
        assert tree.size == 1 + stem + loop
        assert tree.height == stem + (1 if loop else 0)
