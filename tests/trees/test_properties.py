"""Unit tests for structural property extraction."""

from collections import Counter

from hypothesis import given, settings

from repro.trees import (
    TreeNode,
    dataset_summary,
    degree_counts,
    depth_counts,
    label_counts,
    leaf_distance_counts,
    leaf_distances,
    node_depths,
    parse_bracket,
    tree_summary,
)
from tests.strategies import trees

SAMPLE = "a(b(c,d),e,a)"


class TestHistograms:
    def test_label_counts(self):
        counts = label_counts(parse_bracket(SAMPLE))
        assert counts == Counter({"a": 2, "b": 1, "c": 1, "d": 1, "e": 1})

    def test_degree_counts(self):
        counts = degree_counts(parse_bracket(SAMPLE))
        assert counts == Counter({0: 4, 2: 1, 3: 1})

    def test_depth_counts(self):
        counts = depth_counts(parse_bracket(SAMPLE))
        assert counts == Counter({0: 1, 1: 3, 2: 2})

    def test_node_depths_preorder_order(self):
        assert node_depths(parse_bracket(SAMPLE)) == [0, 1, 2, 2, 1, 1]

    def test_leaf_distances(self):
        # postorder: c d b e a(leaf) a(root)
        assert leaf_distances(parse_bracket(SAMPLE)) == [0, 0, 1, 0, 0, 1]

    def test_leaf_distance_counts(self):
        counts = leaf_distance_counts(parse_bracket(SAMPLE))
        assert counts == Counter({0: 4, 1: 2})

    def test_single_node(self):
        tree = parse_bracket("x")
        assert label_counts(tree) == Counter({"x": 1})
        assert degree_counts(tree) == Counter({0: 1})
        assert leaf_distances(tree) == [0]

    @given(trees())
    @settings(max_examples=50, deadline=None)
    def test_histogram_totals_equal_size(self, tree):
        assert sum(label_counts(tree).values()) == tree.size
        assert sum(degree_counts(tree).values()) == tree.size
        assert sum(depth_counts(tree).values()) == tree.size
        assert len(leaf_distances(tree)) == tree.size

    @given(trees())
    @settings(max_examples=50, deadline=None)
    def test_degree_histogram_edge_identity(self, tree):
        # sum of degrees = number of edges = size - 1
        total_degree = sum(d * c for d, c in degree_counts(tree).items())
        assert total_degree == tree.size - 1

    @given(trees())
    @settings(max_examples=50, deadline=None)
    def test_leaf_distance_bounded_by_height(self, tree):
        assert max(leaf_distances(tree)) <= tree.height


class TestSummaries:
    def test_tree_summary(self):
        summary = tree_summary(parse_bracket(SAMPLE))
        assert summary["size"] == 6
        assert summary["height"] == 2
        assert summary["leaves"] == 4
        assert summary["distinct_labels"] == 5
        assert summary["mean_fanout"] == 2.5  # (3 + 2) / 2 internal nodes

    def test_tree_summary_single_node(self):
        summary = tree_summary(TreeNode("x"))
        assert summary["size"] == 1
        assert summary["mean_fanout"] == 0.0

    def test_dataset_summary(self):
        dataset = [parse_bracket("a(b)"), parse_bracket("a(b,c,d)")]
        summary = dataset_summary(dataset)
        assert summary["count"] == 2
        assert summary["avg_size"] == 3.0
        assert summary["labels"] == 4
        assert summary["max_size"] == 4
        assert summary["min_size"] == 2

    def test_dataset_summary_empty(self):
        assert dataset_summary([])["count"] == 0
