"""Tests for the hierarchical-parsing embedding (Garofalakis–Kumar style)."""

import math

from hypothesis import given, settings

from repro.editdist import tree_edit_distance
from repro.extensions import HierarchicalParser, hierarchical_embedding_distance
from repro.trees import parse_bracket
from tests.strategies import tree_pairs, trees


def chain(length, tip="x"):
    return parse_bracket("x(" * (length - 1) + tip + ")" * (length - 1))


class TestParsing:
    def test_identical_trees_distance_zero(self):
        parser = HierarchicalParser()
        t = parse_bracket("a(b(c,d),e(f))")
        assert hierarchical_embedding_distance(t, t.clone(), parser) == 0

    def test_single_node(self):
        parser = HierarchicalParser()
        vector = parser.embed(parse_bracket("a"))
        assert sum(vector.values()) == 1
        assert parser.phases(parse_bracket("a")) == 0

    def test_phases_logarithmic_on_chains(self):
        parser = HierarchicalParser()
        for length in (10, 100, 1000):
            phases = parser.phases(chain(length))
            assert phases <= math.ceil(math.log2(length)) + 3

    def test_phases_logarithmic_on_stars(self):
        parser = HierarchicalParser()
        star = parse_bracket("r(" + ",".join(["x"] * 512) + ")")
        assert parser.phases(star) <= 12

    def test_deep_chain_no_recursion_error(self):
        parser = HierarchicalParser()
        parser.embed(chain(5000))  # must not raise

    @given(trees())
    @settings(max_examples=40, deadline=None)
    def test_embedding_deterministic(self, tree):
        parser = HierarchicalParser()
        assert parser.embed(tree) == parser.embed(tree.clone())

    @given(trees())
    @settings(max_examples=40, deadline=None)
    def test_initial_names_cover_all_nodes(self, tree):
        parser = HierarchicalParser()
        vector = parser.embed(tree)
        # phase-0 names alone count every node
        phase0 = sum(
            count
            for key, name in parser._names.items()
            if key[0] == 0
            for count in [vector[name]]
        )
        assert phase0 == tree.size

    def test_vocabulary_shared_across_trees(self):
        parser = HierarchicalParser()
        parser.embed(parse_bracket("a(b)"))
        before = parser.vocabulary_size
        parser.embed(parse_bracket("a(b)"))
        assert parser.vocabulary_size == before  # nothing new interned


class TestDistanceProperties:
    @given(tree_pairs(max_leaves=8))
    @settings(max_examples=40, deadline=None)
    def test_symmetry(self, pair):
        parser = HierarchicalParser()
        t1, t2 = pair
        assert hierarchical_embedding_distance(
            t1, t2, parser
        ) == hierarchical_embedding_distance(t2, t1, parser)

    @given(tree_pairs(max_leaves=6), trees(max_leaves=6))
    @settings(max_examples=25, deadline=None)
    def test_triangle_inequality(self, pair, t3):
        parser = HierarchicalParser()
        t1, t2 = pair
        d12 = hierarchical_embedding_distance(t1, t2, parser)
        d23 = hierarchical_embedding_distance(t2, t3, parser)
        d13 = hierarchical_embedding_distance(t1, t3, parser)
        assert d13 <= d12 + d23

    def test_no_constant_lower_bound_factor(self):
        """The paper's §2.2 point: unlike BDist ≤ 5·EDist, the hierarchical
        embedding's disturbance from ONE edit grows with tree size, so no
        constant c gives L1 ≤ c·EDist."""
        parser = HierarchicalParser()
        ratios = []
        for length in (16, 128, 1024):
            base = chain(length)
            edited = chain(length, tip="y")  # one relabel: EDist = 1
            assert tree_edit_distance(base, edited) == 1
            ratios.append(
                hierarchical_embedding_distance(base, edited, parser)
            )
        assert ratios[0] < ratios[1] < ratios[2]
        assert ratios[2] > 5  # already beyond the binary branch constant

    def test_binary_branch_contrast(self):
        """BDist stays constant for the same experiment."""
        from repro.core import branch_distance

        for length in (16, 128, 1024):
            base = chain(length)
            edited = chain(length, tip="y")
            assert branch_distance(base, edited) <= 5  # Theorem 3.2, k = 1
