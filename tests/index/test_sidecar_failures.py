"""Failure paths of the persisted accelerator sidecars.

Both sidecars — the candidate-index ``<plane>.index.json`` and the dense
``<plane>.matrices.npz`` — follow the strict-accelerator contract: a
corrupt, stale, or mismatched file is *ignored* (one warning + one
``repro_sidecar_fallback_total`` increment), the artifact is rebuilt
lazily, and answers are identical to a cold build.  Never fatal.
"""

from __future__ import annotations

import json

import pytest

from repro.features.io import (
    load_feature_plane,
    matrix_sidecar_path,
    save_feature_plane,
)
from repro.features.store import FeatureStore
from repro.filters.binary_branch import BinaryBranchFilter
from repro.index import build_candidate_index
from repro.index.io import (
    index_sidecar_path,
    load_index_sidecar,
    save_index_sidecar,
)
from repro.obs.metrics import get_registry
from repro.search.range_query import range_query
from repro.trees import parse_bracket

_BRACKETS = ["a(b,c)", "a(b,d)", "a(b(c),d)", "x(y,z)", "x(y)", "a(b,c)"]


def _fallbacks(sidecar: str, reason: str) -> float:
    counter = get_registry().counter(
        "repro_sidecar_fallback_total",
        "sidecar files ignored (corrupt/stale/version) in favour of rebuild",
        ("sidecar", "reason"),
    )
    return counter.value(sidecar=sidecar, reason=reason)


@pytest.fixture
def corpus():
    return [parse_bracket(bracket) for bracket in _BRACKETS]


@pytest.fixture
def plane(tmp_path, corpus):
    path = str(tmp_path / "plane.json")
    store = FeatureStore((2,)).fit(corpus)
    save_feature_plane(store, path)
    return path


class TestIndexSidecar:
    @pytest.mark.parametrize("kind", ["vptree", "ifi"])
    def test_roundtrip(self, plane, corpus, kind):
        store = load_feature_plane(plane)
        save_index_sidecar(build_candidate_index(kind, store), plane)
        restored = load_index_sidecar(store, plane)
        assert restored is not None and restored.kind == kind
        assert len(restored) == len(corpus)

    @pytest.mark.parametrize("kind", ["vptree", "ifi"])
    def test_corrupt_sidecar_falls_back(self, plane, corpus, kind):
        store = load_feature_plane(plane)
        save_index_sidecar(build_candidate_index(kind, store), plane)
        with open(index_sidecar_path(plane), "w") as handle:
            handle.write("{ not json !!!")
        before = _fallbacks("index", "corrupt")
        with pytest.warns(UserWarning, match="corrupt index sidecar"):
            assert load_index_sidecar(store, plane) is None
        assert _fallbacks("index", "corrupt") == before + 1
        self._answers_identical(store, corpus, kind)

    def test_mangled_structure_falls_back(self, plane, corpus):
        store = load_feature_plane(plane)
        save_index_sidecar(build_candidate_index("vptree", store), plane)
        sidecar = index_sidecar_path(plane)
        with open(sidecar) as handle:
            document = json.load(handle)
        document["structure"] = {"b": [0, 0, 1]}  # duplicate row ids
        with open(sidecar, "w") as handle:
            json.dump(document, handle)
        before = _fallbacks("index", "corrupt")
        with pytest.warns(UserWarning, match="corrupt index sidecar"):
            assert load_index_sidecar(store, plane) is None
        assert _fallbacks("index", "corrupt") == before + 1

    def test_stale_sidecar_falls_back(self, plane, corpus):
        store = load_feature_plane(plane)
        save_index_sidecar(build_candidate_index("vptree", store), plane)
        store.add(parse_bracket("q(r,s)"))  # sidecar generation now behind
        before = _fallbacks("index", "stale")
        assert load_index_sidecar(store, plane) is None
        assert _fallbacks("index", "stale") == before + 1
        self._answers_identical(store, corpus + [parse_bracket("q(r,s)")], "vptree")

    def test_version_mismatch_falls_back(self, plane):
        store = load_feature_plane(plane)
        save_index_sidecar(build_candidate_index("ifi", store), plane)
        sidecar = index_sidecar_path(plane)
        with open(sidecar) as handle:
            document = json.load(handle)
        document["version"] = 999
        with open(sidecar, "w") as handle:
            json.dump(document, handle)
        before = _fallbacks("index", "version")
        assert load_index_sidecar(store, plane) is None
        assert _fallbacks("index", "version") == before + 1

    def test_kind_mismatch_falls_back(self, plane):
        store = load_feature_plane(plane)
        save_index_sidecar(build_candidate_index("ifi", store), plane)
        before = _fallbacks("index", "kind")
        assert load_index_sidecar(store, plane, kind="vptree") is None
        assert _fallbacks("index", "kind") == before + 1

    def test_missing_sidecar_is_silent(self, plane):
        store = load_feature_plane(plane)
        registry_before = {
            labels: value
            for labels, value in get_registry()
            .counter(
                "repro_sidecar_fallback_total",
                "sidecar files ignored (corrupt/stale/version) in favour "
                "of rebuild",
                ("sidecar", "reason"),
            )
            .values()
            .items()
        }
        assert load_index_sidecar(store, plane) is None
        assert (
            get_registry()
            .counter(
                "repro_sidecar_fallback_total",
                "sidecar files ignored (corrupt/stale/version) in favour "
                "of rebuild",
                ("sidecar", "reason"),
            )
            .values()
            == registry_before
        )

    @staticmethod
    def _answers_identical(store, corpus, kind):
        """Post-fallback rebuild answers exactly like an index-less query."""
        flt = BinaryBranchFilter().fit_from_store(store)
        rebuilt = build_candidate_index(kind, store)
        query = parse_bracket("a(b,c)")
        reference, _ = range_query(corpus, query, 2.0, flt)
        indexed, _ = range_query(corpus, query, 2.0, flt, index=rebuilt)
        assert indexed == reference


class TestMatrixSidecar:
    def test_corrupt_npz_falls_back(self, tmp_path, corpus):
        path = str(tmp_path / "plane.json")
        store = FeatureStore((2,)).fit(corpus)
        save_feature_plane(store, path)
        clean = load_feature_plane(path)
        clean_answer = self._query(clean, corpus)

        with open(matrix_sidecar_path(path), "wb") as handle:
            handle.write(b"this is not a zip archive")
        before = _fallbacks("matrices", "corrupt")
        with pytest.warns(UserWarning, match="corrupt matrix sidecar"):
            damaged = load_feature_plane(path)
        assert _fallbacks("matrices", "corrupt") == before + 1
        # lazy rebuild: the planes come back from the restored features
        assert self._query(damaged, corpus) == clean_answer

    def test_stale_npz_falls_back(self, tmp_path, corpus):
        path = str(tmp_path / "plane.json")
        store = FeatureStore((2,)).fit(corpus)
        save_feature_plane(store, path)
        store.add(parse_bracket("q(r,s)"))
        from repro.features.io import save_matrix_sidecar

        save_matrix_sidecar(store, path)  # now ahead of the JSON plane
        before = _fallbacks("matrices", "stale")
        restored = load_feature_plane(path)
        assert _fallbacks("matrices", "stale") == before + 1
        assert self._query(restored, corpus) is not None

    @staticmethod
    def _query(store, corpus):
        flt = BinaryBranchFilter().fit_from_store(store)
        matches, stats = range_query(
            corpus, parse_bracket("a(b,c)"), 2.0, flt,
            matrices=store.matrices(),
        )
        return matches, stats.candidates


class TestFallbackExposition:
    def test_both_sidecar_labels_in_prometheus_text(self, tmp_path, corpus):
        """Both sidecar families report through the one unified counter:
        after one fallback each, the Prometheus exposition carries a
        ``repro_sidecar_fallback_total`` series for ``sidecar="index"``
        AND ``sidecar="matrices"``."""
        path = str(tmp_path / "plane.json")
        store = FeatureStore((2,)).fit(corpus)
        save_feature_plane(store, path)
        save_index_sidecar(build_candidate_index("vptree", store), path)
        with open(index_sidecar_path(path), "w") as handle:
            handle.write("{ not json !!!")
        with open(matrix_sidecar_path(path), "wb") as handle:
            handle.write(b"this is not a zip archive")

        with pytest.warns(UserWarning, match="corrupt matrix sidecar"):
            damaged = load_feature_plane(path)
        with pytest.warns(UserWarning, match="corrupt index sidecar"):
            assert load_index_sidecar(damaged, path) is None

        fallback_lines = [
            line
            for line in get_registry().prometheus_text().splitlines()
            if line.startswith("repro_sidecar_fallback_total{")
        ]
        assert any('sidecar="index"' in line for line in fallback_lines)
        assert any('sidecar="matrices"' in line for line in fallback_lines)
