"""Empty-corpus sweep over the reporting CLI surface.

An empty ``.trees`` file is a legal corpus: every read-only command must
report zeros (exit 0) rather than raising, and only ``search`` — which
has nothing meaningful to answer — may refuse, with a clear message and
exit 1.  This pins the degenerate end of the corpus-size axis so sidecar
and index plumbing can assume "no rows" is always representable.
"""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.storage import save_forest


@pytest.fixture
def empty_dataset(tmp_path):
    path = tmp_path / "empty.trees"
    save_forest([], path)
    return str(path)


@pytest.fixture
def empty_plane(tmp_path, empty_dataset, capsys):
    plane = str(tmp_path / "empty.plane.json")
    assert main(["features", "build", empty_dataset, "--out", plane]) == 0
    capsys.readouterr()  # discard build chatter
    return plane


class TestStatsCommands:
    def test_stats_reports_zero_trees(self, empty_dataset, capsys):
        assert main(["stats", empty_dataset]) == 0
        assert "count: 0" in capsys.readouterr().out

    def test_stats_avg_distance_is_zero(self, empty_dataset, capsys):
        assert main(["stats", empty_dataset, "--avg-distance"]) == 0
        assert "0.000" in capsys.readouterr().out

    def test_features_stats_all_zero(self, empty_plane, capsys):
        assert main(["features", "stats", empty_plane]) == 0
        out = capsys.readouterr().out
        assert "trees: 0" in out
        assert "vocabulary_size: 0" in out
        assert "total_nodes: 0" in out
        for line in out.splitlines():
            if line.startswith("matrix."):
                assert "rows=0" in line and "bytes=0" in line


class TestIndexCommands:
    @pytest.mark.parametrize("kind", ["vptree", "ifi"])
    def test_index_build(self, empty_plane, kind, capsys):
        assert main(["index", "build", empty_plane, "--kind", kind]) == 0
        assert "over 0 trees" in capsys.readouterr().out

    @pytest.mark.parametrize("kind", ["vptree", "ifi"])
    def test_index_stats(self, empty_plane, kind, capsys):
        assert main(["index", "stats", empty_plane, "--kind", kind]) == 0
        assert "rows: 0" in capsys.readouterr().out


class TestSearchRefuses:
    @pytest.mark.parametrize(
        "source", ["auto", "loop", "vectorized", "vptree", "ifi"]
    )
    def test_search_reports_empty_dataset(self, empty_dataset, source, capsys):
        code = main(
            [
                "search", empty_dataset, "--query", "a(b,c)", "--range", "1",
                "--candidate-source", source,
            ]
        )
        assert code == 1
        assert "dataset is empty" in capsys.readouterr().err
