"""Property-based pins for the VP-tree candidate index.

Hypothesis drives random corpora (small label alphabet — maximal branch
collisions, the adversarial regime for a metric index) through four
invariant classes:

* **ball exactness** — ``range_rows`` returns exactly the brute-force
  BDist ball, so index-restricted range answers equal sequential scans;
* **incremental adds** — an index grown by ``sync`` over interleaved
  ``store.add`` calls answers identically to a fresh cold build;
* **pruning soundness** — every subtree the traversal prunes is audited:
  each skipped row provably satisfies the recorded triangle-inequality
  bound, and that bound genuinely exceeds the budget;
* **ascending stream** — complete, keys equal the true BDist, sorted.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.features.store import FeatureStore
from repro.filters.binary_branch import BinaryBranchFilter
from repro.index import LEAF_CAPACITY, VPTreeIndex
from repro.search.range_query import range_query
from repro.search.sequential import sequential_range_query
from tests.strategies import trees

corpora = st.lists(trees(max_leaves=6), min_size=1, max_size=3 * LEAF_CAPACITY)


def _brute_ball(index: VPTreeIndex, vector, budget: int) -> list:
    store = index._store
    return sorted(
        row
        for row in range(len(store))
        if vector.l1_distance(store.packed_vector(row, index.q)) <= budget
    )


class TestRangeRows:
    @given(corpora, trees(max_leaves=6), st.integers(min_value=0, max_value=30))
    @settings(max_examples=60, deadline=None)
    def test_ball_is_exact(self, corpus, query, budget):
        store = FeatureStore((2,)).fit(corpus)
        index = VPTreeIndex(store)
        vector = index.pack(query)
        assert index.range_rows(vector, budget) == _brute_ball(
            index, vector, budget
        )

    @given(corpora, trees(max_leaves=6), st.floats(min_value=0, max_value=4))
    @settings(max_examples=40, deadline=None)
    def test_range_query_equals_sequential(self, corpus, query, threshold):
        store = FeatureStore((2,)).fit(corpus)
        flt = BinaryBranchFilter().fit_from_store(store)
        index = VPTreeIndex(store)
        indexed, _ = range_query(corpus, query, threshold, flt, index=index)
        sequential, _ = sequential_range_query(corpus, query, threshold)
        assert indexed == sequential


class TestIncrementalAdds:
    @given(
        corpora,
        st.lists(trees(max_leaves=6), min_size=1, max_size=LEAF_CAPACITY + 2),
        trees(max_leaves=6),
        st.integers(min_value=0, max_value=20),
    )
    @settings(max_examples=40, deadline=None)
    def test_grown_index_equals_cold_build(self, corpus, added, query, budget):
        store = FeatureStore((2,)).fit(corpus)
        grown = VPTreeIndex(store)
        for position, tree in enumerate(added):
            store.add(tree)
            if position % 2 == 0:
                grown.sync()  # interleave syncs with raw store growth
        grown.sync()
        assert len(grown) == len(store)
        assert not grown.stale()

        cold = VPTreeIndex(store)
        vector = grown.pack(query)
        assert grown.range_rows(vector, budget) == cold.range_rows(
            vector, budget
        )
        assert grown.range_rows(vector, budget) == _brute_ball(
            grown, vector, budget
        )


class TestPruningSoundness:
    @given(corpora, trees(max_leaves=6), st.integers(min_value=0, max_value=12))
    @settings(max_examples=60, deadline=None)
    def test_pruned_rows_satisfy_recorded_bound(self, corpus, query, budget):
        store = FeatureStore((2,)).fit(corpus)
        index = VPTreeIndex(store)
        vector = index.pack(query)
        audit = []
        survivors = index.range_rows(vector, budget, audit=audit)
        pruned = [row for _, rows in audit for row in rows]
        # partition: every row is either distance-examined (and kept or
        # individually rejected) or sits in exactly one audited subtree
        assert len(pruned) + index.last_examined == len(corpus)
        assert not set(survivors) & set(pruned)
        assert len(pruned) == len(set(pruned))
        for bound, rows in audit:
            assert bound > budget  # pruning only ever fires past the budget
            for row in rows:
                actual = vector.l1_distance(store.packed_vector(row, index.q))
                # the triangle inequality promised at least `bound`; the
                # true distance must honour it (and hence exceed budget)
                assert actual >= bound


class TestAscendingStream:
    @given(corpora, trees(max_leaves=6))
    @settings(max_examples=60, deadline=None)
    def test_complete_sorted_and_exact(self, corpus, query):
        store = FeatureStore((2,)).fit(corpus)
        index = VPTreeIndex(store)
        vector = index.pack(query)
        emitted = list(index.ascending(vector))
        assert sorted(row for _, row in emitted) == list(range(len(corpus)))
        keys = [key for key, _ in emitted]
        assert keys == sorted(keys)
        for key, row in emitted:
            assert key == vector.l1_distance(store.packed_vector(row, index.q))
