"""Metamorphic pins for the extended inverted-file index.

Two relations, both straight from the Alg.-1 lower-bound arithmetic
``L1 = |Q| + |T| − 2·overlap(Q, T)``:

* **branch injection** — giving a data row more of a branch the query
  does not contain raises its norm without touching the overlap, so the
  stored lower bound must rise by exactly the injected count and can
  never decrease (trees only drift further apart by growing branches the
  query lacks);
* **insertion-order independence** — the posting lists are built in
  whatever order rows arrive, but every answer (`range_rows`,
  ``ascending``, ``lower_bound``) must be bit-identical under any corpus
  permutation, modulo the row relabelling itself.
"""

from __future__ import annotations

from array import array

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.features.packed import PackedVector
from repro.features.store import FeatureStore
from repro.features.vocabulary import Vocabulary
from repro.index import ExtendedInvertedFile
from tests.strategies import trees

#: sparse synthetic branch-count rows over a 12-dim interned vocabulary
_DIMS = 12
rows = st.dictionaries(
    st.integers(min_value=0, max_value=_DIMS - 1),
    st.integers(min_value=1, max_value=4),
    max_size=6,
)


def _vector(counts: dict) -> PackedVector:
    dims = sorted(counts)
    return PackedVector(
        array("q", dims),
        array("q", [counts[dim] for dim in dims]),
        sum(counts.values()),
        2,
    )


def _store(vectors) -> FeatureStore:
    vocabulary = Vocabulary()
    for dim in range(_DIMS):
        assert vocabulary.intern(f"branch-{dim}") == dim
    return FeatureStore.from_packed(vocabulary, {2: list(vectors)}, (2,))


class TestBranchInjection:
    @given(rows, rows, st.integers(min_value=1, max_value=5))
    @settings(max_examples=80, deadline=None)
    def test_bound_never_decreases(self, query_counts, row_counts, amount):
        query = _vector(query_counts)
        missing = [
            dim for dim in range(_DIMS) if dim not in query_counts
        ]
        if not missing:
            return
        injected_dim = missing[0]
        inflated = dict(row_counts)
        inflated[injected_dim] = inflated.get(injected_dim, 0) + amount

        base = ExtendedInvertedFile(_store([_vector(row_counts)]))
        grown = ExtendedInvertedFile(_store([_vector(inflated)]))
        before = base.lower_bound(query, 0)
        after = grown.lower_bound(query, 0)
        assert after >= before
        # overlap is untouched, the norm rose by exactly `amount`
        assert after == before + amount


class TestInsertionOrderIndependence:
    @given(
        st.lists(trees(max_leaves=6), min_size=2, max_size=20),
        trees(max_leaves=6),
        st.integers(min_value=0, max_value=20),
        st.randoms(use_true_random=False),
    )
    @settings(max_examples=50, deadline=None)
    def test_permuted_corpus_answers_identically(
        self, corpus, query, budget, rng
    ):
        order = list(range(len(corpus)))
        rng.shuffle(order)

        original_store = FeatureStore((2,)).fit(corpus)
        original = ExtendedInvertedFile(original_store)
        permuted_store = FeatureStore((2,)).fit([corpus[i] for i in order])
        permuted = ExtendedInvertedFile(permuted_store)

        vector = original.pack(query)
        permuted_vector = permuted.pack(query)

        # range answers are the same set of trees, relabelled
        expected = sorted(
            order.index(row) for row in original.range_rows(vector, budget)
        )
        assert permuted.range_rows(permuted_vector, budget) == expected

        # the ascending stream pairs every tree with the same distance
        def profile(index, packed, relabel):
            return sorted(
                (key, relabel(row)) for key, row in index.ascending(packed)
            )

        assert profile(
            permuted, permuted_vector, lambda row: row
        ) == profile(original, vector, lambda row: order.index(row))

        # per-row lower bounds ride the permutation unchanged
        for row in range(len(corpus)):
            assert original.lower_bound(vector, row) == permuted.lower_bound(
                permuted_vector, order.index(row)
            )
