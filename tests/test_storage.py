"""Unit tests for dataset persistence."""

import pytest

from repro.exceptions import TreeParseError
from repro.storage import load_forest, load_xml_directory, save_forest
from repro.trees import parse_bracket


class TestForestFiles:
    def test_round_trip(self, tmp_path):
        trees = [parse_bracket(t) for t in ["a(b,c)", "x", 'q("we ird")']]
        path = tmp_path / "data.trees"
        assert save_forest(trees, path) == 3
        assert load_forest(path) == trees

    def test_header_written_and_ignored(self, tmp_path):
        path = tmp_path / "data.trees"
        save_forest([parse_bracket("a")], path, header="line one\nline two")
        content = path.read_text()
        assert content.startswith("# line one\n# line two\n")
        assert load_forest(path) == [parse_bracket("a")]

    def test_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "data.trees"
        path.write_text("\n\na(b)\n\n# comment\nc\n")
        assert [t.label for t in load_forest(path)] == ["a", "c"]

    def test_parse_error_reports_line(self, tmp_path):
        path = tmp_path / "bad.trees"
        path.write_text("a(b)\na(b\n")
        with pytest.raises(TreeParseError, match=":2"):
            load_forest(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.trees"
        path.write_text("")
        assert load_forest(path) == []

    def test_large_round_trip(self, tmp_path):
        from repro.datasets import SyntheticSpec, generate_dataset

        trees = generate_dataset(
            SyntheticSpec(size_mean=15, size_stddev=2), count=50, seed=3
        )
        path = tmp_path / "big.trees"
        save_forest(trees, path)
        assert load_forest(path) == trees


class TestXmlDirectory:
    def test_loads_sorted(self, tmp_path):
        (tmp_path / "b.xml").write_text("<b/>")
        (tmp_path / "a.xml").write_text("<a><x/></a>")
        trees = load_xml_directory(tmp_path)
        assert [t.label for t in trees] == ["a", "b"]

    def test_pattern_filter(self, tmp_path):
        (tmp_path / "a.xml").write_text("<a/>")
        (tmp_path / "ignore.txt").write_text("not xml")
        assert len(load_xml_directory(tmp_path)) == 1

    def test_missing_directory(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_xml_directory(tmp_path / "nope")

    def test_options_forwarded(self, tmp_path):
        (tmp_path / "a.xml").write_text('<a k="v">text</a>')
        (plain,) = load_xml_directory(
            tmp_path, include_attributes=False, include_text=False
        )
        assert plain.is_leaf


class TestSaveLoadDatabase:
    FOREST = ["a(b(c,d),b(c,d),e)", "a(b(c,d,b(e)),c,d,e)", "x(y(z),y(z))"]

    def _database(self):
        from repro.search.database import TreeDatabase

        return TreeDatabase([parse_bracket(text) for text in self.FOREST])

    def test_round_trip_skips_extraction(self, tmp_path):
        from repro.storage import load_database, save_database

        path = tmp_path / "db.trees"
        assert save_database(self._database(), path) == len(self.FOREST)
        loaded = load_database(path)
        assert len(loaded) == len(self.FOREST)
        assert loaded.features is not None
        assert loaded.features.extraction_passes == 0
        assert loaded.filter.size == len(self.FOREST)

    def test_loaded_database_answers_match(self, tmp_path):
        from repro.storage import load_database, save_database

        original = self._database()
        path = tmp_path / "db.trees"
        save_database(original, path)
        loaded = load_database(path)
        query = parse_bracket(self.FOREST[0])
        assert loaded.range_query(query, 2)[0] == original.range_query(query, 2)[0]
        assert loaded.knn(query, 2)[0] == original.knn(query, 2)[0]

    def test_loaded_database_supports_add(self, tmp_path):
        from repro.storage import load_database, save_database

        path = tmp_path / "db.trees"
        save_database(self._database(), path)
        loaded = load_database(path)
        index = loaded.add(parse_bracket("q(r,s)"))
        assert loaded.features.extraction_passes == 1  # only the added tree
        assert (index, 0.0) in loaded.range_query(parse_bracket("q(r,s)"), 0)[0]

    def test_missing_sidecar_falls_back_to_fresh_fit(self, tmp_path):
        from repro.storage import load_database

        path = tmp_path / "plain.trees"
        save_forest([parse_bracket(text) for text in self.FOREST], path)
        loaded = load_database(path)
        assert loaded.features is not None
        assert loaded.features.extraction_passes == len(self.FOREST)

    def test_corrupt_sidecar_warns_and_reextracts(self, tmp_path):
        from repro.storage import load_database, save_database

        original = self._database()
        path = tmp_path / "db.trees"
        save_database(original, path)
        sidecar = tmp_path / "db.trees.features.json"
        sidecar.write_text("{ not json at all")
        with pytest.warns(UserWarning, match="unreadable feature sidecar"):
            loaded = load_database(path)
        # fell back to a from-scratch fit, answers unaffected
        assert loaded.features is not None
        assert loaded.features.extraction_passes == len(self.FOREST)
        query = parse_bracket(self.FOREST[0])
        assert loaded.knn(query, 2)[0] == original.knn(query, 2)[0]

    def test_foreign_json_sidecar_warns_and_reextracts(self, tmp_path):
        from repro.storage import load_database, save_database

        path = tmp_path / "db.trees"
        save_database(self._database(), path)
        (tmp_path / "db.trees.features.json").write_text('{"other": "format"}')
        with pytest.warns(UserWarning, match="unreadable feature sidecar"):
            loaded = load_database(path)
        assert loaded.features.extraction_passes == len(self.FOREST)

    def test_stale_sidecar_length_mismatch_warns_and_reextracts(self, tmp_path):
        from repro.search.database import TreeDatabase
        from repro.storage import load_database, save_database

        path = tmp_path / "db.trees"
        save_database(self._database(), path)
        # overwrite the sidecar with a plane covering fewer trees (e.g. the
        # forest was edited by hand after the save)
        shorter = TreeDatabase([parse_bracket(self.FOREST[0])])
        save_database(shorter, tmp_path / "other.trees")
        (tmp_path / "db.trees.features.json").write_text(
            (tmp_path / "other.trees.features.json").read_text()
        )
        with pytest.warns(UserWarning, match="stale feature sidecar"):
            loaded = load_database(path)
        assert len(loaded) == len(self.FOREST)
        assert loaded.features.extraction_passes == len(self.FOREST)

    def test_intact_sidecar_does_not_warn(self, tmp_path, recwarn):
        from repro.storage import load_database, save_database

        path = tmp_path / "db.trees"
        save_database(self._database(), path)
        loaded = load_database(path)
        assert loaded.features.extraction_passes == 0
        assert not [w for w in recwarn if "sidecar" in str(w.message)]

    def test_sidecar_written_for_storeless_filter(self, tmp_path):
        from repro.search.database import TreeDatabase
        from repro.storage import load_database, save_database

        from repro.filters import SizeDifferenceFilter

        flt = SizeDifferenceFilter()
        flt.supports_store = False  # force the legacy path
        database = TreeDatabase(
            [parse_bracket(text) for text in self.FOREST], flt=flt
        )
        assert database.features is None
        path = tmp_path / "db.trees"
        save_database(database, path)
        loaded = load_database(path)
        assert loaded.features is not None
        assert loaded.features.extraction_passes == 0
