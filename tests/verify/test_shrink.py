"""Unit tests for counterexample shrinking."""

import pytest

from repro.exceptions import InvalidEditOperationError
from repro.trees import parse_bracket, prune_subtree, to_bracket
from repro.verify import shrink_pair, shrink_tree


class TestPruneSubtree:
    def test_prune_leaf(self):
        tree = parse_bracket("a(b,c)")
        assert to_bracket(prune_subtree(tree, 2)) == "a(c)"

    def test_prune_removes_whole_subtree(self):
        # unlike Delete, pruning does not splice the children back in
        tree = parse_bracket("a(b(c,d),e)")
        assert to_bracket(prune_subtree(tree, 2)) == "a(e)"

    def test_input_untouched(self):
        tree = parse_bracket("a(b(c),d)")
        prune_subtree(tree, 2)
        assert to_bracket(tree) == "a(b(c),d)"

    def test_root_not_prunable(self):
        with pytest.raises(InvalidEditOperationError):
            prune_subtree(parse_bracket("a(b)"), 1)

    def test_position_out_of_range(self):
        with pytest.raises(InvalidEditOperationError):
            prune_subtree(parse_bracket("a(b)"), 5)


class TestShrinkPair:
    def test_shrinks_to_minimal_label_pair(self):
        # "t1 contains an x and t2 contains a y" minimises to two 2-node
        # trees: the root is never prunable, so the marked child survives
        t1 = parse_bracket("a(b(c,d),x,e(f,g))")
        t2 = parse_bracket("a(h,y(j),i(k(m)))")

        def predicate(a, b):
            labels_a = {n.label for n in a.iter_preorder()}
            labels_b = {n.label for n in b.iter_preorder()}
            return "x" in labels_a and "y" in labels_b

        s1, s2 = shrink_pair(t1, t2, predicate)
        assert to_bracket(s1) == "a(x)"
        assert to_bracket(s2) == "a(y)"

    def test_needed_node_keeps_its_ancestor_chain(self):
        # whole-subtree deletion cannot splice: a nested witness keeps the
        # path from the root down to it
        t1 = parse_bracket("a(b(c,x),d)")
        s1, _ = shrink_pair(
            t1,
            parse_bracket("z"),
            lambda a, b: "x" in {n.label for n in a.iter_preorder()},
        )
        assert to_bracket(s1) == "a(b(x))"

    def test_non_violating_input_returns_none(self):
        t1, t2 = parse_bracket("a"), parse_bracket("b")
        assert shrink_pair(t1, t2, lambda a, b: False) == (None, None)

    def test_inputs_never_mutated(self):
        t1 = parse_bracket("a(b,c,d)")
        t2 = parse_bracket("x(y,z)")
        shrink_pair(t1, t2, lambda a, b: True)
        assert to_bracket(t1) == "a(b,c,d)"
        assert to_bracket(t2) == "x(y,z)"

    def test_always_true_shrinks_to_roots(self):
        s1, s2 = shrink_pair(
            parse_bracket("a(b(c),d)"), parse_bracket("x(y)"), lambda a, b: True
        )
        assert s1.size == 1 and s2.size == 1

    def test_raising_predicate_counts_as_gone(self):
        # predicate raises whenever t1 lost nodes: shrinking must treat the
        # crash as "violation did not persist", not as a counterexample
        t1 = parse_bracket("a(b,c)")
        t2 = parse_bracket("x")

        def fragile(a, b):
            if a.size < 3:
                raise RuntimeError("cannot process this shape")
            return True

        s1, s2 = shrink_pair(t1, t2, fragile)
        assert s1.size == 3  # nothing could be removed from t1
        assert s2.size == 1

    def test_budget_caps_predicate_calls(self):
        calls = []

        def counting(a, b):
            calls.append(1)
            return True

        shrink_pair(
            parse_bracket("a(b(c,d),e(f,g),h)"),
            parse_bracket("x(y,z)"),
            counting,
            max_steps=3,
        )
        # one initial evaluation plus at most max_steps budgeted calls
        assert len(calls) <= 4


class TestShrinkTree:
    def test_single_tree_wrapper(self):
        tree = parse_bracket("a(b(c,x),d)")
        shrunk = shrink_tree(
            tree, lambda t: "x" in {n.label for n in t.iter_preorder()}
        )
        assert to_bracket(shrunk) == "a(b(x))"
