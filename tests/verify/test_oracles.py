"""Unit tests for the oracle registry.

The positive direction (every oracle passes on a clean checkout) is covered
by ``test_harness.py``; this module checks the registry surface and — the
part that makes the harness trustworthy — that a *deliberately broken*
filter is caught and shrunk to a tiny counterexample.
"""

import pytest

from repro.exceptions import InvalidParameterError
from repro.filters.binary_branch import BranchCountFilter
from repro.verify import (
    ORACLE_FACTORIES,
    build_corpus,
    default_oracle_names,
    make_oracles,
)
from repro.verify.oracles import FilterBoundOracle, PairOracle
from repro.verify.shrink import shrink_pair


class TestRegistry:
    def test_every_default_name_instantiates(self):
        names = default_oracle_names()
        assert len(names) == len(ORACLE_FACTORIES)
        for oracle, name in zip(make_oracles(names), names):
            assert oracle.name == name

    def test_expected_families_present(self):
        names = set(default_oracle_names())
        for required in (
            "bound:BiBranch",
            "bound:TraversalSED",
            "bound:Composite",
            "bound:dominance",
            "editdist:metamorphic",
            "metric:bdist",
            "features:packed-l1",
            "store:identity",
            "storage:roundtrip",
            "search:completeness",
            "service:cache-transparency",
        ):
            assert required in names

    def test_unknown_name_rejected(self):
        with pytest.raises(InvalidParameterError, match="unknown oracle"):
            make_oracles(["bound:nope"])

    def test_selection_preserves_order(self):
        picked = make_oracles(["metric:bdist", "bound:BiBranch"])
        assert [o.name for o in picked] == ["metric:bdist", "bound:BiBranch"]


class BrokenCountFilter(BranchCountFilter):
    """A count filter whose query signature inflates one dimension.

    Adding 3 to a vector count inflates the L1 distance and therefore the
    bound — exactly the kind of off-by-N a packed-vector refactor could
    introduce.  The harness must catch it and shrink it to a tiny pair.
    """

    def signature(self, tree):
        packed = super().signature(tree)
        if packed.counts:
            packed.counts[0] += 3
            packed.total += 3
        return packed


class TestDeliberateBreak:
    """The ISSUE acceptance experiment: break a bound, watch it get caught."""

    @pytest.fixture(scope="class")
    def outcome(self):
        corpus = build_corpus(seed=0, budget="small")
        oracle = FilterBoundOracle(BrokenCountFilter, "BrokenCount")
        return oracle, oracle.run(corpus, distance=None)

    def test_violations_detected(self, outcome):
        _, result = outcome
        assert not result.ok
        assert len(result.violations) >= 5

    def test_violation_identifies_the_bound(self, outcome):
        _, result = outcome
        violation = result.violations[0]
        assert violation.oracle == "bound:BrokenCount"
        assert "bound" in violation.message

    def test_shrinks_to_small_counterexample(self, outcome):
        oracle, result = outcome
        violation = result.violations[0]
        shrunk1, shrunk2 = shrink_pair(
            violation.t1, violation.t2, violation.predicate
        )
        assert shrunk1 is not None
        assert shrunk1.size + shrunk2.size <= 8
        assert oracle.violates(shrunk1, shrunk2)

    def test_intact_filter_is_clean_on_same_corpus(self):
        corpus = build_corpus(seed=0, budget="small")
        oracle = FilterBoundOracle(BranchCountFilter, "BiBranchCount")
        assert oracle.run(corpus, distance=None).ok


class TestPairOraclePredicate:
    def test_violates_mirrors_check_pair(self):
        class AlwaysSad(PairOracle):
            name = "test:always"

            def check_pair(self, t1, t2):
                return ("sad", {})

        class NeverSad(PairOracle):
            name = "test:never"

            def check_pair(self, t1, t2):
                return None

        from repro.trees import parse_bracket

        a, b = parse_bracket("a"), parse_bracket("b")
        assert AlwaysSad().violates(a, b)
        assert not NeverSad().violates(a, b)


class TestFilterRegistrationCoverage:
    """Regression for the RL001 findings this linter surfaced: four shipped
    filters (CostScaledFilter and the three histogram ablations) had no
    soundness oracle at all, so `repro verify` never exercised their
    lower-bound contracts."""

    def test_every_previously_unregistered_filter_now_has_an_oracle(self):
        names = set(default_oracle_names())
        for required in (
            "bound:CostScaled",
            "bound:HistoLabel",
            "bound:HistoDegree",
            "bound:HistoHeight",
        ):
            assert required in names

    def test_cost_scaled_oracle_compares_weighted_distance(self):
        # The generic bound:* oracles use the unit-cost reference, which the
        # scaled bound may legitimately exceed — the dedicated oracle must
        # hold against the *weighted* distance on a real corpus.
        corpus = build_corpus(seed=0, budget="small")
        (oracle,) = make_oracles(["bound:CostScaled"])
        assert oracle.run(corpus, distance=None).ok

    def test_cost_scaled_oracle_catches_a_broken_scaling(self):
        from repro.editdist.costs import weighted_costs
        from repro.filters.binary_branch import BinaryBranchFilter
        from repro.filters.cost_scaled import CostScaledFilter
        from repro.verify.oracles import CostScaledBoundOracle

        class OverScaledOracle(CostScaledBoundOracle):
            """Builds a filter that scales by 10 instead of c_min —
            the kind of cost-model drift the oracle exists to catch."""

            def _make_filter(self):
                flt = CostScaledFilter(BinaryBranchFilter(), self._COSTS)
                flt.costs = weighted_costs(
                    2.0, 3.0, 1.5, min_operation_cost=10.0
                )
                return flt

        corpus = build_corpus(seed=0, budget="small")
        assert not OverScaledOracle().run(corpus, distance=None).ok

    def test_histogram_ablation_oracles_pass(self):
        corpus = build_corpus(seed=0, budget="small")
        for oracle in make_oracles(
            ["bound:HistoLabel", "bound:HistoDegree", "bound:HistoHeight"]
        ):
            assert oracle.run(corpus, distance=None).ok
