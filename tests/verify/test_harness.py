"""End-to-end tests for the verification runner and repro files.

``test_small_budget_is_clean`` is the ISSUE's headline acceptance check —
``repro verify --seed 0 --budget small`` finds zero violations — run
through the library entry point so tier-1 exercises every oracle on every
checkout.
"""

import json

import pytest

from repro.exceptions import TreeParseError
from repro.trees import parse_bracket, to_bracket
from repro.verify import (
    Violation,
    load_repro_file,
    replay_repro_file,
    run_verification,
    save_repro_file,
)
from repro.verify.runner import format_replay


@pytest.fixture(scope="module")
def clean_report():
    return run_verification(seed=0, budget="small")


class TestCleanRun:
    def test_small_budget_is_clean(self, clean_report):
        assert clean_report.ok, clean_report.format()
        assert clean_report.violations == []

    def test_every_oracle_ran_and_checked(self, clean_report):
        from repro.verify import default_oracle_names

        assert [o.name for o in clean_report.outcomes] == default_oracle_names()
        for outcome in clean_report.outcomes:
            assert outcome.checks > 0, f"{outcome.name} performed no checks"

    def test_snapshot_structure(self, clean_report):
        snapshot = clean_report.snapshot()
        assert snapshot["ok"] is True
        assert snapshot["seed"] == 0
        assert snapshot["budget"] == "small"
        assert snapshot["violations"] == 0
        assert snapshot["checks"] == sum(
            entry["checks"] for entry in snapshot["oracles"].values()
        )
        json.loads(clean_report.to_json())  # serializable as-is

    def test_format_mentions_every_oracle(self, clean_report):
        text = clean_report.format()
        for outcome in clean_report.outcomes:
            assert outcome.name in text

    def test_oracle_subset_runs_only_requested(self):
        report = run_verification(
            seed=0, budget="small", oracles=["metric:bdist", "bound:SizeDiff"]
        )
        assert [o.name for o in report.outcomes] == [
            "metric:bdist", "bound:SizeDiff",
        ]
        assert report.ok


class TestReproFiles:
    def _violation(self):
        from repro.verify.oracles import FilterBoundOracle
        from tests.verify.test_oracles import BrokenCountFilter

        oracle = FilterBoundOracle(BrokenCountFilter, "BrokenCount")
        t1, t2 = parse_bracket("a(b,c)"), parse_bracket("a(b,c)")
        found = oracle.check_pair(t1, t2)
        assert found is not None
        message, details = found
        return Violation(
            oracle="bound:BiBranchCount",  # replay against the real filter
            message=message,
            t1=t1,
            t2=t2,
            details=details,
        )

    def test_round_trip(self, tmp_path):
        violation = self._violation()
        path = tmp_path / "violation.json"
        save_repro_file(violation, path, seed=0, budget="small")
        document = load_repro_file(path)
        assert document["format"] == "repro-verify"
        assert document["oracle"] == "bound:BiBranchCount"
        assert document["t1"] == to_bracket(violation.t1)

    def test_replay_reports_fixed_invariant(self, tmp_path):
        # the stored pair violates only under the broken subclass, so
        # replaying against the registry's intact filter reports "fixed"
        path = tmp_path / "violation.json"
        save_repro_file(self._violation(), path, seed=0, budget="small")
        replayed = replay_repro_file(path)
        assert replayed.message == ""
        assert "no longer violates" in format_replay(replayed)

    def test_replay_refinds_live_violation(self, tmp_path):
        # an identity pair with a claimed bound violation on the *traversal*
        # oracle cannot exist; craft one that genuinely violates by writing
        # mismatched trees under an oracle that will re-find the issue
        violation = Violation(
            oracle="editdist:metamorphic",
            message="synthetic",
            t1=parse_bracket("a(b)"),
            t2=parse_bracket("a(b)"),
        )
        path = tmp_path / "violation.json"
        save_repro_file(violation, path)
        replayed = replay_repro_file(path)
        # symmetric reference on identical trees: invariant holds
        assert replayed.message == ""

    def test_reject_foreign_json(self, tmp_path):
        path = tmp_path / "foreign.json"
        path.write_text(json.dumps({"format": "something-else"}))
        with pytest.raises(TreeParseError, match="not a repro-verify file"):
            load_repro_file(path)

    def test_reject_future_version(self, tmp_path):
        path = tmp_path / "future.json"
        path.write_text(json.dumps({"format": "repro-verify", "version": 99}))
        with pytest.raises(TreeParseError, match="version"):
            load_repro_file(path)

    def test_stateful_oracle_not_replayable(self, tmp_path):
        violation = Violation(
            oracle="service:cache-transparency",
            message="synthetic",
            t1=parse_bracket("a"),
            t2=parse_bracket("b"),
        )
        path = tmp_path / "violation.json"
        save_repro_file(violation, path)
        with pytest.raises(ValueError, match="stateful"):
            replay_repro_file(path)

    def test_runner_writes_repro_dir_only_on_violation(self, tmp_path):
        repro_dir = tmp_path / "repros"
        report = run_verification(
            seed=0, budget="small", oracles=["metric:bdist"],
            repro_dir=repro_dir,
        )
        assert report.ok
        assert not repro_dir.exists()
