"""Unit tests for the verification corpus builder."""

import pytest

from repro.exceptions import InvalidParameterError
from repro.trees import to_bracket
from repro.verify import BUDGETS, build_corpus


class TestDeterminism:
    def test_same_seed_same_corpus(self):
        a = build_corpus(seed=7, budget="small")
        b = build_corpus(seed=7, budget="small")
        assert [to_bracket(t) for t in a.trees] == [to_bracket(t) for t in b.trees]
        assert [
            (to_bracket(p.t1), to_bracket(p.t2), p.origin, p.max_distance)
            for p in a.pairs
        ] == [
            (to_bracket(p.t1), to_bracket(p.t2), p.origin, p.max_distance)
            for p in b.pairs
        ]
        assert len(a.service_schedule) == len(b.service_schedule)

    def test_different_seeds_differ(self):
        a = build_corpus(seed=0, budget="small")
        b = build_corpus(seed=1, budget="small")
        assert [to_bracket(t) for t in a.trees] != [to_bracket(t) for t in b.trees]


class TestBudgets:
    def test_small_counts_match_spec(self):
        corpus = build_corpus(seed=0, budget="small")
        spec = BUDGETS["small"]
        # +2 degenerate shapes (single node, pure path) appended to the mix
        assert len(corpus.trees) == spec.corpus_trees + 2
        origins = [pair.origin for pair in corpus.pairs]
        assert origins.count("perturbation") == spec.perturbation_pairs
        assert origins.count("random") == spec.random_pairs
        assert origins.count("identity") == 3
        assert len(corpus.service_schedule) == spec.service_steps

    def test_budgets_are_ordered(self):
        small, medium, large = (
            BUDGETS["small"], BUDGETS["medium"], BUDGETS["large"],
        )
        assert small.corpus_trees < medium.corpus_trees < large.corpus_trees
        assert small.max_edit_ops < medium.max_edit_ops < large.max_edit_ops

    def test_unknown_budget_rejected(self):
        with pytest.raises(InvalidParameterError, match="unknown budget"):
            build_corpus(seed=0, budget="galactic")


class TestGroundTruth:
    def test_perturbation_pairs_carry_construction_bound(self):
        corpus = build_corpus(seed=3, budget="small")
        spec = BUDGETS["small"]
        for pair in corpus.pairs:
            if pair.origin == "perturbation":
                assert 1 <= pair.max_distance <= spec.max_edit_ops
            elif pair.origin == "identity":
                assert pair.max_distance == 0
                assert pair.t1 == pair.t2
                assert pair.t1 is not pair.t2  # clone, not alias
            else:
                assert pair.max_distance is None

    def test_degenerate_shapes_present(self):
        corpus = build_corpus(seed=0, budget="small")
        sizes = [tree.size for tree in corpus.trees]
        assert 1 in sizes  # single node
        assert any(
            tree.size == 5 and max(len(n.children) for n in tree.iter_preorder()) == 1
            for tree in corpus.trees
        )  # pure path

    def test_schedule_entries_well_formed(self):
        corpus = build_corpus(seed=5, budget="small")
        for entry in corpus.service_schedule:
            if entry[0] == "add":
                assert len(entry) == 2
            else:
                assert entry[0] == "query"
                assert entry[1] in {"range", "knn"}
