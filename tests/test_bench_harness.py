"""Unit tests for the benchmark harness."""

import random

import pytest

from repro.bench import (
    average_pairwise_distance,
    distance_distribution,
    format_comparison,
    format_distribution,
    format_sweep,
    run_knn_comparison,
    run_range_comparison,
    select_queries,
)
from repro.editdist import tree_edit_distance
from repro.filters import BinaryBranchFilter, HistogramFilter
from repro.trees import parse_bracket

TREES = [
    parse_bracket(t)
    for t in ["a(b,c)", "a(b,d)", "a(b(c,d))", "x(y,z)", "a(b,c,d)"]
]
QUERIES = [TREES[0], TREES[3]]


class TestAverageDistance:
    def test_exact_on_small_datasets(self):
        avg = average_pairwise_distance(TREES)
        pairs = [
            tree_edit_distance(TREES[i], TREES[j])
            for i in range(len(TREES))
            for j in range(i + 1, len(TREES))
        ]
        assert avg == pytest.approx(sum(pairs) / len(pairs))

    def test_sampling_path(self):
        trees = TREES * 5  # 25 trees -> 300 pairs > sample budget
        avg = average_pairwise_distance(trees, sample_pairs=50,
                                        rng=random.Random(0))
        assert 0 < avg < 10

    def test_trivial_datasets(self):
        assert average_pairwise_distance([]) == 0.0
        assert average_pairwise_distance([TREES[0]]) == 0.0


class TestSelectQueries:
    def test_draws_from_dataset(self):
        queries = select_queries(TREES, 3, rng=random.Random(1))
        assert len(queries) == 3
        assert all(any(q is t for t in TREES) for q in queries)

    def test_count_capped(self):
        assert len(select_queries(TREES, 100)) == len(TREES)


class TestComparisons:
    def test_range_comparison(self):
        report = run_range_comparison(
            TREES,
            QUERIES,
            threshold=1,
            filters=[BinaryBranchFilter(), HistogramFilter()],
            dataset_label="unit",
        )
        assert report.dataset_size == len(TREES)
        assert {f.name for f in report.filters} == {"BiBranch", "Histo"}
        assert report.sequential_seconds is not None
        for flt in report.filters:
            assert 0 <= flt.accessed_pct <= 100
            assert flt.result_pct <= flt.accessed_pct

    def test_knn_comparison(self):
        report = run_knn_comparison(
            TREES,
            QUERIES,
            k=2,
            filters=[BinaryBranchFilter()],
            include_sequential=False,
        )
        assert report.sequential_seconds is None
        assert report.mode == "knn(k=2)"
        (bibranch,) = report.filters
        assert bibranch.queries == len(QUERIES)
        assert bibranch.accessed_pct >= 100 * 2 / len(TREES)

    def test_filter_report_lookup(self):
        report = run_range_comparison(
            TREES, QUERIES, 1, [BinaryBranchFilter()], include_sequential=False
        )
        assert report.filter_report("BiBranch").name == "BiBranch"
        with pytest.raises(KeyError):
            report.filter_report("nope")


class TestDistanceDistribution:
    def test_cumulative_curves(self):
        curves = distance_distribution(
            TREES,
            QUERIES,
            {"Edit": tree_edit_distance},
            xs=[0, 1, 2, 100],
        )
        values = curves["Edit"]
        assert values == sorted(values)  # cumulative
        assert values[-1] == 100.0

    def test_lower_bound_curve_above_edit_curve(self):
        flt = BinaryBranchFilter()

        def bound(q, t):
            return flt.bound(flt.signature(q), flt.signature(t))

        xs = [0, 1, 2, 3, 5]
        curves = distance_distribution(
            TREES, QUERIES, {"Edit": tree_edit_distance, "LB": bound}, xs
        )
        for edit_value, lb_value in zip(curves["Edit"], curves["LB"]):
            assert lb_value >= edit_value


class TestFormatting:
    def test_format_comparison(self):
        report = run_range_comparison(TREES, QUERIES, 1, [BinaryBranchFilter()])
        text = format_comparison(report)
        assert "BiBranch" in text
        assert "Sequential" in text

    def test_format_sweep(self):
        report = run_range_comparison(
            TREES, QUERIES, 1, [BinaryBranchFilter()], include_sequential=False
        )
        text = format_sweep("Figure X", [report, report])
        assert text.count("BiBranch") == 2
        assert "Figure X" in text

    def test_format_distribution(self):
        text = format_distribution("Fig 15", [1, 2], {"Edit": [10.0, 20.0]})
        assert "Fig 15" in text
        assert "Edit" in text

    def test_format_accessed_bars(self):
        from repro.bench import format_accessed_bars

        report = run_range_comparison(
            TREES, QUERIES, 1, [BinaryBranchFilter()], include_sequential=False
        )
        text = format_accessed_bars(report)
        assert "BiBranch" in text
        assert "|" in text and "%" in text
        assert "Result" in text
