"""Unit tests for the TreeDatabase facade."""


from repro import TreeDatabase
from repro.filters import HistogramFilter
from repro.trees import parse_bracket

TREES = [parse_bracket(t) for t in ["a(b,c)", "a(b,d)", "x(y)", "a(b(c,d))"]]


class TestConstruction:
    def test_default_filter_is_bibranch(self):
        db = TreeDatabase(TREES)
        assert db.filter.name == "BiBranch"
        assert db.filter.size == len(TREES)

    def test_custom_filter(self):
        db = TreeDatabase(TREES, flt=HistogramFilter())
        assert db.filter.name == "Histo"

    def test_prefitted_filter_not_refitted(self):
        flt = HistogramFilter().fit(TREES)
        signatures_before = list(flt._signatures)
        TreeDatabase(TREES, flt=flt)
        assert flt._signatures == signatures_before

    def test_len_and_getitem(self):
        db = TreeDatabase(TREES)
        assert len(db) == 4
        assert db[2] == parse_bracket("x(y)")

    def test_repr(self):
        assert "TreeDatabase" in repr(TreeDatabase(TREES))


class TestQueries:
    def test_range(self):
        db = TreeDatabase(TREES)
        matches, _ = db.range_query(parse_bracket("a(b,c)"), 1)
        assert [i for i, _ in matches] == [0, 1]

    def test_knn(self):
        db = TreeDatabase(TREES)
        neighbors, _ = db.knn(parse_bracket("a(b,c)"), 2)
        assert neighbors[0] == (0, 0.0)

    def test_sequential_variants_agree(self):
        db = TreeDatabase(TREES)
        query = parse_bracket("a(b)")
        fast, _ = db.range_query(query, 2)
        brute, _ = db.sequential_range_query(query, 2)
        assert fast == brute
        fast_knn, _ = db.knn(query, 2)
        brute_knn, _ = db.sequential_knn(query, 2)
        assert sorted(d for _, d in fast_knn) == sorted(d for _, d in brute_knn)

    def test_distance_computations_tracked(self):
        db = TreeDatabase(TREES)
        assert db.distance_computations == 0
        db.range_query(parse_bracket("a(b,c)"), 1)
        first = db.distance_computations
        assert first >= 1
        db.knn(parse_bracket("a(b,c)"), 1)
        assert db.distance_computations > first

    def test_edit_distance_helper(self):
        db = TreeDatabase(TREES)
        assert db.edit_distance(TREES[0], TREES[1]) == 1.0


class TestInvertedIndex:
    def test_lazy_build(self):
        db = TreeDatabase(TREES)
        assert db._index is None
        index = db.inverted_index
        assert index.tree_count == len(TREES)
        assert db.inverted_index is index  # cached

    def test_eager_build(self):
        db = TreeDatabase(TREES, build_index=True)
        assert db._index is not None

    def test_index_uses_filter_level(self):
        from repro.filters import BinaryBranchFilter

        db = TreeDatabase(TREES, flt=BinaryBranchFilter(q=3))
        assert db.inverted_index.q == 3


class TestIndexedQueries:
    def test_indexed_range_matches_linear(self):
        db = TreeDatabase(TREES)
        query = parse_bracket("a(b,c)")
        for threshold in (0, 1, 3):
            indexed, _ = db.indexed_range_query(query, threshold)
            linear, _ = db.range_query(query, threshold)
            assert indexed == linear

    def test_profiles_cached(self):
        db = TreeDatabase(TREES)
        db.indexed_range_query(parse_bracket("a"), 1)
        first = db._profiles
        db.indexed_range_query(parse_bracket("a"), 2)
        assert db._profiles is first


class TestDynamicInsertion:
    def test_add_returns_index_and_grows(self):
        db = TreeDatabase(TREES)
        index = db.add(parse_bracket("new(tree)"))
        assert index == len(TREES)
        assert len(db) == len(TREES) + 1

    def test_added_tree_found_by_queries(self):
        db = TreeDatabase(TREES)
        tree = parse_bracket("fresh(node,here)")
        index = db.add(tree)
        matches, _ = db.range_query(parse_bracket("fresh(node,here)"), 0)
        assert matches == [(index, 0.0)]
        neighbors, _ = db.knn(parse_bracket("fresh(node,here)"), 1)
        assert neighbors == [(index, 0.0)]

    def test_add_extends_built_index(self):
        db = TreeDatabase(TREES, build_index=True)
        db.add(parse_bracket("brand(new)"))
        assert db.inverted_index.tree_count == len(TREES) + 1
        matches, _ = db.indexed_range_query(parse_bracket("brand(new)"), 0)
        assert matches == [(len(TREES), 0.0)]

    def test_add_invalidates_profile_cache(self):
        db = TreeDatabase(TREES)
        db.indexed_range_query(parse_bracket("a"), 1)
        assert db._profiles is not None
        db.add(parse_bracket("zz"))
        assert db._profiles is None
