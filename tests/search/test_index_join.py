"""Unit and property tests for the index-driven similarity self-join."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import InvertedFileIndex
from repro.datasets import SyntheticSpec, generate_dataset, generate_dblp_dataset
from repro.exceptions import QueryError
from repro.filters import BinaryBranchFilter
from repro.search import similarity_self_join
from repro.search.index_join import indexed_similarity_self_join
from repro.trees import parse_bracket
from tests.strategies import trees

DATASET = [
    parse_bracket(t)
    for t in ["a(b,c)", "a(b,d)", "x(y)", "a(b,c)", "q(r(s))", "a"]
]


def build_index(dataset, q=2):
    index = InvertedFileIndex(q=q)
    index.add_trees(dataset)
    return index


def brute(dataset, threshold):
    flt = BinaryBranchFilter().fit(dataset)
    pairs, _ = similarity_self_join(dataset, threshold, flt)
    return pairs


class TestExactness:
    @pytest.mark.parametrize("threshold", [0, 1, 2, 4])
    @pytest.mark.parametrize("hot_cap", [0, 2, 64])
    @pytest.mark.parametrize("use_positional", [True, False])
    def test_matches_brute_force(self, threshold, hot_cap, use_positional):
        index = build_index(DATASET)
        pairs, _ = indexed_similarity_self_join(
            DATASET, index, threshold,
            hot_cap=hot_cap, use_positional=use_positional,
        )
        assert pairs == brute(DATASET, threshold)

    def test_on_synthetic_data(self):
        spec = SyntheticSpec(size_mean=8, size_stddev=2, label_count=4,
                             decay=0.2)
        dataset = generate_dataset(spec, count=20, seed_count=4, seed=12)
        index = build_index(dataset)
        for threshold in (0, 2, 4):
            pairs, _ = indexed_similarity_self_join(dataset, index, threshold)
            assert pairs == brute(dataset, threshold)

    def test_on_dblp_data(self):
        dataset = generate_dblp_dataset(30, seed=13)
        index = build_index(dataset)
        for threshold in (1, 3):
            pairs, _ = indexed_similarity_self_join(dataset, index, threshold)
            assert pairs == brute(dataset, threshold)

    @given(st.lists(trees(max_leaves=4), min_size=2, max_size=6),
           st.integers(0, 4))
    @settings(max_examples=30, deadline=None)
    def test_matches_brute_force_random(self, dataset, threshold):
        index = build_index(dataset)
        pairs, _ = indexed_similarity_self_join(dataset, index, threshold)
        assert pairs == brute(dataset, threshold)


class TestPruning:
    def test_duplicates_found_with_tiny_work(self):
        index = build_index(DATASET)
        pairs, stats = indexed_similarity_self_join(DATASET, index, 0)
        assert pairs == [(0, 3, 0.0)]
        assert stats.candidates < stats.dataset_size

    def test_hot_cap_zero_still_exact(self):
        """With every list hot, everything funnels through the fallback."""
        index = build_index(DATASET)
        pairs, _ = indexed_similarity_self_join(DATASET, index, 2, hot_cap=0)
        assert pairs == brute(DATASET, 2)


class TestValidation:
    def test_negative_threshold(self):
        index = build_index(DATASET)
        with pytest.raises(QueryError):
            indexed_similarity_self_join(DATASET, index, -1)

    def test_index_mismatch(self):
        index = build_index(DATASET[:3])
        with pytest.raises(QueryError):
            indexed_similarity_self_join(DATASET, index, 1)
