"""Unit and property tests for the multi-step k-NN algorithm (Algorithm 2)."""

import random

import pytest

from repro.datasets import SyntheticSpec, generate_dataset
from repro.exceptions import QueryError
from repro.filters import BinaryBranchFilter, HistogramFilter
from repro.search import knn_query, sequential_knn_query
from repro.trees import parse_bracket

DATASET = [
    parse_bracket(text)
    for text in [
        "a(b,c)",
        "a(b,d)",
        "a(b(c,d),e)",
        "x(y,z)",
        "a",
        "a(b,c,d,e)",
        "q(w(e(r(t))))",
    ]
]


@pytest.fixture
def flt():
    return BinaryBranchFilter().fit(DATASET)


class TestBasics:
    def test_nearest_is_identical_tree(self, flt):
        neighbors, _ = knn_query(DATASET, parse_bracket("a(b,c)"), 1, flt)
        assert neighbors == [(0, 0.0)]

    def test_k_results_returned(self, flt):
        neighbors, _ = knn_query(DATASET, parse_bracket("a(b,c)"), 3, flt)
        assert len(neighbors) == 3
        distances = [d for _, d in neighbors]
        assert distances == sorted(distances)

    def test_k_equal_to_dataset(self, flt):
        neighbors, stats = knn_query(DATASET, parse_bracket("a"), len(DATASET), flt)
        assert len(neighbors) == len(DATASET)
        assert stats.candidates == len(DATASET)

    def test_invalid_k(self, flt):
        with pytest.raises(QueryError):
            knn_query(DATASET, parse_bracket("a"), 0, flt)
        with pytest.raises(QueryError):
            knn_query(DATASET, parse_bracket("a"), len(DATASET) + 1, flt)

    def test_size_mismatch_rejected(self):
        flt = BinaryBranchFilter().fit(DATASET[:3])
        with pytest.raises(QueryError):
            knn_query(DATASET, parse_bracket("a"), 1, flt)

    def test_stats(self, flt):
        _, stats = knn_query(DATASET, parse_bracket("a(b,c)"), 2, flt)
        assert stats.dataset_size == len(DATASET)
        assert 2 <= stats.candidates <= len(DATASET)
        assert stats.results == 2


class TestOptimalMultiStep:
    def test_early_termination_prunes(self, flt):
        """With a query identical to one tree and k=1, refinement should
        stop well before scanning everything."""
        _, stats = knn_query(DATASET, parse_bracket("q(w(e(r(t))))"), 1, flt)
        assert stats.candidates < len(DATASET)

    def test_distance_set_matches_sequential(self, flt):
        """k-NN distances must equal the brute-force k smallest (the member
        set may differ only among equal distances)."""
        for k in range(1, len(DATASET) + 1):
            query = parse_bracket("a(b(c),d)")
            fast, _ = knn_query(DATASET, query, k, flt)
            brute, _ = sequential_knn_query(DATASET, query, k)
            assert sorted(d for _, d in fast) == sorted(d for _, d in brute)

    def test_matches_sequential_on_synthetic_data(self):
        rng = random.Random(5)
        spec = SyntheticSpec(size_mean=10, size_stddev=2, label_count=4, decay=0.15)
        dataset = generate_dataset(spec, count=15, seed_count=4, rng=rng)
        queries = rng.sample(dataset, 4)
        for filter_cls in (BinaryBranchFilter, HistogramFilter):
            flt = filter_cls().fit(dataset)
            for query in queries:
                for k in (1, 3, 5):
                    fast, _ = knn_query(dataset, query, k, flt)
                    brute, _ = sequential_knn_query(dataset, query, k)
                    assert sorted(d for _, d in fast) == sorted(
                        d for _, d in brute
                    )

    def test_results_sorted_by_distance_then_index(self, flt):
        neighbors, _ = knn_query(DATASET, parse_bracket("a(b,c)"), 4, flt)
        keys = [(d, i) for i, d in neighbors]
        assert keys == sorted(keys)
