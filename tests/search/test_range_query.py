"""Unit and property tests for filter-and-refine range queries."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import SyntheticSpec, generate_dataset
from repro.exceptions import QueryError
from repro.filters import BinaryBranchFilter, HistogramFilter, TraversalStringFilter
from repro.search import range_query, sequential_range_query
from repro.trees import parse_bracket
from tests.strategies import trees

DATASET = [
    parse_bracket(text)
    for text in [
        "a(b,c)",
        "a(b,d)",
        "a(b(c,d),e)",
        "x(y,z)",
        "a",
        "a(b,c,d,e)",
        "q(w(e(r(t))))",
    ]
]


@pytest.fixture(params=[BinaryBranchFilter, HistogramFilter, TraversalStringFilter])
def fitted_filter(request):
    return request.param().fit(DATASET)


class TestBasics:
    def test_exact_match_found(self, fitted_filter):
        matches, stats = range_query(DATASET, parse_bracket("a(b,c)"), 0, fitted_filter)
        assert matches == [(0, 0.0)]
        assert stats.results == 1

    def test_radius_one(self, fitted_filter):
        matches, _ = range_query(DATASET, parse_bracket("a(b,c)"), 1, fitted_filter)
        assert [index for index, _ in matches] == [0, 1]

    def test_distances_reported(self, fitted_filter):
        matches, _ = range_query(DATASET, parse_bracket("a(b,c)"), 2, fitted_filter)
        distances = dict(matches)
        assert distances[0] == 0.0
        assert distances[1] == 1.0

    def test_huge_radius_returns_everything(self, fitted_filter):
        matches, stats = range_query(
            DATASET, parse_bracket("a(b,c)"), 100, fitted_filter
        )
        assert len(matches) == len(DATASET)
        assert stats.accessed_percentage == 100.0

    def test_negative_threshold_rejected(self, fitted_filter):
        with pytest.raises(QueryError):
            range_query(DATASET, parse_bracket("a"), -1, fitted_filter)

    def test_unfitted_size_mismatch_rejected(self):
        flt = BinaryBranchFilter().fit(DATASET[:2])
        with pytest.raises(QueryError):
            range_query(DATASET, parse_bracket("a"), 1, flt)

    def test_stats_consistent(self, fitted_filter):
        _, stats = range_query(DATASET, parse_bracket("a(b,c)"), 1, fitted_filter)
        assert stats.dataset_size == len(DATASET)
        assert stats.results <= stats.candidates <= stats.dataset_size
        assert stats.false_positives == stats.candidates - stats.results


class TestCompleteness:
    """The paper's no-false-negatives guarantee, against the brute force."""

    @pytest.mark.parametrize("threshold", [0, 1, 2, 3, 5])
    def test_matches_sequential_scan(self, fitted_filter, threshold):
        query = parse_bracket("a(b(c,d),e)")
        filtered, _ = range_query(DATASET, query, threshold, fitted_filter)
        brute, _ = sequential_range_query(DATASET, query, threshold)
        assert filtered == brute

    @given(st.data())
    @settings(max_examples=15, deadline=None)
    def test_matches_sequential_on_synthetic_data(self, data):
        rng = random.Random(99)
        spec = SyntheticSpec(size_mean=8, size_stddev=2, label_count=4, decay=0.2)
        dataset = generate_dataset(spec, count=12, seed_count=3, rng=rng)
        query = data.draw(st.sampled_from(dataset))
        threshold = data.draw(st.integers(0, 6))
        for filter_cls in (BinaryBranchFilter, HistogramFilter):
            flt = filter_cls().fit(dataset)
            filtered, _ = range_query(dataset, query, threshold, flt)
            brute, _ = sequential_range_query(dataset, query, threshold)
            assert filtered == brute

    @given(trees(max_leaves=6))
    @settings(max_examples=20, deadline=None)
    def test_query_always_finds_itself(self, query):
        dataset = DATASET + [query]
        flt = BinaryBranchFilter().fit(dataset)
        matches, _ = range_query(dataset, query.clone(), 0, flt)
        assert any(index == len(dataset) - 1 for index, _ in matches)


class TestFilterEffectiveness:
    def test_bibranch_prunes_distant_trees(self):
        flt = BinaryBranchFilter().fit(DATASET)
        _, stats = range_query(DATASET, parse_bracket("a(b,c)"), 1, flt)
        # the deep chain and the disjoint-label tree must be filtered out
        assert stats.candidates < len(DATASET)

    def test_zero_radius_accesses_few(self):
        flt = BinaryBranchFilter().fit(DATASET)
        _, stats = range_query(DATASET, parse_bracket("q(w(e(r(t))))"), 0, flt)
        assert stats.candidates <= 2
