"""Unit tests for similarity joins."""

import pytest

from repro.exceptions import QueryError
from repro.filters import BinaryBranchFilter, HistogramFilter
from repro.search import similarity_join, similarity_self_join
from repro.trees import parse_bracket

TREES = [
    parse_bracket(t)
    for t in ["a(b,c)", "a(b,d)", "x(y)", "a(b,c)", "q(r(s))"]
]


def brute_force_self_join(trees, threshold):
    from repro.editdist import tree_edit_distance

    return [
        (i, j, tree_edit_distance(trees[i], trees[j]))
        for i in range(len(trees))
        for j in range(i + 1, len(trees))
        if tree_edit_distance(trees[i], trees[j]) <= threshold
    ]


class TestSelfJoin:
    def test_zero_threshold_finds_duplicates(self):
        flt = BinaryBranchFilter().fit(TREES)
        pairs, _ = similarity_self_join(TREES, 0, flt)
        assert pairs == [(0, 3, 0.0)]

    @pytest.mark.parametrize("threshold", [0, 1, 2, 4])
    @pytest.mark.parametrize("filter_cls", [BinaryBranchFilter, HistogramFilter])
    def test_matches_brute_force(self, threshold, filter_cls):
        flt = filter_cls().fit(TREES)
        pairs, _ = similarity_self_join(TREES, threshold, flt)
        assert pairs == brute_force_self_join(TREES, threshold)

    def test_stats(self):
        flt = BinaryBranchFilter().fit(TREES)
        _, stats = similarity_self_join(TREES, 1, flt)
        n = len(TREES)
        assert stats.dataset_size == n * (n - 1) // 2
        assert stats.results <= stats.candidates <= stats.dataset_size

    def test_filter_prunes_pairs(self):
        flt = BinaryBranchFilter().fit(TREES)
        _, stats = similarity_self_join(TREES, 0, flt)
        assert stats.candidates < stats.dataset_size

    def test_negative_threshold_rejected(self):
        flt = BinaryBranchFilter().fit(TREES)
        with pytest.raises(QueryError):
            similarity_self_join(TREES, -1, flt)

    def test_unfitted_filter_rejected(self):
        with pytest.raises(QueryError):
            similarity_self_join(TREES, 1, BinaryBranchFilter().fit(TREES[:2]))


class TestCrossJoin:
    def test_basic(self):
        left = TREES[:3]
        right = TREES[3:]
        flt_left = BinaryBranchFilter().fit(left)
        flt_right = BinaryBranchFilter().fit(right)
        pairs, stats = similarity_join(left, right, 0, flt_left, flt_right)
        assert pairs == [(0, 0, 0.0)]  # a(b,c) matches its duplicate
        assert stats.dataset_size == len(left) * len(right)

    def test_mismatched_filter_types_rejected(self):
        left, right = TREES[:2], TREES[2:]
        with pytest.raises(QueryError):
            similarity_join(
                left,
                right,
                1,
                BinaryBranchFilter().fit(left),
                HistogramFilter().fit(right),
            )

    def test_completeness(self):
        from repro.editdist import tree_edit_distance

        left, right = TREES[:3], TREES[2:]
        flt_left = HistogramFilter().fit(left)
        flt_right = HistogramFilter().fit(right)
        pairs, _ = similarity_join(left, right, 2, flt_left, flt_right)
        expected = [
            (i, j, tree_edit_distance(left[i], right[j]))
            for i in range(len(left))
            for j in range(len(right))
            if tree_edit_distance(left[i], right[j]) <= 2
        ]
        assert pairs == expected
