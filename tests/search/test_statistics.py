"""Unit tests for search statistics."""

from repro.search import SearchStats


class TestSearchStats:
    def test_accessed_percentage(self):
        stats = SearchStats(dataset_size=200, candidates=10, results=4)
        assert stats.accessed_percentage == 5.0
        assert stats.result_percentage == 2.0
        assert stats.false_positives == 6

    def test_empty_dataset(self):
        stats = SearchStats()
        assert stats.accessed_percentage == 0.0
        assert stats.result_percentage == 0.0

    def test_total_seconds(self):
        stats = SearchStats(filter_seconds=0.25, refine_seconds=0.5)
        assert stats.total_seconds == 0.75

    def test_merge(self):
        a = SearchStats(dataset_size=10, candidates=2, results=1,
                        filter_seconds=0.1, refine_seconds=0.2)
        b = SearchStats(dataset_size=10, candidates=4, results=2,
                        filter_seconds=0.3, refine_seconds=0.4)
        merged = a.merge(b)
        assert merged.dataset_size == 20
        assert merged.candidates == 6
        assert merged.results == 3
        assert merged.filter_seconds == 0.4

    def test_as_dict(self):
        stats = SearchStats(dataset_size=100, candidates=5, results=5)
        data = stats.as_dict()
        assert data["accessed_pct"] == 5.0
        assert data["results"] == 5
        assert "total_seconds" in data

    def test_to_dict_is_json_serialisable(self):
        import json

        stats = SearchStats(dataset_size=100, candidates=5, results=5,
                            filter_seconds=0.1, refine_seconds=0.2)
        data = stats.to_dict()
        assert data == stats.as_dict()  # alias stays in sync
        assert json.loads(json.dumps(data)) == data

    def test_copy_is_independent(self):
        stats = SearchStats(dataset_size=10, candidates=3, results=1)
        duplicate = stats.copy()
        assert duplicate == stats
        duplicate.candidates = 99
        assert stats.candidates == 3
