"""Unit tests for the disk-I/O cost model."""

import pytest

from repro.filters import BinaryBranchFilter
from repro.search import SearchStats, range_query
from repro.search.io_model import DiskModel, IOEstimate
from repro.trees import parse_bracket

TREES = [parse_bracket(t) for t in ["a(b,c)", "a(b,d)", "x(y)", "q(w(e))"]]


class TestPages:
    def test_minimum_one_page(self):
        assert DiskModel().pages_for(1) == 1

    def test_rounding_up(self):
        model = DiskModel(page_bytes=100, bytes_per_node=30)
        assert model.pages_for(4) == 2  # 120 bytes -> 2 pages

    def test_large_collection(self):
        model = DiskModel(page_bytes=8192, bytes_per_node=24)
        assert model.pages_for(100_000) == -(-100_000 * 24 // 8192)


class TestEstimates:
    def test_filtered_query_estimate(self):
        model = DiskModel(seek_penalty=50.0)
        stats = SearchStats(dataset_size=4, candidates=2, results=1)
        estimate = model.estimate(TREES, stats)
        assert estimate.random_reads == 2
        assert estimate.cost_units == estimate.sequential_pages + 2 * 50.0

    def test_sequential_baseline_has_no_seeks(self):
        estimate = DiskModel().sequential_scan_estimate(TREES)
        assert estimate.random_reads == 0
        assert estimate.cost_units == estimate.sequential_pages

    def test_str(self):
        estimate = IOEstimate(3, 2, 203.0)
        text = str(estimate)
        assert "3 sequential" in text and "2 random" in text

    def test_better_filter_means_less_io(self):
        """The paper's §6 claim: pruning power is I/O efficiency."""
        flt = BinaryBranchFilter().fit(TREES)
        model = DiskModel()
        _, tight_stats = range_query(TREES, parse_bracket("a(b,c)"), 0, flt)
        _, loose_stats = range_query(TREES, parse_bracket("a(b,c)"), 10, flt)
        tight = model.estimate(TREES, tight_stats)
        loose = model.estimate(TREES, loose_stats)
        assert tight.cost_units < loose.cost_units

    def test_io_proportional_to_candidates(self):
        model = DiskModel(seek_penalty=100.0)
        few = model.estimate(TREES, SearchStats(dataset_size=4, candidates=1))
        many = model.estimate(TREES, SearchStats(dataset_size=4, candidates=4))
        assert many.cost_units - few.cost_units == pytest.approx(300.0)
