"""Unit and property tests for index-accelerated range queries."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import InvertedFileIndex, branch_vector
from repro.datasets import SyntheticSpec, generate_dataset, generate_dblp_dataset
from repro.exceptions import QueryError
from repro.search import sequential_range_query
from repro.search.index_scan import candidate_overlaps, indexed_range_query
from repro.trees import parse_bracket
from tests.strategies import trees

DATASET = [
    parse_bracket(t)
    for t in ["a(b,c)", "a(b,d)", "a(b(c,d),e)", "x(y,z)", "a", "q(w(e))"]
]


def build_index(dataset, q=2):
    index = InvertedFileIndex(q=q)
    index.add_trees(dataset)
    return index


class TestCandidateOverlaps:
    def test_overlap_values_match_vectors(self):
        index = build_index(DATASET)
        query = parse_bracket("a(b,c)")
        overlaps = candidate_overlaps(index, query)
        query_vector = branch_vector(query)
        for tree_id, overlap in overlaps.items():
            expected = query_vector.overlap(branch_vector(DATASET[tree_id]))
            assert overlap == expected

    def test_disjoint_trees_not_reached(self):
        index = build_index(DATASET)
        overlaps = candidate_overlaps(index, parse_bracket("zzz(yyy)"))
        assert overlaps == {}

    @given(trees(max_leaves=6))
    @settings(max_examples=30, deadline=None)
    def test_overlaps_complete(self, query):
        index = build_index(DATASET)
        overlaps = candidate_overlaps(index, query)
        query_vector = branch_vector(query)
        for tree_id, tree in enumerate(DATASET):
            expected = query_vector.overlap(branch_vector(tree))
            assert overlaps.get(tree_id, 0) == expected


class TestIndexedRangeQuery:
    @pytest.mark.parametrize("threshold", [0, 1, 2, 4, 10])
    @pytest.mark.parametrize("use_positional", [True, False])
    def test_matches_sequential(self, threshold, use_positional):
        index = build_index(DATASET)
        query = parse_bracket("a(b,c)")
        fast, _ = indexed_range_query(
            DATASET, index, query, threshold, use_positional=use_positional
        )
        brute, _ = sequential_range_query(DATASET, query, threshold)
        assert fast == brute

    def test_matches_sequential_on_synthetic(self):
        spec = SyntheticSpec(size_mean=10, size_stddev=2, label_count=4, decay=0.2)
        dataset = generate_dataset(spec, count=25, seed_count=5, seed=11)
        index = build_index(dataset)
        profiles = index.profiles()
        rng = random.Random(3)
        for query in rng.sample(dataset, 3):
            for threshold in (0, 2, 5):
                fast, _ = indexed_range_query(
                    dataset, index, query, threshold, profiles=profiles
                )
                brute, _ = sequential_range_query(dataset, query, threshold)
                assert fast == brute

    def test_matches_sequential_on_dblp(self):
        dataset = generate_dblp_dataset(40, seed=5)
        index = build_index(dataset)
        for threshold in (1, 3):
            fast, _ = indexed_range_query(dataset, index, dataset[0], threshold)
            brute, _ = sequential_range_query(dataset, dataset[0], threshold)
            assert fast == brute

    def test_qlevel_index(self):
        index = build_index(DATASET, q=3)
        query = parse_bracket("a(b,c)")
        fast, _ = indexed_range_query(DATASET, index, query, 1)
        brute, _ = sequential_range_query(DATASET, query, 1)
        assert fast == brute

    def test_prunes_unreached_trees(self):
        index = build_index(DATASET)
        _, stats = indexed_range_query(DATASET, index, parse_bracket("a(b,c)"), 0)
        assert stats.candidates < len(DATASET)

    def test_disjoint_query_zero_candidates_small_tau(self):
        index = build_index(DATASET)
        _, stats = indexed_range_query(
            DATASET, index, parse_bracket("zz(yy,ww)"), 0
        )
        assert stats.candidates == 0

    def test_negative_threshold_rejected(self):
        index = build_index(DATASET)
        with pytest.raises(QueryError):
            indexed_range_query(DATASET, index, parse_bracket("a"), -1)

    def test_size_mismatch_rejected(self):
        index = build_index(DATASET[:3])
        with pytest.raises(QueryError):
            indexed_range_query(DATASET, index, parse_bracket("a"), 1)

    @given(trees(max_leaves=6), st.integers(0, 8))
    @settings(max_examples=40, deadline=None)
    def test_exactness_random_queries(self, query, threshold):
        index = build_index(DATASET)
        fast, _ = indexed_range_query(DATASET, index, query, threshold)
        brute, _ = sequential_range_query(DATASET, query, threshold)
        assert fast == brute
