"""Edge-case and failure-mode tests for the search framework."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.editdist import EditDistanceCounter
from repro.filters import BinaryBranchFilter, HistogramFilter
from repro.search import (
    distance_matrix,
    knn_query,
    range_query,
    sequential_range_query,
)
from repro.trees import TreeNode, parse_bracket
from tests.strategies import trees


class TestSingletonAndDuplicates:
    def test_single_tree_database(self):
        dataset = [parse_bracket("a(b)")]
        flt = BinaryBranchFilter().fit(dataset)
        matches, _ = range_query(dataset, parse_bracket("a(b)"), 0, flt)
        assert matches == [(0, 0.0)]
        neighbors, _ = knn_query(dataset, parse_bracket("z"), 1, flt)
        assert neighbors[0][0] == 0

    def test_all_duplicates(self):
        dataset = [parse_bracket("a(b,c)") for _ in range(5)]
        flt = BinaryBranchFilter().fit(dataset)
        matches, stats = range_query(dataset, parse_bracket("a(b,c)"), 0, flt)
        assert [i for i, _ in matches] == [0, 1, 2, 3, 4]
        neighbors, _ = knn_query(dataset, parse_bracket("a(b,c)"), 3, flt)
        assert [d for _, d in neighbors] == [0.0, 0.0, 0.0]

    def test_knn_deterministic_tie_breaking(self):
        dataset = [parse_bracket(t) for t in ["a(x)", "a(y)", "a(z)"]]
        flt = BinaryBranchFilter().fit(dataset)
        query = parse_bracket("a(w)")
        first, _ = knn_query(dataset, query, 2, flt)
        second, _ = knn_query(dataset, query, 2, flt)
        assert first == second


class TestThresholdShapes:
    def test_fractional_threshold(self):
        dataset = [parse_bracket("a(b)"), parse_bracket("a(c)")]
        flt = BinaryBranchFilter().fit(dataset)
        matches, _ = range_query(dataset, parse_bracket("a(b)"), 0.5, flt)
        assert [i for i, _ in matches] == [0]

    def test_zero_threshold_range(self):
        dataset = [parse_bracket("a"), parse_bracket("b")]
        flt = HistogramFilter().fit(dataset)
        matches, _ = range_query(dataset, parse_bracket("c"), 0, flt)
        assert matches == []

    @given(trees(max_leaves=5), st.floats(0, 6))
    @settings(max_examples=25, deadline=None)
    def test_fractional_thresholds_match_sequential(self, query, threshold):
        dataset = [
            parse_bracket(t) for t in ["a(b,c)", "a", "x(y(z))", "a(b(c))"]
        ]
        flt = BinaryBranchFilter().fit(dataset)
        fast, _ = range_query(dataset, query, threshold, flt)
        brute, _ = sequential_range_query(dataset, query, threshold)
        assert fast == brute


class TestSharedCounter:
    def test_counter_accumulates_across_queries(self):
        dataset = [parse_bracket(t) for t in ["a(b)", "a(c)", "x"]]
        flt = BinaryBranchFilter().fit(dataset)
        counter = EditDistanceCounter()
        range_query(dataset, parse_bracket("a(b)"), 1, flt, counter)
        after_first = counter.calls
        knn_query(dataset, parse_bracket("a(b)"), 1, flt, counter)
        assert counter.calls > after_first

    def test_prepared_cache_shared(self):
        dataset = [parse_bracket("a(b)")]
        counter = EditDistanceCounter()
        prepared = counter.prepared(dataset[0])
        flt = BinaryBranchFilter().fit(dataset)
        range_query(dataset, parse_bracket("a(c)"), 5, flt, counter)
        assert counter.prepared(dataset[0]) is prepared


class TestUnusualLabels:
    def test_unicode_labels(self):
        dataset = [parse_bracket('"日本語"("ε",c)'), parse_bracket("a")]
        flt = BinaryBranchFilter().fit(dataset)
        matches, _ = range_query(dataset, parse_bracket('"日本語"("ε",c)'), 0, flt)
        assert [i for i, _ in matches] == [0]

    def test_labels_colliding_with_epsilon_repr(self):
        # a user label that *prints* like ε must not be confused with the
        # padding sentinel
        from repro.core import branch_distance

        with_eps_label = TreeNode("ε")
        leaf = TreeNode("x")
        assert branch_distance(with_eps_label, leaf) == 2

    def test_non_string_labels_in_search(self):
        dataset = [TreeNode(1, [TreeNode(2)]), TreeNode((3, 4))]
        flt = HistogramFilter().fit(dataset)
        matches, _ = range_query(dataset, TreeNode(1, [TreeNode(2)]), 0, flt)
        assert [i for i, _ in matches] == [0]


class TestWideAndDeepTrees:
    def test_very_wide_tree(self):
        wide = TreeNode("r", [TreeNode(f"c{i}") for i in range(500)])
        other = TreeNode("r", [TreeNode(f"c{i}") for i in range(499)])
        flt = BinaryBranchFilter().fit([wide])
        bounds = flt.bounds(other)
        assert bounds[0] <= 1  # one deletion suffices

    def test_deep_chain_search(self):
        chain = parse_bracket("x(" * 300 + "x" + ")" * 300)
        dataset = [chain, parse_bracket("a")]
        flt = BinaryBranchFilter().fit(dataset)
        matches, _ = range_query(dataset, chain.clone(), 0, flt)
        assert [i for i, _ in matches] == [0]


class TestDistanceMatrix:
    def test_matrix_properties(self):
        dataset = [parse_bracket(t) for t in ["a(b)", "a(c)", "x"]]
        matrix = distance_matrix(dataset)
        assert matrix[0][0] == 0
        assert matrix[0][1] == matrix[1][0] == 1
        assert matrix[0][2] == matrix[2][0]

    def test_matches_pairwise_calls(self):
        from repro.editdist import tree_edit_distance

        dataset = [parse_bracket(t) for t in ["a(b,c)", "x(y)", "a"]]
        matrix = distance_matrix(dataset)
        for i in range(3):
            for j in range(3):
                assert matrix[i][j] == tree_edit_distance(dataset[i], dataset[j])
