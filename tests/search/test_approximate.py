"""Unit tests for embedded-space approximate search."""

import random

import pytest

from repro.datasets import generate_dblp_dataset
from repro.exceptions import QueryError
from repro.filters import BinaryBranchFilter
from repro.search import sequential_knn_query
from repro.search.approximate import approximate_knn_query
from repro.trees import parse_bracket

DATASET = [
    parse_bracket(t) for t in ["a(b,c)", "a(b,d)", "x(y)", "a(b,c)", "q"]
]


class TestBasics:
    def test_identical_tree_ranks_first(self):
        flt = BinaryBranchFilter().fit(DATASET)
        results, stats = approximate_knn_query(
            DATASET, parse_bracket("a(b,c)"), 2, flt
        )
        assert results[0] == (0, 0)
        assert results[1] == (3, 0)
        assert stats.candidates == 0  # no exact distances at all

    def test_returns_bound_values_sorted(self):
        flt = BinaryBranchFilter().fit(DATASET)
        results, _ = approximate_knn_query(DATASET, parse_bracket("a"), 5, flt)
        values = [value for _, value in results]
        assert values == sorted(values)

    def test_invalid_k(self):
        flt = BinaryBranchFilter().fit(DATASET)
        with pytest.raises(QueryError):
            approximate_knn_query(DATASET, parse_bracket("a"), 0, flt)
        with pytest.raises(QueryError):
            approximate_knn_query(DATASET, parse_bracket("a"), 99, flt)

    def test_unfitted_filter(self):
        with pytest.raises(QueryError):
            approximate_knn_query(
                DATASET, parse_bracket("a"), 1,
                BinaryBranchFilter().fit(DATASET[:1]),
            )


class TestRecall:
    def test_high_recall_on_clustered_data(self):
        """On DBLP-like data the embedded ranking recovers most true
        neighbors — the practical content of Figure 15."""
        trees = generate_dblp_dataset(150, seed=3)
        flt = BinaryBranchFilter().fit(trees)
        rng = random.Random(4)
        k = 5
        recalls = []
        for query in rng.sample(trees, 5):
            approx, _ = approximate_knn_query(trees, query, k, flt)
            exact, _ = sequential_knn_query(trees, query, k)
            approx_ids = {index for index, _ in approx}
            exact_ids = {index for index, _ in exact}
            recalls.append(len(approx_ids & exact_ids) / k)
        assert sum(recalls) / len(recalls) >= 0.6
