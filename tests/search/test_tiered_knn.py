"""Unit and property tests for the tiered k-NN variant."""

import random

import pytest

from repro.datasets import SyntheticSpec, generate_dataset, generate_dblp_dataset
from repro.exceptions import QueryError
from repro.filters import BinaryBranchFilter
from repro.search import knn_query, sequential_knn_query
from repro.search.tiered_knn import tiered_knn_query
from repro.trees import parse_bracket

DATASET = [
    parse_bracket(t)
    for t in ["a(b,c)", "a(b,d)", "a(b(c,d),e)", "x(y,z)", "a", "a(b,c,d,e)"]
]


@pytest.fixture
def flt():
    return BinaryBranchFilter().fit(DATASET)


class TestCorrectness:
    def test_matches_plain_knn(self, flt):
        for k in range(1, len(DATASET) + 1):
            query = parse_bracket("a(b(c),d)")
            tiered, _ = tiered_knn_query(DATASET, query, k, flt)
            plain, _ = knn_query(DATASET, query, k, flt)
            assert sorted(d for _, d in tiered) == sorted(d for _, d in plain)

    def test_matches_sequential_on_synthetic(self):
        spec = SyntheticSpec(size_mean=12, size_stddev=2, label_count=5,
                             decay=0.15)
        dataset = generate_dataset(spec, count=30, seed_count=6, seed=8)
        flt = BinaryBranchFilter().fit(dataset)
        rng = random.Random(9)
        for query in rng.sample(dataset, 3):
            for k in (1, 4, 8):
                tiered, _ = tiered_knn_query(dataset, query, k, flt)
                brute, _ = sequential_knn_query(dataset, query, k)
                assert sorted(d for _, d in tiered) == sorted(
                    d for _, d in brute
                )

    def test_matches_sequential_on_dblp(self):
        dataset = generate_dblp_dataset(50, seed=4)
        flt = BinaryBranchFilter().fit(dataset)
        for k in (3, 7):
            tiered, _ = tiered_knn_query(dataset, dataset[5], k, flt)
            brute, _ = sequential_knn_query(dataset, dataset[5], k)
            assert sorted(d for _, d in tiered) == sorted(d for _, d in brute)

    def test_qlevel_filter(self):
        flt = BinaryBranchFilter(q=3).fit(DATASET)
        tiered, _ = tiered_knn_query(DATASET, parse_bracket("a(b,c)"), 2, flt)
        brute, _ = sequential_knn_query(DATASET, parse_bracket("a(b,c)"), 2)
        assert sorted(d for _, d in tiered) == sorted(d for _, d in brute)


class TestValidation:
    def test_invalid_k(self, flt):
        with pytest.raises(QueryError):
            tiered_knn_query(DATASET, parse_bracket("a"), 0, flt)
        with pytest.raises(QueryError):
            tiered_knn_query(DATASET, parse_bracket("a"), 99, flt)

    def test_unfitted_filter(self):
        with pytest.raises(QueryError):
            tiered_knn_query(
                DATASET, parse_bracket("a"), 1, BinaryBranchFilter().fit(DATASET[:2])
            )


class TestEfficiency:
    def test_no_more_refinements_than_count_ordering_needs(self, flt):
        _, stats = tiered_knn_query(DATASET, parse_bracket("a(b,c)"), 1, flt)
        assert stats.candidates <= len(DATASET)
        assert stats.results == 1

    def test_filter_phase_cheaper_than_plain(self):
        """The up-front phase skips the per-object binary search.

        Wall-clock comparisons are noisy, so take the best of three runs
        per strategy and allow 20% slack.
        """
        dataset = generate_dblp_dataset(300, seed=6)
        flt = BinaryBranchFilter().fit(dataset)
        query = dataset[0]
        plain = min(
            knn_query(dataset, query, 5, flt)[1].filter_seconds
            for _ in range(3)
        )
        tiered = min(
            tiered_knn_query(dataset, query, 5, flt)[1].filter_seconds
            for _ in range(3)
        )
        assert tiered <= plain * 1.2
