"""Trace/funnel context propagation across service worker threads (satellite 3).

``ThreadPoolExecutor`` does not propagate :mod:`contextvars` by itself, so the
service copies the caller's context per request and runs each worker inside
it.  These tests pin that behaviour: spans emitted from worker threads must be
parented under the caller's root span, and funnels recorded in workers must
land in the caller's active sink.
"""

import threading

import pytest

from repro.obs import tracing
from repro.obs.funnel import collect_funnels
from repro.obs.tracing import Tracer
from repro.search.database import TreeDatabase
from repro.service import TreeSearchService
from repro.trees import parse_bracket


@pytest.fixture(autouse=True)
def _no_global_tracer():
    tracing.set_tracer(None)
    yield
    tracing.set_tracer(None)


@pytest.fixture
def service():
    trees = [
        parse_bracket("a(b,c)"),
        parse_bracket("a(b,d)"),
        parse_bracket("a(b(e),d)"),
        parse_bracket("x(y,z)"),
        parse_bracket("x(y(w),z(v))"),
        parse_bracket("m"),
    ]
    svc = TreeSearchService(TreeDatabase(trees), max_workers=3, cache_size=0)
    yield svc
    svc.close()


def _queries():
    return [parse_bracket("a(b,c)"), parse_bracket("x(y,z)"), parse_bracket("m")]


def test_batch_range_spans_parented_under_caller_root(service):
    tracer = tracing.set_tracer(Tracer())
    with tracing.span("test.batch") as root:
        service.batch_range(_queries(), threshold=1.0)
    spans = tracer.finished_spans()
    serve_spans = [s for s in spans if s.name == "service.serve"]
    assert len(serve_spans) == 3
    for span in serve_spans:
        assert span.trace_id == root.trace_id
        assert span.parent_id == root.span_id
    # worker spans really ran off the caller's thread (pool width 3 > 1 job)
    thread_ids = {s.thread_id for s in serve_spans}
    assert thread_ids  # at least one worker thread recorded
    assert all(tid != 0 for tid in thread_ids)


def test_batch_knn_child_spans_cross_the_thread_hop(service):
    tracer = tracing.set_tracer(Tracer())
    with tracing.span("test.batch") as root:
        caller_thread = threading.get_ident()
        service.batch_knn(_queries(), k=2)
    spans = tracer.finished_spans()
    assert all(s.trace_id == root.trace_id for s in spans)
    # deeper spans (search/editdist) emitted inside workers chain up to
    # service.serve, which chains up to the test root
    serve_ids = {s.span_id for s in spans if s.name == "service.serve"}
    nested = [s for s in spans if s.parent_id in serve_ids]
    assert nested, "expected search spans nested under service.serve"
    worker_threads = {s.thread_id for s in spans if s.name == "service.serve"}
    assert worker_threads != {caller_thread} or service.max_workers == 1


def test_batch_without_root_span_still_traces(service):
    tracer = tracing.set_tracer(Tracer())
    service.batch_range(_queries(), threshold=1.0)
    serve_spans = [s for s in tracer.finished_spans() if s.name == "service.serve"]
    assert len(serve_spans) == 3
    assert all(s.parent_id is None for s in serve_spans)


def test_funnel_sink_collects_from_worker_threads(service):
    with collect_funnels() as sink:
        service.batch_range(_queries(), threshold=1.0)
        service.batch_knn(_queries(), k=2)
    assert len(sink.funnels) == 6
    kinds = sorted(f.kind for f in sink.funnels)
    assert kinds == ["knn"] * 3 + ["range"] * 3
    for funnel in sink.funnels:
        assert funnel.check_invariants() == []


def test_sequential_and_batch_traces_are_equivalent(service):
    """The thread hop must not change what gets measured, only where."""
    tracer = tracing.set_tracer(Tracer())
    for query in _queries():
        service.range(query, threshold=1.0)
    sequential_names = sorted(s.name for s in tracer.finished_spans())
    tracer.clear()
    service.batch_range(_queries(), threshold=1.0)
    batch_names = sorted(s.name for s in tracer.finished_spans())
    assert batch_names == sequential_names
