"""The sampling profiler: span attribution, backends, export, overhead."""

from __future__ import annotations

import signal
import threading
import time

import pytest

from repro.datasets import generate_dataset, parse_spec
from repro.filters.binary_branch import BinaryBranchFilter
from repro.obs import SamplingProfiler, Tracer, get_profiler, profiling_enabled, set_tracer
from repro.obs.profile import NO_SPAN, PROFILE_FORMAT, PROFILE_VERSION
from repro.obs.tracing import span
from repro.search.range_query import range_query


@pytest.fixture
def corpus():
    spec = parse_spec("N{3,0.5}N{20,2}L6D0.05")
    return generate_dataset(spec, count=30, seed=7)


@pytest.fixture
def traced():
    tracer = Tracer(sample_rate=1.0)
    set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(None)


class TestLifecycle:
    def test_enabled_flag_follows_start_stop(self):
        profiler = SamplingProfiler(interval=0.0, mode="setprofile")
        assert not profiling_enabled()
        profiler.start()
        try:
            assert profiling_enabled()
            assert get_profiler() is profiler
        finally:
            profiler.stop()
        assert not profiling_enabled()
        assert get_profiler() is None

    def test_double_start_rejected(self):
        profiler = SamplingProfiler(interval=0.0, mode="setprofile")
        with profiler:
            with pytest.raises(RuntimeError, match="already"):
                profiler.start()
            other = SamplingProfiler(interval=0.0, mode="setprofile")
            with pytest.raises(RuntimeError, match="another profiler"):
                other.start()

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            SamplingProfiler(interval=-1)
        with pytest.raises(ValueError):
            SamplingProfiler(mode="perf")
        with pytest.raises(ValueError):
            SamplingProfiler(timer="gps")
        with pytest.raises(ValueError):
            SamplingProfiler(max_samples=0)

    def test_auto_mode_with_zero_interval_is_setprofile(self):
        with SamplingProfiler(interval=0.0) as profiler:
            assert profiler.mode == "setprofile"


def _busy(n=4000):
    total = 0
    for i in range(n):
        total += i * i
    return total


class TestSpanAttribution:
    def test_samples_keyed_on_span_path(self):
        with SamplingProfiler(interval=0.0, mode="setprofile") as profiler:
            tracer = Tracer(sample_rate=1.0)
            set_tracer(tracer)
            try:
                with span("outer"):
                    with span("inner"):
                        _busy()
            finally:
                set_tracer(None)
        by_path = profiler.by_span_path()
        assert "outer/inner" in by_path
        assert by_path["outer/inner"] > 0

    def test_no_span_samples_use_sentinel(self):
        with SamplingProfiler(interval=0.0, mode="setprofile") as profiler:
            _busy()
        assert set(profiler.by_span_path()) == {NO_SPAN}

    def test_search_samples_attribute_to_search_span(self, corpus, traced):
        """>= 90% of samples taken during a range query land under the
        ``search.range`` span path (the rest is harness machinery)."""
        flt = BinaryBranchFilter().fit(corpus)
        with SamplingProfiler(interval=0.0, mode="setprofile") as profiler:
            range_query(corpus, corpus[0], 2.0, flt)
        by_path = profiler.by_span_path()
        total = sum(by_path.values())
        attributed = sum(
            count
            for path, count in by_path.items()
            if path.startswith("search.range")
        )
        assert total > 0
        assert attributed / total >= 0.9
        # the cascade's inner spans appear as deeper paths
        assert any("/" in path for path in by_path if path != NO_SPAN)


class TestAnswersUnchanged:
    def test_profiling_never_changes_answers(self, corpus):
        flt = BinaryBranchFilter().fit(corpus)
        reference, ref_stats = range_query(corpus, corpus[0], 2.0, flt)
        with SamplingProfiler(interval=0.0, mode="setprofile"):
            profiled, prof_stats = range_query(corpus, corpus[0], 2.0, flt)
        assert profiled == reference
        assert prof_stats.candidates == ref_stats.candidates


class TestSignalBackend:
    def test_signal_mode_samples_and_restores_handler(self):
        if not hasattr(signal, "setitimer"):
            pytest.skip("POSIX-only")
        before = signal.getsignal(signal.SIGPROF)
        with SamplingProfiler(interval=0.001, mode="signal", timer="cpu") as profiler:
            assert profiler.mode == "signal"
            deadline = time.time() + 2.0
            while profiler.total == 0 and time.time() < deadline:
                _busy(20000)
        assert profiler.total > 0
        assert signal.getsignal(signal.SIGPROF) == before

    def test_signal_mode_rejects_zero_interval(self):
        with pytest.raises(ValueError, match="positive interval"):
            SamplingProfiler(interval=0.0, mode="signal").start()

    def test_signal_mode_rejects_worker_thread(self):
        if not hasattr(signal, "setitimer"):
            pytest.skip("POSIX-only")
        errors = []

        def _try():
            try:
                SamplingProfiler(interval=0.01, mode="signal").start()
            except RuntimeError as error:
                errors.append(str(error))

        worker = threading.Thread(target=_try)
        worker.start()
        worker.join()
        assert errors and "main thread" in errors[0]


class TestBounds:
    def test_max_samples_caps_distinct_keys(self):
        profiler = SamplingProfiler(interval=0.0, mode="setprofile", max_samples=1)
        with profiler:
            with span("a"):
                _busy(100)
            _busy(100)
        assert len(profiler.samples()) == 1
        assert profiler.dropped > 0

    def test_clear_resets(self):
        with SamplingProfiler(interval=0.0, mode="setprofile") as profiler:
            _busy(100)
        assert profiler.total > 0
        profiler.clear()
        assert profiler.total == 0
        assert profiler.samples() == {}


class TestExport:
    def test_collapsed_format(self):
        with SamplingProfiler(interval=0.0, mode="setprofile") as profiler:
            tracer = Tracer(sample_rate=1.0)
            set_tracer(tracer)
            try:
                with span("outer"):
                    with span("inner"):
                        _busy()
            finally:
                set_tracer(None)
        lines = profiler.collapsed().splitlines()
        assert lines
        for line in lines:
            stack, _, count = line.rpartition(" ")
            assert int(count) > 0
            assert stack
        # span paths become leading frames, '/' folded to ';'
        assert any(line.startswith("outer;inner;") for line in lines)

    def test_to_dict_schema(self):
        with SamplingProfiler(interval=0.0, mode="setprofile") as profiler:
            _busy(100)
        document = profiler.to_dict()
        assert document["format"] == PROFILE_FORMAT
        assert document["version"] == PROFILE_VERSION
        assert document["mode"] == "setprofile"
        assert document["total_samples"] == profiler.total
        record = document["samples"][0]
        assert {"span_path", "frames", "count"} <= set(record)


class TestOverhead:
    def test_disabled_profiler_is_noop_for_search(self, corpus):
        """With no profiler installed, the search loop pays nothing for the
        profiling subsystem: the hot path never calls into repro.obs.profile.
        Pinned by timing a search loop before/after an install/uninstall
        cycle — min-of-N keeps CI jitter out; the 1.05x bound is the
        satellite's <= 5% requirement with margin for timer noise."""
        flt = BinaryBranchFilter().fit(corpus)
        query = corpus[0]

        def loop_seconds():
            best = float("inf")
            for _ in range(5):
                start = time.perf_counter()
                range_query(corpus, query, 2.0, flt)
                best = min(best, time.perf_counter() - start)
            return best

        loop_seconds()  # warm caches
        before = loop_seconds()
        SamplingProfiler(interval=0.0, mode="setprofile").start().stop()
        after = loop_seconds()
        assert after <= before * 1.05 + 0.002
        # and truly nothing is installed
        assert not profiling_enabled()
        assert sys_getprofile_is_clear()


def sys_getprofile_is_clear():
    import sys

    return sys.getprofile() is None
