"""Unit tests for the process-wide metrics registry."""

import json

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    HistogramState,
    MetricsRegistry,
    get_registry,
)


class TestCounter:
    def test_inc_and_value(self):
        counter = Counter("hits_total")
        counter.inc()
        counter.inc(2.5)
        assert counter.value() == 3.5

    def test_rejects_negative(self):
        counter = Counter("hits_total")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_labelled_series_are_independent(self):
        counter = Counter("queries_total", labelnames=("kind",))
        counter.inc(kind="range")
        counter.inc(kind="range")
        counter.inc(kind="knn")
        assert counter.value(kind="range") == 2
        assert counter.value(kind="knn") == 1

    def test_wrong_label_set_rejected(self):
        counter = Counter("queries_total", labelnames=("kind",))
        with pytest.raises(ValueError):
            counter.inc(flavor="range")
        with pytest.raises(ValueError):
            counter.inc()

    def test_invalid_names_rejected(self):
        with pytest.raises(ValueError):
            Counter("bad name")
        with pytest.raises(ValueError):
            Counter("fine", labelnames=("bad-label",))


class TestGauge:
    def test_up_down_set(self):
        gauge = Gauge("queue_depth")
        gauge.inc(5)
        gauge.dec(2)
        assert gauge.value() == 3
        gauge.set(-7)
        assert gauge.value() == -7


class TestHistogramState:
    def test_identical_to_latency_histogram_contract(self):
        state = HistogramState()
        for value in (0.001, 0.01, 0.1):
            state.record(value)
        assert state.total == 3
        assert state.sum == pytest.approx(0.111)
        data = state.to_dict()
        assert data["count"] == 3
        assert data["min_seconds"] == 0.001
        assert json.loads(json.dumps(data)) == data

    def test_quantiles_monotone(self):
        state = HistogramState()
        for i in range(1, 100):
            state.record(i / 1000.0)
        p50, p90, p99 = (state.quantile(p) for p in (50, 90, 99))
        assert state.min <= p50 <= p90 <= p99 <= state.max


class TestHistogramInstrument:
    def test_labelled_observations(self):
        histogram = Histogram("latency_seconds", labelnames=("kind",))
        histogram.observe(0.01, kind="range")
        histogram.observe(0.02, kind="range")
        histogram.observe(0.5, kind="knn")
        assert histogram.state(kind="range").total == 2
        assert histogram.state(kind="knn").total == 1

    def test_custom_bounds(self):
        histogram = Histogram("x_seconds", bounds=(1.0, 2.0))
        histogram.observe(1.5)
        assert histogram.state().counts == [0, 1, 0]


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        first = registry.counter("hits_total", "help text")
        second = registry.counter("hits_total")
        assert first is second
        assert len(registry) == 1

    def test_type_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x_total")
        with pytest.raises(ValueError):
            registry.gauge("x_total")

    def test_label_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x_total", labelnames=("kind",))
        with pytest.raises(ValueError):
            registry.counter("x_total", labelnames=("phase",))

    def test_contains_and_get(self):
        registry = MetricsRegistry()
        counter = registry.counter("x_total")
        assert "x_total" in registry
        assert registry.get("x_total") is counter
        assert registry.get("missing") is None

    def test_reset_keeps_registrations(self):
        registry = MetricsRegistry()
        counter = registry.counter("x_total")
        counter.inc(4)
        registry.reset()
        assert registry.get("x_total") is counter
        assert counter.value() == 0

    def test_snapshot_and_json(self):
        registry = MetricsRegistry()
        registry.counter("hits_total", "hits").inc(2)
        registry.histogram("lat_seconds", labelnames=("kind",)).observe(
            0.1, kind="range"
        )
        snapshot = json.loads(registry.to_json())
        assert snapshot["hits_total"]["value"] == 2
        assert snapshot["hits_total"]["type"] == "counter"
        assert snapshot["lat_seconds"]["value"]["range"]["count"] == 1

    def test_default_registry_is_shared(self):
        assert get_registry() is get_registry()


class TestPrometheusText:
    def test_counter_exposition(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_hits_total", "Cache hits.", ("kind",))
        counter.inc(3, kind="range")
        text = registry.prometheus_text()
        assert "# HELP repro_hits_total Cache hits." in text
        assert "# TYPE repro_hits_total counter" in text
        assert 'repro_hits_total{kind="range"} 3.0' in text
        assert text.endswith("\n")

    def test_unlabelled_counter_exposes_zero(self):
        registry = MetricsRegistry()
        registry.counter("repro_errors_total")
        assert "repro_errors_total 0.0" in registry.prometheus_text()

    def test_label_value_escaping(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_x_total", labelnames=("name",))
        counter.inc(name='we"ird\\la\nbel')
        text = registry.prometheus_text()
        assert 'name="we\\"ird\\\\la\\nbel"' in text

    def test_histogram_buckets_cumulative_with_inf(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("repro_lat_seconds", bounds=(0.1, 1.0))
        histogram.observe(0.05)
        histogram.observe(0.5)
        histogram.observe(5.0)
        text = registry.prometheus_text()
        assert '# TYPE repro_lat_seconds histogram' in text
        assert 'repro_lat_seconds_bucket{le="0.1"} 1' in text
        assert 'repro_lat_seconds_bucket{le="1.0"} 2' in text
        assert 'repro_lat_seconds_bucket{le="+Inf"} 3' in text
        assert "repro_lat_seconds_count 3" in text
        assert "repro_lat_seconds_sum 5.55" in text

    def test_exposition_parses_line_by_line(self):
        """Every non-comment line must be `name{labels} value`."""
        registry = MetricsRegistry()
        registry.counter("repro_a_total", "a", ("k",)).inc(k="v")
        registry.gauge("repro_g", "g").set(2.5)
        registry.histogram("repro_h_seconds", "h").observe(0.01)
        for line in registry.prometheus_text().splitlines():
            if not line or line.startswith("#"):
                continue
            name_part, value_part = line.rsplit(" ", 1)
            assert name_part.startswith("repro_")
            float(value_part)  # must parse
