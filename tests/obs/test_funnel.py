"""Unit tests for funnel telemetry: stages, invariants, aggregation."""

import json

import pytest

from repro.filters import (
    BranchCountFilter,
    HistogramFilter,
    MaxCompositeFilter,
    SizeDifferenceFilter,
)
from repro.filters.binary_branch import BinaryBranchFilter
from repro.obs.funnel import (
    FilterFunnel,
    FunnelStage,
    active_sink,
    collect_funnels,
)
from repro.search.knn import knn_query
from repro.search.range_query import range_query
from repro.search.sequential import sequential_range_query
from repro.trees import parse_bracket


@pytest.fixture
def trees():
    return [
        parse_bracket("a(b,c)"),
        parse_bracket("a(b,d)"),
        parse_bracket("a(b(e),d)"),
        parse_bracket("x(y,z)"),
        parse_bracket("x(y(w),z(v))"),
        parse_bracket("m"),
    ]


class TestFunnelRecord:
    def test_stage_arithmetic(self):
        stage = FunnelStage("count", entered=100, survivors=25, seconds=0.5)
        assert stage.refuted == 75
        assert stage.selectivity == 0.25

    def test_survivor_counts_and_false_positives(self):
        funnel = FilterFunnel(
            kind="range",
            corpus_size=100,
            stages=[FunnelStage("a", 100, 40), FunnelStage("b", 40, 10)],
            refined=10,
            results=3,
        )
        assert funnel.survivor_counts() == [100, 40, 10, 10, 3]
        assert funnel.false_positives == 7
        assert funnel.survivors == 10
        assert funnel.check_invariants() == []

    def test_invariant_violations_detected(self):
        growing = FilterFunnel(
            kind="range",
            corpus_size=10,
            stages=[FunnelStage("bad", 10, 12)],
            refined=12,
            results=1,
        )
        assert growing.check_invariants()
        refine_overflow = FilterFunnel(
            kind="range", corpus_size=10, stages=[], refined=11, results=1
        )
        assert refine_overflow.check_invariants()
        result_overflow = FilterFunnel(
            kind="range", corpus_size=10, stages=[], refined=5, results=6
        )
        assert result_overflow.check_invariants()

    def test_to_dict_serialisable_and_table_renders(self):
        funnel = FilterFunnel(
            kind="range",
            corpus_size=10,
            stages=[FunnelStage("count", 10, 4, 0.001)],
            refined=4,
            results=2,
            refine_seconds=0.01,
            parameter=2.0,
        )
        data = funnel.to_dict()
        assert json.loads(json.dumps(data)) == data
        table = funnel.format_table()
        assert "corpus" in table and "filter:count" in table and "refine" in table


class TestCollection:
    def test_no_sink_outside_context(self, trees):
        assert active_sink() is None
        flt = BinaryBranchFilter().fit(trees)
        _, stats = range_query(trees, trees[0], 1.0, flt)
        assert stats.funnel is None

    def test_range_query_records_funnel(self, trees):
        flt = BinaryBranchFilter().fit(trees)
        with collect_funnels() as sink:
            matches, stats = range_query(trees, trees[0], 1.0, flt)
        assert len(sink.funnels) == 1
        funnel = sink.funnels[0]
        assert funnel is stats.funnel
        assert funnel.kind == "range"
        assert funnel.corpus_size == len(trees)
        assert funnel.refined == stats.candidates
        assert funnel.results == len(matches)
        assert funnel.check_invariants() == []

    def test_staged_cascade_matches_direct_refutation(self, trees):
        """The observed (staged) filter path keeps exactly the same
        survivors as the unobserved one-pass path."""
        flt = MaxCompositeFilter(
            [BranchCountFilter(), SizeDifferenceFilter(), HistogramFilter()]
        ).fit(trees)
        query = trees[2]
        for threshold in (0.0, 1.0, 2.0, 4.0):
            plain_matches, plain_stats = range_query(trees, query, threshold, flt)
            with collect_funnels() as sink:
                observed_matches, observed_stats = range_query(
                    trees, query, threshold, flt
                )
            assert observed_matches == plain_matches
            assert observed_stats.candidates == plain_stats.candidates
            funnel = sink.funnels[0]
            assert funnel.check_invariants() == []
            # one stage per composite child, in order
            assert len(funnel.stages) == 3
            assert funnel.survivors == plain_stats.candidates

    def test_knn_funnel(self, trees):
        flt = BinaryBranchFilter().fit(trees)
        with collect_funnels() as sink:
            matches, stats = knn_query(trees, trees[0], 2, flt)
        funnel = sink.funnels[0]
        assert funnel.kind == "knn"
        assert funnel.refined == stats.candidates
        assert funnel.results == len(matches) == 2
        assert funnel.check_invariants() == []

    def test_sequential_funnel_refines_everything(self, trees):
        with collect_funnels() as sink:
            _, stats = sequential_range_query(trees, trees[0], 1.0)
        funnel = sink.funnels[0]
        assert funnel.stages == []
        assert funnel.refined == len(trees)
        assert funnel.check_invariants() == []
        assert stats.funnel is funnel

    def test_stats_dict_carries_funnel_only_when_collected(self, trees):
        flt = BinaryBranchFilter().fit(trees)
        _, cold = range_query(trees, trees[0], 1.0, flt)
        assert "funnel" not in cold.to_dict()
        with collect_funnels():
            _, warm = range_query(trees, trees[0], 1.0, flt)
        assert warm.to_dict()["funnel"]["kind"] == "range"

    def test_nested_collection_scopes(self, trees):
        flt = BinaryBranchFilter().fit(trees)
        with collect_funnels() as outer:
            with collect_funnels() as inner:
                range_query(trees, trees[0], 1.0, flt)
            range_query(trees, trees[0], 1.0, flt)
        assert len(inner.funnels) == 1
        assert len(outer.funnels) == 1


class TestAggregate:
    def test_aggregate_groups_by_kind_and_stage(self, trees):
        flt = BinaryBranchFilter().fit(trees)
        with collect_funnels() as sink:
            for query in trees[:3]:
                range_query(trees, query, 1.0, flt)
                knn_query(trees, query, 2, flt)
        aggregate = sink.aggregate()
        summary = aggregate.to_dict()
        assert summary["queries"] == 6
        assert set(summary["kinds"]) == {"range", "knn"}
        range_entry = summary["kinds"]["range"]
        assert range_entry["queries"] == 3
        assert range_entry["corpus_considered"] == 3 * len(trees)
        assert range_entry["refined"] <= range_entry["corpus_considered"]
        assert range_entry["results"] <= range_entry["refined"]
        assert 0.0 <= range_entry["refined_fraction"] <= 1.0
        assert json.loads(json.dumps(summary)) == summary

    def test_aggregate_table_renders(self, trees):
        flt = BinaryBranchFilter().fit(trees)
        with collect_funnels() as sink:
            range_query(trees, trees[0], 1.0, flt)
        table = sink.aggregate().format_table()
        assert "range" in table and "refine" in table

    def test_empty_aggregate(self):
        with collect_funnels() as sink:
            pass
        assert sink.aggregate().format_table() == "(no funnels collected)"
