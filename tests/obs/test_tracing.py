"""Unit tests for the span tracing layer."""

import json
import threading

import pytest

from repro.obs import tracing
from repro.obs.tracing import NOOP_SPAN, Tracer


@pytest.fixture(autouse=True)
def _no_global_tracer():
    """Every test starts and ends with tracing uninstalled."""
    tracing.set_tracer(None)
    yield
    tracing.set_tracer(None)


class TestDisabled:
    def test_module_span_returns_the_noop_singleton(self):
        assert tracing.span("anything", key=1) is NOOP_SPAN

    def test_noop_span_is_inert(self):
        with tracing.span("x") as sp:
            assert sp is NOOP_SPAN
            assert sp.set(a=1) is NOOP_SPAN
        assert tracing.enabled() is False
        assert tracing.current_span() is None


class TestSpans:
    def test_parent_child_ids(self):
        tracer = tracing.set_tracer(Tracer())
        with tracing.span("root", size=3) as root:
            with tracing.span("child") as child:
                assert child.parent_id == root.span_id
                assert child.trace_id == root.trace_id
            with tracing.span("sibling") as sibling:
                assert sibling.parent_id == root.span_id
        spans = tracer.finished_spans()
        assert [s.name for s in spans] == ["child", "sibling", "root"]
        assert spans[-1].parent_id is None

    def test_attributes_via_kwargs_and_set(self):
        tracer = tracing.set_tracer(Tracer())
        with tracing.span("op", candidates=7) as sp:
            sp.set(results=2)
        record = tracer.finished_spans()[0]
        assert record.attributes == {"candidates": 7, "results": 2}

    def test_durations_are_monotone_and_nested(self):
        tracer = tracing.set_tracer(Tracer())
        with tracing.span("outer"):
            with tracing.span("inner"):
                pass
        inner, outer = tracer.finished_spans()
        assert outer.duration >= inner.duration >= 0.0
        assert outer.start <= inner.start
        assert inner.end <= outer.end

    def test_exception_is_recorded_and_propagates(self):
        tracer = tracing.set_tracer(Tracer())
        with pytest.raises(RuntimeError):
            with tracing.span("boom"):
                raise RuntimeError("kaput")
        record = tracer.finished_spans()[0]
        assert record.error == "RuntimeError: kaput"

    def test_current_span_tracks_nesting(self):
        tracing.set_tracer(Tracer())
        assert tracing.current_span() is None
        with tracing.span("outer") as outer:
            assert tracing.current_span() is outer
            with tracing.span("inner") as inner:
                assert tracing.current_span() is inner
            assert tracing.current_span() is outer
        assert tracing.current_span() is None

    def test_thread_id_recorded(self):
        tracer = tracing.set_tracer(Tracer())
        with tracing.span("here"):
            pass
        assert tracer.finished_spans()[0].thread_id == threading.get_ident()


class TestSampling:
    def test_rate_zero_records_nothing(self):
        tracer = tracing.set_tracer(Tracer(sample_rate=0.0))
        for _ in range(10):
            with tracing.span("root"):
                with tracing.span("child") as child:
                    assert child is NOOP_SPAN
        assert tracer.finished_spans() == []

    def test_rate_one_records_everything(self):
        tracer = tracing.set_tracer(Tracer(sample_rate=1.0))
        for _ in range(5):
            with tracing.span("root"):
                pass
        assert len(tracer.finished_spans()) == 5

    def test_sampling_is_per_trace_not_per_span(self):
        tracer = tracing.set_tracer(Tracer(sample_rate=0.5, seed=42))
        for _ in range(50):
            with tracing.span("root"):
                with tracing.span("child"):
                    pass
        spans = tracer.finished_spans()
        # traces are kept or dropped whole: every kept root has its child
        roots = [s for s in spans if s.parent_id is None]
        children = [s for s in spans if s.parent_id is not None]
        assert 0 < len(roots) < 50
        assert len(children) == len(roots)

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            Tracer(sample_rate=1.5)


class TestBuffer:
    def test_max_spans_drops_and_counts(self):
        tracer = tracing.set_tracer(Tracer(max_spans=3))
        for _ in range(5):
            with tracing.span("op"):
                pass
        assert len(tracer.finished_spans()) == 3
        assert tracer.dropped == 2
        assert "2 spans dropped" in tracer.format_tree()

    def test_clear(self):
        tracer = tracing.set_tracer(Tracer(max_spans=1))
        for _ in range(2):
            with tracing.span("op"):
                pass
        tracer.clear()
        assert tracer.finished_spans() == []
        assert tracer.dropped == 0


class TestExport:
    def _trace_something(self) -> Tracer:
        tracer = tracing.set_tracer(Tracer())
        with tracing.span("root", flavor="test"):
            with tracing.span("leaf", n=3):
                pass
        return tracer

    def test_json_round_trip(self):
        tracer = self._trace_something()
        decoded = json.loads(tracer.to_json())
        assert decoded["format"] == "repro-trace"
        assert decoded["version"] == 1
        assert len(decoded["spans"]) == 2
        names = {record["name"] for record in decoded["spans"]}
        assert names == {"root", "leaf"}

    def test_chrome_trace_shape(self):
        tracer = self._trace_something()
        document = tracer.to_chrome_trace()
        assert document["displayTimeUnit"] == "ms"
        events = document["traceEvents"]
        assert len(events) == 2
        for event in events:
            assert event["ph"] == "X"
            assert event["ts"] >= 0.0
            assert event["dur"] >= 0.0
            assert event["cat"] == "repro"
        # must serialise cleanly — that is the whole point of the format
        json.dumps(document)

    def test_chrome_trace_args_are_primitive(self):
        tracer = tracing.set_tracer(Tracer())
        with tracing.span("op", obj=object(), n=1):
            pass
        (event,) = tracer.to_chrome_trace()["traceEvents"]
        assert event["args"]["n"] == 1
        assert isinstance(event["args"]["obj"], str)

    def test_format_tree_renders_hierarchy(self):
        tracer = self._trace_something()
        rendered = tracer.format_tree()
        lines = rendered.splitlines()
        assert lines[0].startswith("root")
        assert "└─ leaf" in rendered
        assert "[n=3]" in rendered

    def test_format_tree_empty(self):
        tracer = tracing.set_tracer(Tracer())
        assert tracer.format_tree() == "(no spans recorded)"


class TestSpanPaths:
    """Root-to-leaf span paths — the profiler's sample keys."""

    def test_root_path_is_its_name(self):
        tracer = tracing.set_tracer(Tracer())
        with tracing.span("search.range"):
            pass
        assert tracer.finished_spans()[0].path == "search.range"

    def test_child_paths_concatenate(self):
        tracer = tracing.set_tracer(Tracer())
        with tracing.span("search.range"):
            with tracing.span("filter.BiBranch"):
                with tracing.span("zs.distance"):
                    pass
        paths = {s.path for s in tracer.finished_spans()}
        assert paths == {
            "search.range",
            "search.range/filter.BiBranch",
            "search.range/filter.BiBranch/zs.distance",
        }

    def test_current_path_tracks_nesting(self):
        assert tracing.current_path() is None
        tracing.set_tracer(Tracer())
        with tracing.span("outer"):
            assert tracing.current_path() == "outer"
            with tracing.span("inner"):
                assert tracing.current_path() == "outer/inner"
            assert tracing.current_path() == "outer"
        assert tracing.current_path() is None

    def test_current_path_none_when_sampled_out(self):
        tracing.set_tracer(Tracer(sample_rate=0.0))
        with tracing.span("unrecorded"):
            assert tracing.current_path() is None

    def test_to_dict_carries_path(self):
        tracer = tracing.set_tracer(Tracer())
        with tracing.span("a"):
            with tracing.span("b"):
                pass
        documents = {s.name: s.to_dict() for s in tracer.finished_spans()}
        assert documents["b"]["path"] == "a/b"
