"""CLI tests for the observability surface: trace, metrics dump, flags."""

import json

import pytest

from repro.cli import build_parser, main
from repro.obs import tracing
from repro.storage import save_forest
from repro.trees import parse_bracket


@pytest.fixture(autouse=True)
def _no_global_tracer():
    tracing.set_tracer(None)
    yield
    tracing.set_tracer(None)


@pytest.fixture
def dataset_file(tmp_path):
    path = tmp_path / "data.trees"
    save_forest(
        [
            parse_bracket(t)
            for t in ["a(b,c)", "a(b,d)", "a(b(e),d)", "x(y,z)", "x(y(w),z(v))", "m"]
        ],
        path,
    )
    return str(path)


class TestParser:
    def test_trace_modes_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["trace", "f", "--query", "a", "--range", "1", "--knn", "2"]
            )

    def test_metrics_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["metrics"])


class TestTraceCommand:
    def test_range_trace_renders_tree_and_funnel(self, dataset_file, capsys):
        assert main(["trace", dataset_file, "--query", "a(b,c)", "--range", "1"]) == 0
        captured = capsys.readouterr()
        assert "search.range" in captured.out
        assert "editdist.zhang_shasha" in captured.out
        assert "corpus" in captured.out  # funnel table
        # tracing must be torn down after the command
        assert tracing.enabled() is False

    def test_knn_trace(self, dataset_file, capsys):
        assert main(["trace", dataset_file, "--query", "a(b,c)", "--knn", "2"]) == 0
        assert "search.knn" in capsys.readouterr().out

    def test_json_output(self, dataset_file, capsys):
        assert (
            main(
                ["trace", dataset_file, "--query", "a(b,c)", "--range", "1", "--json"]
            )
            == 0
        )
        document = json.loads(capsys.readouterr().out)
        assert document["trace"]["format"] == "repro-trace"
        assert document["funnels"][0]["kind"] == "range"
        names = {record["name"] for record in document["trace"]["spans"]}
        assert "search.range" in names

    def test_chrome_trace_export(self, dataset_file, tmp_path, capsys):
        out = tmp_path / "trace.json"
        assert (
            main(
                [
                    "trace", dataset_file, "--query", "a(b,c)", "--range", "1",
                    "--chrome-trace", str(out),
                ]
            )
            == 0
        )
        document = json.loads(out.read_text())
        assert document["displayTimeUnit"] == "ms"
        assert all(event["ph"] == "X" for event in document["traceEvents"])


class TestMetricsCommand:
    def test_dump_empty_registry(self, capsys):
        assert main(["metrics", "dump"]) == 0
        # nothing registered by default — output may be empty but must not fail
        capsys.readouterr()

    def test_dump_with_traffic_prometheus(self, dataset_file, capsys):
        assert main(["metrics", "dump", dataset_file, "--queries", "6"]) == 0
        text = capsys.readouterr().out
        assert "# TYPE repro_queries_total counter" in text
        assert "repro_query_latency_seconds_bucket" in text

    def test_dump_with_traffic_json(self, dataset_file, capsys):
        assert (
            main(["metrics", "dump", dataset_file, "--queries", "6", "--json"]) == 0
        )
        snapshot = json.loads(capsys.readouterr().out)
        assert snapshot["repro_queries_total"]["type"] == "counter"


class TestSearchFlags:
    def test_search_trace_flag_prints_span_tree_to_stderr(
        self, dataset_file, capsys
    ):
        assert (
            main(
                [
                    "search", dataset_file, "--query", "a(b,c)", "--range", "1",
                    "--trace",
                ]
            )
            == 0
        )
        captured = capsys.readouterr()
        assert "search.range" in captured.err
        assert "search.range" not in captured.out

    def test_search_funnel_flag_prints_table_to_stderr(self, dataset_file, capsys):
        assert (
            main(
                [
                    "search", dataset_file, "--query", "a(b,c)", "--range", "1",
                    "--funnel",
                ]
            )
            == 0
        )
        assert "corpus" in capsys.readouterr().err

    def test_stats_json_schema_unchanged_without_funnel(self, dataset_file, capsys):
        assert (
            main(
                [
                    "search", dataset_file, "--query", "a(b,c)", "--range", "1",
                    "--stats-json",
                ]
            )
            == 0
        )
        stats = json.loads(capsys.readouterr().out.splitlines()[-1])
        assert "funnel" not in stats

    def test_stats_json_carries_funnel_when_asked(self, dataset_file, capsys):
        assert (
            main(
                [
                    "search", dataset_file, "--query", "a(b,c)", "--range", "1",
                    "--stats-json", "--funnel",
                ]
            )
            == 0
        )
        stats = json.loads(capsys.readouterr().out.splitlines()[-1])
        assert stats["funnel"]["kind"] == "range"
        assert stats["funnel"]["refined"] == stats["candidates"]


class TestServeBenchFlags:
    def test_funnel_export_and_metrics_out(self, dataset_file, tmp_path, capsys):
        funnel_path = tmp_path / "funnel.json"
        metrics_path = tmp_path / "metrics.prom"
        chrome_path = tmp_path / "chrome.json"
        code = main(
            [
                "serve-bench", dataset_file, "--queries", "8", "--clients", "2",
                "--json",
                "--funnel",
                "--funnel-export", str(funnel_path),
                "--metrics-out", str(metrics_path),
                "--chrome-trace", str(chrome_path),
            ]
        )
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert "funnel" in report
        export = json.loads(funnel_path.read_text())
        assert export["invariant_violations"] == []
        assert export["funnels_collected"] > 0
        assert export["aggregate"]["queries"] == export["funnels_collected"]
        metrics_text = metrics_path.read_text()
        assert "# TYPE repro_queries_total counter" in metrics_text
        chrome = json.loads(chrome_path.read_text())
        assert chrome["traceEvents"]

    def test_funnel_human_table(self, dataset_file, capsys):
        assert (
            main(
                ["serve-bench", dataset_file, "--queries", "6", "--clients", "2",
                 "--funnel"]
            )
            == 0
        )
        assert "refine" in capsys.readouterr().out
