"""Overhead guard: disabled tracing must stay near-free (satellite 2).

Timing tests on shared CI boxes are noisy, so the ratio threshold is
deliberately generous — the point is to catch accidental O(work) regressions
in the disabled path (e.g. building attribute dicts before the enabled()
check), not to benchmark.
"""

import time

from repro.filters.binary_branch import BinaryBranchFilter
from repro.obs import tracing
from repro.obs.tracing import NOOP_SPAN, Tracer
from repro.search.range_query import range_query
from repro.trees import parse_bracket


def _corpus(n=40):
    return [parse_bracket(f"a(b(c{i % 7}),d{i % 5}(e))") for i in range(n)]


def _run_queries(trees, flt, repeats=3):
    start = time.perf_counter()
    for _ in range(repeats):
        for query in trees[:10]:
            range_query(trees, query, 2.0, flt)
    return time.perf_counter() - start


def test_disabled_span_is_the_shared_noop_singleton():
    tracing.set_tracer(None)
    spans = {tracing.span("a"), tracing.span("b", n=1), tracing.span("c")}
    assert spans == {NOOP_SPAN}


def test_disabled_path_does_not_allocate_per_call_state():
    tracing.set_tracer(None)
    with tracing.span("outer") as outer:
        with tracing.span("inner") as inner:
            assert inner is outer is NOOP_SPAN
    assert tracing.current_span() is None


def test_tracing_overhead_ratio_is_bounded():
    trees = _corpus()
    flt = BinaryBranchFilter().fit(trees)
    tracing.set_tracer(None)
    _run_queries(trees, flt, repeats=1)  # warm caches before timing
    disabled = _run_queries(trees, flt)
    tracing.set_tracer(Tracer(sample_rate=1.0))
    try:
        enabled = _run_queries(trees, flt)
    finally:
        tracing.set_tracer(None)
    # Full-fidelity tracing may cost something, but never an order of
    # magnitude; and the disabled path must not be slower than enabled.
    assert enabled < disabled * 10.0


def test_sampled_out_traces_cost_no_buffer_space():
    tracer = Tracer(sample_rate=0.0)
    tracing.set_tracer(tracer)
    try:
        trees = _corpus(10)
        flt = BinaryBranchFilter().fit(trees)
        range_query(trees, trees[0], 1.0, flt)
    finally:
        tracing.set_tracer(None)
    assert tracer.finished_spans() == []
    assert tracer.dropped == 0
