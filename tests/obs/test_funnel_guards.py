"""Zero-total guards: selectivity and percentiles never raise on empties.

Regression tests for the empty-corpus hardening: every ratio in the
funnel/metrics layer reports 0.0 where a naive implementation would
divide by zero (empty corpus, a cascade that pruned everything upstream,
a histogram that never observed a sample).
"""

from __future__ import annotations

import pytest

from repro.obs.funnel import (
    FilterFunnel,
    FunnelAggregate,
    FunnelStage,
    collect_funnels,
)
from repro.obs.metrics import HistogramState
from repro.filters.binary_branch import BinaryBranchFilter
from repro.search.range_query import range_query
from repro.service.metrics import percentile
from repro.trees import parse_bracket


class TestStageSelectivity:
    def test_empty_stage_is_zero(self):
        assert FunnelStage("BiBranch", 0, 0).selectivity == 0.0

    def test_populated_stage_is_ratio(self):
        assert FunnelStage("BiBranch", 10, 4).selectivity == pytest.approx(0.4)


class TestFunnelSelectivity:
    def test_empty_corpus_is_zero(self):
        funnel = FilterFunnel(kind="range", corpus_size=0)
        assert funnel.selectivity == 0.0
        assert funnel.survivors == 0

    def test_end_to_end_ratio(self):
        funnel = FilterFunnel(
            kind="range",
            corpus_size=10,
            stages=[FunnelStage("BiBranch", 10, 3)],
        )
        assert funnel.selectivity == pytest.approx(0.3)

    def test_empty_corpus_query_records_safe_funnel(self):
        """A range query over an empty corpus produces a funnel whose every
        derived ratio is 0.0 — the original failure mode was a raise."""
        flt = BinaryBranchFilter().fit([])
        with collect_funnels() as sink:
            matches, _ = range_query([], parse_bracket("a(b)"), 1.0, flt)
        assert matches == []
        for funnel in sink.funnels:
            assert funnel.selectivity == 0.0
            for stage in funnel.stages:
                assert stage.selectivity == 0.0
            assert funnel.check_invariants() == []


class TestAggregateSelectivity:
    def test_empty_aggregate_cells(self):
        aggregate = FunnelAggregate()
        funnel = FilterFunnel(
            kind="range",
            corpus_size=0,
            stages=[FunnelStage("BiBranch", 0, 0)],
        )
        aggregate.add(funnel)
        document = aggregate.to_dict()
        cell = document["kinds"]["range"]["stages"][0]
        assert cell["selectivity"] == 0.0
        assert document["kinds"]["range"]["refined_fraction"] == 0.0
        # the rendered table and the cost report survive the same input
        assert "range" in aggregate.format_table()
        assert aggregate.cost_report()["range"].speedup_vs_unfiltered == 0.0


class TestPercentileGuards:
    def test_exact_percentile_empty_is_zero(self):
        assert percentile([], 50) == 0.0
        assert percentile([], 99) == 0.0

    def test_exact_percentile_range_checked(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)

    def test_histogram_quantile_empty_is_zero(self):
        state = HistogramState(bounds=(0.1, 1.0))
        assert state.quantile(50) == 0.0
        assert state.quantile(99) == 0.0

    def test_histogram_quantile_single_sample(self):
        state = HistogramState(bounds=(0.1, 1.0))
        state.record(0.5)
        assert 0.0 < state.quantile(50) <= 1.0
