"""The perf ledger: records, persistence, and the noise-aware comparator."""

from __future__ import annotations

import copy
import json

import pytest

from repro.perf.ledger import (
    LEDGER_FORMAT,
    LEDGER_VERSION,
    TIME_FLOOR_SECONDS,
    compare_records,
    format_comparison,
    load_record,
    machine_info,
    make_record,
    save_record,
)

_CORPUS = {"kind": "synthetic", "count": 60, "seed": 0}

_SUITES = {
    "serve_throughput": {
        "queries": 10,
        "wall_seconds": 1.0,
        "throughput_qps": 10.0,
        "latency": {"p50_seconds": 0.08, "p95_seconds": 0.2},
        "cost": {"range": {"refined": 12, "speedup_vs_unfiltered": 8.0}},
    },
    "index_candidates": {
        "corpus_rows": 60,
        "vptree": {"examined_rows": 120, "examined_fraction": 0.2, "refined": 9},
    },
}


def _record(label="BENCH_A"):
    return make_record(label, _CORPUS, copy.deepcopy(_SUITES))


class TestRecords:
    def test_schema_stamp(self):
        record = _record()
        assert record["format"] == LEDGER_FORMAT
        assert record["version"] == LEDGER_VERSION
        assert record["corpus"] == _CORPUS
        assert record["machine"]["python"] == machine_info()["python"]

    def test_save_load_roundtrip(self, tmp_path):
        path = str(tmp_path / "BENCH_A.json")
        save_record(_record(), path)
        assert load_record(path)["suites"] == _SUITES

    def test_load_rejects_junk(self, tmp_path):
        path = str(tmp_path / "junk.json")
        with open(path, "w") as handle:
            handle.write("{ not json")
        with pytest.raises(ValueError, match="not valid JSON"):
            load_record(path)

    def test_load_rejects_foreign_format(self, tmp_path):
        path = str(tmp_path / "foreign.json")
        with open(path, "w") as handle:
            json.dump({"format": "someone-else", "version": 1}, handle)
        with pytest.raises(ValueError, match="ledger record"):
            load_record(path)

    def test_load_rejects_future_version(self, tmp_path):
        record = _record()
        record["version"] = LEDGER_VERSION + 1
        path = str(tmp_path / "future.json")
        with open(path, "w") as handle:
            json.dump(record, handle)
        with pytest.raises(ValueError, match="version"):
            load_record(path)


class TestComparator:
    def test_self_compare_is_clean(self):
        comparison = compare_records(_record(), _record("BENCH_B"))
        assert comparison.ok
        assert comparison.regressions == []

    def test_time_regression_beyond_noise(self):
        current = _record("BENCH_B")
        current["suites"]["serve_throughput"]["wall_seconds"] = 2.0
        comparison = compare_records(_record(), current, noise=0.5)
        assert not comparison.ok
        metrics = [entry.metric for entry in comparison.regressions]
        assert metrics == ["serve_throughput.wall_seconds"]
        assert comparison.regressions[0].kind == "time"

    def test_time_drift_within_noise_is_ok(self):
        current = _record("BENCH_B")
        current["suites"]["serve_throughput"]["wall_seconds"] = 1.4
        assert compare_records(_record(), current, noise=0.5).ok

    def test_time_drift_under_absolute_floor_is_ok(self):
        baseline = _record()
        baseline["suites"]["serve_throughput"]["wall_seconds"] = 0.0001
        current = _record("BENCH_B")
        # 10x relative blow-up, but far below the absolute floor
        current["suites"]["serve_throughput"]["wall_seconds"] = 0.001
        assert 0.001 - 0.0001 < TIME_FLOOR_SECONDS
        assert compare_records(baseline, current, noise=0.5).ok

    def test_time_improvement_reported_not_gated(self):
        current = _record("BENCH_B")
        current["suites"]["serve_throughput"]["wall_seconds"] = 0.3
        comparison = compare_records(_record(), current, noise=0.5)
        assert comparison.ok
        assert [entry.metric for entry in comparison.improvements] == [
            "serve_throughput.wall_seconds"
        ]

    def test_rate_regression_is_lower(self):
        current = _record("BENCH_B")
        current["suites"]["serve_throughput"]["throughput_qps"] = 4.0
        comparison = compare_records(_record(), current, noise=0.5)
        assert not comparison.ok
        assert comparison.regressions[0].kind == "rate"

    def test_count_drift_is_regression_in_either_direction(self):
        for delta in (-2, +2):
            current = _record("BENCH_B")
            current["suites"]["index_candidates"]["vptree"]["refined"] += delta
            comparison = compare_records(_record(), current)
            assert not comparison.ok, f"delta {delta} must gate"
            assert comparison.regressions[0].kind == "count"

    def test_count_noise_tolerance(self):
        current = _record("BENCH_B")
        current["suites"]["index_candidates"]["vptree"]["refined"] = 10
        assert not compare_records(_record(), current).ok
        assert compare_records(_record(), current, count_noise=0.2).ok

    def test_ratio_drift_is_regression(self):
        current = _record("BENCH_B")
        current["suites"]["index_candidates"]["vptree"]["examined_fraction"] = 0.35
        comparison = compare_records(_record(), current)
        assert not comparison.ok
        assert comparison.regressions[0].kind == "ratio"

    def test_missing_metric_is_regression(self):
        current = _record("BENCH_B")
        del current["suites"]["serve_throughput"]["latency"]["p95_seconds"]
        comparison = compare_records(_record(), current)
        assert not comparison.ok
        assert comparison.regressions[0].status == "regression"
        assert comparison.regressions[0].current is None

    def test_new_metric_is_ok(self):
        current = _record("BENCH_B")
        current["suites"]["serve_throughput"]["latency"]["p99_seconds"] = 0.3
        comparison = compare_records(_record(), current)
        assert comparison.ok
        assert any(entry.status == "new" for entry in comparison.entries)

    def test_corpus_mismatch_refused(self):
        current = _record("BENCH_B")
        current["corpus"] = {"kind": "synthetic", "count": 999, "seed": 0}
        with pytest.raises(ValueError, match="corpus"):
            compare_records(_record(), current)
        assert compare_records(
            _record(), current, allow_corpus_mismatch=True
        ).ok

    def test_negative_noise_rejected(self):
        with pytest.raises(ValueError, match="noise"):
            compare_records(_record(), _record(), noise=-0.1)


class TestFormatting:
    def test_regressions_always_shown(self):
        current = _record("BENCH_B")
        current["suites"]["serve_throughput"]["wall_seconds"] = 9.0
        comparison = compare_records(_record(), current)
        text = format_comparison(comparison)
        assert "REGRESSION" in text
        assert "serve_throughput.wall_seconds" in text
        assert "1 regression(s)" in text

    def test_verbose_shows_ok_entries(self):
        comparison = compare_records(_record(), _record("BENCH_B"))
        assert "OK" not in format_comparison(comparison)
        assert "OK" in format_comparison(comparison, verbose=True)

    def test_to_dict_gate_fields(self):
        document = compare_records(_record(), _record("BENCH_B")).to_dict()
        assert document["ok"] is True
        assert document["regressions"] == 0
        assert {"metric", "kind", "baseline", "current", "status"} <= set(
            document["entries"][0]
        )
