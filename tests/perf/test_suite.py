"""The declared benchmark suite behind ``repro bench run``.

The ledger's count metrics gate exactly, so the suite must be
deterministic in everything except wall-clock: two runs over the same
corpus and seed must agree on every non-timing metric.
"""

from __future__ import annotations

import pytest

from repro.bench.suite import SUITE_NAMES, run_bench_suite
from repro.datasets import generate_dataset, parse_spec


@pytest.fixture(scope="module")
def corpus():
    spec = parse_spec("N{3,0.5}N{15,2}L6D0.05")
    return generate_dataset(spec, count=24, seed=3)


def _counts(suites):
    return {
        (name, key): value
        for name, metrics in suites.items()
        for key, value in metrics.items()
        if isinstance(value, int) and not isinstance(value, bool)
    }


class TestSuiteShape:
    def test_all_declared_suites_present(self, corpus):
        suites = run_bench_suite(corpus, queries=4)
        assert set(suites) == set(SUITE_NAMES)
        for metrics in suites.values():
            assert metrics, "every suite reports at least one metric"

    def test_empty_corpus_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            run_bench_suite([])

    def test_zero_queries_rejected(self, corpus):
        with pytest.raises(ValueError, match="queries"):
            run_bench_suite(corpus, queries=0)


class TestDeterminism:
    def test_count_metrics_identical_across_runs(self, corpus):
        first = run_bench_suite(corpus, queries=4, seed=11)
        second = run_bench_suite(corpus, queries=4, seed=11)
        assert _counts(first) == _counts(second)
        assert _counts(first), "the exact-gated count metrics exist"
