"""Process resource probes used by health telemetry and ledger records."""

from repro.perf.resources import rss_bytes


def test_rss_bytes_positive_on_posix():
    value = rss_bytes()
    assert isinstance(value, int)
    # any live CPython process is at least a few MB resident; 0 is the
    # documented "unavailable" sentinel for platforms without resource
    assert value == 0 or value > 1_000_000
