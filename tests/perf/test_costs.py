"""Per-stage cost accounting over funnel aggregates."""

from __future__ import annotations

import pytest

from repro.obs.funnel import FilterFunnel, FunnelAggregate, FunnelStage
from repro.perf.costs import (
    CascadeCostReport,
    StageCost,
    cost_reports,
    format_cost_reports,
)


def _aggregate(funnels):
    aggregate = FunnelAggregate()
    for funnel in funnels:
        aggregate.add(funnel)
    return aggregate


def _range_funnel(corpus=100, survivors=20, refined=20, results=5):
    return FilterFunnel(
        kind="range",
        corpus_size=corpus,
        stages=[FunnelStage("BiBranch", corpus, survivors, seconds=0.01)],
        refined=refined,
        results=results,
        refine_seconds=0.4,
        parameter=2.0,
    )


class TestStageCost:
    def test_unit_cost_and_net_benefit(self):
        stage = StageCost(
            name="BiBranch",
            queries=1,
            entered=100,
            survivors=20,
            seconds=0.01,
            refine_unit_cost=0.02,
        )
        assert stage.refuted == 80
        assert stage.selectivity == pytest.approx(0.2)
        assert stage.unit_cost == pytest.approx(0.0001)
        # 80 refinements avoided at 20ms each, minus the stage's own 10ms
        assert stage.saved_refine_seconds == pytest.approx(1.6)
        assert stage.net_benefit_seconds == pytest.approx(1.59)

    def test_empty_stage_reports_zero_not_crash(self):
        stage = StageCost(
            name="BiBranch",
            queries=0,
            entered=0,
            survivors=0,
            seconds=0.0,
            refine_unit_cost=0.0,
        )
        assert stage.selectivity == 0.0
        assert stage.unit_cost == 0.0
        assert stage.net_benefit_seconds == 0.0


class TestCascadeCostReport:
    def test_predicted_matches_actual_by_construction(self):
        reports = cost_reports(_aggregate([_range_funnel()]))
        report = reports["range"]
        assert isinstance(report, CascadeCostReport)
        # the linear model priced from measured unit costs reproduces the
        # measured total exactly when the inputs are self-consistent
        assert report.predicted_seconds == pytest.approx(report.actual_seconds)

    def test_speedup_vs_unfiltered(self):
        report = cost_reports(_aggregate([_range_funnel()]))["range"]
        # refine unit = 0.4s / 20 = 20ms; unfiltered = 100 * 20ms = 2.0s;
        # actual = 0.01 + 0.4 = 0.41s
        assert report.refine_unit_cost == pytest.approx(0.02)
        assert report.predicted_unfiltered_seconds == pytest.approx(2.0)
        assert report.speedup_vs_unfiltered == pytest.approx(2.0 / 0.41)

    def test_kinds_reported_separately(self):
        knn = FilterFunnel(
            kind="knn",
            corpus_size=100,
            stages=[FunnelStage("order:BiBranch", 100, 100, seconds=0.002)],
            refined=7,
            results=3,
            refine_seconds=0.14,
            parameter=3.0,
        )
        reports = cost_reports(_aggregate([_range_funnel(), knn]))
        assert sorted(reports) == ["knn", "range"]
        assert reports["knn"].stages[0].name == "order:BiBranch"

    def test_zero_refinement_is_all_zeros(self):
        funnel = _range_funnel(refined=0, results=0)
        funnel.refine_seconds = 0.0
        report = cost_reports(_aggregate([funnel]))["range"]
        assert report.refine_unit_cost == 0.0
        assert report.predicted_unfiltered_seconds == 0.0
        assert report.speedup_vs_unfiltered == 0.0

    def test_to_dict_keys(self):
        report = cost_reports(_aggregate([_range_funnel()]))["range"]
        document = report.to_dict()
        for key in (
            "kind",
            "queries",
            "refined",
            "actual_seconds",
            "predicted_seconds",
            "predicted_unfiltered_seconds",
            "speedup_vs_unfiltered",
            "stages",
        ):
            assert key in document
        assert document["stages"][0]["name"] == "BiBranch"
        assert "net_benefit_seconds" in document["stages"][0]


class TestFunnelAggregateCostReport:
    def test_aggregate_method_delegates(self):
        aggregate = _aggregate([_range_funnel()])
        reports = aggregate.cost_report()
        assert reports["range"].queries == 1

    def test_empty_aggregate(self):
        assert FunnelAggregate().cost_report() == {}
        assert "nothing to cost" in format_cost_reports({})


class TestFormatting:
    def test_format_mentions_stages_and_speedup(self):
        text = format_cost_reports(cost_reports(_aggregate([_range_funnel()])))
        assert "BiBranch" in text
        assert "speedup" in text
        assert "refine" in text
