"""Unit tests for the DBLP-like dataset generator."""

import random

import pytest

from repro.datasets import DblpConfig, generate_dblp_dataset, generate_dblp_record
from repro.trees import dataset_summary, tree_to_xml


class TestRecord:
    def test_structure(self):
        record = generate_dblp_record(random.Random(0))
        assert record.label in {"article", "inproceedings"}
        field_labels = [c.label for c in record.children]
        assert "title" in field_labels
        assert "year" in field_labels
        assert "author" in field_labels

    def test_fields_carry_text_leaves(self):
        record = generate_dblp_record(random.Random(1))
        for field in record.children:
            assert field.degree == 1
            assert field.children[0].is_leaf

    def test_article_has_journal(self):
        rng = random.Random(2)
        for _ in range(20):
            record = generate_dblp_record(rng)
            fields = {c.label for c in record.children}
            if record.label == "article":
                assert "journal" in fields
            else:
                assert "booktitle" in fields

    def test_author_count_respects_config(self):
        config = DblpConfig(min_authors=2, max_authors=2)
        record = generate_dblp_record(random.Random(3), config)
        authors = [c for c in record.children if c.label == "author"]
        assert len(authors) == 2

    def test_records_convertible_to_xml(self):
        record = generate_dblp_record(random.Random(4))
        element = tree_to_xml(record)
        assert element.tag == record.label


class TestDataset:
    def test_deterministic(self):
        assert generate_dblp_dataset(10, seed=5) == generate_dblp_dataset(10, seed=5)

    def test_count(self):
        assert len(generate_dblp_dataset(50, seed=1)) == 50

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            generate_dblp_dataset(0)

    def test_statistics_match_paper_profile(self):
        """§5.2: "10.15 nodes on average ... very bushy and shallow"."""
        dataset = generate_dblp_dataset(300, seed=7)
        summary = dataset_summary(dataset)
        assert 8.0 <= summary["avg_size"] <= 13.0
        assert 1.8 <= summary["avg_height"] <= 3.2

    def test_label_reuse_produces_clustering(self):
        """Records share tag names and pool values — distinct labels grow
        much slower than total nodes."""
        dataset = generate_dblp_dataset(200, seed=9)
        summary = dataset_summary(dataset)
        total_nodes = summary["avg_size"] * summary["count"]
        assert summary["labels"] < total_nodes / 3
