"""Unit tests for the §5 synthetic data generator."""

import random

import pytest

from repro.datasets import SyntheticSpec, generate_dataset, mutate_tree, parse_spec
from repro.editdist import tree_edit_distance
from repro.trees import dataset_summary, parse_bracket


class TestSpec:
    def test_parse_full(self):
        spec = parse_spec("N{4,0.5}N{50,2}L8D0.05")
        assert spec.fanout_mean == 4
        assert spec.fanout_stddev == 0.5
        assert spec.size_mean == 50
        assert spec.size_stddev == 2
        assert spec.label_count == 8
        assert spec.decay == 0.05

    def test_parse_without_decay(self):
        assert parse_spec("N{2,0.5}N{25,2}L16").decay == 0.05

    def test_parse_tolerates_spaces(self):
        assert parse_spec("N{4, 0.5} N{50, 2} L8 D0.1").decay == 0.1

    def test_parse_invalid(self):
        with pytest.raises(ValueError):
            parse_spec("garbage")

    def test_describe_round_trips(self):
        spec = SyntheticSpec(fanout_mean=6, size_mean=75, label_count=32)
        assert parse_spec(spec.describe()) == spec

    def test_labels(self):
        assert SyntheticSpec(label_count=3).labels == ["l0", "l1", "l2"]


class TestMutation:
    def test_zero_decay_is_identity(self):
        tree = parse_bracket("a(b(c,d),e)")
        mutated = mutate_tree(tree, 0.0, ["x"], random.Random(0))
        assert mutated == tree
        assert mutated is not tree

    def test_input_not_modified(self):
        tree = parse_bracket("a(b(c,d),e)")
        before = tree.clone()
        mutate_tree(tree, 1.0, ["x", "y"], random.Random(1))
        assert tree == before

    def test_full_decay_changes_tree(self):
        tree = parse_bracket("a(b(c,d),e)")
        mutated = mutate_tree(tree, 1.0, ["x", "y"], random.Random(2))
        assert mutated != tree

    def test_mutation_distance_bounded_by_node_count(self):
        """Each node mutates at most once, so EDist <= |T| per derivation."""
        rng = random.Random(3)
        tree = parse_bracket("a(b(c,d),e,f)")
        for _ in range(10):
            mutated = mutate_tree(tree, 0.5, ["x", "y"], rng)
            assert tree_edit_distance(tree, mutated) <= tree.size

    def test_small_decay_keeps_trees_close(self):
        rng = random.Random(4)
        spec = SyntheticSpec(size_mean=30, size_stddev=2, label_count=8)
        dataset = generate_dataset(spec, count=2, seed_count=1, rng=rng)
        distance = tree_edit_distance(dataset[0], dataset[1])
        assert distance <= 8  # 0.05 * 30 expected changes, generous margin


class TestGeneration:
    def test_deterministic(self):
        spec = SyntheticSpec(size_mean=20, size_stddev=2)
        a = generate_dataset(spec, count=10, seed=7)
        b = generate_dataset(spec, count=10, seed=7)
        assert a == b

    def test_different_seeds_differ(self):
        spec = SyntheticSpec(size_mean=20, size_stddev=2)
        assert generate_dataset(spec, 10, seed=1) != generate_dataset(spec, 10, seed=2)

    def test_count_respected(self):
        spec = SyntheticSpec(size_mean=15, size_stddev=2)
        assert len(generate_dataset(spec, count=25, seed_count=5)) == 25

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            generate_dataset(SyntheticSpec(), count=0)

    def test_sizes_near_mean(self):
        spec = SyntheticSpec(size_mean=50, size_stddev=2, decay=0.05)
        dataset = generate_dataset(spec, count=30, seed_count=10, seed=11)
        summary = dataset_summary(dataset)
        assert 40 <= summary["avg_size"] <= 60

    def test_labels_respect_alphabet(self):
        spec = SyntheticSpec(label_count=8)
        dataset = generate_dataset(spec, count=10, seed=3)
        alphabet = set(spec.labels)
        for tree in dataset:
            assert all(n.label in alphabet for n in tree.iter_preorder())

    def test_derived_trees_cluster(self):
        """Derivation chains produce smaller distances than cross-seed pairs
        on average — the clustering the paper's generator is designed for."""
        spec = SyntheticSpec(size_mean=25, size_stddev=2, label_count=8, decay=0.05)
        dataset = generate_dataset(spec, count=40, seed_count=2, seed=13)
        within = [
            tree_edit_distance(dataset[i], dataset[i + 1]) for i in range(0, 8)
        ]
        assert min(within) < 25  # trees are related, not arbitrary
