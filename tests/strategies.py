"""Shared hypothesis strategies for property-based tests."""

from __future__ import annotations

from hypothesis import strategies as st

from repro.trees.node import TreeNode

__all__ = ["labels", "trees", "tree_pairs", "small_trees"]

#: small label alphabets make collisions (shared branches) likely, which is
#: exactly the interesting regime for the distance bounds
labels = st.sampled_from(["a", "b", "c", "d", "e"])


def _tree_builder(children):
    return st.builds(TreeNode, labels, st.lists(children, max_size=4))


def trees(max_leaves: int = 12):
    """Random rooted ordered labeled trees (small alphabet)."""
    return st.recursive(
        st.builds(TreeNode, labels),
        _tree_builder,
        max_leaves=max_leaves,
    )


def small_trees():
    """Tiny trees for quadratic oracles (exact matching, brute force)."""
    return trees(max_leaves=5)


def tree_pairs(max_leaves: int = 10):
    """Pairs of independent random trees."""
    return st.tuples(trees(max_leaves), trees(max_leaves))
