"""Run every doctest in the library as part of the test suite.

Doctests double as API documentation; this keeps them honest.
"""

import doctest
import importlib
import pkgutil

import pytest

import repro


def _all_modules():
    names = ["repro"]
    for module_info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if module_info.name.endswith("__main__"):
            continue  # importing it would execute the CLI
        names.append(module_info.name)
    return names


@pytest.mark.parametrize("module_name", _all_modules())
def test_doctests(module_name):
    module = importlib.import_module(module_name)
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures in {module_name}"
