"""Unit tests for the benchmark drivers' shared infrastructure."""

import pytest

from benchmarks import figure_common
from repro.trees import parse_bracket


class TestScaleSelection:
    def test_default_is_small(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        assert figure_common.current_scale().name == "small"

    @pytest.mark.parametrize("name", ["small", "medium", "paper"])
    def test_named_scales(self, monkeypatch, name):
        monkeypatch.setenv("REPRO_BENCH_SCALE", name)
        scale = figure_common.current_scale()
        assert scale.name == name

    def test_case_insensitive(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "MEDIUM")
        assert figure_common.current_scale().name == "medium"

    def test_invalid_scale_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "gigantic")
        with pytest.raises(ValueError):
            figure_common.current_scale()

    def test_paper_scale_matches_paper(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "paper")
        scale = figure_common.current_scale()
        assert scale.dataset_size == 2000
        assert scale.query_count == 100


class TestWorkloadHelpers:
    def test_knn_k_floor(self):
        assert figure_common.knn_k(150) == 3  # floored
        assert figure_common.knn_k(2000) == 5  # the paper's 0.25%

    def test_range_threshold_at_least_one(self):
        trees = [parse_bracket("a"), parse_bracket("a")]
        assert figure_common.range_threshold(trees) == 1.0

    def test_standard_filters_fresh_instances(self):
        first = figure_common.standard_filters()
        second = figure_common.standard_filters()
        assert first[0] is not second[0]
        assert {f.name for f in first} == {"BiBranch", "Histo"}

    def test_synthetic_workload_deterministic(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        from repro.datasets import SyntheticSpec

        spec = SyntheticSpec(size_mean=10, size_stddev=2)
        trees1, queries1 = figure_common.synthetic_workload(spec, 20, 3)
        trees2, queries2 = figure_common.synthetic_workload(spec, 20, 3)
        assert trees1 == trees2
        assert queries1 == queries2


class TestSaveReport:
    def test_writes_scale_scoped_file(self, monkeypatch, tmp_path, capsys):
        monkeypatch.setattr(figure_common, "RESULTS_DIR", tmp_path)
        monkeypatch.setenv("REPRO_BENCH_SCALE", "small")
        figure_common.save_report("unit_test_figure", "hello rows")
        written = tmp_path / "small" / "unit_test_figure.txt"
        assert written.read_text() == "hello rows\n"
        assert "hello rows" in capsys.readouterr().out


class TestSequentialToggle:
    def test_default_enabled(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SEQUENTIAL", raising=False)
        assert figure_common.sequential_enabled()

    def test_disabled(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SEQUENTIAL", "0")
        assert not figure_common.sequential_enabled()

    def test_any_other_value_enables(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SEQUENTIAL", "yes")
        assert figure_common.sequential_enabled()
