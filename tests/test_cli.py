"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.storage import load_forest, save_forest
from repro.trees import parse_bracket


@pytest.fixture
def dataset_file(tmp_path):
    path = tmp_path / "data.trees"
    save_forest(
        [parse_bracket(t) for t in ["a(b,c)", "a(b,d)", "x(y)", "a(b,c)"]],
        path,
    )
    return str(path)


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_search_modes_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["search", "f", "--query", "a", "--range", "1", "--knn", "2"]
            )


class TestDistanceCommands:
    def test_distance(self, capsys):
        assert main(["distance", "a(b,c)", "a(b,d)"]) == 0
        assert capsys.readouterr().out.strip() == "1"

    def test_bound(self, capsys):
        assert main(["bound", "a(b,c)", "a(b,d)"]) == 0
        out = capsys.readouterr().out
        assert "BDist_q2: 4" in out
        assert "positional bound" in out

    def test_bound_q3(self, capsys):
        assert main(["bound", "a(b,c)", "a(b,d)", "--q", "3"]) == 0
        assert "BDist_q3" in capsys.readouterr().out

    def test_diff(self, capsys):
        assert main(["diff", "a(b)", "a(c)"]) == 0
        out = capsys.readouterr().out
        assert "edit distance: 1" in out
        assert "relabel 'b' -> 'c'" in out


class TestGenerateAndStats:
    def test_generate_synthetic(self, tmp_path, capsys):
        out = tmp_path / "synthetic.trees"
        code = main(
            [
                "generate", "synthetic", "--out", str(out),
                "--count", "10", "--spec", "N{3,0.5}N{10,2}L4D0.1",
            ]
        )
        assert code == 0
        assert len(load_forest(out)) == 10

    def test_generate_dblp(self, tmp_path, capsys):
        out = tmp_path / "dblp.trees"
        assert main(["generate", "dblp", "--out", str(out), "--count", "5"]) == 0
        trees = load_forest(out)
        assert len(trees) == 5
        assert trees[0].label in {"article", "inproceedings"}

    def test_generate_deterministic(self, tmp_path):
        a, b = tmp_path / "a.trees", tmp_path / "b.trees"
        main(["generate", "dblp", "--out", str(a), "--count", "5", "--seed", "9"])
        main(["generate", "dblp", "--out", str(b), "--count", "5", "--seed", "9"])
        assert load_forest(a) == load_forest(b)

    def test_stats(self, dataset_file, capsys):
        assert main(["stats", dataset_file]) == 0
        out = capsys.readouterr().out
        assert "count: 4" in out

    def test_stats_with_avg_distance(self, dataset_file, capsys):
        assert main(["stats", dataset_file, "--avg-distance"]) == 0
        assert "avg_distance" in capsys.readouterr().out


class TestSearchAndJoin:
    def test_range_search(self, dataset_file, capsys):
        assert main(
            ["search", dataset_file, "--query", "a(b,c)", "--range", "1"]
        ) == 0
        out = capsys.readouterr().out
        lines = [line for line in out.splitlines() if line]
        indices = {int(line.split("\t")[0]) for line in lines}
        assert indices == {0, 1, 3}

    def test_knn_search(self, dataset_file, capsys):
        assert main(
            ["search", dataset_file, "--query", "a(b,c)", "--knn", "2"]
        ) == 0
        lines = capsys.readouterr().out.splitlines()
        assert len([line for line in lines if line]) == 2

    def test_search_with_histogram_filter(self, dataset_file, capsys):
        assert main(
            [
                "search", dataset_file, "--query", "x(y)",
                "--knn", "1", "--filter", "histogram",
            ]
        ) == 0
        assert capsys.readouterr().out.startswith("2\t0")

    def test_search_empty_dataset(self, tmp_path, capsys):
        empty = tmp_path / "empty.trees"
        empty.write_text("")
        assert main(
            ["search", str(empty), "--query", "a", "--knn", "1"]
        ) == 1

    def test_join(self, dataset_file, capsys):
        assert main(["join", dataset_file, "--threshold", "0"]) == 0
        out = capsys.readouterr().out
        assert out.splitlines()[0] == "0\t3\t0"


class TestErrorHandling:
    def test_bad_bracket_syntax(self, capsys):
        assert main(["distance", "a(b", "a"]) == 2
        assert "error" in capsys.readouterr().err

    def test_bad_spec(self, tmp_path, capsys):
        code = main(
            ["generate", "synthetic", "--out", str(tmp_path / "x"),
             "--spec", "garbage"]
        )
        assert code == 2

    def test_missing_file(self, capsys):
        assert main(["stats", "/nonexistent/file.trees"]) == 2

    def test_invalid_bound_level(self, capsys):
        assert main(["bound", "a", "b", "--q", "1"]) == 2


class TestConvert:
    def test_convert_xml_files(self, tmp_path, capsys):
        (tmp_path / "a.xml").write_text("<a><b/></a>")
        (tmp_path / "b.xml").write_text("<c/>")
        out = tmp_path / "out.trees"
        assert main(
            ["convert", str(tmp_path), "--format", "xml", "--out", str(out)]
        ) == 0
        assert [t.label for t in load_forest(out)] == ["a", "c"]

    def test_convert_single_json_file(self, tmp_path):
        doc = tmp_path / "doc.json"
        doc.write_text('{"k": [1, 2]}')
        out = tmp_path / "out.trees"
        assert main(
            ["convert", str(doc), "--format", "json", "--out", str(out)]
        ) == 0
        (tree,) = load_forest(out)
        assert tree.label == "{}"

    def test_convert_json_directory(self, tmp_path):
        (tmp_path / "x.json").write_text("[1]")
        (tmp_path / "y.json").write_text("null")
        out = tmp_path / "out.trees"
        assert main(
            ["convert", str(tmp_path), "--format", "json", "--out", str(out)]
        ) == 0
        assert len(load_forest(out)) == 2

    def test_convert_invalid_input(self, tmp_path, capsys):
        bad = tmp_path / "bad.xml"
        bad.write_text("<unclosed")
        assert main(
            ["convert", str(bad), "--format", "xml",
             "--out", str(tmp_path / "o")]
        ) == 2


class TestShow:
    def test_show(self, capsys):
        assert main(["show", "a(b,c)"]) == 0
        out = capsys.readouterr().out
        assert "├── b" in out and "└── c" in out


class TestVector:
    def test_vector_output(self, capsys):
        assert main(["vector", "a(b,c)"]) == 0
        captured = capsys.readouterr()
        assert "a(b,ε)" in captured.out
        assert "3 distinct branches" in captured.err

    def test_vector_qlevel(self, capsys):
        assert main(["vector", "a(b)", "--q", "3"]) == 0
        assert "[a,b," in capsys.readouterr().out


class TestSearchStatsJson:
    def test_stats_json_replaces_summary(self, dataset_file, capsys):
        import json

        assert main(
            ["search", dataset_file, "--query", "a(b,c)", "--range", "1",
             "--stats-json"]
        ) == 0
        captured = capsys.readouterr()
        assert "# accessed" not in captured.err
        stats_line = captured.out.splitlines()[-1]
        stats = json.loads(stats_line)
        assert stats["dataset_size"] == 4
        assert stats["results"] == 3
        assert "filter_seconds" in stats

    def test_human_summary_is_default(self, dataset_file, capsys):
        assert main(
            ["search", dataset_file, "--query", "a(b,c)", "--range", "1"]
        ) == 0
        assert "# accessed" in capsys.readouterr().err


class TestServeBench:
    def test_human_report(self, dataset_file, capsys):
        assert main(
            ["serve-bench", dataset_file, "--queries", "20", "--repeat", "0.6",
             "--clients", "2", "--seed", "3"]
        ) == 0
        out = capsys.readouterr().out
        assert "throughput" in out
        assert "result cache" in out
        assert "p99" in out

    def test_json_report(self, dataset_file, capsys):
        import json

        assert main(
            ["serve-bench", dataset_file, "--queries", "15", "--json"]
        ) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["queries"] == 15
        assert report["metrics"]["cache"]["hits"] >= 0
        assert report["latency"]["p50_seconds"] <= report["latency"]["p99_seconds"]

    def test_empty_dataset(self, tmp_path, capsys):
        empty = tmp_path / "empty.trees"
        empty.write_text("")
        assert main(["serve-bench", str(empty)]) == 1

    def test_serial_client(self, dataset_file, capsys):
        assert main(
            ["serve-bench", dataset_file, "--queries", "8", "--clients", "1",
             "--cache-size", "0"]
        ) == 0
        out = capsys.readouterr().out
        assert "serial" in out
        assert "hit rate 0.0%" in out


class TestShardedCli:
    def test_sharded_range_matches_single_process(self, dataset_file, capsys):
        args = ["search", dataset_file, "--query", "a(b,c)", "--range", "1"]
        assert main(args) == 0
        single = capsys.readouterr().out
        assert main(args + ["--shards", "2"]) == 0
        assert capsys.readouterr().out == single

    def test_sharded_knn_matches_single_process(self, dataset_file, capsys):
        args = ["search", dataset_file, "--query", "a(b,c)", "--knn", "3"]
        assert main(args) == 0
        single = capsys.readouterr().out
        assert main(args + ["--shards", "2", "--partitioner", "size-banded"]) == 0
        assert capsys.readouterr().out == single

    def test_invalid_shard_count_errors_cleanly(self, dataset_file, capsys):
        assert main(
            ["search", dataset_file, "--query", "a", "--knn", "1",
             "--shards", "0"]
        ) == 2

    def test_unknown_partitioner_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["search", "f", "--query", "a", "--knn", "1",
                 "--partitioner", "hash-ring"]
            )

    def test_serve_bench_sharded(self, dataset_file, capsys):
        assert main(
            ["serve-bench", dataset_file, "--queries", "10", "--shards", "2",
             "--clients", "2", "--seed", "1"]
        ) == 0
        out = capsys.readouterr().out
        assert "throughput" in out

    def test_serve_bench_sharded_funnel_export(self, dataset_file, tmp_path, capsys):
        import json

        export = tmp_path / "funnel.json"
        assert main(
            ["serve-bench", dataset_file, "--queries", "8", "--shards", "2",
             "--funnel-export", str(export)]
        ) == 0
        document = json.loads(export.read_text())
        assert document["invariant_violations"] == []
        assert document["funnels_collected"] > 0


class TestFeaturesCommands:
    def test_build_and_stats(self, dataset_file, tmp_path, capsys):
        out_path = str(tmp_path / "plane.json")
        assert main(["features", "build", dataset_file, "--out", out_path]) == 0
        assert "wrote feature plane for 4 trees" in capsys.readouterr().out
        assert main(["features", "stats", out_path]) == 0
        out = capsys.readouterr().out
        assert "trees: 4" in out
        assert "extraction_passes: 0" in out

    def test_build_multiple_q_levels(self, dataset_file, tmp_path, capsys):
        out_path = str(tmp_path / "plane.json")
        code = main(
            ["features", "build", dataset_file, "--out", out_path, "--q", "2", "3"]
        )
        assert code == 0
        assert "q_levels=[2, 3]" in capsys.readouterr().out

    def test_build_invalid_q_level_errors_cleanly(self, dataset_file, tmp_path):
        code = main(
            ["features", "build", dataset_file,
             "--out", str(tmp_path / "x.json"), "--q", "1"]
        )
        assert code == 2

    def test_stats_rejects_foreign_file(self, dataset_file):
        assert main(["features", "stats", dataset_file]) == 2

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["features"])


class TestVerify:
    def test_list_oracles(self, capsys):
        assert main(["verify", "--list-oracles"]) == 0
        out = capsys.readouterr().out
        assert "bound:BiBranch" in out
        assert "service:cache-transparency" in out

    def test_single_oracle_human_report(self, capsys):
        assert main(["verify", "--oracle", "metric:bdist"]) == 0
        out = capsys.readouterr().out
        assert "verify seed=0 budget=small" in out
        assert "metric:bdist" in out
        assert "TOTAL" in out

    def test_json_report(self, capsys):
        import json

        assert main(
            ["verify", "--oracle", "bound:SizeDiff", "--json", "--seed", "4"]
        ) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["ok"] is True
        assert report["seed"] == 4
        assert report["oracles"]["bound:SizeDiff"]["checks"] > 0

    def test_unknown_oracle_fails_fast(self, capsys):
        assert main(["verify", "--oracle", "bound:nope"]) == 2
        assert "unknown oracle" in capsys.readouterr().err

    def test_unknown_budget_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["verify", "--budget", "galactic"])

    def test_replay_fixed_repro_file(self, tmp_path, capsys):
        import json

        path = tmp_path / "violation.json"
        path.write_text(
            json.dumps(
                {
                    "format": "repro-verify",
                    "version": 1,
                    "oracle": "bound:BiBranchCount",
                    "message": "stale report",
                    "t1": "a(b,c)",
                    "t2": "a(b,c)",
                }
            )
        )
        assert main(["verify", "--replay", str(path)]) == 0
        assert "no longer violates" in capsys.readouterr().out


class TestBenchLedger:
    def _run(self, tmp_path, name, **overrides):
        out = str(tmp_path / name)
        args = [
            "bench", "run", "--out", out,
            "--count", "20", "--queries", "4",
            "--spec", "N{3,0.5}N{15,2}L6D0.05",
        ]
        for flag, value in overrides.items():
            args.extend([f"--{flag}", str(value)])
        assert main(args) == 0
        return out

    def test_run_emits_schema_versioned_record(self, tmp_path, capsys):
        import json

        out = self._run(tmp_path, "BENCH_A.json")
        with open(out, encoding="utf-8") as handle:
            record = json.load(handle)
        assert record["format"] == "repro-bench"
        assert record["version"] == 1
        assert record["label"] == "BENCH_A"
        assert set(record["suites"]) == {
            "serve_throughput", "vectorized_filters", "index_candidates"
        }
        assert "wrote" in capsys.readouterr().out

    def test_self_compare_exits_zero(self, tmp_path, capsys):
        out = self._run(tmp_path, "BENCH_A.json")
        assert main(["bench", "compare", out, out]) == 0
        assert "0 regression(s)" in capsys.readouterr().out

    def test_injected_regression_exits_nonzero(self, tmp_path, capsys):
        import json

        baseline = self._run(tmp_path, "BENCH_A.json")
        with open(baseline, encoding="utf-8") as handle:
            record = json.load(handle)
        for metrics in record["suites"].values():
            for key, value in metrics.items():
                if isinstance(value, int) and not isinstance(value, bool):
                    metrics[key] = value + 17
        worse = tmp_path / "BENCH_B.json"
        worse.write_text(json.dumps(record))
        assert main(["bench", "compare", baseline, str(worse)]) == 1
        assert "regression" in capsys.readouterr().out

    def test_compare_json_output(self, tmp_path, capsys):
        import json

        out = self._run(tmp_path, "BENCH_A.json")
        capsys.readouterr()  # drain the `bench run` status line
        assert main(["bench", "compare", out, out, "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["ok"] is True
        assert report["regressions"] == 0

    def test_corpus_mismatch_refused(self, tmp_path, capsys):
        baseline = self._run(tmp_path, "BENCH_A.json")
        other = self._run(tmp_path, "BENCH_B.json", **{"corpus-seed": "9"})
        assert main(["bench", "compare", baseline, other]) == 2
        assert "corpus" in capsys.readouterr().err

    def test_garbage_baseline_exits_two(self, tmp_path, capsys):
        junk = tmp_path / "junk.json"
        junk.write_text("{\"format\": \"other\"}")
        current = self._run(tmp_path, "BENCH_A.json")
        assert main(["bench", "compare", str(junk), current]) == 2
        assert capsys.readouterr().err


class TestCostReportAndProfile:
    def test_search_cost_report_on_stderr(self, dataset_file, capsys):
        assert main(
            ["search", dataset_file, "--query", "a(b,c)", "--range", "1",
             "--cost-report"]
        ) == 0
        err = capsys.readouterr().err
        assert "speedup" in err
        assert "BiBranch" in err

    def test_search_profile_writes_collapsed_stacks(self, dataset_file,
                                                    tmp_path, capsys):
        out = tmp_path / "profile.txt"
        assert main(
            ["search", dataset_file, "--query", "a(b,c)", "--range", "1",
             "--profile", str(out), "--profile-interval", "0"]
        ) == 0
        assert "profile samples" in capsys.readouterr().err
        lines = out.read_text().strip().splitlines()
        assert lines
        for line in lines:
            stack, _, count = line.rpartition(" ")
            assert stack and int(count) > 0

    def test_search_profile_json_document(self, dataset_file, tmp_path):
        import json

        out = tmp_path / "profile.json"
        assert main(
            ["search", dataset_file, "--query", "a(b,c)", "--knn", "2",
             "--profile", str(out), "--profile-interval", "0"]
        ) == 0
        document = json.loads(out.read_text())
        assert document["format"] == "repro-profile"
        assert document["total_samples"] > 0

    def test_serve_bench_cost_report_and_health(self, dataset_file, capsys):
        assert main(
            ["serve-bench", dataset_file, "--queries", "8", "--shards", "2",
             "--cost-report", "--json"]
        ) == 0
        import json

        report = json.loads(capsys.readouterr().out)
        assert "cost_report" in report
        assert len(report["health"]["shards"]) == 2


class TestMetricsShards:
    def test_dump_includes_shard_health_gauges(self, dataset_file, capsys):
        assert main(
            ["metrics", "dump", dataset_file, "--queries", "6", "--shards", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert 'repro_shard_trees{shard="0"}' in out
        assert 'repro_shard_trees{shard="1"}' in out
        assert "repro_shard_stage_seconds" in out
