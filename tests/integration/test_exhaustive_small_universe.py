"""Exhaustive verification over the complete universe of small trees.

Every ordered labeled tree with up to 4 nodes over a 2-letter alphabet is
enumerated (102 trees); for *every* pair the exact distance is computed by
both independent implementations and every lower bound in the library is
checked against it.  Unlike randomized property tests, this leaves no
corner of the small-tree space unexplored.
"""

from itertools import product

import pytest

from repro.core import branch_distance, positional_lower_bound
from repro.editdist import (
    alignment_distance,
    memoized_edit_distance,
    tree_edit_distance,
)
from repro.editdist.variants import (
    constrained_edit_distance,
    selkow_edit_distance,
)
from repro.filters import HistogramFilter
from repro.trees import TreeNode

LABELS = ("A", "B")
MAX_SIZE = 4


def _partitions(total):
    if total == 0:
        return [[]]
    out = []
    for first in range(1, total + 1):
        for rest in _partitions(total - first):
            out.append([first] + rest)
    return out


def _all_trees(size):
    if size == 1:
        return [TreeNode(label) for label in LABELS]
    result = []
    for root_label in LABELS:
        for split in _partitions(size - 1):
            for combo in product(*(_all_trees(part) for part in split)):
                root = TreeNode(root_label)
                for child in combo:
                    root.add_child(child.clone())
                result.append(root)
    return result


@pytest.fixture(scope="module")
def universe():
    trees = []
    for size in range(1, MAX_SIZE + 1):
        trees.extend(_all_trees(size))
    assert len(trees) == 102  # 2 + 4 + 16 + 80
    return trees


@pytest.fixture(scope="module")
def exact_distances(universe):
    distances = {}
    for i, t1 in enumerate(universe):
        for j in range(i, len(universe)):
            distances[(i, j)] = tree_edit_distance(t1, universe[j])
    return distances


def test_both_exact_implementations_agree(universe, exact_distances):
    for (i, j), value in exact_distances.items():
        assert memoized_edit_distance(universe[i], universe[j]) == value


def test_every_lower_bound_holds_everywhere(universe, exact_distances):
    histogram = HistogramFilter().fit(universe)
    for (i, j), exact in exact_distances.items():
        t1, t2 = universe[i], universe[j]
        assert branch_distance(t1, t2) <= 5 * exact
        assert positional_lower_bound(t1, t2) <= exact
        histogram_bound = histogram.bound(
            histogram.data_signature(i), histogram.data_signature(j)
        )
        assert histogram_bound <= exact


def test_every_upper_bound_holds_everywhere(universe, exact_distances):
    for (i, j), exact in exact_distances.items():
        t1, t2 = universe[i], universe[j]
        constrained = constrained_edit_distance(t1, t2)
        assert constrained >= exact
        assert selkow_edit_distance(t1, t2) >= constrained - 1e-9
        assert alignment_distance(t1, t2) >= exact


def test_distance_zero_iff_equal(universe, exact_distances):
    for (i, j), exact in exact_distances.items():
        assert (exact == 0) == (universe[i] == universe[j])


def test_metric_symmetry_on_sample(universe):
    # full symmetry is implied by the implementation; spot-check explicitly
    for i in range(0, len(universe), 7):
        for j in range(1, len(universe), 13):
            assert tree_edit_distance(
                universe[i], universe[j]
            ) == tree_edit_distance(universe[j], universe[i])
