"""Smoke-run the fast example programs.

The examples double as living documentation; this keeps them from rotting.
Only the sub-second examples run here — the heavier ones (clustering, the
benchmark tour) are exercised manually and by the benchmark suite.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "xml_document_search.py",
    "version_management.py",
    "json_config_search.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script, capsys, monkeypatch):
    path = EXAMPLES / script
    assert path.exists(), f"missing example {script}"
    monkeypatch.setattr(sys, "argv", [str(path)])
    runpy.run_path(str(path), run_name="__main__")
    output = capsys.readouterr().out
    assert output.strip(), f"{script} produced no output"


def test_every_example_has_a_docstring_and_main():
    for path in sorted(EXAMPLES.glob("*.py")):
        text = path.read_text()
        assert text.lstrip().startswith('"""'), f"{path.name}: no docstring"
        assert '__name__ == "__main__"' in text, f"{path.name}: no main guard"
        assert "Run with:" in text, f"{path.name}: no run instructions"
