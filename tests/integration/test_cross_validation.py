"""Cross-validation fuzz: every query path must agree with every other.

For a batch of randomized (but seeded) workloads, run all implemented
query strategies — linear filter scan, inverted-file scan, plain k-NN,
tiered k-NN, pairwise join, indexed join — and check they produce
identical answers.  Any soundness bug in any bound, matching routine or
index path shows up here as a divergence.
"""

import random

import pytest

from repro.core import InvertedFileIndex
from repro.datasets import (
    SyntheticSpec,
    generate_dataset,
    generate_dblp_dataset,
)
from repro.editdist import EditDistanceCounter
from repro.filters import (
    BinaryBranchFilter,
    BranchCountFilter,
    HistogramFilter,
    MaxCompositeFilter,
    SizeDifferenceFilter,
    TraversalStringFilter,
    space_parity_histogram_filter,
)
from repro.search import (
    indexed_range_query,
    indexed_similarity_self_join,
    knn_query,
    range_query,
    sequential_knn_query,
    sequential_range_query,
    similarity_self_join,
)
from repro.search.tiered_knn import tiered_knn_query


def workloads():
    yield "synthetic-clustered", generate_dataset(
        SyntheticSpec(size_mean=12, size_stddev=3, label_count=5, decay=0.1),
        count=24, seed_count=4, seed=101,
    )
    yield "synthetic-scattered", generate_dataset(
        SyntheticSpec(size_mean=8, size_stddev=4, label_count=3, decay=0.5),
        count=24, seed_count=12, seed=102,
    )
    yield "dblp-like", generate_dblp_dataset(24, seed=103)


@pytest.mark.parametrize("name,trees", list(workloads()))
def test_all_query_paths_agree(name, trees):
    rng = random.Random(hash(name) & 0xFFFF)
    counter = EditDistanceCounter()
    index = InvertedFileIndex()
    index.add_trees(trees)
    profiles = index.profiles()
    filters = [
        BinaryBranchFilter().fit(trees),
        BranchCountFilter().fit(trees),
        HistogramFilter().fit(trees),
        space_parity_histogram_filter(trees).fit(trees),
        TraversalStringFilter().fit(trees),
        MaxCompositeFilter(
            [BinaryBranchFilter(), SizeDifferenceFilter()]
        ).fit(trees),
    ]
    queries = [trees[rng.randrange(len(trees))] for _ in range(3)]

    for query in queries:
        for threshold in (0, 2, 5):
            truth, _ = sequential_range_query(trees, query, threshold, counter)
            for flt in filters:
                answer, _ = range_query(trees, query, threshold, flt, counter)
                assert answer == truth, (name, flt.name, threshold)
            indexed, _ = indexed_range_query(
                trees, index, query, threshold, counter, profiles=profiles
            )
            assert indexed == truth, (name, "indexed", threshold)

        for k in (1, 4):
            truth_knn, _ = sequential_knn_query(trees, query, k, counter)
            truth_distances = sorted(d for _, d in truth_knn)
            for flt in filters:
                answer, _ = knn_query(trees, query, k, flt, counter)
                assert sorted(d for _, d in answer) == truth_distances
            tiered, _ = tiered_knn_query(trees, query, k, filters[0], counter)
            assert sorted(d for _, d in tiered) == truth_distances

    for threshold in (0, 3):
        truth_join, _ = similarity_self_join(
            trees, threshold, filters[0], counter
        )
        for flt in filters[1:]:
            answer, _ = similarity_self_join(trees, threshold, flt, counter)
            assert answer == truth_join, (name, flt.name)
        indexed_join, _ = indexed_similarity_self_join(
            trees, index, threshold, counter
        )
        assert indexed_join == truth_join, (name, "indexed-join")
