"""Integration tests: the full pipeline on realistic workloads.

These tests exercise generation → indexing → filtering → refinement across
module boundaries and assert the paper's two global guarantees: query
answers are exact (no false negatives survive the pipeline) and the filter
accesses far fewer objects than a sequential scan on clustered data.
"""

import random

import pytest

from repro import TreeDatabase
from repro.bench import average_pairwise_distance, select_queries
from repro.datasets import SyntheticSpec, generate_dataset, generate_dblp_dataset
from repro.filters import (
    BinaryBranchFilter,
    BranchCountFilter,
    HistogramFilter,
    MaxCompositeFilter,
    SizeDifferenceFilter,
    TraversalStringFilter,
)
from repro.search import (
    knn_query,
    range_query,
    sequential_knn_query,
    sequential_range_query,
)

ALL_FILTERS = [
    BinaryBranchFilter,
    BranchCountFilter,
    HistogramFilter,
    TraversalStringFilter,
]


@pytest.fixture(scope="module")
def synthetic_dataset():
    spec = SyntheticSpec(
        fanout_mean=3, fanout_stddev=0.5, size_mean=15, size_stddev=2,
        label_count=6, decay=0.08,
    )
    return generate_dataset(spec, count=40, seed_count=6, seed=2024)


@pytest.fixture(scope="module")
def dblp_dataset():
    return generate_dblp_dataset(40, seed=2024)


class TestExactness:
    @pytest.mark.parametrize("filter_cls", ALL_FILTERS)
    def test_range_queries_exact_on_synthetic(self, synthetic_dataset, filter_cls):
        trees = synthetic_dataset
        flt = filter_cls().fit(trees)
        queries = select_queries(trees, 3, rng=random.Random(1))
        for query in queries:
            for threshold in (0, 2, 5):
                fast, _ = range_query(trees, query, threshold, flt)
                brute, _ = sequential_range_query(trees, query, threshold)
                assert fast == brute

    @pytest.mark.parametrize("filter_cls", ALL_FILTERS)
    def test_knn_queries_exact_on_synthetic(self, synthetic_dataset, filter_cls):
        trees = synthetic_dataset
        flt = filter_cls().fit(trees)
        queries = select_queries(trees, 2, rng=random.Random(2))
        for query in queries:
            for k in (1, 5):
                fast, _ = knn_query(trees, query, k, flt)
                brute, _ = sequential_knn_query(trees, query, k)
                assert sorted(d for _, d in fast) == sorted(d for _, d in brute)

    def test_range_queries_exact_on_dblp(self, dblp_dataset):
        trees = dblp_dataset
        for filter_cls in (BinaryBranchFilter, HistogramFilter):
            flt = filter_cls().fit(trees)
            query = trees[7]
            for threshold in (1, 3, 6):
                fast, _ = range_query(trees, query, threshold, flt)
                brute, _ = sequential_range_query(trees, query, threshold)
                assert fast == brute

    def test_composite_filter_exact(self, synthetic_dataset):
        trees = synthetic_dataset
        flt = MaxCompositeFilter(
            [BinaryBranchFilter(), HistogramFilter(), SizeDifferenceFilter()]
        ).fit(trees)
        query = trees[0]
        fast, _ = range_query(trees, query, 3, flt)
        brute, _ = sequential_range_query(trees, query, 3)
        assert fast == brute


class TestFilterPower:
    def test_bibranch_beats_histogram_on_synthetic_ranges(self, synthetic_dataset):
        """The paper's headline: BiBranch accesses (weakly) less data."""
        trees = synthetic_dataset
        queries = select_queries(trees, 4, rng=random.Random(3))
        threshold = max(1, int(average_pairwise_distance(trees) / 5))
        bibranch = BinaryBranchFilter().fit(trees)
        histogram = HistogramFilter().fit(trees)
        bibranch_accessed = 0
        histogram_accessed = 0
        for query in queries:
            _, stats = range_query(trees, query, threshold, bibranch)
            bibranch_accessed += stats.candidates
            _, stats = range_query(trees, query, threshold, histogram)
            histogram_accessed += stats.candidates
        assert bibranch_accessed <= histogram_accessed

    def test_positional_beats_plain_counts(self, synthetic_dataset):
        trees = synthetic_dataset
        queries = select_queries(trees, 4, rng=random.Random(4))
        positional = BinaryBranchFilter().fit(trees)
        counts = BranchCountFilter().fit(trees)
        for query in queries:
            positional_bounds = positional.bounds(query)
            count_bounds = counts.bounds(query)
            assert all(
                p >= c for p, c in zip(positional_bounds, count_bounds)
            )

    def test_knn_accesses_fraction_of_dataset(self, synthetic_dataset):
        trees = synthetic_dataset
        flt = BinaryBranchFilter().fit(trees)
        query = trees[10]
        _, stats = knn_query(trees, query, 1, flt)
        assert stats.accessed_percentage < 100.0


class TestDatabaseFacadeEndToEnd:
    def test_dblp_workflow(self, dblp_dataset):
        db = TreeDatabase(dblp_dataset)
        query = dblp_dataset[0]
        neighbors, stats = db.knn(query, 5)
        assert len(neighbors) == 5
        assert neighbors[0][1] == 0.0  # the query itself is in the database
        assert stats.candidates <= len(db)
        matches, _ = db.range_query(query, 3)
        assert all(distance <= 3 for _, distance in matches)

    def test_distance_computation_savings(self, synthetic_dataset):
        db = TreeDatabase(synthetic_dataset)
        db.knn(synthetic_dataset[5], 2)
        filtered_calls = db.distance_computations
        brute = TreeDatabase(synthetic_dataset)
        brute.sequential_knn(synthetic_dataset[5], 2)
        assert filtered_calls <= brute.distance_computations
