"""Stateful model test of TreeDatabase.

A hypothesis state machine drives a TreeDatabase through interleaved
insertions and queries, cross-checking every answer against a brute-force
model (a plain list + Zhang–Shasha).  This is the strongest end-to-end
invariant in the suite: no sequence of operations may ever make a filtered
query diverge from the ground truth.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro import TreeDatabase
from repro.editdist import tree_edit_distance
from repro.trees import parse_bracket
from tests.strategies import trees

SEED_TREES = [parse_bracket(t) for t in ["a(b,c)", "a(b)", "x(y,z)"]]


class DatabaseMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self):
        self.model = [tree.clone() for tree in SEED_TREES]
        self.db = TreeDatabase([tree.clone() for tree in SEED_TREES])

    @rule(tree=trees(max_leaves=5))
    def insert(self, tree):
        index = self.db.add(tree.clone())
        self.model.append(tree.clone())
        assert index == len(self.model) - 1

    @rule(query=trees(max_leaves=5), threshold=st.integers(0, 5))
    def range_query(self, query, threshold):
        fast, stats = self.db.range_query(query, threshold)
        expected = [
            (i, tree_edit_distance(query, tree))
            for i, tree in enumerate(self.model)
            if tree_edit_distance(query, tree) <= threshold
        ]
        assert fast == expected
        assert stats.dataset_size == len(self.model)

    @rule(query=trees(max_leaves=5), threshold=st.integers(0, 4))
    def indexed_range_query(self, query, threshold):
        fast, _ = self.db.indexed_range_query(query, threshold)
        expected = [
            (i, tree_edit_distance(query, tree))
            for i, tree in enumerate(self.model)
            if tree_edit_distance(query, tree) <= threshold
        ]
        assert fast == expected

    @rule(query=trees(max_leaves=5), data=st.data())
    def knn(self, query, data):
        k = data.draw(st.integers(1, len(self.model)))
        fast, _ = self.db.knn(query, k)
        brute = sorted(
            tree_edit_distance(query, tree) for tree in self.model
        )[:k]
        assert sorted(distance for _, distance in fast) == brute

    @invariant()
    def sizes_agree(self):
        if hasattr(self, "db"):
            assert len(self.db) == len(self.model)
            assert self.db.filter.size == len(self.model)


TestDatabaseStateMachine = DatabaseMachine.TestCase
TestDatabaseStateMachine.settings = settings(
    max_examples=15, stateful_step_count=12, deadline=None
)
