"""Unit tests for the interned branch-key vocabulary."""

from repro.core.branches import BinaryBranch
from repro.features import Vocabulary


def _branch(root: str) -> BinaryBranch:
    return BinaryBranch(root, "x", "y")


class TestVocabulary:
    def test_intern_assigns_sequential_ids(self):
        vocabulary = Vocabulary()
        assert vocabulary.intern(_branch("a")) == 0
        assert vocabulary.intern(_branch("b")) == 1
        assert vocabulary.intern(_branch("c")) == 2
        assert len(vocabulary) == 3

    def test_intern_is_idempotent(self):
        vocabulary = Vocabulary()
        first = vocabulary.intern(_branch("a"))
        assert vocabulary.intern(_branch("a")) == first
        assert len(vocabulary) == 1

    def test_lookup_never_grows(self):
        vocabulary = Vocabulary()
        assert vocabulary.lookup(_branch("a")) is None
        assert len(vocabulary) == 0
        vocabulary.intern(_branch("a"))
        assert vocabulary.lookup(_branch("a")) == 0

    def test_key_inverts_intern(self):
        vocabulary = Vocabulary()
        for root in "abc":
            dim = vocabulary.intern(_branch(root))
            assert vocabulary.key(dim) == _branch(root)

    def test_iteration_in_id_order(self):
        vocabulary = Vocabulary()
        branches = [_branch(root) for root in "cab"]
        for branch in branches:
            vocabulary.intern(branch)
        assert list(vocabulary) == branches
        assert list(vocabulary.items()) == [
            (branch, index) for index, branch in enumerate(branches)
        ]

    def test_contains(self):
        vocabulary = Vocabulary()
        vocabulary.intern(_branch("a"))
        assert _branch("a") in vocabulary
        assert _branch("b") not in vocabulary
