"""FeatureStore: one-pass extraction must equal the per-artifact builders."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import branch_vector, positional_profile
from repro.exceptions import InvalidParameterError
from repro.features import FeatureStore, extract_features
from repro.trees import parse_bracket
from tests.strategies import trees

FOREST = [
    "a(b(c,d),b(c,d),e)",
    "a(b(c,d,b(e)),c,d,e)",
    "x(y(z),y(z))",
    "a",
]


def _forest():
    return [parse_bracket(text) for text in FOREST]


class TestExtractFeatures:
    @given(trees(max_leaves=10), st.sampled_from([2, 3, 4]))
    @settings(max_examples=60, deadline=None)
    def test_one_pass_equals_per_artifact_builders(self, tree, q):
        features = extract_features(tree, (q,))
        assert features.size == tree.size
        assert features.branch_counts[q] == branch_vector(tree, q=q).counts
        oracle = positional_profile(tree, q=q)
        profile = features.profiles[q]
        assert profile.pre_positions == oracle.pre_positions
        assert profile.post_positions == oracle.post_positions
        assert profile.pairs == oracle.pairs

    def test_traversal_and_histogram_artifacts(self):
        tree = parse_bracket("a(b(c),d)")
        features = extract_features(tree)
        assert features.pre_labels == ["a", "b", "c", "d"]
        assert features.post_labels == ["c", "b", "d", "a"]
        assert features.labels == {"a": 1, "b": 1, "c": 1, "d": 1}
        assert features.degrees == {2: 1, 1: 1, 0: 2}
        assert features.heights == sorted(features.heights)
        assert features.leaf_count == 2

    def test_rejects_bad_q_levels(self):
        tree = parse_bracket("a")
        with pytest.raises(InvalidParameterError):
            extract_features(tree, (1,))
        with pytest.raises(InvalidParameterError):
            extract_features(tree, ())


class TestFeatureStore:
    def test_fit_counts_one_pass_per_tree(self):
        store = FeatureStore().fit(_forest())
        assert len(store) == len(FOREST)
        assert store.extraction_passes == len(FOREST)
        assert store.generation == 0

    def test_add_bumps_generation(self):
        store = FeatureStore().fit(_forest())
        index = store.add(parse_bracket("q(r)"))
        assert index == len(FOREST)
        assert store.generation == 1
        assert store.extraction_passes == len(FOREST) + 1

    def test_profiles_match_oracle(self):
        store = FeatureStore(q_levels=(2, 3)).fit(_forest())
        for index, tree in enumerate(_forest()):
            for q in (2, 3):
                oracle = positional_profile(tree, q=q)
                profile = store.profile(index, q)
                assert profile.pre_positions == oracle.pre_positions
                assert profile.post_positions == oracle.post_positions

    def test_packed_vectors_share_one_vocabulary(self):
        store = FeatureStore().fit(_forest())
        for index, tree in enumerate(_forest()):
            packed = store.packed_vector(index)
            assert packed.to_branch_vector(store.vocabulary).counts == (
                branch_vector(tree).counts
            )
            assert not packed.extra  # index side is always fully interned

    def test_pack_query_is_read_only(self):
        store = FeatureStore().fit(_forest())
        vocabulary_size = len(store.vocabulary)
        packed = store.pack_query(parse_bracket("unseen(label)"))
        assert len(store.vocabulary) == vocabulary_size
        assert packed.extra

    def test_unknown_q_level_raises(self):
        store = FeatureStore().fit(_forest())
        with pytest.raises(InvalidParameterError):
            store.profile(0, q=5)
        with pytest.raises(InvalidParameterError):
            FeatureStore(q_levels=())

    def test_stats_keys(self):
        store = FeatureStore().fit(_forest())
        stats = store.stats()
        assert stats["trees"] == len(FOREST)
        assert stats["extraction_passes"] == len(FOREST)
        assert stats["vocabulary_size"] == len(store.vocabulary)
