"""Property tests for PackedVector edge cases (ISSUE satellite).

The packed L1/overlap must equal the dict-keyed BranchVector reference in
the regimes a vocabulary-interning refactor is most likely to break: empty
vectors, fully disjoint vocabularies, and vocabulary growth between fitting
and querying.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import branch_distance, branch_vector
from repro.features import FeatureStore, Vocabulary, extract_features, pack_counts
from repro.trees import parse_bracket
from tests.strategies import trees


def _pack(tree, vocabulary, q=2, grow=True):
    features = extract_features(tree, (q,))
    return pack_counts(
        features.branch_counts[q], vocabulary, features.size, q, grow=grow
    )


def _relabel_disjoint(tree):
    """Clone with every label moved to a disjoint alphabet."""
    clone = tree.clone()
    for node in clone.iter_preorder():
        node.label = f"Z::{node.label}"
    return clone


class TestEmptyVectors:
    @given(trees(max_leaves=6), st.sampled_from([2, 3]))
    @settings(max_examples=40, deadline=None)
    def test_distance_to_empty_is_total_mass(self, tree, q):
        vocabulary = Vocabulary()
        packed = _pack(tree, vocabulary, q=q)
        empty = pack_counts({}, vocabulary, 0, q)
        assert empty.total == 0
        assert packed.l1_distance(empty) == packed.total
        assert empty.l1_distance(packed) == packed.total
        assert empty.overlap(packed) == 0

    def test_empty_vs_empty(self):
        vocabulary = Vocabulary()
        a = pack_counts({}, vocabulary, 0, 2)
        b = pack_counts({}, vocabulary, 0, 2, grow=False)
        assert a.l1_distance(b) == 0
        assert a.overlap(b) == 0


class TestDisjointVocabularies:
    @given(trees(max_leaves=8), trees(max_leaves=8), st.sampled_from([2, 3]))
    @settings(max_examples=40, deadline=None)
    def test_matches_reference_without_shared_branches(self, t1, t2, q):
        t2 = _relabel_disjoint(t2)
        vocabulary = Vocabulary()
        packed_1 = _pack(t1, vocabulary, q=q)
        packed_2 = _pack(t2, vocabulary, q=q)
        reference = branch_vector(t1, q=q).l1_distance(branch_vector(t2, q=q))
        assert packed_1.l1_distance(packed_2) == reference
        # disjoint labels ⟹ disjoint branches ⟹ no overlap at all
        assert reference == packed_1.total + packed_2.total
        assert packed_1.overlap(packed_2) == 0

    @given(trees(max_leaves=6))
    @settings(max_examples=30, deadline=None)
    def test_disjoint_query_lands_entirely_in_extra(self, tree):
        store = FeatureStore((2,)).fit([tree])
        foreign = _relabel_disjoint(tree)
        query = store.pack_query(foreign, 2)
        # nothing the store interned can appear in the foreign query
        assert len(query.dims) == 0
        assert sum(query.extra.values()) == query.total


class TestVocabularyGrowth:
    @given(
        trees(max_leaves=6), trees(max_leaves=6), trees(max_leaves=6),
        st.sampled_from([2, 3]),
    )
    @settings(max_examples=30, deadline=None)
    def test_growth_between_fit_and_query_keeps_distances(self, t1, t2, t3, q):
        """Interning new branches must not change existing distances.

        A query packed before ``store.add`` grew the vocabulary and one
        packed after must both match the dict-keyed reference — the classic
        failure is a frozen query vector whose ``extra`` keys were interned
        later, silently losing their overlap.
        """
        store = FeatureStore((q,)).fit([t1])
        reference = branch_distance(t1, t2, q=q)
        before = store.pack_query(t2, q)
        assert store.packed_vector(0, q).l1_distance(before) == reference
        store.add(t3)  # may grow the vocabulary
        after = store.pack_query(t2, q)
        assert store.packed_vector(0, q).l1_distance(after) == reference
        assert store.packed_vector(0, q).l1_distance(before) == reference

    def test_fit_then_add_matches_reference_explicitly(self):
        t1 = parse_bracket("a(b,c)")
        t2 = parse_bracket("a(b,d)")
        grower = parse_bracket("d(e,f,g)")
        store = FeatureStore((2,)).fit([t1])
        query = store.pack_query(t2, 2)
        store.add(grower)
        assert store.packed_vector(0, 2).l1_distance(query) == branch_distance(
            t1, t2, q=2
        )
