"""Tests for the corpus-level matrix planes (repro.features.matrix).

The load-bearing property: for every filter family, the vectorized
``refute_rows`` cascade keeps exactly the rows the per-candidate loop
keeps — on random corpora, including after incremental adds — and the
exact ``lower_bounds_matrix`` kernels return exactly ``bounds``.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import InvalidParameterError
from repro.features.io import (
    load_feature_plane,
    load_matrix_sidecar,
    matrix_sidecar_path,
    save_feature_plane,
)
from repro.features.matrix import FeatureMatrices, MatrixPlane
from repro.features.store import FeatureStore
from repro.filters.binary_branch import BinaryBranchFilter, BranchCountFilter
from repro.filters.composite import MaxCompositeFilter, SizeDifferenceFilter
from repro.filters.histogram import (
    DegreeHistogramFilter,
    HistogramFilter,
    LabelHistogramFilter,
)
from repro.trees.parse import parse_bracket

from tests.strategies import trees

FAMILIES = [
    ("bibranch", BinaryBranchFilter),
    ("bibranchcount", BranchCountFilter),
    ("histogram", HistogramFilter),
    (
        "histogram-folded",
        lambda: HistogramFilter(label_bins=3, degree_bins=3, height_cap=3),
    ),
    ("histo-label", LabelHistogramFilter),
    ("histo-degree", DegreeHistogramFilter),
    ("sizediff", SizeDifferenceFilter),
    (
        "composite",
        lambda: MaxCompositeFilter(
            [BranchCountFilter(), SizeDifferenceFilter(), HistogramFilter()]
        ),
    ),
]


def _loop_survivors(flt, query_signature, threshold, count):
    return [
        index
        for index in range(count)
        if not flt.refutes(query_signature, flt.data_signature(index), threshold)
    ]


# ----------------------------------------------------------------------
# MatrixPlane unit behavior
# ----------------------------------------------------------------------
class TestMatrixPlane:
    def test_append_grows_both_axes(self):
        plane = MatrixPlane("t")
        for row in range(20):
            plane.append([row], [row + 1])
        assert plane.rows == 20
        assert plane.width == 20
        assert plane.matrix[7, 7] == 8
        assert plane.matrix[7, 3] == 0
        assert plane.row_totals[7] == 8

    def test_append_unsorted_dims(self):
        plane = MatrixPlane("t")
        plane.append([5, 1, 9], [2, 3, 4])
        assert plane.width == 10
        assert plane.matrix[0, 9] == 4
        assert plane.row_totals[0] == 9

    def test_widen_exposes_zero_columns(self):
        plane = MatrixPlane("t")
        plane.append([0], [7])
        plane.ensure_width(100)
        assert plane.width == 100
        assert plane.matrix.shape == (1, 100)
        assert plane.matrix[0, 99] == 0

    def test_explicit_total_overrides_sum(self):
        plane = MatrixPlane("t")
        plane.append([0, 1], [1, 1], total=5)
        assert plane.row_totals[0] == 5

    def test_l1_matches_dict_l1(self):
        plane = MatrixPlane("t")
        rows = [{0: 2, 3: 1}, {1: 4}, {0: 1, 1: 1, 2: 1}]
        for counts in rows:
            plane.append(list(counts), list(counts.values()))
        query = {0: 1, 2: 2, 7: 3}  # dim 7 is outside the plane

        def dict_l1(a, b):
            keys = set(a) | set(b)
            return sum(abs(a.get(k, 0) - b.get(k, 0)) for k in keys)

        dims = np.array([0, 2], dtype=np.int64)
        counts = np.array([1, 2], dtype=np.int64)
        got = plane.l1(dims, counts, total=6)
        expected = [dict_l1(query, row) for row in rows]
        assert list(got) == expected
        # row-subset gather agrees with the full pass
        got_subset = plane.l1(dims, counts, total=6, rows=[2, 0])
        assert list(got_subset) == [expected[2], expected[0]]

    def test_adopt_rejects_misaligned(self):
        plane = MatrixPlane("t")
        with pytest.raises(InvalidParameterError):
            plane.adopt(np.zeros((3, 2)), np.zeros(2))


# ----------------------------------------------------------------------
# Survivor-set equivalence: matrix cascade == per-candidate loop
# ----------------------------------------------------------------------
@pytest.mark.parametrize("label,factory", FAMILIES)
@settings(max_examples=25, deadline=None)
@given(
    corpus=st.lists(trees(max_leaves=6), min_size=3, max_size=8),
    added=st.lists(trees(max_leaves=6), min_size=0, max_size=3),
    query=trees(max_leaves=6),
    threshold=st.sampled_from([0.0, 1.0, 2.0, 4.0]),
)
def test_refute_rows_equals_loop(label, factory, corpus, added, query, threshold):
    flt = factory().fit(corpus)
    store = FeatureStore(flt.required_q_levels() or (2,)).fit(corpus)
    matrices = store.matrices()
    for phase_trees in ([], added):
        for tree in phase_trees:
            flt.add(tree)
            store.add(tree)
        count = flt.size
        query_signature = flt.signature(query)
        expected = _loop_survivors(flt, query_signature, threshold, count)
        got = list(
            flt.refute_rows(query_signature, threshold, range(count), matrices)
        )
        assert [int(i) for i in got] == expected, (
            f"{label}: matrix survivors diverge at τ={threshold}"
        )


@pytest.mark.parametrize(
    "label,factory",
    [
        ("bibranchcount", BranchCountFilter),
        ("sizediff", SizeDifferenceFilter),
        ("histo-label", LabelHistogramFilter),
        ("histo-degree", DegreeHistogramFilter),
        (
            "composite",
            lambda: MaxCompositeFilter(
                [BranchCountFilter(), SizeDifferenceFilter()]
            ),
        ),
    ],
)
@settings(max_examples=25, deadline=None)
@given(
    corpus=st.lists(trees(max_leaves=6), min_size=3, max_size=8),
    query=trees(max_leaves=6),
)
def test_lower_bounds_matrix_exact(label, factory, corpus, query):
    """Exact kernels must reproduce ``bounds`` to the last bit (knn rule)."""
    flt = factory().fit(corpus)
    store = FeatureStore(flt.required_q_levels() or (2,)).fit(corpus)
    matrices = store.matrices()
    query_signature = flt.signature(query)
    vectorized = flt.lower_bounds_matrix(query_signature, matrices)
    assert vectorized is not None, f"{label}: kernel unexpectedly unavailable"
    assert [float(v) for v in vectorized] == [
        float(b) for b in flt.bounds(query)
    ]


def test_folded_histogram_falls_back_to_loop():
    corpus = [parse_bracket(b) for b in ["a(b,c)", "a(b(c,d))", "e"]]
    flt = HistogramFilter(label_bins=2, degree_bins=2, height_cap=2).fit(corpus)
    store = FeatureStore((2,)).fit(corpus)
    query = parse_bracket("a(b)")
    signature = flt.signature(query)
    got = list(flt.refute_rows(signature, 1.0, range(3), store.matrices()))
    assert got == _loop_survivors(flt, signature, 1.0, 3)
    assert flt.lower_bounds_matrix(signature, store.matrices()) is None


def test_standalone_filter_translates_vocabulary():
    """A filter fitted outside the store still gets loop-identical values."""
    corpus = [parse_bracket(b) for b in ["a(b,c)", "x(y)", "a(b(c))", "d"]]
    flt = BranchCountFilter().fit(corpus)  # own vocabulary
    store = FeatureStore((2,)).fit(list(reversed(corpus)))  # different ids
    matrices = store.matrices()
    query = parse_bracket("a(b,z)")
    signature = flt.signature(query)
    vectorized = flt.lower_bounds_matrix(signature, matrices)
    # the store indexes the corpus reversed, so compare per-tree by content
    reference = BranchCountFilter().fit(list(reversed(corpus)))
    assert [float(v) for v in vectorized] == [
        float(b) for b in reference.bounds(query)
    ]


# ----------------------------------------------------------------------
# FeatureMatrices sync + stats
# ----------------------------------------------------------------------
def test_matrices_sync_after_add():
    store = FeatureStore((2,)).fit([parse_bracket("a(b)"), parse_bracket("c")])
    matrices = store.matrices()
    assert matrices.branch_plane(2).rows == 2
    store.add(parse_bracket("a(b,c)"))
    assert matrices.branch_plane(2).rows == 3
    assert len(matrices.size_column()) == 3
    assert int(matrices.size_column()[2]) == 3


def test_stats_reports_every_family():
    store = FeatureStore((2,)).fit(
        [parse_bracket("a(b,c)"), parse_bracket("a(b(d))")]
    )
    stats = store.matrices().stats()
    assert set(stats) == {
        "branch-q2", "histogram-labels", "histogram-degrees", "sizes"
    }
    for shape in stats.values():
        assert shape["rows"] == 2
        assert shape["dtype"] == "int64"
        assert shape["bytes"] > 0


# ----------------------------------------------------------------------
# Sidecar persistence
# ----------------------------------------------------------------------
def test_sidecar_roundtrip(tmp_path):
    corpus = [parse_bracket(b) for b in ["a(b,c)", "a(b(d),c)", "x(y,z(w))"]]
    store = FeatureStore((2,)).fit(corpus)
    fresh = store.matrices().branch_plane(2)
    path = tmp_path / "plane.json"
    save_feature_plane(store, str(path))
    assert (tmp_path / "plane.json.matrices.npz").exists()
    assert matrix_sidecar_path(str(path)).endswith(".matrices.npz")

    restored = load_feature_plane(str(path))
    adopted = restored.matrices().branch_plane(2)
    assert np.array_equal(adopted.matrix, fresh.matrix)
    assert np.array_equal(adopted.row_totals, fresh.row_totals)
    # incremental add keeps working on an adopted plane
    restored.add(parse_bracket("q(r)"))
    assert restored.matrices().branch_plane(2).rows == 4


def test_stale_sidecar_is_rejected(tmp_path):
    corpus = [parse_bracket(b) for b in ["a(b)", "c(d)"]]
    store = FeatureStore((2,)).fit(corpus)
    path = tmp_path / "plane.json"
    save_feature_plane(store, str(path))
    other = FeatureStore((2,)).fit(corpus + [parse_bracket("e")])
    assert load_matrix_sidecar(other, str(path)) is False


def test_missing_sidecar_rebuilds_lazily(tmp_path):
    corpus = [parse_bracket(b) for b in ["a(b)", "c(d)"]]
    store = FeatureStore((2,)).fit(corpus)
    path = tmp_path / "plane.json"
    save_feature_plane(store, str(path))
    (tmp_path / "plane.json.matrices.npz").unlink()
    restored = load_feature_plane(str(path))
    rebuilt = restored.matrices().branch_plane(2)
    assert np.array_equal(rebuilt.matrix, store.matrices().branch_plane(2).matrix)
