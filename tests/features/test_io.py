"""Feature-plane persistence: lossless round trip, zero re-extraction."""

import pytest

from repro.exceptions import TreeParseError
from repro.features import FeatureStore, load_feature_plane, save_feature_plane
from repro.trees import parse_bracket

FOREST = [
    "a(b(c,d),b(c,d),e)",
    "a(b(c,d,b(e)),c,d,e)",
    "x(y(z),y(z))",
    "a",
]


@pytest.fixture
def store():
    return FeatureStore(q_levels=(2, 3)).fit(
        [parse_bracket(text) for text in FOREST]
    )


class TestFeaturePlaneRoundTrip:
    def test_loaded_store_performs_no_extraction(self, store, tmp_path):
        path = tmp_path / "plane.json"
        save_feature_plane(store, path)
        loaded = load_feature_plane(path)
        assert loaded.extraction_passes == 0

    def test_round_trip_is_lossless(self, store, tmp_path):
        path = tmp_path / "plane.json"
        save_feature_plane(store, path)
        loaded = load_feature_plane(path)
        assert loaded.q_levels == store.q_levels
        assert loaded.generation == store.generation
        assert list(loaded.vocabulary) == list(store.vocabulary)
        for index in range(len(store)):
            original, restored = store.features(index), loaded.features(index)
            assert restored.size == original.size
            assert restored.labels == original.labels
            assert restored.degrees == original.degrees
            assert restored.heights == original.heights
            assert restored.pre_labels == original.pre_labels
            assert restored.post_labels == original.post_labels
            assert restored.leaf_count == original.leaf_count
            for q in store.q_levels:
                assert loaded.packed_vector(index, q) == store.packed_vector(index, q)
                assert restored.profiles[q].pre_positions == original.profiles[q].pre_positions
                assert restored.profiles[q].post_positions == original.profiles[q].post_positions
                assert restored.profiles[q].pairs == original.profiles[q].pairs

    def test_generation_survives_round_trip(self, store, tmp_path):
        store.add(parse_bracket("q(r,s)"))
        path = tmp_path / "plane.json"
        save_feature_plane(store, path)
        loaded = load_feature_plane(path)
        assert loaded.generation == 1
        assert len(loaded) == len(store)

    def test_loaded_store_accepts_incremental_add(self, store, tmp_path):
        path = tmp_path / "plane.json"
        save_feature_plane(store, path)
        loaded = load_feature_plane(path)
        index = loaded.add(parse_bracket("new(tree)"))
        assert index == len(FOREST)
        assert loaded.extraction_passes == 1  # only the new tree was walked
        assert loaded.packed_vector(index).tree_size == 2

    def test_rejects_foreign_documents(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text('{"format": "something-else"}')
        with pytest.raises(TreeParseError):
            load_feature_plane(path)
