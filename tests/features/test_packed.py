"""Packed vectors must be value-identical to the dict-based BranchVector."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import branch_vector
from repro.exceptions import SignatureMismatchError
from repro.features import Vocabulary, extract_features, pack_counts
from repro.trees import parse_bracket
from tests.strategies import tree_pairs, trees


def _pack(tree, vocabulary, q=2, grow=True):
    features = extract_features(tree, (q,))
    return pack_counts(
        features.branch_counts[q], vocabulary, features.size, q, grow=grow
    )


class TestPackedVector:
    @given(tree_pairs(), st.sampled_from([2, 3]))
    @settings(max_examples=60, deadline=None)
    def test_matches_dict_oracle(self, pair, q):
        vocabulary = Vocabulary()
        packed_a = _pack(pair[0], vocabulary, q=q)
        packed_b = _pack(pair[1], vocabulary, q=q)
        oracle_a = branch_vector(pair[0], q=q)
        oracle_b = branch_vector(pair[1], q=q)
        assert packed_a.l1_distance(packed_b) == oracle_a.l1_distance(oracle_b)
        assert packed_a.overlap(packed_b) == oracle_a.overlap(oracle_b)

    @given(trees(max_leaves=8), trees(max_leaves=8))
    @settings(max_examples=60, deadline=None)
    def test_query_side_extra_is_exact(self, data_tree, query_tree):
        """grow=False packing (unseen branches in ``extra``) stays exact."""
        vocabulary = Vocabulary()
        packed_data = _pack(data_tree, vocabulary, grow=True)
        packed_query = _pack(query_tree, vocabulary, grow=False)
        oracle_data = branch_vector(data_tree)
        oracle_query = branch_vector(query_tree)
        assert packed_query.l1_distance(packed_data) == (
            oracle_query.l1_distance(oracle_data)
        )
        assert packed_query.overlap(packed_data) == oracle_query.overlap(oracle_data)

    def test_query_packing_never_grows_vocabulary(self):
        vocabulary = Vocabulary()
        _pack(parse_bracket("a(b,c)"), vocabulary, grow=True)
        size = len(vocabulary)
        packed = _pack(parse_bracket("z(w)"), vocabulary, grow=False)
        assert len(vocabulary) == size
        assert packed.extra  # unseen branches kept by raw key

    def test_two_extra_vectors_compare_by_raw_key(self):
        """Two all-out-of-vocabulary vectors still get exact distances."""
        vocabulary = Vocabulary()
        packed_a = _pack(parse_bracket("a(b,c)"), vocabulary, grow=False)
        packed_b = _pack(parse_bracket("a(b,d)"), vocabulary, grow=False)
        oracle_a = branch_vector(parse_bracket("a(b,c)"))
        oracle_b = branch_vector(parse_bracket("a(b,d)"))
        assert packed_a.l1_distance(packed_b) == oracle_a.l1_distance(oracle_b)

    def test_q_mismatch_raises(self):
        vocabulary = Vocabulary()
        packed_2 = _pack(parse_bracket("a(b)"), vocabulary, q=2)
        packed_3 = _pack(parse_bracket("a(b)"), vocabulary, q=3)
        with pytest.raises(SignatureMismatchError):
            packed_2.l1_distance(packed_3)
        # the typed error still satisfies legacy ValueError handlers
        with pytest.raises(ValueError):
            packed_2.overlap(packed_3)

    def test_dims_are_strictly_ascending(self):
        vocabulary = Vocabulary()
        packed = _pack(parse_bracket("a(b(c),b(c),d)"), vocabulary)
        assert list(packed.dims) == sorted(set(packed.dims))

    def test_to_branch_vector_round_trip(self):
        vocabulary = Vocabulary()
        tree = parse_bracket("a(b(c,d),e)")
        packed = _pack(tree, vocabulary)
        assert packed.to_branch_vector(vocabulary).counts == branch_vector(tree).counts
