"""Unit and property tests for string edit distance."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.editdist import string_edit_distance, string_edit_distance_bounded

short_strings = st.text(alphabet="abc", max_size=12)


class TestKnownValues:
    def test_classic(self):
        assert string_edit_distance("kitten", "sitting") == 3

    def test_identical(self):
        assert string_edit_distance("abc", "abc") == 0

    def test_empty_vs_nonempty(self):
        assert string_edit_distance("", "abc") == 3
        assert string_edit_distance("abc", "") == 3

    def test_both_empty(self):
        assert string_edit_distance("", "") == 0

    def test_works_on_lists(self):
        assert string_edit_distance(["x", "y"], ["x", "z"]) == 1

    def test_substitution_costs_one(self):
        assert string_edit_distance("abc", "axc") == 1


class TestProperties:
    @given(short_strings, short_strings)
    @settings(max_examples=80, deadline=None)
    def test_symmetry(self, a, b):
        assert string_edit_distance(a, b) == string_edit_distance(b, a)

    @given(short_strings, short_strings, short_strings)
    @settings(max_examples=60, deadline=None)
    def test_triangle(self, a, b, c):
        dab = string_edit_distance(a, b)
        dbc = string_edit_distance(b, c)
        dac = string_edit_distance(a, c)
        assert dac <= dab + dbc

    @given(short_strings, short_strings)
    @settings(max_examples=80, deadline=None)
    def test_bounded_by_lengths(self, a, b):
        distance = string_edit_distance(a, b)
        assert abs(len(a) - len(b)) <= distance <= max(len(a), len(b))


class TestBoundedVariant:
    def test_within_bound_returns_distance(self):
        assert string_edit_distance_bounded("kitten", "sitting", 3) == 3
        assert string_edit_distance_bounded("kitten", "sitting", 10) == 3

    def test_exceeding_bound_returns_none(self):
        assert string_edit_distance_bounded("kitten", "sitting", 2) is None

    def test_length_pruning(self):
        assert string_edit_distance_bounded("a", "aaaaaaa", 3) is None

    def test_zero_bound(self):
        assert string_edit_distance_bounded("abc", "abc", 0) == 0
        assert string_edit_distance_bounded("abc", "abd", 0) is None

    def test_negative_bound(self):
        assert string_edit_distance_bounded("a", "a", -1) is None

    def test_empty_strings(self):
        assert string_edit_distance_bounded("", "", 0) == 0
        assert string_edit_distance_bounded("", "ab", 1) is None
        assert string_edit_distance_bounded("", "ab", 2) == 2

    @given(short_strings, short_strings, st.integers(0, 12))
    @settings(max_examples=100, deadline=None)
    def test_agrees_with_unbounded(self, a, b, bound):
        exact = string_edit_distance(a, b)
        bounded = string_edit_distance_bounded(a, b, bound)
        if exact <= bound:
            assert bounded == exact
        else:
            assert bounded is None
