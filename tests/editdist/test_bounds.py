"""Unit and property tests for the trivial distance bounds."""

from hypothesis import given, settings

from repro.editdist import (
    label_lower_bound,
    naive_upper_bound,
    size_lower_bound,
    tree_edit_distance,
    weighted_costs,
)
from repro.trees import parse_bracket
from tests.strategies import tree_pairs


class TestSizeBound:
    def test_known(self):
        assert size_lower_bound(parse_bracket("a"), parse_bracket("a(b,c)")) == 2

    def test_symmetric(self):
        t1, t2 = parse_bracket("a(b)"), parse_bracket("a")
        assert size_lower_bound(t1, t2) == size_lower_bound(t2, t1) == 1

    @given(tree_pairs())
    @settings(max_examples=50, deadline=None)
    def test_is_lower_bound(self, pair):
        t1, t2 = pair
        assert size_lower_bound(t1, t2) <= tree_edit_distance(t1, t2)


class TestLabelBound:
    def test_known(self):
        # labels {a,b} vs {a,x,y}: L1 = 1(b) + 1(x) + 1(y) + 1(size) ... = 3
        t1, t2 = parse_bracket("a(b)"), parse_bracket("a(x,y)")
        assert label_lower_bound(t1, t2) == 2  # ceil(3/2)

    @given(tree_pairs())
    @settings(max_examples=50, deadline=None)
    def test_is_lower_bound(self, pair):
        t1, t2 = pair
        assert label_lower_bound(t1, t2) <= tree_edit_distance(t1, t2)


class TestUpperBound:
    def test_known(self):
        assert naive_upper_bound(parse_bracket("a"), parse_bracket("b(c)")) == 3

    def test_weighted(self):
        costs = weighted_costs(delete_cost=2.0, insert_cost=3.0)
        assert naive_upper_bound(parse_bracket("a"), parse_bracket("b(c)"), costs) == 8

    @given(tree_pairs())
    @settings(max_examples=50, deadline=None)
    def test_is_upper_bound(self, pair):
        t1, t2 = pair
        assert tree_edit_distance(t1, t2) <= naive_upper_bound(t1, t2)
