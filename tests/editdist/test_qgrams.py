"""Unit and property tests for string q-grams (the §3.4 analogy substrate)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.editdist import (
    positional_qgrams,
    qgram_distance,
    qgram_lower_bound,
    qgram_overlap,
    qgram_profile,
    qgrams,
    shares_enough_qgrams,
    string_edit_distance,
)

words = st.text(alphabet="abcd", max_size=15)


class TestExtraction:
    def test_qgrams_of_string(self):
        assert qgrams("abcd", 2) == [("a", "b"), ("b", "c"), ("c", "d")]

    def test_q_longer_than_string(self):
        assert qgrams("ab", 3) == []

    def test_q_one(self):
        assert qgrams("aba", 1) == [("a",), ("b",), ("a",)]

    def test_invalid_q(self):
        with pytest.raises(ValueError):
            qgrams("abc", 0)

    def test_profile_counts_duplicates(self):
        profile = qgram_profile("aaa", 2)
        assert profile[("a", "a")] == 2

    def test_positional_qgrams(self):
        assert positional_qgrams("abc", 2) == [(1, ("a", "b")), (2, ("b", "c"))]


class TestDistances:
    def test_overlap(self):
        assert qgram_overlap("abcd", "abcx", 2) == 2  # ab, bc

    def test_distance_identical(self):
        assert qgram_distance("abab", "abab", 2) == 0

    def test_distance_disjoint(self):
        assert qgram_distance("aaa", "bbb", 2) == 4

    @given(words, words, st.integers(1, 3))
    @settings(max_examples=80, deadline=None)
    def test_lower_bound_property(self, a, b, q):
        """ceil(L1/2q) never exceeds the true string edit distance."""
        assert qgram_lower_bound(a, b, q) <= string_edit_distance(a, b)

    @given(words, words, st.integers(1, 3))
    @settings(max_examples=80, deadline=None)
    def test_distance_symmetry(self, a, b, q):
        assert qgram_distance(a, b, q) == qgram_distance(b, a, q)


class TestCountFilter:
    @given(words, words, st.integers(1, 3))
    @settings(max_examples=100, deadline=None)
    def test_ukkonen_filter_is_sound(self, a, b, q):
        """If the filter says 'cannot be within k', the distance exceeds k."""
        k = string_edit_distance(a, b)
        assert shares_enough_qgrams(a, b, q, k)

    def test_filter_rejects_distant_strings(self):
        assert not shares_enough_qgrams("aaaaaaaa", "bbbbbbbb", 2, 1)

    def test_trivial_threshold_accepts(self):
        assert shares_enough_qgrams("ab", "cd", 2, 5)
