"""Unit and property tests for the restricted edit-distance variants."""

import pytest
from hypothesis import given, settings

from repro.editdist import tree_edit_distance, weighted_costs
from repro.editdist.variants import (
    constrained_edit_distance,
    selkow_edit_distance,
)
from repro.trees import parse_bracket
from tests.strategies import tree_pairs, trees


def both(a, b):
    t1, t2 = parse_bracket(a), parse_bracket(b)
    return selkow_edit_distance(t1, t2), constrained_edit_distance(t1, t2)


class TestKnownValues:
    def test_identical(self):
        assert both("a(b(c),d)", "a(b(c),d)") == (0.0, 0.0)

    def test_single_relabel(self):
        assert both("a(b)", "a(c)") == (1.0, 1.0)

    def test_leaf_deletion(self):
        assert both("a(b,c)", "a(b)") == (1.0, 1.0)

    def test_inner_deletion_costs_more_for_restricted_variants(self):
        # deleting inner node b (splicing c, d up) is one general edit
        # operation, but it maps the separate subtrees {c,d} and {e} of T2's
        # single subtree structure in a way the constrained condition
        # forbids (§2.1), and Selkow cannot delete inner nodes at all
        t1, t2 = parse_bracket("a(b(c,d),e)"), parse_bracket("a(c,d,e)")
        assert tree_edit_distance(t1, t2) == 1
        assert constrained_edit_distance(t1, t2) == 3
        assert selkow_edit_distance(t1, t2) == 4

    def test_root_relabel(self):
        assert both("a(x,y)", "b(x,y)") == (1.0, 1.0)

    def test_disjoint(self):
        # relabel root + two leaf inserts is possible for all variants
        assert both("a", "x(y,z)") == (3.0, 3.0)


class TestUpperBoundHierarchy:
    @given(tree_pairs(max_leaves=7))
    @settings(max_examples=80, deadline=None)
    def test_constrained_bounds_general(self, pair):
        t1, t2 = pair
        assert constrained_edit_distance(t1, t2) >= tree_edit_distance(t1, t2)

    @given(tree_pairs(max_leaves=7))
    @settings(max_examples=80, deadline=None)
    def test_selkow_bounds_constrained(self, pair):
        t1, t2 = pair
        assert selkow_edit_distance(t1, t2) >= constrained_edit_distance(
            t1, t2
        ) - 1e-9

    @given(tree_pairs(max_leaves=7))
    @settings(max_examples=60, deadline=None)
    def test_both_below_naive_upper_bound(self, pair):
        from repro.editdist import naive_upper_bound

        t1, t2 = pair
        # even Selkow can always relabel the root and rebuild below
        ceiling = naive_upper_bound(t1, t2)
        assert selkow_edit_distance(t1, t2) <= ceiling
        assert constrained_edit_distance(t1, t2) <= ceiling


class TestMetricAxioms:
    @given(trees(max_leaves=7))
    @settings(max_examples=40, deadline=None)
    def test_identity(self, tree):
        assert selkow_edit_distance(tree, tree.clone()) == 0
        assert constrained_edit_distance(tree, tree.clone()) == 0

    @given(tree_pairs(max_leaves=7))
    @settings(max_examples=60, deadline=None)
    def test_symmetry(self, pair):
        t1, t2 = pair
        assert selkow_edit_distance(t1, t2) == pytest.approx(
            selkow_edit_distance(t2, t1)
        )
        assert constrained_edit_distance(t1, t2) == pytest.approx(
            constrained_edit_distance(t2, t1)
        )

    @given(tree_pairs(max_leaves=5), trees(max_leaves=5))
    @settings(max_examples=30, deadline=None)
    def test_triangle_inequality(self, pair, t3):
        t1, t2 = pair
        for metric in (selkow_edit_distance, constrained_edit_distance):
            assert metric(t1, t3) <= metric(t1, t2) + metric(t2, t3) + 1e-9


class TestWeightedCosts:
    def test_selkow_weighted(self):
        costs = weighted_costs(delete_cost=3.0, insert_cost=2.0,
                               relabel_cost=1.0)
        t1, t2 = parse_bracket("a(b)"), parse_bracket("a")
        assert selkow_edit_distance(t1, t2, costs) == 3.0

    def test_constrained_weighted(self):
        costs = weighted_costs(delete_cost=3.0, insert_cost=2.0,
                               relabel_cost=1.0)
        t1, t2 = parse_bracket("a"), parse_bracket("a(b)")
        assert constrained_edit_distance(t1, t2, costs) == 2.0

    @given(tree_pairs(max_leaves=6))
    @settings(max_examples=30, deadline=None)
    def test_weighted_upper_bound_property(self, pair):
        t1, t2 = pair
        costs = weighted_costs(1.5, 2.0, 0.5)
        assert constrained_edit_distance(t1, t2, costs) >= tree_edit_distance(
            t1, t2, costs
        ) - 1e-9
