"""Unit and property tests for edit-mapping recovery."""

from hypothesis import given, settings

from repro.editdist import (
    is_valid_mapping,
    mapping_cost,
    tree_edit_distance,
    tree_edit_mapping,
    weighted_costs,
)
from repro.trees import parse_bracket
from tests.strategies import tree_pairs


class TestKnownMappings:
    def test_identical_trees_full_mapping(self):
        tree = parse_bracket("a(b(c,d),e)")
        mapping = tree_edit_mapping(tree, tree.clone())
        assert mapping.cost == 0
        assert len(mapping.pairs) == tree.size
        assert mapping.summary() == {"relabel": 0, "delete": 0, "insert": 0}

    def test_single_relabel(self):
        mapping = tree_edit_mapping(parse_bracket("a(b)"), parse_bracket("a(x)"))
        assert mapping.cost == 1
        assert [(a.label, b.label) for a, b in mapping.relabeled] == [("b", "x")]

    def test_deletion(self):
        mapping = tree_edit_mapping(parse_bracket("a(b,c)"), parse_bracket("a(b)"))
        assert mapping.cost == 1
        assert [n.label for n in mapping.deleted] == ["c"]
        assert mapping.inserted == []

    def test_insertion(self):
        mapping = tree_edit_mapping(parse_bracket("a(b)"), parse_bracket("a(b,c)"))
        assert [n.label for n in mapping.inserted] == ["c"]

    def test_paper_figure_1(self):
        t1 = parse_bracket("a(b(c,d),b(c,d),e)")
        t2 = parse_bracket("a(b(c,d,b(e)),c,d,e)")
        mapping = tree_edit_mapping(t1, t2)
        assert mapping.cost == 3
        summary = mapping.summary()
        # 9 = 8 - deletes + inserts and relabel + delete + insert = 3
        assert summary["insert"] - summary["delete"] == 1
        assert sum(summary.values()) == 3

    def test_operations_listing(self):
        mapping = tree_edit_mapping(parse_bracket("a(b)"), parse_bracket("a(x,y)"))
        operations = mapping.operations()
        assert len(operations) == mapping.cost
        assert any(op.startswith(("relabel", "insert", "delete")) for op in operations)


class TestMappingProperties:
    @given(tree_pairs(max_leaves=7))
    @settings(max_examples=60, deadline=None)
    def test_cost_equals_edit_distance(self, pair):
        t1, t2 = pair
        mapping = tree_edit_mapping(t1, t2)
        assert mapping.cost == tree_edit_distance(t1, t2)

    @given(tree_pairs(max_leaves=7))
    @settings(max_examples=60, deadline=None)
    def test_recovered_mapping_is_valid(self, pair):
        t1, t2 = pair
        mapping = tree_edit_mapping(t1, t2)
        assert is_valid_mapping(mapping.pairs, t1, t2)

    @given(tree_pairs(max_leaves=7))
    @settings(max_examples=60, deadline=None)
    def test_tais_formula_reproduces_cost(self, pair):
        t1, t2 = pair
        mapping = tree_edit_mapping(t1, t2)
        assert mapping_cost(mapping.pairs, t1, t2) == mapping.cost

    @given(tree_pairs(max_leaves=6))
    @settings(max_examples=30, deadline=None)
    def test_weighted_mapping_cost_consistent(self, pair):
        t1, t2 = pair
        costs = weighted_costs(delete_cost=2.0, insert_cost=1.0, relabel_cost=1.5)
        mapping = tree_edit_mapping(t1, t2, costs)
        assert abs(mapping_cost(mapping.pairs, t1, t2, costs) - mapping.cost) < 1e-9
        assert abs(mapping.cost - tree_edit_distance(t1, t2, costs)) < 1e-9


class TestValidityChecker:
    def test_rejects_double_mapping(self):
        t1, t2 = parse_bracket("a(b)"), parse_bracket("a(b)")
        assert not is_valid_mapping([(0, 0), (0, 1)], t1, t2)
        assert not is_valid_mapping([(0, 0), (1, 0)], t1, t2)

    def test_rejects_order_violation(self):
        # crossing postorder vs preorder orders
        t1, t2 = parse_bracket("a(b,c)"), parse_bracket("a(b,c)")
        # postorder: b=0 c=1 a=2 — mapping b->c and c->b crosses
        assert not is_valid_mapping([(0, 1), (1, 0)], t1, t2)

    def test_rejects_ancestor_violation(self):
        t1 = parse_bracket("a(b)")  # postorder: b=0 a=1
        t2 = parse_bracket("x(y)")
        # map a->y (descendant) and b->x (ancestor): inverted
        assert not is_valid_mapping([(1, 0), (0, 1)], t1, t2)

    def test_accepts_identity(self):
        t1 = parse_bracket("a(b,c)")
        assert is_valid_mapping([(0, 0), (1, 1), (2, 2)], t1, t1.clone())

    def test_accepts_empty(self):
        assert is_valid_mapping([], parse_bracket("a"), parse_bracket("b"))
