"""Unit and property tests for the Zhang–Shasha edit distance."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.editdist import (
    EditDistanceCounter,
    memoized_edit_distance,
    naive_upper_bound,
    prepare_tree,
    size_lower_bound,
    tree_edit_distance,
    weighted_costs,
)
from repro.trees import parse_bracket, random_edit_script
from tests.strategies import tree_pairs, trees

LABELS = ["a", "b", "c"]


def ted(a, b):
    return tree_edit_distance(parse_bracket(a), parse_bracket(b))


class TestKnownDistances:
    def test_identical(self):
        assert ted("a(b(c,d),e)", "a(b(c,d),e)") == 0

    def test_single_relabel(self):
        assert ted("a(b,c)", "a(b,x)") == 1

    def test_root_relabel(self):
        assert ted("a(b,c)", "x(b,c)") == 1

    def test_single_leaf_delete(self):
        assert ted("a(b,c)", "a(b)") == 1

    def test_inner_delete_splices(self):
        # deleting b lifts c and d
        assert ted("a(b(c,d),e)", "a(c,d,e)") == 1

    def test_leaves_vs_chain(self):
        # a(b,c) -> a(b(c)) : one delete + one insert (move c under b)
        assert ted("a(b,c)", "a(b(c))") == 2

    def test_completely_disjoint(self):
        assert ted("a", "x(y,z)") == 3  # relabel the root + two inserts

    def test_paper_figure_1_pair(self):
        # Figure 1's trees: delete the second b, insert a b under the first
        # b, insert an e below it — three operations, and no cheaper script
        # exists (confirmed by the independent memoized oracle)
        t1 = "a(b(c,d),b(c,d),e)"
        t2 = "a(b(c,d,b(e)),c,d,e)"
        assert ted(t1, t2) == 3

    def test_sibling_order_matters(self):
        assert ted("a(b,c)", "a(c,b)") == 2

    def test_single_nodes(self):
        assert ted("a", "a") == 0
        assert ted("a", "b") == 1


class TestAgainstOracle:
    """Cross-check the keyroot DP against the memoized forest DP."""

    @given(tree_pairs(max_leaves=7))
    @settings(max_examples=80, deadline=None)
    def test_matches_memoized_dp(self, pair):
        t1, t2 = pair
        assert tree_edit_distance(t1, t2) == memoized_edit_distance(t1, t2)

    @given(tree_pairs(max_leaves=6))
    @settings(max_examples=40, deadline=None)
    def test_matches_memoized_dp_weighted(self, pair):
        t1, t2 = pair
        costs = weighted_costs(delete_cost=1.5, insert_cost=2.0, relabel_cost=0.7)
        fast = tree_edit_distance(t1, t2, costs)
        oracle = memoized_edit_distance(t1, t2, costs)
        assert fast == pytest.approx(oracle)


class TestMetricProperties:
    @given(trees())
    @settings(max_examples=40, deadline=None)
    def test_identity(self, tree):
        assert tree_edit_distance(tree, tree.clone()) == 0

    @given(tree_pairs())
    @settings(max_examples=40, deadline=None)
    def test_symmetry(self, pair):
        t1, t2 = pair
        assert tree_edit_distance(t1, t2) == tree_edit_distance(t2, t1)

    @given(tree_pairs(max_leaves=6), trees(max_leaves=6))
    @settings(max_examples=30, deadline=None)
    def test_triangle_inequality(self, pair, t3):
        t1, t2 = pair
        d12 = tree_edit_distance(t1, t2)
        d23 = tree_edit_distance(t2, t3)
        d13 = tree_edit_distance(t1, t3)
        assert d13 <= d12 + d23

    @given(tree_pairs())
    @settings(max_examples=40, deadline=None)
    def test_positive_for_different_trees(self, pair):
        t1, t2 = pair
        if t1 != t2:
            assert tree_edit_distance(t1, t2) >= 1

    @given(tree_pairs())
    @settings(max_examples=40, deadline=None)
    def test_bounded_by_envelopes(self, pair):
        t1, t2 = pair
        distance = tree_edit_distance(t1, t2)
        assert distance >= size_lower_bound(t1, t2)
        assert distance <= naive_upper_bound(t1, t2)


class TestEditScriptConsistency:
    @given(trees(), st.integers(0, 5), st.integers(0, 2**31))
    @settings(max_examples=50, deadline=None)
    def test_k_operations_give_distance_at_most_k(self, tree, k, seed):
        mutated, script = random_edit_script(tree, k, LABELS, random.Random(seed))
        assert tree_edit_distance(tree, mutated) <= k


class TestPreparedTrees:
    def test_prepared_reuse_gives_same_result(self):
        t1 = parse_bracket("a(b(c,d),e)")
        t2 = parse_bracket("a(b(c),e,d)")
        prepared1, prepared2 = prepare_tree(t1), prepare_tree(t2)
        assert tree_edit_distance(prepared1, prepared2) == tree_edit_distance(t1, t2)

    def test_keyroots_include_root(self):
        prepared = prepare_tree(parse_bracket("a(b(c,d),e)"))
        assert prepared.size - 1 in prepared.keyroots

    def test_keyroot_count_equals_distinct_left_paths(self):
        # a(b(c,d),e): left paths start at leaves c, d, e; keyroots are the
        # highest node of each: a (via c), d, e -> 3 keyroots
        prepared = prepare_tree(parse_bracket("a(b(c,d),e)"))
        assert len(prepared.keyroots) == 3


class TestCounter:
    def test_counts_calls(self):
        counter = EditDistanceCounter()
        t1, t2 = parse_bracket("a(b)"), parse_bracket("a(c)")
        counter.distance(t1, t2)
        counter.distance(t1, t2)
        assert counter.calls == 2

    def test_reset(self):
        counter = EditDistanceCounter()
        counter.distance(parse_bracket("a"), parse_bracket("b"))
        counter.reset()
        assert counter.calls == 0

    def test_preparation_cached_by_identity(self):
        counter = EditDistanceCounter()
        tree = parse_bracket("a(b)")
        assert counter.prepared(tree) is counter.prepared(tree)


class TestPreparedTreeCache:
    def test_holds_tree_reference_so_ids_cannot_recycle(self):
        from repro.editdist import PreparedTreeCache

        cache = PreparedTreeCache(maxsize=8)
        tree = parse_bracket("a(b,c)")
        cache.get(tree)
        entry_tree, _ = cache._entries[id(tree)]
        assert entry_tree is tree  # strong ref pins the id while cached

    def test_identity_mismatch_reprepares(self):
        from repro.editdist import PreparedTreeCache

        cache = PreparedTreeCache(maxsize=8)
        t1 = parse_bracket("a(b)")
        prepared1 = cache.get(t1)
        # simulate an id collision: poison the slot with a different tree
        t2 = parse_bracket("x(y,z)")
        cache._entries[id(t1)] = (t2, cache.get(t2))
        reprepared = cache.get(t1)
        assert reprepared is not prepared1
        assert reprepared.labels == prepared1.labels

    def test_bounded_lru_eviction(self):
        from repro.editdist import PreparedTreeCache

        cache = PreparedTreeCache(maxsize=3)
        kept = [parse_bracket(f"a(b{i})") for i in range(5)]
        for tree in kept:
            cache.get(tree)
        assert len(cache) == 3
        # the oldest two were evicted; the newest three are present
        assert id(kept[0]) not in cache._entries
        assert id(kept[4]) in cache._entries

    def test_get_after_eviction_still_correct(self):
        from repro.editdist import PreparedTreeCache

        cache = PreparedTreeCache(maxsize=1)
        t1, t2 = parse_bracket("a(b,c)"), parse_bracket("a(b,d)")
        prepared = cache.get(t1)
        cache.get(t2)  # evicts t1
        again = cache.get(t1)
        assert again.labels == prepared.labels

    def test_rejects_nonpositive_maxsize(self):
        from repro.editdist import PreparedTreeCache

        with pytest.raises(ValueError):
            PreparedTreeCache(maxsize=0)

    def test_counters_can_share_a_cache(self):
        from repro.editdist import PreparedTreeCache

        shared = PreparedTreeCache()
        c1 = EditDistanceCounter(cache=shared)
        c2 = EditDistanceCounter(cache=shared)
        tree = parse_bracket("a(b(c),d)")
        assert c1.prepared(tree) is c2.prepared(tree)
        c1.distance(tree, parse_bracket("a"))
        assert c1.calls == 1 and c2.calls == 0  # call counts stay private

    def test_counter_cache_is_bounded(self):
        counter = EditDistanceCounter(cache_size=2)
        for i in range(10):
            counter.prepared(parse_bracket(f"a(b{i})"))
        assert len(counter.cache) == 2
