"""Unit and property tests for the JWZ tree alignment distance."""

from hypothesis import given, settings

from repro.editdist import string_edit_distance, tree_edit_distance, weighted_costs
from repro.editdist.alignment import alignment_distance
from repro.trees import parse_bracket, preorder_labels
from tests.strategies import tree_pairs, trees


class TestKnownValues:
    def test_identical(self):
        t = parse_bracket("a(b(c,d),e)")
        assert alignment_distance(t, t.clone()) == 0

    def test_single_relabel(self):
        assert alignment_distance(parse_bracket("a(b)"), parse_bracket("a(x)")) == 1

    def test_leaf_insert(self):
        assert alignment_distance(parse_bracket("a(b)"), parse_bracket("a(b,c)")) == 1

    def test_classic_strict_inequality(self):
        # the textbook example where alignment exceeds the edit distance:
        # moving b under c needs interleaved delete/insert, which alignment
        # ("insertion only before deletion", §2.1) cannot express as 2 ops
        t1 = parse_bracket("a(b,c(d,e))")
        t2 = parse_bracket("a(c(b,d),e)")
        assert tree_edit_distance(t1, t2) == 2
        assert alignment_distance(t1, t2) == 4

    def test_single_nodes(self):
        assert alignment_distance(parse_bracket("a"), parse_bracket("b")) == 1
        assert alignment_distance(parse_bracket("a"), parse_bracket("a")) == 0

    def test_tree_vs_single_node(self):
        assert alignment_distance(parse_bracket("a(b,c)"), parse_bracket("a")) == 2


class TestChainsReduceToStrings:
    @given(tree_pairs(max_leaves=1))
    @settings(max_examples=40, deadline=None)
    def test_chain_alignment_equals_string_edit_distance(self, pair):
        t1, t2 = pair
        expected = string_edit_distance(preorder_labels(t1), preorder_labels(t2))
        assert alignment_distance(t1, t2) == expected
        assert tree_edit_distance(t1, t2) == expected


class TestProperties:
    @given(tree_pairs(max_leaves=6))
    @settings(max_examples=60, deadline=None)
    def test_upper_bounds_edit_distance(self, pair):
        t1, t2 = pair
        assert alignment_distance(t1, t2) >= tree_edit_distance(t1, t2)

    @given(tree_pairs(max_leaves=6))
    @settings(max_examples=40, deadline=None)
    def test_symmetry(self, pair):
        t1, t2 = pair
        assert alignment_distance(t1, t2) == alignment_distance(t2, t1)

    @given(trees(max_leaves=6))
    @settings(max_examples=30, deadline=None)
    def test_identity(self, tree):
        assert alignment_distance(tree, tree.clone()) == 0

    @given(tree_pairs(max_leaves=5))
    @settings(max_examples=30, deadline=None)
    def test_bounded_by_disjoint_rebuild(self, pair):
        t1, t2 = pair
        assert alignment_distance(t1, t2) <= t1.size + t2.size

    def test_deep_trees_no_recursion_error(self):
        deep1 = parse_bracket("x(" * 300 + "x" + ")" * 300)
        deep2 = parse_bracket("x(" * 299 + "y" + ")" * 299)
        assert alignment_distance(deep1, deep2) >= 1


class TestWeightedCosts:
    def test_asymmetric_costs(self):
        costs = weighted_costs(delete_cost=3.0, insert_cost=1.0)
        t1, t2 = parse_bracket("a(b)"), parse_bracket("a")
        assert alignment_distance(t1, t2, costs) == 3.0
        assert alignment_distance(t2, t1, costs) == 1.0

    @given(tree_pairs(max_leaves=5))
    @settings(max_examples=20, deadline=None)
    def test_weighted_upper_bound(self, pair):
        t1, t2 = pair
        costs = weighted_costs(1.5, 2.0, 0.5)
        assert alignment_distance(t1, t2, costs) >= tree_edit_distance(
            t1, t2, costs
        ) - 1e-9
