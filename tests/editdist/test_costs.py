"""Unit tests for cost models."""

import pytest

from repro.editdist import UNIT_COSTS, CostModel, tree_edit_distance, weighted_costs
from repro.trees import parse_bracket


class TestUnitCosts:
    def test_values(self):
        assert UNIT_COSTS.delete("a") == 1.0
        assert UNIT_COSTS.insert("a") == 1.0
        assert UNIT_COSTS.relabel("a", "b") == 1.0

    def test_relabel_identity_is_free(self):
        assert UNIT_COSTS.relabel("a", "a") == 0.0

    def test_is_unit_flag(self):
        assert UNIT_COSTS.is_unit
        assert not weighted_costs().is_unit

    def test_min_operation_cost(self):
        assert UNIT_COSTS.min_operation_cost == 1.0


class TestWeightedCosts:
    def test_custom_values(self):
        costs = weighted_costs(delete_cost=2.0, insert_cost=3.0, relabel_cost=0.5)
        assert costs.delete("x") == 2.0
        assert costs.insert("x") == 3.0
        assert costs.relabel("a", "b") == 0.5
        assert costs.min_operation_cost == 0.5

    def test_explicit_min_operation_cost(self):
        costs = weighted_costs(min_operation_cost=0.25)
        assert costs.min_operation_cost == 0.25

    def test_invalid_min_cost_rejected(self):
        with pytest.raises(ValueError):
            CostModel(
                delete=lambda label: 1.0,
                insert=lambda label: 1.0,
                relabel=lambda a, b: 1.0,
                min_operation_cost=0.0,
            )

    def test_label_dependent_costs(self):
        costs = CostModel(
            delete=lambda label: 5.0 if label == "precious" else 1.0,
            insert=lambda label: 1.0,
            relabel=lambda a, b: 10.0,  # expensive, so deletion wins
            min_operation_cost=1.0,
        )
        d = tree_edit_distance(
            parse_bracket("r(precious)"), parse_bracket("r"), costs
        )
        assert d == 5.0

    def test_weighted_distance_scales(self):
        doubled = weighted_costs(2.0, 2.0, 2.0)
        t1, t2 = parse_bracket("a(b,c)"), parse_bracket("a(b)")
        assert tree_edit_distance(t1, t2, doubled) == 2 * tree_edit_distance(t1, t2)

    def test_cheap_relabel_changes_optimum(self):
        # with relabels nearly free the optimal script relabels instead of
        # deleting + inserting
        cheap = weighted_costs(delete_cost=10.0, insert_cost=10.0, relabel_cost=0.1)
        t1, t2 = parse_bracket("a(b,c)"), parse_bracket("x(y,z)")
        assert tree_edit_distance(t1, t2, cheap) == pytest.approx(0.3)
