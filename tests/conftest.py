"""Shared pytest configuration: hypothesis profiles.

* ``default`` — hypothesis defaults; most tests pin ``max_examples``
  explicitly for runtime predictability, so this is what runs in CI.
* ``soak`` — raises the example budget for the tests that do *not* pin a
  count and disables deadlines everywhere:
  ``HYPOTHESIS_PROFILE=soak pytest tests/``.
"""

import os

from hypothesis import settings

settings.register_profile("default", settings())
settings.register_profile(
    "soak", settings(max_examples=400, deadline=None, derandomize=False)
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))
