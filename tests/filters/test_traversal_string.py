"""Unit and property tests for the Guha-style traversal-string filter."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.editdist import tree_edit_distance
from repro.filters import TraversalStringFilter
from repro.trees import parse_bracket
from tests.strategies import tree_pairs


class TestBound:
    def test_identical(self):
        flt = TraversalStringFilter()
        tree = parse_bracket("a(b(c),d)")
        assert flt.bound(flt.signature(tree), flt.signature(tree.clone())) == 0

    def test_uses_both_traversals(self):
        # a(b,c) vs a(c,b): preorder abc/acb (distance 2) — the bound sees it
        flt = TraversalStringFilter()
        sig_a = flt.signature(parse_bracket("a(b,c)"))
        sig_b = flt.signature(parse_bracket("a(c,b)"))
        assert flt.bound(sig_a, sig_b) == 2

    @given(tree_pairs())
    @settings(max_examples=80, deadline=None)
    def test_sound(self, pair):
        flt = TraversalStringFilter()
        sig_a, sig_b = flt.signature(pair[0]), flt.signature(pair[1])
        assert flt.bound(sig_a, sig_b) <= tree_edit_distance(*pair)

    @given(tree_pairs(), st.integers(0, 5))
    @settings(max_examples=80, deadline=None)
    def test_refutation_sound(self, pair, threshold):
        flt = TraversalStringFilter()
        sig_a, sig_b = flt.signature(pair[0]), flt.signature(pair[1])
        if flt.refutes(sig_a, sig_b, threshold):
            assert tree_edit_distance(*pair) > threshold

    @given(tree_pairs(), st.integers(0, 5))
    @settings(max_examples=60, deadline=None)
    def test_refutation_agrees_with_bound(self, pair, threshold):
        flt = TraversalStringFilter()
        sig_a, sig_b = flt.signature(pair[0]), flt.signature(pair[1])
        assert flt.refutes(sig_a, sig_b, threshold) == (
            flt.bound(sig_a, sig_b) > threshold
        )
