"""Unit and property tests for general-cost filtering."""

from hypothesis import given, settings

from repro.editdist import EditDistanceCounter, tree_edit_distance, weighted_costs
from repro.filters import (
    BinaryBranchFilter,
    CostScaledFilter,
    HistogramFilter,
)
from repro.search import range_query, sequential_range_query
from repro.trees import parse_bracket
from tests.strategies import tree_pairs

WEIGHTED = weighted_costs(delete_cost=2.0, insert_cost=1.5, relabel_cost=0.5)


class TestBound:
    def test_scales_inner_bound(self):
        inner = BinaryBranchFilter()
        scaled = CostScaledFilter(BinaryBranchFilter(), weighted_costs(3, 3, 3))
        t1, t2 = parse_bracket("a(b,c)"), parse_bracket("x(y)")
        inner_bound = inner.bound(inner.signature(t1), inner.signature(t2))
        scaled_bound = scaled.bound(scaled.signature(t1), scaled.signature(t2))
        assert scaled_bound == 3 * inner_bound

    def test_name(self):
        scaled = CostScaledFilter(HistogramFilter(), weighted_costs(2, 2, 2))
        assert scaled.name == "Histo*2"

    @given(tree_pairs())
    @settings(max_examples=60, deadline=None)
    def test_sound_for_weighted_distance(self, pair):
        t1, t2 = pair
        scaled = CostScaledFilter(BinaryBranchFilter(), WEIGHTED)
        bound = scaled.bound(scaled.signature(t1), scaled.signature(t2))
        assert bound <= tree_edit_distance(t1, t2, WEIGHTED) + 1e-9

    @given(tree_pairs())
    @settings(max_examples=60, deadline=None)
    def test_refutation_sound_for_weighted_distance(self, pair):
        t1, t2 = pair
        scaled = CostScaledFilter(HistogramFilter(), WEIGHTED)
        sig = scaled.signature(t1), scaled.signature(t2)
        distance = tree_edit_distance(t1, t2, WEIGHTED)
        for threshold in (0.0, 0.5, 1.0, 2.5, 4.0):
            if scaled.refutes(*sig, threshold):
                assert distance > threshold


class TestWeightedSearch:
    def test_weighted_range_query_exact(self):
        dataset = [
            parse_bracket(t)
            for t in ["a(b,c)", "a(b,d)", "a(b)", "x(y,z)", "a(b,c,d)"]
        ]
        counter = EditDistanceCounter(WEIGHTED)
        flt = CostScaledFilter(BinaryBranchFilter(), WEIGHTED).fit(dataset)
        query = parse_bracket("a(b,c)")
        for threshold in (0.0, 0.5, 1.5, 3.0):
            fast, _ = range_query(dataset, query, threshold, flt, counter)
            brute, _ = sequential_range_query(dataset, query, threshold, counter)
            assert fast == brute

    def test_weighted_range_uses_weighted_distances(self):
        dataset = [parse_bracket("a(b,c)"), parse_bracket("a(b,x)")]
        counter = EditDistanceCounter(WEIGHTED)
        flt = CostScaledFilter(BinaryBranchFilter(), WEIGHTED).fit(dataset)
        matches, _ = range_query(
            dataset, parse_bracket("a(b,c)"), 0.5, flt, counter
        )
        # the relabel costs 0.5 under WEIGHTED, so both trees qualify
        assert [index for index, _ in matches] == [0, 1]
