"""Unit and property tests for the BiBranch filters."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import branch_lower_bound, positional_lower_bound
from repro.editdist import tree_edit_distance
from repro.filters import BinaryBranchFilter, BranchCountFilter
from repro.trees import parse_bracket
from tests.strategies import tree_pairs

T1 = "a(b(c,d),b(c,d),e)"
T2 = "a(b(c,d,b(e)),c,d,e)"


class TestBinaryBranchFilter:
    def test_bound_equals_positional_lower_bound(self):
        flt = BinaryBranchFilter()
        t1, t2 = parse_bracket(T1), parse_bracket(T2)
        sig_a, sig_b = flt.signature(t1), flt.signature(t2)
        assert flt.bound(sig_a, sig_b) == positional_lower_bound(t1, t2)

    @given(tree_pairs())
    @settings(max_examples=80, deadline=None)
    def test_sound(self, pair):
        flt = BinaryBranchFilter()
        sig_a, sig_b = flt.signature(pair[0]), flt.signature(pair[1])
        assert flt.bound(sig_a, sig_b) <= tree_edit_distance(*pair)

    @given(tree_pairs(), st.integers(0, 6))
    @settings(max_examples=80, deadline=None)
    def test_refutation_sound(self, pair, threshold):
        flt = BinaryBranchFilter()
        sig_a, sig_b = flt.signature(pair[0]), flt.signature(pair[1])
        if flt.refutes(sig_a, sig_b, threshold):
            assert tree_edit_distance(*pair) > threshold

    @given(tree_pairs(max_leaves=8), st.sampled_from([2, 3]))
    @settings(max_examples=50, deadline=None)
    def test_qlevel_sound(self, pair, q):
        flt = BinaryBranchFilter(q=q)
        sig_a, sig_b = flt.signature(pair[0]), flt.signature(pair[1])
        assert flt.bound(sig_a, sig_b) <= tree_edit_distance(*pair)

    @given(tree_pairs(max_leaves=7))
    @settings(max_examples=30, deadline=None)
    def test_exact_matching_variant_sound(self, pair):
        flt = BinaryBranchFilter(exact_matching=True)
        sig_a, sig_b = flt.signature(pair[0]), flt.signature(pair[1])
        assert flt.bound(sig_a, sig_b) <= tree_edit_distance(*pair)

    def test_names(self):
        assert BinaryBranchFilter().name == "BiBranch"
        assert BinaryBranchFilter(q=3).name == "BiBranch(3)"

    def test_fit_returns_self(self):
        flt = BinaryBranchFilter()
        assert flt.fit([parse_bracket("a")]) is flt
        assert flt.size == 1


class TestBranchCountFilter:
    def test_bound_equals_count_lower_bound(self):
        flt = BranchCountFilter()
        t1, t2 = parse_bracket(T1), parse_bracket(T2)
        sig_a, sig_b = flt.signature(t1), flt.signature(t2)
        assert flt.bound(sig_a, sig_b) == branch_lower_bound(t1, t2)

    @given(tree_pairs())
    @settings(max_examples=60, deadline=None)
    def test_sound(self, pair):
        flt = BranchCountFilter()
        sig_a, sig_b = flt.signature(pair[0]), flt.signature(pair[1])
        assert flt.bound(sig_a, sig_b) <= tree_edit_distance(*pair)

    @given(tree_pairs())
    @settings(max_examples=60, deadline=None)
    def test_positional_dominates_count(self, pair):
        positional = BinaryBranchFilter()
        count = BranchCountFilter()
        p_sig = (positional.signature(pair[0]), positional.signature(pair[1]))
        c_sig = (count.signature(pair[0]), count.signature(pair[1]))
        assert positional.bound(*p_sig) >= count.bound(*c_sig)

    def test_names(self):
        assert BranchCountFilter().name == "BiBranchCount"
        assert BranchCountFilter(q=4).name == "BiBranchCount(4)"
