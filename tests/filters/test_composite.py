"""Unit tests for filter composition."""

import pytest
from hypothesis import given, settings

from repro.editdist import tree_edit_distance
from repro.filters import (
    BinaryBranchFilter,
    HistogramFilter,
    MaxCompositeFilter,
    SizeDifferenceFilter,
    TraversalStringFilter,
)
from repro.trees import parse_bracket
from tests.strategies import tree_pairs


class TestSizeDifferenceFilter:
    def test_bound(self):
        flt = SizeDifferenceFilter()
        assert flt.bound(flt.signature(parse_bracket("a")), 4) == 3

    @given(tree_pairs())
    @settings(max_examples=40, deadline=None)
    def test_sound(self, pair):
        flt = SizeDifferenceFilter()
        sig_a, sig_b = flt.signature(pair[0]), flt.signature(pair[1])
        assert flt.bound(sig_a, sig_b) <= tree_edit_distance(*pair)


class TestMaxComposite:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            MaxCompositeFilter([])

    def test_name(self):
        flt = MaxCompositeFilter([SizeDifferenceFilter()], name="combo")
        assert flt.name == "combo"

    @given(tree_pairs())
    @settings(max_examples=40, deadline=None)
    def test_bound_is_max_of_components(self, pair):
        components = [HistogramFilter(), SizeDifferenceFilter()]
        composite = MaxCompositeFilter(components)
        sig = composite.signature(pair[0]), composite.signature(pair[1])
        expected = max(
            child.bound(child.signature(pair[0]), child.signature(pair[1]))
            for child in components
        )
        assert composite.bound(*sig) == expected

    @given(tree_pairs())
    @settings(max_examples=40, deadline=None)
    def test_sound(self, pair):
        composite = MaxCompositeFilter(
            [HistogramFilter(), BinaryBranchFilter(), SizeDifferenceFilter()]
        )
        sig = composite.signature(pair[0]), composite.signature(pair[1])
        assert composite.bound(*sig) <= tree_edit_distance(*pair)

    @given(tree_pairs())
    @settings(max_examples=40, deadline=None)
    def test_refutation_sound(self, pair):
        composite = MaxCompositeFilter(
            [HistogramFilter(), TraversalStringFilter()]
        )
        sig = composite.signature(pair[0]), composite.signature(pair[1])
        distance = tree_edit_distance(*pair)
        for threshold in range(4):
            if composite.refutes(*sig, threshold):
                assert distance > threshold

    def test_fit_and_query(self):
        dataset = [parse_bracket("a(b,c)"), parse_bracket("x(y)")]
        composite = MaxCompositeFilter(
            [HistogramFilter(), SizeDifferenceFilter()]
        ).fit(dataset)
        bounds = composite.bounds(parse_bracket("a(b,c)"))
        assert bounds[0] == 0
        assert bounds[1] >= 2
