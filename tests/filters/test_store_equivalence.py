"""Store-backed filters must be bit-identical to the legacy fit path.

The tentpole guarantee of the shared feature plane: for every filter that
sets ``supports_store``, deriving signatures from a
:class:`~repro.features.store.FeatureStore` (one traversal per tree) yields
exactly the bounds — and therefore exactly the query answers — of the
legacy per-filter ``fit()``/``signature()`` path, including after
incremental insertion.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.editdist.costs import UNIT_COSTS
from repro.features import FeatureStore
from repro.filters import (
    BinaryBranchFilter,
    BranchCountFilter,
    CostScaledFilter,
    HistogramFilter,
    MaxCompositeFilter,
    SizeDifferenceFilter,
    TraversalStringFilter,
)
from repro.search.database import TreeDatabase
from tests.strategies import trees

FILTER_FACTORIES = [
    ("bibranch", lambda: BinaryBranchFilter()),
    ("bibranch-q3", lambda: BinaryBranchFilter(q=3)),
    ("bibranch-exact", lambda: BinaryBranchFilter(exact_matching=True)),
    ("count", lambda: BranchCountFilter()),
    ("count-q3", lambda: BranchCountFilter(q=3)),
    ("histogram", lambda: HistogramFilter()),
    ("histogram-folded", lambda: HistogramFilter(label_bins=5, degree_bins=3,
                                                 height_cap=4)),
    ("traversal", lambda: TraversalStringFilter()),
    ("size", lambda: SizeDifferenceFilter()),
    ("composite", lambda: MaxCompositeFilter(
        [BinaryBranchFilter(), HistogramFilter(), SizeDifferenceFilter()]
    )),
    ("cost-scaled", lambda: CostScaledFilter(BinaryBranchFilter(), UNIT_COSTS)),
]

forests = st.lists(trees(max_leaves=6), min_size=1, max_size=6)


def _store_for(flt, forest):
    return FeatureStore(flt.required_q_levels() or (2,)).fit(forest)


@pytest.mark.parametrize(
    "make_filter", [factory for _, factory in FILTER_FACTORIES],
    ids=[name for name, _ in FILTER_FACTORIES],
)
class TestBoundEquivalence:
    @given(forest=forests, query=trees(max_leaves=6))
    @settings(max_examples=25, deadline=None)
    def test_bounds_bit_identical(self, make_filter, forest, query):
        legacy = make_filter().fit(forest)
        store_backed = make_filter()
        store_backed.fit_from_store(_store_for(store_backed, forest))
        assert store_backed.bounds(query) == legacy.bounds(query)

    @given(forest=forests, added=trees(max_leaves=6), query=trees(max_leaves=6))
    @settings(max_examples=25, deadline=None)
    def test_bounds_bit_identical_after_add(
        self, make_filter, forest, added, query
    ):
        legacy = make_filter().fit(forest)
        legacy.add(added)
        store_backed = make_filter()
        store = _store_for(store_backed, forest)
        store_backed.fit_from_store(store)
        store_backed.add_from_store(store, store.add(added))
        assert store_backed.bounds(query) == legacy.bounds(query)


class TestQueryAnswerEquivalence:
    """End-to-end: store-backed TreeDatabase answers equal the legacy ones."""

    @given(
        forest=forests,
        query=trees(max_leaves=6),
        threshold=st.integers(0, 4),
    )
    @settings(max_examples=20, deadline=None)
    def test_range_answers_identical(self, forest, query, threshold):
        legacy_db = TreeDatabase(forest, flt=BinaryBranchFilter().fit(forest))
        store_db = TreeDatabase(forest)
        assert legacy_db.features is None and store_db.features is not None
        legacy_matches, _ = legacy_db.range_query(query, threshold)
        store_matches, _ = store_db.range_query(query, threshold)
        assert store_matches == legacy_matches

    @given(
        forest=forests,
        added=trees(max_leaves=6),
        query=trees(max_leaves=6),
        k=st.integers(1, 3),
    )
    @settings(max_examples=20, deadline=None)
    def test_knn_answers_identical_after_add(self, forest, added, query, k):
        k = min(k, len(forest))  # knn rejects k beyond the dataset size
        legacy_db = TreeDatabase(forest, flt=BinaryBranchFilter().fit(forest))
        store_db = TreeDatabase(forest)
        legacy_db.add(added)
        store_db.add(added)
        assert store_db.generation == 1
        legacy_neighbors, _ = legacy_db.knn(query, k)
        store_neighbors, _ = store_db.knn(query, k)
        assert store_neighbors == legacy_neighbors
