"""Unit and property tests for histogram filtration (Kailing et al.)."""

import pytest
from hypothesis import given, settings

from repro.editdist import tree_edit_distance
from repro.filters import (
    DegreeHistogramFilter,
    HeightHistogramFilter,
    HistogramFilter,
    LabelHistogramFilter,
    degree_histogram_bound,
    height_histogram_bound,
    label_histogram_bound,
)
from repro.trees import parse_bracket
from tests.strategies import tree_pairs


def signatures(a, b):
    flt = HistogramFilter()
    return flt.signature(parse_bracket(a)), flt.signature(parse_bracket(b))


class TestSignature:
    def test_contents(self):
        flt = HistogramFilter()
        sig = flt.signature(parse_bracket("a(b(c),d)"))
        assert sig.size == 4
        assert sig.labels == {"a": 1, "b": 1, "c": 1, "d": 1}
        assert sig.degrees == {2: 1, 1: 1, 0: 2}
        assert sig.heights == [0, 0, 1, 2]


class TestLabelBound:
    def test_known(self):
        sig_a, sig_b = signatures("a(b)", "a(c)")
        assert label_histogram_bound(sig_a, sig_b) == 1

    def test_identical(self):
        sig_a, sig_b = signatures("a(b,c)", "a(b,c)")
        assert label_histogram_bound(sig_a, sig_b) == 0

    @given(tree_pairs())
    @settings(max_examples=80, deadline=None)
    def test_sound(self, pair):
        flt = HistogramFilter()
        sig_a, sig_b = flt.signature(pair[0]), flt.signature(pair[1])
        assert label_histogram_bound(sig_a, sig_b) <= tree_edit_distance(*pair)


class TestDegreeBound:
    def test_known(self):
        # a(b,c) vs a(b(c)): degrees {2,0,0} vs {1,1,0} -> L1 = 4 -> ceil 2
        sig_a, sig_b = signatures("a(b,c)", "a(b(c))")
        assert degree_histogram_bound(sig_a, sig_b) == 2

    @given(tree_pairs())
    @settings(max_examples=80, deadline=None)
    def test_sound(self, pair):
        flt = HistogramFilter()
        sig_a, sig_b = flt.signature(pair[0]), flt.signature(pair[1])
        assert degree_histogram_bound(sig_a, sig_b) <= tree_edit_distance(*pair)


class TestHeightBound:
    def test_identical(self):
        sig_a, sig_b = signatures("a(b(c))", "a(b(c))")
        assert height_histogram_bound(sig_a, sig_b) == 0

    def test_chain_vs_star(self):
        # chain of 5 vs star of 5: many heights differ
        chain = "a(b(c(d(e))))"
        star = "a(b,c,d,e)"
        sig_a, sig_b = signatures(chain, star)
        bound = height_histogram_bound(sig_a, sig_b)
        assert 1 <= bound <= tree_edit_distance(
            parse_bracket(chain), parse_bracket(star)
        )

    @given(tree_pairs())
    @settings(max_examples=100, deadline=None)
    def test_sound(self, pair):
        flt = HistogramFilter()
        sig_a, sig_b = flt.signature(pair[0]), flt.signature(pair[1])
        assert height_histogram_bound(sig_a, sig_b) <= tree_edit_distance(*pair)

    @given(tree_pairs())
    @settings(max_examples=60, deadline=None)
    def test_at_least_size_difference(self, pair):
        flt = HistogramFilter()
        sig_a, sig_b = flt.signature(pair[0]), flt.signature(pair[1])
        assert height_histogram_bound(sig_a, sig_b) >= abs(
            pair[0].size - pair[1].size
        )


class TestCombinedFilter:
    @given(tree_pairs())
    @settings(max_examples=100, deadline=None)
    def test_sound(self, pair):
        flt = HistogramFilter()
        sig_a, sig_b = flt.signature(pair[0]), flt.signature(pair[1])
        assert flt.bound(sig_a, sig_b) <= tree_edit_distance(*pair)

    @given(tree_pairs())
    @settings(max_examples=60, deadline=None)
    def test_dominates_components(self, pair):
        combined = HistogramFilter()
        sig_a, sig_b = combined.signature(pair[0]), combined.signature(pair[1])
        for component in (
            LabelHistogramFilter(),
            DegreeHistogramFilter(),
            HeightHistogramFilter(),
        ):
            assert combined.bound(sig_a, sig_b) >= component.bound(sig_a, sig_b)

    @given(tree_pairs())
    @settings(max_examples=60, deadline=None)
    def test_refutation_consistent_with_bound(self, pair):
        """refutes() may be weaker than bound() but never unsound."""
        flt = HistogramFilter()
        sig_a, sig_b = flt.signature(pair[0]), flt.signature(pair[1])
        distance = tree_edit_distance(*pair)
        for threshold in range(0, 6):
            if flt.refutes(sig_a, sig_b, threshold):
                assert distance > threshold

    def test_fit_and_bounds(self):
        dataset = [parse_bracket("a(b)"), parse_bracket("a(b,c)")]
        flt = HistogramFilter().fit(dataset)
        bounds = flt.bounds(parse_bracket("a(b)"))
        assert bounds[0] == 0
        assert bounds[1] >= 1

    def test_unfitted_use_raises(self):
        with pytest.raises(RuntimeError):
            HistogramFilter().bounds(parse_bracket("a"))


class TestComponentFilters:
    @given(tree_pairs())
    @settings(max_examples=40, deadline=None)
    def test_each_component_sound(self, pair):
        distance = tree_edit_distance(*pair)
        for flt in (
            LabelHistogramFilter(),
            DegreeHistogramFilter(),
            HeightHistogramFilter(),
        ):
            sig_a, sig_b = flt.signature(pair[0]), flt.signature(pair[1])
            assert flt.bound(sig_a, sig_b) <= distance

    def test_names_distinct(self):
        names = {
            HistogramFilter().name,
            LabelHistogramFilter().name,
            DegreeHistogramFilter().name,
            HeightHistogramFilter().name,
        }
        assert len(names) == 4
