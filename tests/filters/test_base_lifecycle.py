"""Filter lifecycle: add() on a never-fitted filter must fail loudly.

Regression test — ``add()`` used to silently append to an empty signature
list, letting ``bounds()`` run against a partial index that missed every
tree present before the first ``add``.
"""

import pytest

from repro.editdist.costs import UNIT_COSTS
from repro.exceptions import FilterStateError
from repro.features import FeatureStore
from repro.filters import (
    BinaryBranchFilter,
    BranchCountFilter,
    CostScaledFilter,
    HistogramFilter,
    MaxCompositeFilter,
    SizeDifferenceFilter,
    TraversalStringFilter,
)
from repro.trees import parse_bracket

ALL_FILTERS = [
    BinaryBranchFilter,
    BranchCountFilter,
    HistogramFilter,
    TraversalStringFilter,
    SizeDifferenceFilter,
    lambda: MaxCompositeFilter([BinaryBranchFilter(), SizeDifferenceFilter()]),
    lambda: CostScaledFilter(BinaryBranchFilter(), UNIT_COSTS),
]


@pytest.mark.parametrize("make_filter", ALL_FILTERS)
class TestAddBeforeFit:
    def test_add_on_never_fitted_filter_raises(self, make_filter):
        flt = make_filter()
        with pytest.raises(FilterStateError):
            flt.add(parse_bracket("a(b)"))
        assert flt.size == 0  # nothing was silently appended

    def test_error_is_a_runtime_error(self, make_filter):
        """Backward compatibility: callers catching RuntimeError still work."""
        with pytest.raises(RuntimeError):
            make_filter().add(parse_bracket("a(b)"))

    def test_explicit_empty_fit_enables_incremental_build(self, make_filter):
        flt = make_filter().fit([])
        assert flt.add(parse_bracket("a(b)")) == 0
        assert flt.add(parse_bracket("a(c)")) == 1
        bounds = flt.bounds(parse_bracket("a(b)"))
        assert len(bounds) == 2
        assert bounds[0] == 0


def test_add_from_store_before_fit_raises():
    store = FeatureStore().fit([parse_bracket("a(b)")])
    flt = BinaryBranchFilter()
    with pytest.raises(FilterStateError):
        flt.add_from_store(store, 0)


def test_bounds_before_fit_raises():
    with pytest.raises(FilterStateError):
        BinaryBranchFilter().bounds(parse_bracket("a"))
