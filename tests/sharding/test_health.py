"""Shard health telemetry: snapshots, gauges, imbalance warnings."""

from __future__ import annotations

import time

import pytest

from repro.exceptions import InvalidParameterError
from repro.sharding import ShardedTreeService
from repro.sharding.coordinator import (
    _LOAD_IMBALANCE_RATIO,
    _TREE_IMBALANCE_RATIO,
)
from repro.trees import parse_bracket

BRACKETS = [
    "a(b,c)",
    "a(b,d)",
    "x(y(z),w)",
    "a(b(c,d),e(f))",
    "a(b,c,d)",
    "x(y,w)",
]

_SNAPSHOT_KEYS = {
    "shard",
    "trees",
    "uptime_seconds",
    "rss_bytes",
    "requests",
    "requests_total",
    "stage_seconds",
    "open_cursors",
    "distance_computations",
}


@pytest.fixture
def trees():
    return [parse_bracket(b) for b in BRACKETS]


@pytest.fixture
def service(trees):
    with ShardedTreeService(trees, shards=2, max_workers=2) as service:
        yield service


class TestHealthSnapshot:
    def test_snapshot_shape(self, service, trees):
        service.range(trees[0], 1.0)
        health = service.health()
        assert set(health) == {"shards", "warnings"}
        assert len(health["shards"]) == 2
        for snapshot in health["shards"]:
            assert _SNAPSHOT_KEYS <= set(snapshot)
            assert snapshot["uptime_seconds"] > 0
            assert snapshot["requests_total"] >= 1
            assert set(snapshot["stage_seconds"]) == {"filter", "refine"}

    def test_stage_seconds_accumulate(self, service, trees):
        service.range(trees[0], 2.0)
        service.knn(trees[0], 2)
        totals = [
            sum(snapshot["stage_seconds"].values())
            for snapshot in service.health()["shards"]
        ]
        assert all(total > 0 for total in totals)

    def test_requests_counted_per_op(self, service, trees):
        service.range(trees[0], 1.0)
        health = service.health()
        ops = set()
        for snapshot in health["shards"]:
            ops.update(snapshot["requests"])
        assert "range" in ops

    def test_health_after_close_raises(self, trees):
        service = ShardedTreeService(trees, shards=2)
        service.close()
        with pytest.raises(RuntimeError, match="closed"):
            service.health()


class TestHealthGauges:
    def test_gauges_land_in_registry(self, service, trees):
        service.range(trees[0], 1.0)
        service.health()
        text = service.metrics.registry.prometheus_text()
        for name in (
            "repro_shard_trees",
            "repro_shard_uptime_seconds",
            "repro_shard_rss_bytes",
            "repro_shard_requests_total",
            "repro_shard_stage_seconds",
        ):
            assert f'{name}{{shard="0"' in text or f"{name}{{" in text, name
        assert 'repro_shard_trees{shard="0"}' in text
        assert 'repro_shard_trees{shard="1"}' in text
        assert 'stage="filter"' in text and 'stage="refine"' in text

    def test_load_gauges_registered_on_rpc_path(self, service, trees):
        service.range(trees[0], 1.0)
        text = service.metrics.registry.prometheus_text()
        # queue depth / in-flight return to zero once the query completes
        assert 'repro_shard_queue_depth{shard="0"} 0.0' in text
        assert 'repro_shard_inflight_requests{shard="0"} 0.0' in text


class TestImbalanceWarnings:
    def test_balanced_corpus_has_no_warnings(self, service, trees):
        service.range(trees[0], 1.0)
        assert service.health()["warnings"] == []

    def test_tree_skew_warns_and_counts(self, trees):
        with ShardedTreeService(trees, shards=2) as service:
            # pile inserts onto whatever shard the partitioner picks next,
            # then force skew by adding many trees round-robin is balanced,
            # so instead drop the threshold's worth directly: 6 trees split
            # 3/3 is balanced; add 6 more where round-robin keeps balance —
            # so simulate skew through the published snapshots instead
            health = service.health()
            snapshots = health["shards"]
            snapshots[0]["trees"] = 10
            snapshots[1]["trees"] = 1
            warnings = service._publish_health(snapshots)
            assert any("tree placement skew" in warning for warning in warnings)
            counter = service.metrics.registry.counter(
                "repro_shard_imbalance_warnings_total",
                "health() snapshots that flagged a shard imbalance.",
                ("dimension",),
            )
            assert counter.value(dimension="trees") >= 1
            assert 10 > 1 * _TREE_IMBALANCE_RATIO  # the configured threshold

    def test_busy_skew_warns(self, service):
        snapshots = service.health()["shards"]
        snapshots[0]["stage_seconds"] = {"filter": 1.0, "refine": 1.0}
        snapshots[1]["stage_seconds"] = {"filter": 0.0, "refine": 0.001}
        warnings = service._publish_health(snapshots)
        assert any("busy-time skew" in warning for warning in warnings)
        assert 2.0 > 0.001 * _LOAD_IMBALANCE_RATIO

    def test_tiny_busy_times_never_warn(self, service):
        snapshots = service.health()["shards"]
        # heavy relative skew, but under the absolute floor
        snapshots[0]["stage_seconds"] = {"filter": 0.010, "refine": 0.0}
        snapshots[1]["stage_seconds"] = {"filter": 0.0001, "refine": 0.0}
        assert service._publish_health(snapshots) == []


class TestDelegateHealth:
    def test_single_shard_snapshot(self, trees):
        with ShardedTreeService(trees, shards=1) as service:
            service.range(trees[0], 1.0)
            health = service.health()
            assert len(health["shards"]) == 1
            snapshot = health["shards"][0]
            assert _SNAPSHOT_KEYS <= set(snapshot)
            assert snapshot["trees"] == len(trees)
            assert snapshot["distance_computations"] >= 1
            assert health["warnings"] == []
            text = service.metrics.registry.prometheus_text()
            assert 'repro_shard_trees{shard="0"}' in text


class TestBackgroundPoller:
    def test_rejects_negative_interval(self, trees):
        with pytest.raises(InvalidParameterError, match="health_interval"):
            ShardedTreeService(trees, shards=2, health_interval=-1.0)

    def test_poller_publishes_without_explicit_calls(self, trees):
        with ShardedTreeService(
            trees, shards=2, health_interval=0.05
        ) as service:
            deadline = time.time() + 5.0
            while time.time() < deadline:
                text = service.metrics.registry.prometheus_text()
                if 'repro_shard_trees{shard="0"}' in text:
                    break
                time.sleep(0.02)
            else:
                pytest.fail("health poller never published gauges")

    def test_close_stops_poller(self, trees):
        service = ShardedTreeService(trees, shards=2, health_interval=0.05)
        poller = service._health_thread
        assert poller is not None and poller.is_alive()
        service.close()
        poller.join(timeout=5)
        assert not poller.is_alive()
