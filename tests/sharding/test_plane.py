"""Shared-memory feature planes: publish/attach, zero-copy, lifecycle."""

import pytest

from repro.exceptions import InvalidParameterError, SharedPlaneClosedError
from repro.features.store import FeatureStore
from repro.sharding.plane import SharedFeaturePlane
from repro.trees import parse_bracket

BRACKETS = [
    "a(b,c)",
    "a(b,d)",
    "x(y(z),w)",
    "a(b(c,d),e(f))",
    "a",
]


@pytest.fixture
def trees():
    return [parse_bracket(b) for b in BRACKETS]


@pytest.fixture
def store(trees):
    return FeatureStore((2, 3)).fit(trees)


class TestPublishAttach:
    def test_roundtrip_is_exact(self, store):
        with SharedFeaturePlane.publish(store) as plane:
            for q in (2, 3):
                originals = [
                    store.packed_vector(i, q) for i in range(len(store))
                ]
                for original, borrowed in zip(originals, plane.vectors(q)):
                    assert list(borrowed.dims) == list(original.dims)
                    assert list(borrowed.counts) == list(original.counts)
                    assert borrowed.tree_size == original.tree_size
                    assert borrowed == original

    def test_subset_publication(self, store):
        with SharedFeaturePlane.publish(store, indices=[1, 3]) as plane:
            assert len(plane) == 2
            borrowed = plane.vectors(2)
            assert borrowed[0] == store.packed_vector(1, 2)
            assert borrowed[1] == store.packed_vector(3, 2)

    def test_vectors_are_zero_copy(self, store):
        # the borrowed columns must be views over the segment, not copies
        with SharedFeaturePlane.publish(store) as plane:
            for vector in plane.vectors(2):
                assert isinstance(vector.dims, memoryview)
                assert isinstance(vector.counts, memoryview)
                assert vector.owner is plane

    def test_attached_store_distances_match(self, store, trees):
        query = parse_bracket("a(b,q)")
        plane = SharedFeaturePlane.publish(store)
        attached = SharedFeaturePlane.attach(plane.handle)
        try:
            mirror = attached.store(store.vocabulary)
            for q in (2, 3):
                packed_query = store.pack_query(query, q)
                for i in range(len(store)):
                    assert mirror.packed_vector(i, q).l1_distance(
                        packed_query
                    ) == store.packed_vector(i, q).l1_distance(packed_query)
        finally:
            attached.close()
            plane.close()

    def test_rejects_query_side_vectors(self, store):
        # out-of-vocabulary branches have no slot in the segment layout
        unseen = store.pack_query(parse_bracket("zzz(qqq)"), 2)
        assert unseen.extra

        class _QueryStore:
            q_levels = (2,)

            def __len__(self):
                return 1

            def tree_size(self, index):
                return unseen.tree_size

            def packed_vector(self, index, q):
                return unseen

        with pytest.raises(InvalidParameterError, match="out-of-vocabulary"):
            SharedFeaturePlane.publish(_QueryStore())

    def test_unknown_q_level(self, store):
        with SharedFeaturePlane.publish(store) as plane:
            with pytest.raises(InvalidParameterError, match="no q=7 column"):
                plane.vectors(7)


class TestLifecycle:
    def test_use_after_close_raises(self, store):
        plane = SharedFeaturePlane.publish(store)
        vectors = plane.vectors(2)
        other = vectors[1]
        plane.close()
        with pytest.raises(SharedPlaneClosedError):
            vectors[0].l1_distance(other)
        with pytest.raises(SharedPlaneClosedError):
            vectors[0] == other  # noqa: B015 — the comparison must raise

    def test_close_is_idempotent(self, store):
        plane = SharedFeaturePlane.publish(store)
        plane.close()
        plane.close()
        assert plane.closed

    def test_owner_unlinks_segment(self, store):
        plane = SharedFeaturePlane.publish(store)
        handle = plane.handle
        plane.close()
        with pytest.raises(FileNotFoundError):
            SharedFeaturePlane.attach(handle)

    def test_reader_close_keeps_segment(self, store):
        plane = SharedFeaturePlane.publish(store)
        try:
            reader = SharedFeaturePlane.attach(plane.handle)
            assert not reader.owner
            reader.close()
            # the segment must survive a reader detach: attach again
            again = SharedFeaturePlane.attach(plane.handle)
            again.close()
        finally:
            plane.close()

    def test_vectors_refused_after_close(self, store):
        plane = SharedFeaturePlane.publish(store)
        plane.close()
        with pytest.raises(InvalidParameterError, match="closed"):
            plane.vectors(2)
