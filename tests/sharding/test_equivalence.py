"""Property test: sharding is answer-invisible.

For every seed, shard count, partitioner and filter sampled here, the
sharded scatter-gather service must return *bit-identical* answers —
member ids, exact distances, tie order — to the single-process path, and
the distributed k-NN must refine exactly as many candidates (the
Algorithm 2 optimality guarantee).  The same must hold after incremental
adds routed through the coordinator, where the workers' vocabularies
have diverged from the coordinator's.
"""

import random

import pytest

from repro.datasets.synthetic import SyntheticSpec, generate_dataset
from repro.search.database import TreeDatabase
from repro.search.knn import knn_query
from repro.search.range_query import range_query
from repro.sharding import ShardedTreeService
from repro.sharding.worker import FILTER_FACTORIES
from repro.trees.edits import random_edit_script

SPEC = SyntheticSpec(
    fanout_mean=2.5,
    fanout_stddev=0.8,
    size_mean=12.0,
    size_stddev=3.0,
    label_count=4,
    decay=0.15,
)


def _corpus(seed, count=14):
    return generate_dataset(SPEC, count=count, seed_count=3, seed=seed)


def _reference(trees, filter_name):
    return TreeDatabase(list(trees), flt=FILTER_FACTORIES[filter_name]())


def _check_equivalence(service, trees, filter_name, queries):
    reference = _reference(trees, filter_name)
    for query in queries:
        for threshold in (0.0, 2.0, 5.0):
            served = service.range(query, threshold)
            expected = range_query(
                reference.trees, query, threshold,
                reference.filter, reference.counter,
            )
            assert served[0] == expected[0]
            assert served[1].candidates == expected[1].candidates
        for k in (1, 3, 6):
            served = service.knn(query, k)
            expected = knn_query(
                reference.trees, query, k, reference.filter, reference.counter
            )
            assert served[0] == expected[0]
            # optimality: identical refined-candidate count, not just answers
            assert served[1].candidates == expected[1].candidates


@pytest.mark.parametrize("seed", [0, 1])
@pytest.mark.parametrize(
    "shards,partitioner", [(2, "round-robin"), (3, "size-banded")]
)
def test_sharded_answers_equal_single_process(seed, shards, partitioner):
    trees = _corpus(seed)
    queries = _corpus(seed + 100, count=3)
    with ShardedTreeService(
        trees, shards=shards, partitioner=partitioner, max_workers=2
    ) as service:
        _check_equivalence(service, trees, "bibranch", queries)


@pytest.mark.parametrize(
    "filter_name", sorted(set(FILTER_FACTORIES) - {"bibranch"})
)
def test_every_filter_family_is_equivalent(filter_name):
    trees = _corpus(7)
    queries = _corpus(107, count=2)
    with ShardedTreeService(
        trees, shards=2, filter_name=filter_name, max_workers=2
    ) as service:
        _check_equivalence(service, trees, filter_name, queries)


@pytest.mark.parametrize("shards", [2, 3])
def test_equivalence_survives_incremental_adds(shards):
    seed = 5
    trees = _corpus(seed)
    queries = _corpus(seed + 100, count=3)
    labels = sorted(
        {str(node.label) for tree in trees for node in tree.iter_preorder()}
    )
    rng = random.Random(seed)
    with ShardedTreeService(trees, shards=shards, max_workers=2) as service:
        shadow = list(trees)
        for _ in range(4):
            mutated, _script = random_edit_script(
                rng.choice(shadow), rng.randint(1, 3), labels, rng
            )
            assert service.add(mutated) == len(shadow)
            shadow.append(mutated)
            _check_equivalence(service, shadow, "bibranch", queries[:2])
        assert service.generation == 4
