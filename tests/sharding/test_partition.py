"""Partitioner policies and the global ↔ shard-local assignment maps."""

import pytest

from repro.exceptions import InvalidParameterError
from repro.sharding.partition import (
    PARTITIONERS,
    RoundRobinPartitioner,
    ShardAssignment,
    SizeBandedPartitioner,
    make_partitioner,
)
from repro.trees import parse_bracket


class TestRoundRobin:
    def test_cycles_over_shards(self):
        partitioner = RoundRobinPartitioner(3)
        tree = parse_bracket("a")
        assert [partitioner.assign(i, tree) for i in range(7)] == [
            0, 1, 2, 0, 1, 2, 0,
        ]

    def test_ignores_structure(self):
        partitioner = RoundRobinPartitioner(2)
        small, big = parse_bracket("a"), parse_bracket("a(b(c(d(e))))")
        assert partitioner.assign(4, small) == partitioner.assign(4, big)


class TestSizeBanded:
    def test_same_band_colocates(self):
        partitioner = SizeBandedPartitioner(2, band_width=8)
        five = parse_bracket("a(b,c,d,e)")  # |T| = 5
        seven = parse_bracket("a(b,c,d,e,f,g)")  # |T| = 7
        assert partitioner.assign(0, five) == partitioner.assign(99, seven)

    def test_band_boundary_splits(self):
        partitioner = SizeBandedPartitioner(2, band_width=2)
        two = parse_bracket("a(b)")  # band 1
        four = parse_bracket("a(b,c,d)")  # band 2
        assert partitioner.assign(0, two) != partitioner.assign(0, four)

    def test_rejects_bad_band_width(self):
        with pytest.raises(InvalidParameterError):
            SizeBandedPartitioner(2, band_width=0)


class TestRegistry:
    def test_registry_spellings(self):
        assert set(PARTITIONERS) == {"round-robin", "size-banded"}

    @pytest.mark.parametrize("name", sorted(PARTITIONERS))
    def test_make_partitioner(self, name):
        partitioner = make_partitioner(name, 4)
        assert partitioner.name == name
        assert partitioner.shards == 4

    def test_unknown_name_rejected(self):
        with pytest.raises(InvalidParameterError, match="unknown partitioner"):
            make_partitioner("hash-ring", 2)

    def test_rejects_zero_shards(self):
        with pytest.raises(InvalidParameterError):
            make_partitioner("round-robin", 0)


class TestShardAssignment:
    def test_bidirectional_maps(self):
        assignment = ShardAssignment(2)
        placements = [0, 1, 1, 0, 1]
        for shard in placements:
            assignment.append(shard)
        assert len(assignment) == 5
        assert assignment.by_shard == [[0, 3], [1, 2, 4]]
        assert assignment.locate == [(0, 0), (1, 0), (1, 1), (0, 1), (1, 2)]
        assert assignment.shard_sizes() == [2, 3]

    def test_local_order_preserves_global_order(self):
        # the k-NN frontier merge relies on this monotonicity
        assignment = ShardAssignment(3)
        for index in range(20):
            assignment.append(index % 3)
        for members in assignment.by_shard:
            assert members == sorted(members)

    def test_append_returns_both_indices(self):
        assignment = ShardAssignment(2)
        assert assignment.append(1) == (0, 0)
        assert assignment.append(1) == (1, 1)
        assert assignment.append(0) == (2, 0)

    def test_out_of_range_shard_rejected(self):
        assignment = ShardAssignment(2)
        with pytest.raises(InvalidParameterError):
            assignment.append(2)
        with pytest.raises(InvalidParameterError):
            assignment.append(-1)
