"""ShardedTreeService: API contract, delegation, lifecycle, batching."""

import pickle

import pytest

from repro.exceptions import InvalidParameterError, QueryError
from repro.search.database import TreeDatabase
from repro.service.engine import QueryRequest, TreeSearchService
from repro.sharding import ShardedTreeService, encode_query
from repro.sharding.partition import RoundRobinPartitioner
from repro.trees import parse_bracket, to_bracket

BRACKETS = [
    "a(b,c)",
    "a(b,d)",
    "x(y(z),w)",
    "a(b(c,d),e(f))",
    "a(b,c,d)",
    "x(y,w)",
]


@pytest.fixture
def trees():
    return [parse_bracket(b) for b in BRACKETS]


@pytest.fixture
def service(trees):
    with ShardedTreeService(trees, shards=2, max_workers=2) as service:
        yield service


class TestConstruction:
    def test_rejects_zero_shards(self, trees):
        with pytest.raises(InvalidParameterError):
            ShardedTreeService(trees, shards=0)

    def test_rejects_unknown_filter(self, trees):
        with pytest.raises(InvalidParameterError, match="unknown filter"):
            ShardedTreeService(trees, shards=2, filter_name="psychic")

    def test_rejects_unknown_partitioner(self, trees):
        with pytest.raises(InvalidParameterError, match="unknown partitioner"):
            ShardedTreeService(trees, shards=2, partitioner="hash-ring")

    def test_rejects_mismatched_partitioner_instance(self, trees):
        with pytest.raises(InvalidParameterError, match="configured for"):
            ShardedTreeService(
                trees, shards=3, partitioner=RoundRobinPartitioner(2)
            )

    def test_accepts_partitioner_instance(self, trees):
        with ShardedTreeService(
            trees, shards=2, partitioner=RoundRobinPartitioner(2)
        ) as service:
            assert len(service) == len(trees)


class TestSingleShardDelegation:
    def test_delegates_to_in_process_service(self, trees):
        query = parse_bracket("a(b,c)")
        reference = TreeSearchService(TreeDatabase(list(trees)))
        try:
            with ShardedTreeService(trees, shards=1) as service:
                assert "1 shard" in repr(service)
                assert len(service) == len(trees)
                assert (
                    service.range(query, 1.0)[0]
                    == reference.range(query, 1.0)[0]
                )
                assert service.knn(query, 2)[0] == reference.knn(query, 2)[0]
                (info,) = service.shard_info()
                assert info["trees"] == len(trees)
        finally:
            reference.close()

    def test_delegate_add(self, trees):
        with ShardedTreeService(trees, shards=1) as service:
            index = service.add(parse_bracket("a(b,c,q)"))
            assert index == len(trees)
            assert len(service) == len(trees) + 1
            assert service.generation == 1


class TestQueries:
    def test_range_returns_global_indices(self, service, trees):
        query = parse_bracket("a(b,c)")
        matches, stats = service.range(query, 1.0)
        assert [index for index, _ in matches] == sorted(
            index for index, _ in matches
        )
        assert {index for index, _ in matches} <= set(range(len(trees)))
        assert stats.dataset_size == len(trees)
        assert stats.results == len(matches)

    def test_knn_distances_ascend(self, service):
        matches, _ = service.knn(parse_bracket("a(b,c)"), 4)
        distances = [distance for _, distance in matches]
        assert distances == sorted(distances)
        assert len(matches) == 4

    def test_negative_threshold_rejected(self, service):
        with pytest.raises(QueryError):
            service.range(parse_bracket("a"), -1.0)

    @pytest.mark.parametrize("k", [0, 99])
    def test_bad_k_rejected(self, service, k):
        with pytest.raises(QueryError):
            service.knn(parse_bracket("a"), k)

    def test_execute_dispatch(self, service):
        query = parse_bracket("a(b,c)")
        assert (
            service.execute(QueryRequest("range", query, threshold=1.0))[0]
            == service.range(query, 1.0)[0]
        )

    def test_batch_matches_individual_execution(self, service):
        requests = [
            QueryRequest("range", parse_bracket("a(b,c)"), threshold=1.0),
            QueryRequest("knn", parse_bracket("x(y)"), k=2),
            QueryRequest("range", parse_bracket("a"), threshold=2.0),
        ]
        batched = service.batch(requests)
        individual = [service.execute(request) for request in requests]
        assert [answer[0] for answer in batched] == [
            answer[0] for answer in individual
        ]


class TestMutation:
    def test_add_is_visible_to_queries(self, service, trees):
        clone = parse_bracket("x(y(z),w)")
        index = service.add(clone)
        assert index == len(trees)
        assert len(service) == len(trees) + 1
        assert service.generation == 1
        matches, _ = service.range(clone, 0.0)
        assert (index, 0.0) in matches

    def test_adds_spread_over_shards(self, service, trees):
        for offset in range(4):
            service.add(parse_bracket(f"n{offset}"))
        info = service.shard_info()
        assert sum(entry["trees"] for entry in info) == len(trees) + 4


class TestLifecycle:
    def test_close_is_idempotent(self, trees):
        service = ShardedTreeService(trees, shards=2)
        service.close()
        service.close()

    def test_query_after_close_raises(self, trees):
        service = ShardedTreeService(trees, shards=2)
        service.close()
        with pytest.raises(RuntimeError, match="closed"):
            service.range(parse_bracket("a"), 1.0)

    def test_shard_info_counts_workers(self, service, trees):
        info = service.shard_info()
        assert [entry["shard"] for entry in info] == [0, 1]
        assert sum(entry["trees"] for entry in info) == len(trees)
        assert all(entry["filter"] == "BiBranch" for entry in info)


class TestMetrics:
    def test_queries_are_observed(self, service):
        before = service.metrics.snapshot()["queries_by_kind"].get("range", 0)
        service.range(parse_bracket("a(b,c)"), 1.0)
        snapshot = service.metrics.snapshot()
        assert snapshot["queries_by_kind"]["range"] == before + 1
        assert snapshot["queries_served"] >= before + 1


class TestEncodeQuery:
    def test_range_encoding(self):
        query = parse_bracket("a(b,c)")
        request = QueryRequest("range", query, threshold=2.0)
        assert encode_query(request) == ("range", to_bracket(query), 2.0)

    def test_knn_encoding(self):
        query = parse_bracket("x(y)")
        request = QueryRequest("knn", query, k=3)
        assert encode_query(request) == ("knn", to_bracket(query), 3)

    def test_encoding_is_flat_and_picklable(self):
        # the hot path ships brackets, never TreeNode object graphs
        encoded = encode_query(
            QueryRequest("range", parse_bracket("a(b(c))"), threshold=1.0)
        )
        assert all(isinstance(part, (str, int, float)) for part in encoded)
        assert pickle.loads(pickle.dumps(encoded)) == encoded
