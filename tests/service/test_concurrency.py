"""Concurrency smoke tests and cache-consistency property tests.

The service's contract under concurrent load: answers are bit-identical to
the sequential-scan ground truth, no matter how many threads share the
service or how often the result cache is hit.
"""

import threading

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.search.database import TreeDatabase
from repro.service import TreeSearchService
from repro.trees import parse_bracket
from tests.strategies import trees as tree_strategy

THREADS = 8
ROUNDS = 5

BRACKETS = [
    "a(b,c)", "a(b,d)", "x(y)", "a(b(c),d)", "x(y,z)",
    "a(b,c,d)", "b(a)", "a(b(c,d))", "x", "a(a(a))",
]


def _dataset():
    return [parse_bracket(t) for t in BRACKETS]


class TestConcurrentQueries:
    def test_eight_threads_agree_with_sequential_ground_truth(self):
        dataset = _dataset()
        database = TreeDatabase(dataset)
        truth_db = TreeDatabase(dataset)
        queries = [parse_bracket(t) for t in BRACKETS]
        range_truth = {
            i: truth_db.sequential_range_query(q, 2)[0]
            for i, q in enumerate(queries)
        }
        # k-NN tie-breaking differs between the multi-step algorithm and the
        # brute-force scan (both are valid k-NN sets); the service must be
        # bit-identical to the deterministic filtered algorithm and
        # distance-identical to the sequential ground truth.
        knn_truth = {i: truth_db.knn(q, 3)[0] for i, q in enumerate(queries)}
        knn_distance_truth = {
            i: sorted(d for _, d in truth_db.sequential_knn(q, 3)[0])
            for i, q in enumerate(queries)
        }
        failures = []
        barrier = threading.Barrier(THREADS)

        def worker(worker_id):
            barrier.wait()  # maximise overlap
            for round_number in range(ROUNDS):
                for i, query in enumerate(queries):
                    if (worker_id + round_number + i) % 2 == 0:
                        matches, _ = service.range(query, 2)
                        if matches != range_truth[i]:
                            failures.append(("range", worker_id, i, matches))
                    else:
                        matches, _ = service.knn(query, 3)
                        if matches != knn_truth[i]:
                            failures.append(("knn", worker_id, i, matches))
                        if sorted(d for _, d in matches) != knn_distance_truth[i]:
                            failures.append(("knn-dist", worker_id, i, matches))

        with TreeSearchService(database, max_workers=4, cache_size=64) as service:
            threads = [
                threading.Thread(target=worker, args=(n,)) for n in range(THREADS)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert not failures
        # heavy repetition must actually exercise the cache
        assert service.metrics.cache_hits > 0
        assert service.metrics.queries_served == THREADS * ROUNDS * len(queries)

    def test_concurrent_batches_agree_with_ground_truth(self):
        dataset = _dataset()
        database = TreeDatabase(dataset)
        queries = [parse_bracket(t) for t in BRACKETS]
        truth = [
            TreeDatabase(dataset).sequential_range_query(q, 1)[0] for q in queries
        ]
        with TreeSearchService(database, max_workers=4) as service:
            results = []

            def worker():
                answers = service.batch_range(queries, 1)
                results.append([matches for matches, _ in answers])

            threads = [threading.Thread(target=worker) for _ in range(THREADS)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert len(results) == THREADS
        for answer in results:
            assert answer == truth

    def test_queries_interleaved_with_adds_stay_consistent(self):
        database = TreeDatabase(_dataset())
        query = parse_bracket("a(b,c)")
        stop = threading.Event()
        errors = []

        def reader():
            while not stop.is_set():
                matches, stats = service.range(query, 1)
                # every answer must reflect a complete database state:
                # the filter and the scan saw the same number of trees
                if stats.dataset_size not in sizes_seen:
                    errors.append(stats.dataset_size)

        sizes_seen = set(range(len(_dataset()), len(_dataset()) + 21))
        with TreeSearchService(database, cache_size=8) as service:
            threads = [threading.Thread(target=reader) for _ in range(4)]
            for thread in threads:
                thread.start()
            for i in range(20):
                service.add(parse_bracket(f"z{i}(w)"))
            stop.set()
            for thread in threads:
                thread.join()
        assert not errors
        assert len(database) == len(_dataset()) + 20


class TestCachedEqualsUncached:
    @given(
        forest=st.lists(tree_strategy(max_leaves=6), min_size=2, max_size=8),
        query_index=st.integers(min_value=0, max_value=7),
        threshold=st.integers(min_value=0, max_value=4),
    )
    @settings(max_examples=25, deadline=None)
    def test_range_cache_transparency(self, forest, query_index, threshold):
        query = forest[query_index % len(forest)]
        cached_service = TreeSearchService(TreeDatabase(list(forest)), cache_size=64)
        uncached_service = TreeSearchService(TreeDatabase(list(forest)), cache_size=0)
        try:
            cold, _ = cached_service.range(query, threshold)
            warm, _ = cached_service.range(query, threshold)  # from cache
            plain, _ = uncached_service.range(query, threshold)
            assert cold == warm == plain
            assert cached_service.metrics.cache_hits == 1
        finally:
            cached_service.close()
            uncached_service.close()

    @given(
        forest=st.lists(tree_strategy(max_leaves=6), min_size=2, max_size=8),
        query_index=st.integers(min_value=0, max_value=7),
        k=st.integers(min_value=1, max_value=2),
    )
    @settings(max_examples=25, deadline=None)
    def test_knn_cache_transparency(self, forest, query_index, k):
        query = forest[query_index % len(forest)]
        cached_service = TreeSearchService(TreeDatabase(list(forest)), cache_size=64)
        uncached_service = TreeSearchService(TreeDatabase(list(forest)), cache_size=0)
        try:
            cold, _ = cached_service.knn(query, k)
            warm, _ = cached_service.knn(query, k)
            plain, _ = uncached_service.knn(query, k)
            assert cold == warm == plain
        finally:
            cached_service.close()
            uncached_service.close()
