"""Selective result-cache invalidation on TreeSearchService.add().

The service keeps a cached answer across an insertion only when the
database's lower-bound filter *proves* the new tree cannot appear in it;
these tests pin both directions (retention serves hits, eviction recomputes)
and the overall soundness property: every answer served after any sequence
of adds equals a freshly computed one.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.search.database import TreeDatabase
from repro.service import TreeSearchService
from repro.trees import parse_bracket
from tests.strategies import trees


def _service(texts, **options):
    database = TreeDatabase([parse_bracket(text) for text in texts])
    return TreeSearchService(database, **options)


class TestSelectiveInvalidation:
    def test_unaffected_range_entry_is_retained(self):
        service = _service(["a(b,c)", "a(b,d)"])
        query = parse_bracket("a(b,c)")
        first, _ = service.range(query, 1)
        # far from the query: the BiBranch bound provably exceeds 1
        service.add(parse_bracket("z(w(v,u),t(s,r),p,o,n)"))
        second, _ = service.range(query, 1)
        assert second == first
        assert service.metrics.cache_hits == 1
        assert service.metrics.cache_entries_retained == 1
        assert service.metrics.cache_entries_evicted == 0

    def test_affected_range_entry_is_evicted_and_recomputed(self):
        service = _service(["a(b,c)", "x(y)"])
        query = parse_bracket("a(b,c)")
        service.range(query, 1)
        index = service.add(parse_bracket("a(b,c)"))  # exact duplicate
        matches, _ = service.range(query, 1)
        assert (index, 0.0) in matches
        assert service.metrics.cache_hits == 0
        assert service.metrics.cache_entries_evicted == 1

    def test_full_knn_entry_with_distant_add_is_retained(self):
        service = _service(["a(b,c)", "a(b,d)", "x(y)"])
        query = parse_bracket("a(b,c)")
        first, _ = service.knn(query, 2)
        service.add(parse_bracket("z(w(v,u),t(s,r),p,o,n)"))
        second, _ = service.knn(query, 2)
        assert second == first
        assert service.metrics.cache_hits == 1

    def test_knn_entry_improved_by_add_is_evicted(self):
        """A new tree closer than the k-th neighbor must enter the answer."""
        service = _service(["a(b,c)", "zz(ww,vv,uu,tt)"])
        query = parse_bracket("a(b,c)")
        first, _ = service.knn(query, 2)
        assert first[-1][1] > 1  # the 2nd neighbor is far from the query
        index = service.add(parse_bracket("a(e,c)"))  # closer than that
        second, _ = service.knn(query, 2)
        assert service.metrics.cache_hits == 0  # entry could not be proven safe
        assert {i for i, _ in second} == {0, index}

    def test_knn_entry_with_close_add_is_evicted(self):
        service = _service(["a(b,c)", "z(w(v,u),t(s,r),p)"])
        query = parse_bracket("a(b,c)")
        service.knn(query, 2)
        index = service.add(parse_bracket("a(b,c)"))
        neighbors, _ = service.knn(query, 2)
        assert {i for i, _ in neighbors} == {0, index}

    def test_invalidation_metrics_accumulate(self):
        service = _service(["a(b,c)", "x(y)"])
        service.range(parse_bracket("a(b,c)"), 1)
        service.range(parse_bracket("x(y)"), 0)
        service.add(parse_bracket("z(w(v,u),t(s,r),p,o,n)"))
        snapshot = service.metrics.snapshot()["cache"]
        assert snapshot["invalidations"] == 1
        assert snapshot["entries_retained"] == 2
        assert snapshot["entries_evicted"] == 0

    def test_out_of_band_mutation_forces_miss(self):
        """Generation stamps catch database.add() calls bypassing the service."""
        service = _service(["a(b,c)", "x(y)"])
        query = parse_bracket("a(b,c)")
        service.range(query, 1)
        index = service.database.add(parse_bracket("a(b,c)"))  # bypass
        matches, _ = service.range(query, 1)
        assert (index, 0.0) in matches
        assert service.metrics.cache_hits == 0

    def test_retained_entries_equal_cold_queries_after_add(self):
        """Every entry surviving an add answers exactly like a cold database."""
        service = _service(["a(b,c)", "a(b,d)", "x(y)", "a(b(c),d)"])
        for kind, text, parameter in [
            ("range", "a(b,c)", 1.0),
            ("range", "x(y)", 0.0),
            ("knn", "a(b,d)", 2),
        ]:
            query = parse_bracket(text)
            if kind == "range":
                service.range(query, parameter)
            else:
                service.knn(query, parameter)
        service.add(parse_bracket("z(w(v,u),t(s,r),p,o,n)"))
        assert service.metrics.cache_entries_retained > 0
        cold = TreeDatabase(list(service.database.trees))
        for (kind, bracket, parameter), entry in service._cache._entries.items():
            # surviving entries are re-stamped to the current generation …
            assert entry.generation == service.database.generation
            query = parse_bracket(bracket)
            expected = (
                cold.range_query(query, parameter)[0]
                if kind == "range"
                else cold.knn(query, int(parameter))[0]
            )
            # … and their payload equals a from-scratch computation
            assert entry.answer[0] == expected

    def test_generation_mismatch_is_a_miss_never_a_stale_hit(self):
        """A mis-stamped entry must be dropped, not served."""
        service = _service(["a(b,c)", "x(y)"])
        query = parse_bracket("a(b,c)")
        first, _ = service.range(query, 1)
        for entry in service._cache._entries.values():
            entry.generation -= 1
            entry.answer[0].append(("poison", -1.0))  # detectable if served
        matches, _ = service.range(query, 1)
        assert matches == first
        assert ("poison", -1.0) not in matches
        assert service.metrics.cache_hits == 0

    @given(
        forest=st.lists(trees(max_leaves=5), min_size=1, max_size=4),
        additions=st.lists(trees(max_leaves=5), min_size=1, max_size=3),
        query=trees(max_leaves=5),
        threshold=st.integers(0, 3),
        k=st.integers(1, 3),
    )
    @settings(max_examples=20, deadline=None)
    def test_served_answers_always_fresh(
        self, forest, additions, query, threshold, k
    ):
        """Soundness: cached-or-not, answers equal a freshly built database's."""
        k = min(k, len(forest))  # knn rejects k beyond the dataset size
        service = TreeSearchService(TreeDatabase(list(forest)))
        service.range(query, threshold)
        service.knn(query, k)
        for added in additions:
            service.add(added)
            oracle = TreeDatabase(service.database.trees)
            range_answer, _ = service.range(query, threshold)
            knn_answer, _ = service.knn(query, k)
            assert range_answer == oracle.range_query(query, threshold)[0]
            assert knn_answer == oracle.knn(query, k)[0]
