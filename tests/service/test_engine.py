"""Unit tests for the TreeSearchService engine."""

import pytest

from repro.exceptions import QueryError
from repro.search.database import TreeDatabase
from repro.service import QueryRequest, TreeSearchService
from repro.trees import parse_bracket

BRACKETS = ["a(b,c)", "a(b,d)", "x(y)", "a(b(c),d)", "x(y,z)", "a(b,c)"]


@pytest.fixture
def database():
    return TreeDatabase([parse_bracket(t) for t in BRACKETS])


@pytest.fixture
def service(database):
    with TreeSearchService(database, max_workers=2, cache_size=16) as svc:
        yield svc


class TestSingleQueries:
    def test_range_matches_database(self, database, service):
        query = parse_bracket("a(b,c)")
        expected, _ = database.sequential_range_query(query, 1)
        got, stats = service.range(query, 1)
        assert got == expected
        assert stats.dataset_size == len(database)

    def test_knn_matches_database(self, database, service):
        query = parse_bracket("x(y)")
        expected, _ = database.knn(query, 3)
        got, _ = service.knn(query, 3)
        assert got == expected
        brute, _ = database.sequential_knn(query, 3)
        assert sorted(d for _, d in got) == sorted(d for _, d in brute)

    def test_execute_dispatches_by_kind(self, service):
        query = parse_bracket("a(b,c)")
        assert service.execute(QueryRequest("range", query, threshold=1)) == \
            service.range(query, 1)
        assert service.execute(QueryRequest("knn", query, k=2)) == \
            service.knn(query, 2)

    def test_unknown_kind_rejected(self):
        with pytest.raises(QueryError):
            QueryRequest("join", parse_bracket("a"))


class TestResultCache:
    def test_repeat_query_hits_cache(self, service):
        query = parse_bracket("a(b,c)")
        first, _ = service.range(query, 1)
        second, _ = service.range(query, 1)
        assert first == second
        assert service.metrics.cache_hits == 1
        assert service.metrics.cache_misses == 1

    def test_cache_keyed_by_canonical_form_not_identity(self, service):
        service.range(parse_bracket("a(b,c)"), 1)
        service.range(parse_bracket("a(b,c)"), 1)  # distinct object, same tree
        assert service.metrics.cache_hits == 1

    def test_cache_distinguishes_parameters(self, service):
        query = parse_bracket("a(b,c)")
        service.range(query, 1)
        service.range(query, 2)
        assert service.metrics.cache_hits == 0

    def test_cache_distinguishes_kinds(self, service):
        query = parse_bracket("a(b,c)")
        service.range(query, 2)
        service.knn(query, 2)
        assert service.metrics.cache_hits == 0

    def test_cached_answer_is_a_private_copy(self, service):
        query = parse_bracket("a(b,c)")
        first, first_stats = service.range(query, 1)
        first.append(("poison", 0.0))
        first_stats.candidates = -1
        second, second_stats = service.range(query, 1)
        assert ("poison", 0.0) not in second
        assert second_stats.candidates >= 0

    def test_add_invalidates_cache(self, database, service):
        query = parse_bracket("a(b,c)")
        before, _ = service.range(query, 0)
        index = service.add(parse_bracket("a(b,c)"))
        after, _ = service.range(query, 0)
        assert index == len(BRACKETS)
        assert (index, 0.0) in after
        assert len(after) == len(before) + 1
        assert service.metrics.invalidations == 1

    def test_zero_cache_size_disables_caching(self, database):
        with TreeSearchService(database, cache_size=0) as svc:
            query = parse_bracket("a(b,c)")
            first, _ = svc.range(query, 1)
            second, _ = svc.range(query, 1)
            assert first == second
            assert svc.metrics.cache_hits == 0
            assert svc.metrics.cache_misses == 2

    def test_cache_is_lru_bounded(self, database):
        with TreeSearchService(database, cache_size=2) as svc:
            for threshold in (0, 1, 2, 3):
                svc.range(parse_bracket("a(b,c)"), threshold)
            assert len(svc._cache) == 2


class TestBatches:
    def test_batch_range_matches_singles(self, database, service):
        queries = [parse_bracket(t) for t in BRACKETS]
        answers = service.batch_range(queries, 1)
        for query, (matches, _) in zip(queries, answers):
            expected, _ = database.sequential_range_query(query, 1)
            assert matches == expected

    def test_batch_knn_matches_singles(self, database, service):
        queries = [parse_bracket(t) for t in BRACKETS]
        answers = service.batch_knn(queries, 2)
        for query, (matches, _) in zip(queries, answers):
            expected, _ = database.knn(query, 2)
            assert matches == expected
            brute, _ = database.sequential_knn(query, 2)
            assert sorted(d for _, d in matches) == sorted(d for _, d in brute)

    def test_mixed_batch_preserves_order(self, service):
        requests = [
            QueryRequest("range", parse_bracket("a(b,c)"), threshold=1),
            QueryRequest("knn", parse_bracket("x(y)"), k=1),
            QueryRequest("range", parse_bracket("x(y,z)"), threshold=0),
        ]
        answers = service.batch(requests)
        assert len(answers) == 3
        assert answers[1][0] == service.knn(parse_bracket("x(y)"), 1)[0]

    def test_empty_batch(self, service):
        assert service.batch([]) == []

    def test_batch_counts_in_metrics(self, service):
        service.batch_range([parse_bracket("a(b,c)")], 1)
        assert service.metrics.batches == 1


class TestLifecycle:
    def test_close_is_idempotent(self, database):
        svc = TreeSearchService(database)
        svc.batch_range([parse_bracket("a")], 1)
        svc.close()
        svc.close()

    def test_batch_after_close_raises(self, database):
        svc = TreeSearchService(database)
        svc.close()
        with pytest.raises(RuntimeError):
            svc.batch_range([parse_bracket("a"), parse_bracket("b")], 1)

    def test_len_and_repr(self, service):
        assert len(service) == len(BRACKETS)
        assert "TreeSearchService" in repr(service)

    def test_rejects_bad_sizes(self, database):
        with pytest.raises(ValueError):
            TreeSearchService(database, max_workers=0)
        with pytest.raises(ValueError):
            TreeSearchService(database, cache_size=-1)
