"""Unit tests for the serving metrics layer."""

import json

import pytest

from repro.search import SearchStats
from repro.service import LatencyHistogram, ServiceMetrics, percentile


class TestPercentile:
    def test_empty_is_zero(self):
        assert percentile([], 50) == 0.0

    def test_single_sample(self):
        assert percentile([0.25], 0) == 0.25
        assert percentile([0.25], 100) == 0.25

    def test_known_values(self):
        samples = [float(i) for i in range(1, 101)]
        assert percentile(samples, 50) == pytest.approx(50.0, abs=1.0)
        assert percentile(samples, 99) == pytest.approx(99.0, abs=1.0)
        assert percentile(samples, 100) == 100.0

    def test_unsorted_input(self):
        assert percentile([3.0, 1.0, 2.0], 100) == 3.0

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)


class TestLatencyHistogram:
    def test_empty(self):
        histogram = LatencyHistogram()
        assert histogram.mean == 0.0
        assert histogram.quantile(50) == 0.0

    def test_count_sum_min_max(self):
        histogram = LatencyHistogram()
        for value in (0.001, 0.01, 0.1):
            histogram.record(value)
        assert histogram.total == 3
        assert histogram.sum == pytest.approx(0.111)
        assert histogram.min == 0.001
        assert histogram.max == 0.1

    def test_quantiles_are_monotone_and_bracketing(self):
        histogram = LatencyHistogram()
        for i in range(1, 200):
            histogram.record(i / 1000.0)  # 1ms .. 199ms
        p50, p90, p99 = (histogram.quantile(p) for p in (50, 90, 99))
        assert p50 <= p90 <= p99
        assert histogram.min <= p50 and p99 <= histogram.max

    def test_quantile_within_bucket_accuracy(self):
        histogram = LatencyHistogram()
        for _ in range(100):
            histogram.record(0.005)
        # every sample is 5 ms; any percentile must land in its bucket
        assert histogram.quantile(50) == pytest.approx(0.005, rel=1.0)

    def test_to_dict_is_json_serialisable(self):
        histogram = LatencyHistogram()
        histogram.record(0.002)
        data = histogram.to_dict()
        assert json.loads(json.dumps(data)) == data
        assert data["count"] == 1


class TestServiceMetrics:
    def _stats(self):
        return SearchStats(dataset_size=100, candidates=10, results=2,
                           filter_seconds=0.01, refine_seconds=0.05)

    def test_observe_miss_accumulates_work(self):
        metrics = ServiceMetrics()
        metrics.observe_query("range", self._stats(), 0.06, cache_hit=False)
        assert metrics.queries_served == 1
        assert metrics.candidates_examined == 10
        assert metrics.filter_seconds == pytest.approx(0.01)
        assert metrics.refine_seconds == pytest.approx(0.05)

    def test_observe_hit_skips_work_counters(self):
        metrics = ServiceMetrics()
        metrics.observe_query("range", self._stats(), 0.06, cache_hit=False)
        metrics.observe_query("range", self._stats(), 0.0001, cache_hit=True)
        assert metrics.cache_hit_rate == 0.5
        # the hit does not double-count filter/refine work
        assert metrics.candidates_examined == 10

    def test_snapshot_schema(self):
        metrics = ServiceMetrics()
        metrics.observe_query("knn", self._stats(), 0.06, cache_hit=False)
        metrics.observe_batch()
        metrics.observe_invalidation()
        snapshot = metrics.snapshot()
        assert snapshot["queries_served"] == 1
        assert snapshot["queries_by_kind"] == {"knn": 1}
        assert snapshot["batches"] == 1
        assert snapshot["cache"]["invalidations"] == 1
        assert snapshot["work"]["accessed_percentage"] == pytest.approx(10.0)
        assert snapshot["seconds"]["total"] == pytest.approx(0.06)
        assert set(snapshot["latency"]) == {"knn"}
        for key in ("count", "p50_seconds", "p90_seconds", "p99_seconds"):
            assert key in snapshot["latency"]["knn"]

    def test_to_json_round_trips(self):
        metrics = ServiceMetrics()
        metrics.observe_query("range", self._stats(), 0.02, cache_hit=False)
        decoded = json.loads(metrics.to_json())
        assert decoded == metrics.snapshot()

    def test_reset(self):
        metrics = ServiceMetrics()
        metrics.observe_query("range", self._stats(), 0.02, cache_hit=False)
        metrics.reset()
        assert metrics.queries_served == 0
        assert metrics.snapshot()["latency"] == {}

    def test_idle_hit_rate_is_zero(self):
        assert ServiceMetrics().cache_hit_rate == 0.0


class TestPerKindSeconds:
    """Regression: snapshot() must break filter/refine time down per kind."""

    @staticmethod
    def _stats(filter_seconds, refine_seconds):
        return SearchStats(dataset_size=50, candidates=5, results=1,
                           filter_seconds=filter_seconds,
                           refine_seconds=refine_seconds)

    def test_seconds_by_kind(self):
        metrics = ServiceMetrics()
        metrics.observe_query("range", self._stats(0.01, 0.04), 0.05,
                              cache_hit=False)
        metrics.observe_query("range", self._stats(0.01, 0.04), 0.05,
                              cache_hit=False)
        metrics.observe_query("knn", self._stats(0.002, 0.008), 0.01,
                              cache_hit=False)
        by_kind = metrics.seconds_by_kind()
        assert by_kind["range"]["filter"] == pytest.approx(0.02)
        assert by_kind["range"]["refine"] == pytest.approx(0.08)
        assert by_kind["range"]["total"] == pytest.approx(0.10)
        assert by_kind["knn"]["filter"] == pytest.approx(0.002)
        assert by_kind["knn"]["refine"] == pytest.approx(0.008)

    def test_snapshot_carries_by_kind_and_totals_agree(self):
        metrics = ServiceMetrics()
        metrics.observe_query("range", self._stats(0.01, 0.04), 0.05,
                              cache_hit=False)
        metrics.observe_query("knn", self._stats(0.002, 0.008), 0.01,
                              cache_hit=False)
        snapshot = metrics.snapshot()
        by_kind = snapshot["seconds"]["by_kind"]
        assert set(by_kind) == {"range", "knn"}
        assert sum(entry["filter"] for entry in by_kind.values()) == pytest.approx(
            snapshot["seconds"]["filter"]
        )
        assert sum(entry["refine"] for entry in by_kind.values()) == pytest.approx(
            snapshot["seconds"]["refine"]
        )

    def test_cache_hits_do_not_accrue_phase_seconds(self):
        metrics = ServiceMetrics()
        metrics.observe_query("range", self._stats(0.01, 0.04), 0.05,
                              cache_hit=False)
        metrics.observe_query("range", self._stats(0.01, 0.04), 0.0001,
                              cache_hit=True)
        assert metrics.seconds_by_kind()["range"]["filter"] == pytest.approx(0.01)


class TestPrometheusExport:
    @staticmethod
    def _stats():
        return SearchStats(dataset_size=100, candidates=10, results=2,
                           filter_seconds=0.01, refine_seconds=0.05)

    def test_exposes_serving_series(self):
        metrics = ServiceMetrics()
        metrics.observe_query("range", self._stats(), 0.06, cache_hit=False)
        metrics.observe_batch()
        text = metrics.prometheus_text()
        assert "# TYPE repro_queries_total counter" in text
        assert 'repro_queries_total{kind="range"} 1.0' in text
        assert 'repro_phase_seconds_total{phase="filter",kind="range"}' in text
        assert 'repro_query_latency_seconds_bucket{kind="range",le="+Inf"} 1' in text
        assert "repro_batches_total 1.0" in text

    def test_shared_registry_aggregates_two_services(self):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        first = ServiceMetrics(registry=registry)
        second = ServiceMetrics(registry=registry)
        first.observe_query("range", self._stats(), 0.06, cache_hit=False)
        second.observe_query("range", self._stats(), 0.06, cache_hit=False)
        counter = registry.get("repro_queries_total")
        assert counter.value(kind="range") == 2

    def test_reset_is_instance_scoped_on_shared_registry(self):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        metrics = ServiceMetrics(registry=registry)
        registry.counter("unrelated_total").inc(3)
        metrics.observe_query("range", self._stats(), 0.06, cache_hit=False)
        metrics.reset()
        assert metrics.queries_served == 0
        assert registry.get("unrelated_total").value() == 3
