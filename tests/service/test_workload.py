"""Unit tests for the synthetic workload generator and replay driver."""

import json

import pytest

from repro.exceptions import QueryError
from repro.search.database import TreeDatabase
from repro.service import (
    TreeSearchService,
    WorkloadSpec,
    format_report,
    generate_workload,
    replay,
)
from repro.trees import parse_bracket, to_bracket

BRACKETS = ["a(b,c)", "a(b,d)", "x(y)", "a(b(c),d)", "x(y,z)"]


@pytest.fixture
def trees():
    return [parse_bracket(t) for t in BRACKETS]


class TestGeneration:
    def test_deterministic_given_seed(self, trees):
        spec = WorkloadSpec(queries=40, seed=7)
        first = generate_workload(trees, spec)
        second = generate_workload(trees, spec)
        assert [(r.kind, to_bracket(r.query), r.threshold, r.k) for r in first] == \
            [(r.kind, to_bracket(r.query), r.threshold, r.k) for r in second]

    def test_different_seeds_differ(self, trees):
        first = generate_workload(trees, WorkloadSpec(queries=40, seed=1))
        second = generate_workload(trees, WorkloadSpec(queries=40, seed=2))
        assert [(r.kind, to_bracket(r.query)) for r in first] != \
            [(r.kind, to_bracket(r.query)) for r in second]

    def test_repeat_fraction_one_repeats_forever(self, trees):
        stream = generate_workload(
            trees, WorkloadSpec(queries=20, repeat_fraction=1.0, seed=3)
        )
        # the first query is necessarily fresh; all others repeat it
        assert len({(r.kind, to_bracket(r.query)) for r in stream}) == 1

    def test_range_fraction_extremes(self, trees):
        all_range = generate_workload(
            trees,
            WorkloadSpec(queries=20, range_fraction=1.0, repeat_fraction=0.0),
        )
        assert {r.kind for r in all_range} == {"range"}
        all_knn = generate_workload(
            trees,
            WorkloadSpec(queries=20, range_fraction=0.0, repeat_fraction=0.0),
        )
        assert {r.kind for r in all_knn} == {"knn"}

    def test_k_clamped_to_dataset(self, trees):
        stream = generate_workload(
            trees,
            WorkloadSpec(queries=10, range_fraction=0.0, repeat_fraction=0.0,
                         k=100),
        )
        assert all(r.k == len(trees) for r in stream)

    def test_rejects_bad_specs(self, trees):
        with pytest.raises(QueryError):
            WorkloadSpec(queries=0)
        with pytest.raises(QueryError):
            WorkloadSpec(repeat_fraction=1.5)
        with pytest.raises(QueryError):
            generate_workload([], WorkloadSpec())


class TestReplay:
    def test_serial_replay_reports(self, trees):
        workload = generate_workload(
            trees, WorkloadSpec(queries=25, repeat_fraction=0.6, seed=5)
        )
        with TreeSearchService(TreeDatabase(trees)) as service:
            answers, report = replay(service, workload, clients=1)
        assert len(answers) == 25
        assert report.queries == 25
        assert report.mode == "serial"
        assert report.throughput_qps > 0
        assert len(report.latencies) == 25
        assert report.metrics["cache"]["hits"] > 0

    def test_concurrent_replay_same_answers_as_serial(self, trees):
        workload = generate_workload(
            trees, WorkloadSpec(queries=30, repeat_fraction=0.4, seed=9)
        )
        with TreeSearchService(TreeDatabase(trees)) as serial_service:
            serial_answers, _ = replay(serial_service, workload, clients=1)
        with TreeSearchService(TreeDatabase(trees)) as concurrent_service:
            concurrent_answers, report = replay(
                concurrent_service, workload, clients=4
            )
        assert concurrent_answers == serial_answers
        assert report.mode == "concurrent×4"

    def test_report_to_dict_is_json_serialisable(self, trees):
        workload = generate_workload(trees, WorkloadSpec(queries=5))
        with TreeSearchService(TreeDatabase(trees)) as service:
            _, report = replay(service, workload)
        data = report.to_dict()
        assert json.loads(json.dumps(data)) == data
        assert data["latency"]["p50_seconds"] <= data["latency"]["p99_seconds"]

    def test_format_report_mentions_key_figures(self, trees):
        workload = generate_workload(
            trees, WorkloadSpec(queries=10, repeat_fraction=0.5)
        )
        with TreeSearchService(TreeDatabase(trees)) as service:
            _, report = replay(service, workload)
        text = format_report(report)
        assert "throughput" in text
        assert "p99" in text
        assert "result cache" in text

    def test_rejects_bad_client_count(self, trees):
        with TreeSearchService(TreeDatabase(trees)) as service:
            with pytest.raises(QueryError):
                replay(service, [], clients=0)
