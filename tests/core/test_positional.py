"""Unit and property tests for the positional binary branch distance (§4.2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    branch_distance,
    exact_position_matching,
    greedy_interval_matching,
    positional_branch_distance,
    positional_profile,
    search_lower_bound,
)
from repro.editdist import tree_edit_distance
from repro.trees import parse_bracket
from tests.strategies import tree_pairs

T1 = "a(b(c,d),b(c,d),e)"
T2 = "a(b(c,d,b(e)),c,d,e)"

sorted_ints = st.lists(st.integers(0, 30), max_size=8).map(sorted)


class TestGreedyMatching:
    def test_exact_positions(self):
        assert greedy_interval_matching([1, 2, 3], [1, 2, 3], 0) == 3

    def test_no_overlap(self):
        assert greedy_interval_matching([1, 2], [10, 20], 2) == 0

    def test_partial(self):
        assert greedy_interval_matching([1, 10], [9, 11], 1) == 1

    def test_empty(self):
        assert greedy_interval_matching([], [1, 2], 5) == 0

    @given(sorted_ints, sorted_ints, st.integers(0, 10))
    @settings(max_examples=150, deadline=None)
    def test_greedy_is_optimal_in_one_dimension(self, a, b, pr):
        """The two-pointer greedy equals the exact maximum matching."""
        pairs_a = [(x, 0) for x in a]  # collapse to 1D: post always matches
        pairs_b = [(x, 0) for x in b]
        exact = exact_position_matching(pairs_a, pairs_b, pr)
        # exact matching with post constraint |0-0| <= pr is 1D on pre
        assert greedy_interval_matching(a, b, pr) == exact

    @given(sorted_ints, sorted_ints, st.integers(0, 8))
    @settings(max_examples=100, deadline=None)
    def test_monotone_in_pr(self, a, b, pr):
        assert greedy_interval_matching(a, b, pr) <= greedy_interval_matching(
            a, b, pr + 1
        )

    @given(sorted_ints, sorted_ints, st.integers(0, 8))
    @settings(max_examples=100, deadline=None)
    def test_bounded_by_min_size(self, a, b, pr):
        assert greedy_interval_matching(a, b, pr) <= min(len(a), len(b))


class TestExactMatching:
    def test_two_constraints_bite(self):
        # pre positions match within 1, but post positions are far apart
        pairs_a = [(1, 1)]
        pairs_b = [(1, 10)]
        assert exact_position_matching(pairs_a, pairs_b, 1) == 0

    def test_augmenting_path_needed(self):
        # a1 can match b1 or b2; a2 only b1 -> optimal assigns a1->b2
        pairs_a = [(1, 1), (2, 2)]
        pairs_b = [(2, 2), (0, 0)]
        assert exact_position_matching(pairs_a, pairs_b, 2) == 2

    @given(
        st.lists(st.tuples(st.integers(0, 15), st.integers(0, 15)), max_size=6),
        st.lists(st.tuples(st.integers(0, 15), st.integers(0, 15)), max_size=6),
        st.integers(0, 6),
    )
    @settings(max_examples=80, deadline=None)
    def test_exact_never_exceeds_greedy_min(self, pairs_a, pairs_b, pr):
        """The paper's approximation over-matches, never under-matches."""
        pre_a = sorted(p for p, _ in pairs_a)
        pre_b = sorted(p for p, _ in pairs_b)
        post_a = sorted(q for _, q in pairs_a)
        post_b = sorted(q for _, q in pairs_b)
        approx = min(
            greedy_interval_matching(pre_a, pre_b, pr),
            greedy_interval_matching(post_a, post_b, pr),
        )
        assert exact_position_matching(pairs_a, pairs_b, pr) <= approx


class TestPosBDist:
    def test_zero_for_identical_trees(self):
        t = parse_bracket(T1)
        assert positional_branch_distance(t, parse_bracket(T1), 0) == 0

    def test_paper_walkthrough_pr1(self):
        """§4.2: with pr=1, (c(ε,d),3,1) of T1 maps only to (c(ε,d),3,1) of
        T2; (c,6,4) and (c,7,6) cannot match; (e,8,7) matches (e,9,8)."""
        t1, t2 = parse_bracket(T1), parse_bracket(T2)
        # c(ε,d) occurs at (3,1),(6,4) in T1 and (3,1),(7,6) in T2: with
        # pr=1 only one pair matches; e(ε,ε) at (8,7) in T1 and (6,3),(9,8)
        # in T2: one match.  Mismatched counts contribute the rest.
        pos = positional_branch_distance(t1, t2, 1)
        plain = branch_distance(t1, t2)
        assert pos >= plain
        # contributions: a(b,ε) matches; c: 2+2-2*1=2 (vs 0 unrestricted);
        # e: 1+2-2*1 = 1; plus the 6 branches unique to one tree = 6 + 1
        assert pos == 9 + 2  # two extra over plain BDist

    def test_decreases_with_pr(self):
        t1, t2 = parse_bracket(T1), parse_bracket(T2)
        values = [positional_branch_distance(t1, t2, pr) for pr in range(0, 10)]
        assert values == sorted(values, reverse=True)

    def test_equals_bdist_at_large_pr(self):
        t1, t2 = parse_bracket(T1), parse_bracket(T2)
        assert positional_branch_distance(t1, t2, 100) == branch_distance(t1, t2)

    def test_profile_arguments(self):
        p1 = positional_profile(parse_bracket(T1))
        p2 = positional_profile(parse_bracket(T2))
        assert positional_branch_distance(p1, p2, 1) == positional_branch_distance(
            parse_bracket(T1), parse_bracket(T2), 1
        )

    def test_level_mismatch_rejected(self):
        p2 = positional_profile(parse_bracket("a(b)"), q=2)
        p3 = positional_profile(parse_bracket("a(b)"), q=3)
        with pytest.raises(ValueError):
            positional_branch_distance(p2, p3, 1)
        with pytest.raises(ValueError):
            search_lower_bound(p2, p3)

    @given(tree_pairs(), st.integers(0, 6))
    @settings(max_examples=60, deadline=None)
    def test_proposition_4_2(self, pair, threshold):
        """PosBDist(T1, T2, l) > 5l  =>  EDist(T1, T2) > l."""
        t1, t2 = pair
        if positional_branch_distance(t1, t2, threshold) > 5 * threshold:
            assert tree_edit_distance(t1, t2) > threshold

    @given(tree_pairs(), st.integers(0, 6))
    @settings(max_examples=40, deadline=None)
    def test_proposition_4_2_exact_matching(self, pair, threshold):
        t1, t2 = pair
        if (
            positional_branch_distance(t1, t2, threshold, exact=True)
            > 5 * threshold
        ):
            assert tree_edit_distance(t1, t2) > threshold

    @given(tree_pairs(), st.integers(0, 6))
    @settings(max_examples=40, deadline=None)
    def test_exact_matching_gives_tighter_distance(self, pair, pr):
        t1, t2 = pair
        approx = positional_branch_distance(t1, t2, pr)
        exact = positional_branch_distance(t1, t2, pr, exact=True)
        assert exact >= approx  # fewer matches -> larger distance


class TestSearchLowerBound:
    def test_zero_for_identical(self):
        assert search_lower_bound(parse_bracket(T1), parse_bracket(T1)) == 0

    def test_paper_pair(self):
        t1, t2 = parse_bracket(T1), parse_bracket(T2)
        bound = search_lower_bound(t1, t2)
        assert 1 <= bound <= tree_edit_distance(t1, t2)

    @given(tree_pairs())
    @settings(max_examples=100, deadline=None)
    def test_sound(self, pair):
        t1, t2 = pair
        assert search_lower_bound(t1, t2) <= tree_edit_distance(t1, t2)

    @given(tree_pairs())
    @settings(max_examples=60, deadline=None)
    def test_sound_with_exact_matching(self, pair):
        t1, t2 = pair
        assert search_lower_bound(t1, t2, exact=True) <= tree_edit_distance(t1, t2)

    @given(tree_pairs())
    @settings(max_examples=60, deadline=None)
    def test_exact_at_least_as_tight(self, pair):
        t1, t2 = pair
        assert search_lower_bound(t1, t2, exact=True) >= search_lower_bound(t1, t2)

    @given(tree_pairs(max_leaves=8), st.sampled_from([3, 4]))
    @settings(max_examples=50, deadline=None)
    def test_sound_for_higher_levels(self, pair, q):
        t1, t2 = pair
        assert search_lower_bound(t1, t2, q=q) <= tree_edit_distance(t1, t2)

    @given(tree_pairs())
    @settings(max_examples=60, deadline=None)
    def test_symmetry(self, pair):
        t1, t2 = pair
        assert search_lower_bound(t1, t2) == search_lower_bound(t2, t1)
