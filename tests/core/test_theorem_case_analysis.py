"""Property tests for Theorem 3.2's per-operation case analysis.

The proof bounds the branch-vector disturbance of each *single* operation:
a relabel touches at most 4 branch occurrences (the node appears in at most
two branches per Lemma 3.1), an insertion at most 5, a deletion at most 5.
These are sharper statements than the aggregate ``BDist ≤ 5·EDist`` and pin
the proof's structure directly.
"""


from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import branch_distance
from repro.trees import (
    Delete,
    Insert,
    Relabel,
    apply_operation,
    parse_bracket,
)
from tests.strategies import trees

LABELS = ["a", "b", "c", "z"]


def _apply(tree, operation):
    mutated = tree.clone()
    apply_operation(mutated, operation)
    return mutated


class TestRelabelCase:
    @given(trees(), st.data())
    @settings(max_examples=80, deadline=None)
    def test_relabel_changes_at_most_four(self, tree, data):
        position = data.draw(st.integers(1, tree.size))
        new_label = data.draw(st.sampled_from(LABELS))
        mutated = _apply(tree, Relabel(position, new_label))
        assert branch_distance(tree, mutated) <= 4

    def test_relabel_of_isolated_node_changes_two(self):
        # a single-node tree: the node roots one branch only
        tree = parse_bracket("a")
        mutated = _apply(tree, Relabel(1, "b"))
        assert branch_distance(tree, mutated) == 2


class TestDeleteCase:
    @given(trees(), st.data())
    @settings(max_examples=80, deadline=None)
    def test_delete_changes_at_most_five(self, tree, data):
        if tree.size < 2:
            return
        position = data.draw(st.integers(2, tree.size))
        mutated = _apply(tree, Delete(position))
        assert branch_distance(tree, mutated) <= 5

    def test_paper_worst_case_delete(self):
        # deleting v with a parent, both siblings and children hits 5
        tree = parse_bracket("r(w1,v(w2,w3),w4)")
        mutated = _apply(tree, Delete(3))
        assert branch_distance(tree, mutated) == 5


class TestInsertCase:
    @given(trees(), st.data())
    @settings(max_examples=80, deadline=None)
    def test_insert_changes_at_most_five(self, tree, data):
        parent_position = data.draw(st.integers(1, tree.size))
        # resolve the parent's degree to draw a valid slice
        node = list(tree.iter_preorder())[parent_position - 1]
        start = data.draw(st.integers(0, node.degree))
        count = data.draw(st.integers(0, node.degree - start))
        label = data.draw(st.sampled_from(LABELS))
        mutated = _apply(tree, Insert(parent_position, start, count, label))
        assert branch_distance(tree, mutated) <= 5

    def test_leaf_insert_changes_less(self):
        # appending a leaf at the right end of a childless node: new branch
        # for v (+1), parent's branch changes (2) -> BDist 3
        tree = parse_bracket("r")
        mutated = _apply(tree, Insert(1, 0, 0, "v"))
        assert branch_distance(tree, mutated) == 3
