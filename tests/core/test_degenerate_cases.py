"""Degenerate and boundary cases across the core embedding machinery."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    branch_distance,
    branch_vector,
    iter_qlevel_branches,
    positional_branch_distance,
    positional_profile,
    search_lower_bound,
)
from repro.editdist import tree_edit_distance
from repro.trees import EPSILON, TreeNode, parse_bracket
from tests.strategies import trees


class TestSingleNodes:
    def test_single_node_vector(self):
        vector = branch_vector(parse_bracket("a"))
        assert vector.dimensions == 1
        assert vector.tree_size == 1

    def test_two_single_nodes(self):
        assert branch_distance(parse_bracket("a"), parse_bracket("a")) == 0
        assert branch_distance(parse_bracket("a"), parse_bracket("b")) == 2

    def test_positional_on_single_nodes(self):
        assert search_lower_bound(parse_bracket("a"), parse_bracket("b")) == 1
        assert search_lower_bound(parse_bracket("a"), parse_bracket("a")) == 0

    def test_profile_of_single_node(self):
        profile = positional_profile(parse_bracket("a"))
        assert profile.tree_size == 1
        assert len(profile.branches) == 1


class TestQLargerThanTree:
    @pytest.mark.parametrize("q", [3, 4, 5])
    def test_window_taller_than_tree_is_all_padding_below(self, q):
        branches = list(iter_qlevel_branches(parse_bracket("a"), q=q))
        (branch,) = branches
        assert branch.labels[0] == "a"
        assert all(label is EPSILON for label in branch.labels[1:])

    @pytest.mark.parametrize("q", [3, 4])
    def test_qlevel_bound_still_sound_on_tiny_trees(self, q):
        t1, t2 = parse_bracket("a(b)"), parse_bracket("c")
        factor = 4 * (q - 1) + 1
        assert branch_distance(t1, t2, q=q) <= factor * tree_edit_distance(t1, t2)


class TestExtremeShapes:
    def test_star_versus_chain_same_labels(self):
        star = TreeNode("r", [TreeNode("x") for _ in range(30)])
        chain = parse_bracket("r(" + "x(" * 29 + "x" + ")" * 29 + ")")
        distance = branch_distance(star, chain)
        edit = tree_edit_distance(star, chain)
        assert distance <= 5 * edit

    def test_wide_tree_positional(self):
        wide1 = TreeNode("r", [TreeNode(f"c{i}") for i in range(200)])
        wide2 = TreeNode("r", [TreeNode(f"c{i}") for i in range(199)])
        assert search_lower_bound(wide1, wide2) <= 1

    def test_zero_pr_on_identical(self):
        tree = parse_bracket("a(b(c),d)")
        assert positional_branch_distance(tree, tree.clone(), 0) == 0

    @given(trees(), st.integers(0, 3))
    @settings(max_examples=40, deadline=None)
    def test_posbdist_parity_preserved(self, tree, pr):
        """Unmatched occurrences pair off: PosBDist of a tree against itself
        at any range is even (and zero, since positions coincide)."""
        assert positional_branch_distance(tree, tree.clone(), pr) == 0


class TestEpsilonIntegrity:
    def test_epsilon_not_equal_to_string(self):
        assert EPSILON != "ε"
        assert EPSILON != ""

    def test_user_epsilon_label_distinct_in_vectors(self):
        fake = TreeNode("ε", [TreeNode("x")])
        real = TreeNode("a", [TreeNode("x")])
        # the root branches differ ('ε'(x,ε) vs a(x,ε)); the x branches are
        # shared — a string label 'ε' never collides with the sentinel
        assert branch_distance(fake, real) == 2
        fake_root_branch = next(iter(branch_vector(fake).counts))
        assert fake_root_branch.root == "ε"
        assert fake_root_branch.right is EPSILON
        assert fake_root_branch.root is not EPSILON
