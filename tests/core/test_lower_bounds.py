"""Property tests for the paper's main theorems (3.2 and 3.3)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import branch_distance, branch_lower_bound, positional_lower_bound
from repro.editdist import tree_edit_distance, weighted_costs
from repro.trees import parse_bracket, random_edit_script
from tests.strategies import tree_pairs

LABELS = ["a", "b", "c"]


class TestTheorem32:
    """BDist(T1, T2) <= 5 * EDist(T1, T2)."""

    @given(tree_pairs())
    @settings(max_examples=100, deadline=None)
    def test_on_random_pairs(self, pair):
        t1, t2 = pair
        assert branch_distance(t1, t2) <= 5 * tree_edit_distance(t1, t2)

    @given(tree_pairs(max_leaves=6), st.integers(0, 4), st.integers(0, 2**31))
    @settings(max_examples=60, deadline=None)
    def test_on_edit_script_neighborhoods(self, pair, k, seed):
        """k operations change BDist by at most 5k (the proof's induction)."""
        t1, _ = pair
        mutated, _ = random_edit_script(t1, k, LABELS, random.Random(seed))
        assert branch_distance(t1, mutated) <= 5 * k

    def test_single_relabel_changes_at_most_four(self):
        # a relabel touches <= 2 branches in each tree: BDist <= 4
        t1 = parse_bracket("a(b(c,d),e)")
        t2 = parse_bracket("a(b(x,d),e)")
        assert branch_distance(t1, t2) <= 4

    def test_single_insertion_changes_at_most_five(self):
        # the proof's worst case: inserted node with parent, both siblings
        # and adopted children
        t1 = parse_bracket("r(w1,w2,w3,w4)")
        t2 = parse_bracket("r(w1,v(w2,w3),w4)")
        assert branch_distance(t1, t2) == 5

    def test_paper_example_bound(self):
        t1 = parse_bracket("a(b(c,d),b(c,d),e)")
        t2 = parse_bracket("a(b(c,d,b(e)),c,d,e)")
        assert branch_distance(t1, t2) == 9
        assert tree_edit_distance(t1, t2) == 3
        assert 9 <= 5 * 3


class TestTheorem33:
    """BDist_q <= [4(q-1)+1] * EDist for q-level branches."""

    @given(tree_pairs(max_leaves=8), st.sampled_from([2, 3, 4]))
    @settings(max_examples=80, deadline=None)
    def test_on_random_pairs(self, pair, q):
        t1, t2 = pair
        factor = 4 * (q - 1) + 1
        assert branch_distance(t1, t2, q=q) <= factor * tree_edit_distance(t1, t2)

    @given(tree_pairs(max_leaves=8))
    @settings(max_examples=40, deadline=None)
    def test_distance_grows_with_q(self, pair):
        """Higher levels encode more structure: BDist_q is non-decreasing.

        Each (q+1)-level window determines its q-level prefix window, so a
        mismatch at level q implies one at level q+1.
        """
        t1, t2 = pair
        d2 = branch_distance(t1, t2, q=2)
        d3 = branch_distance(t1, t2, q=3)
        d4 = branch_distance(t1, t2, q=4)
        assert d2 <= d3 <= d4


class TestBranchLowerBound:
    @given(tree_pairs())
    @settings(max_examples=80, deadline=None)
    def test_never_exceeds_edit_distance(self, pair):
        t1, t2 = pair
        assert branch_lower_bound(t1, t2) <= tree_edit_distance(t1, t2)

    @given(tree_pairs(max_leaves=8), st.sampled_from([2, 3, 4]))
    @settings(max_examples=60, deadline=None)
    def test_qlevel_never_exceeds_edit_distance(self, pair, q):
        t1, t2 = pair
        assert branch_lower_bound(t1, t2, q=q) <= tree_edit_distance(t1, t2)

    def test_uses_ceiling_for_unit_costs(self):
        t1 = parse_bracket("a(b,c)")
        t2 = parse_bracket("a(b,d)")
        # BDist = 4 -> ceil(4/5) = 1
        assert branch_lower_bound(t1, t2) == 1

    def test_general_costs_scale_by_minimum(self):
        t1 = parse_bracket("a(b,c)")
        t2 = parse_bracket("a(b,d)")
        costs = weighted_costs(2.0, 2.0, 2.0)
        bound = branch_lower_bound(t1, t2, costs=costs)
        assert bound == pytest.approx(4 / 5 * 2.0)
        assert bound <= tree_edit_distance(t1, t2, costs)

    @given(tree_pairs(max_leaves=7))
    @settings(max_examples=40, deadline=None)
    def test_general_cost_bound_sound(self, pair):
        t1, t2 = pair
        costs = weighted_costs(1.5, 2.0, 0.5)
        assert branch_lower_bound(t1, t2, costs=costs) <= tree_edit_distance(
            t1, t2, costs
        ) + 1e-9

    def test_vector_argument_fixes_q(self):
        from repro.core import branch_vector

        v1 = branch_vector(parse_bracket("a(b)"), q=3)
        v2 = branch_vector(parse_bracket("a(c)"), q=3)
        # q inferred from the vectors: factor 9
        assert branch_lower_bound(v1, v2) == -(-v1.l1_distance(v2) // 9)


class TestPositionalLowerBound:
    @given(tree_pairs())
    @settings(max_examples=80, deadline=None)
    def test_never_exceeds_edit_distance(self, pair):
        t1, t2 = pair
        assert positional_lower_bound(t1, t2) <= tree_edit_distance(t1, t2)

    @given(tree_pairs())
    @settings(max_examples=60, deadline=None)
    def test_dominates_count_bound(self, pair):
        t1, t2 = pair
        assert positional_lower_bound(t1, t2) >= branch_lower_bound(t1, t2)

    @given(tree_pairs())
    @settings(max_examples=60, deadline=None)
    def test_dominates_size_difference(self, pair):
        t1, t2 = pair
        assert positional_lower_bound(t1, t2) >= abs(t1.size - t2.size)

    def test_general_costs_scale(self):
        t1, t2 = parse_bracket("a(b,c)"), parse_bracket("a(b,d)")
        costs = weighted_costs(2.0, 2.0, 2.0)
        unit = positional_lower_bound(t1, t2)
        assert positional_lower_bound(t1, t2, costs=costs) == unit * 2.0
