"""Unit and property tests for the dense feature-matrix export."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import branch_distance
from repro.core.features import (
    branch_distance_matrix,
    branch_feature_matrix,
    pairwise_branch_distances,
)
from repro.trees import parse_bracket
from tests.strategies import trees


class TestFeatureMatrix:
    def test_shapes_and_counts(self):
        forest = [parse_bracket("a(b)"), parse_bracket("a(c)")]
        matrix, vocabulary = branch_feature_matrix(forest)
        assert matrix.shape == (2, len(vocabulary))
        # row sums equal tree sizes (one branch per node)
        assert matrix.sum(axis=1).tolist() == [2, 2]

    def test_vocabulary_sorted_lexicographically(self):
        forest = [parse_bracket("b(a)"), parse_bracket("a(b)")]
        _, vocabulary = branch_feature_matrix(forest)
        rendered = [str(branch) for branch in vocabulary]
        assert rendered == sorted(rendered)

    def test_empty_like_behaviour_single_tree(self):
        matrix, vocabulary = branch_feature_matrix([parse_bracket("x")])
        assert matrix.shape == (1, 1)
        assert matrix[0, 0] == 1

    def test_qlevel(self):
        matrix, vocabulary = branch_feature_matrix(
            [parse_bracket("a(b)"), parse_bracket("a(b)")], q=3
        )
        assert (matrix[0] == matrix[1]).all()

    @given(st.lists(trees(max_leaves=6), min_size=2, max_size=5))
    @settings(max_examples=30, deadline=None)
    def test_row_sums_are_sizes(self, forest):
        matrix, _ = branch_feature_matrix(forest)
        assert matrix.sum(axis=1).tolist() == [t.size for t in forest]


class TestDistanceMatrix:
    def test_matches_sparse_bdist(self):
        forest = [
            parse_bracket(t) for t in ["a(b,c)", "a(b,d)", "x(y)", "a"]
        ]
        dense = branch_distance_matrix(forest)
        for i in range(len(forest)):
            for j in range(len(forest)):
                assert dense[i, j] == branch_distance(forest[i], forest[j])

    def test_symmetric_zero_diagonal(self):
        forest = [parse_bracket(t) for t in ["a(b)", "c(d)", "e"]]
        dense = branch_distance_matrix(forest)
        assert (dense == dense.T).all()
        assert np.diag(dense).tolist() == [0, 0, 0]

    @given(st.lists(trees(max_leaves=6), min_size=2, max_size=4))
    @settings(max_examples=25, deadline=None)
    def test_matches_sparse_bdist_random(self, forest):
        matrix, _ = branch_feature_matrix(forest)
        dense = pairwise_branch_distances(matrix)
        for i in range(len(forest)):
            for j in range(i + 1, len(forest)):
                assert dense[i, j] == branch_distance(forest[i], forest[j])
