"""Unit and property tests for binary branch extraction (Definition 2)."""

from collections import Counter

from hypothesis import given, settings

from repro.core import (
    BinaryBranch,
    branches_via_binary_tree,
    iter_branches,
    iter_positional_branches,
)
from repro.trees import EPSILON, node_positions, parse_bracket, preorder
from tests.strategies import trees

T1 = "a(b(c,d),b(c,d),e)"  # the paper's Figure 1 left tree
T2 = "a(b(c,d,b(e)),c,d,e)"  # the paper's Figure 1 right tree


class TestExtraction:
    def test_single_node(self):
        branches = list(iter_branches(parse_bracket("x")))
        assert branches == [BinaryBranch("x", EPSILON, EPSILON)]

    def test_every_node_roots_one_branch(self):
        tree = parse_bracket(T1)
        assert len(list(iter_branches(tree))) == tree.size

    def test_branch_structure(self):
        branches = {str(b) for b in iter_branches(parse_bracket("a(b,c)"))}
        assert branches == {"a(b,ε)", "b(ε,c)", "c(ε,ε)"}

    def test_paper_figure_3_vocabulary_t1(self):
        counts = Counter(str(b) for b in iter_branches(parse_bracket(T1)))
        assert counts == Counter(
            {
                "a(b,ε)": 1,
                "b(c,b)": 1,
                "b(c,e)": 1,
                "c(ε,d)": 2,
                "d(ε,ε)": 2,
                "e(ε,ε)": 1,
            }
        )

    def test_paper_figure_3_vocabulary_t2(self):
        counts = Counter(str(b) for b in iter_branches(parse_bracket(T2)))
        assert counts == Counter(
            {
                "a(b,ε)": 1,
                "b(c,c)": 1,
                "b(e,ε)": 1,
                "c(ε,d)": 2,
                "d(ε,b)": 1,
                "d(ε,e)": 1,
                "e(ε,ε)": 2,
            }
        )

    @given(trees())
    @settings(max_examples=80, deadline=None)
    def test_direct_extraction_matches_binary_tree_construction(self, tree):
        """LCRS shortcut == branches read off the normalized B(T)."""
        direct = list(iter_branches(tree))
        via_binary = branches_via_binary_tree(tree)
        assert direct == via_binary

    @given(trees())
    @settings(max_examples=50, deadline=None)
    def test_lemma_3_1_node_occurrences(self, tree):
        """Lemma 3.1: each node label occurrence appears in ≤ 2 branches.

        Counting occurrences of each node: once as a branch root (exactly),
        at most once as a left child, at most once as a right child — so
        total occurrences of original labels across all branches is at most
        3·|T| and at least |T| (the roots), with every non-root node
        appearing exactly twice or... we check the sharp accounting:
        left-child slots = number of first children; right-child slots =
        number of next siblings; each node fills at most one of each.
        """
        branches = list(iter_branches(tree))
        left_filled = sum(1 for b in branches if b.left is not EPSILON)
        right_filled = sum(1 for b in branches if b.right is not EPSILON)
        internal = sum(1 for n in tree.iter_preorder() if not n.is_leaf)
        with_sibling = sum(
            1 for n in tree.iter_preorder() if n.next_sibling is not None
        )
        assert left_filled == internal
        assert right_filled == with_sibling


class TestPositionalExtraction:
    def test_positions_match_traversals(self):
        tree = parse_bracket(T1)
        positions = node_positions(tree)
        expected = {
            (node.label, positions[id(node)]) for node in preorder(tree)
        }
        observed = {
            (positional.branch.root, (positional.pre, positional.post))
            for positional in iter_positional_branches(tree)
        }
        assert observed == expected

    def test_paper_figure_2_positional_branches(self):
        # (BiB(c,ε,d), 3, 1) from the paper's §4.2 walk-through
        tree = parse_bracket(T1)
        entries = {
            (str(p.branch), p.pre, p.post)
            for p in iter_positional_branches(tree)
        }
        assert ("c(ε,d)", 3, 1) in entries
        assert ("c(ε,d)", 6, 4) in entries
        assert ("e(ε,ε)", 8, 7) in entries

    def test_t2_positional_branches(self):
        tree = parse_bracket(T2)
        entries = {
            (str(p.branch), p.pre, p.post)
            for p in iter_positional_branches(tree)
        }
        assert ("c(ε,d)", 3, 1) in entries
        assert ("c(ε,d)", 7, 6) in entries
        assert ("e(ε,ε)", 9, 8) in entries
        assert ("e(ε,ε)", 6, 3) in entries

    @given(trees())
    @settings(max_examples=50, deadline=None)
    def test_positions_are_permutations(self, tree):
        positionals = list(iter_positional_branches(tree))
        assert sorted(p.pre for p in positionals) == list(range(1, tree.size + 1))
        assert sorted(p.post for p in positionals) == list(range(1, tree.size + 1))

    @given(trees())
    @settings(max_examples=50, deadline=None)
    def test_branches_agree_with_plain_extraction(self, tree):
        plain = Counter(iter_branches(tree))
        positional = Counter(p.branch for p in iter_positional_branches(tree))
        assert plain == positional
