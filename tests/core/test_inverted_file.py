"""Unit and property tests for the inverted file index (Algorithm 1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    InvertedFileIndex,
    branch_vector,
    positional_branch_distance,
    positional_profile,
    search_lower_bound,
)
from repro.trees import parse_bracket
from tests.strategies import trees

T1 = "a(b(c,d),b(c,d),e)"
T2 = "a(b(c,d,b(e)),c,d,e)"


def build_index(*texts, q=2):
    index = InvertedFileIndex(q=q)
    index.add_trees([parse_bracket(text) for text in texts])
    return index


class TestConstruction:
    def test_counts(self):
        index = build_index(T1, T2)
        assert index.tree_count == 2
        assert index.tree_size(0) == 8
        assert index.tree_size(1) == 9

    def test_vocabulary_union(self):
        index = build_index(T1, T2)
        # T1 has 6 distinct branches, T2 has 7, sharing 3 (a(b,ε), c(ε,d),
        # e(ε,ε)) — the 10-entry vocabulary of the paper's Figure 3
        assert index.vocabulary_size == 10

    def test_duplicate_id_rejected(self):
        index = InvertedFileIndex()
        index.add_tree(0, parse_bracket("a"))
        with pytest.raises(ValueError):
            index.add_tree(0, parse_bracket("b"))

    def test_invalid_q_rejected(self):
        with pytest.raises(ValueError):
            InvertedFileIndex(q=1)

    def test_add_trees_assigns_sequential_ids(self):
        index = InvertedFileIndex()
        ids = index.add_trees([parse_bracket("a"), parse_bracket("b")], start_id=5)
        assert ids == [5, 6]

    def test_repr(self):
        assert "InvertedFileIndex" in repr(build_index(T1))


class TestPostings:
    def test_inverted_list_lookup(self):
        index = build_index(T1, T2)
        branch = next(iter(branch_vector(parse_bracket(T1)).counts))
        postings = index.postings(branch)
        assert postings and all(p.occurrences >= 1 for p in postings)

    def test_trees_containing(self):
        index = build_index(T1, T2)
        # c(ε,d) occurs in both trees
        shared = [
            b
            for b in branch_vector(parse_bracket(T1)).counts
            if b in branch_vector(parse_bracket(T2)).counts
        ]
        for branch in shared:
            assert index.trees_containing(branch) == [0, 1]

    def test_missing_branch(self):
        index = build_index(T1)
        assert index.postings("nope") == []
        assert index.trees_containing("nope") == []

    def test_posting_repr(self):
        index = build_index(T1)
        branch = next(iter(branch_vector(parse_bracket(T1)).counts))
        assert "Posting" in repr(index.postings(branch)[0])


class TestVectorExtraction:
    def test_vectors_match_direct_construction(self):
        index = build_index(T1, T2)
        vectors = index.vectors()
        assert vectors[0] == branch_vector(parse_bracket(T1))
        assert vectors[1] == branch_vector(parse_bracket(T2))

    @given(st.lists(trees(), min_size=1, max_size=5))
    @settings(max_examples=40, deadline=None)
    def test_vectors_match_direct_construction_random(self, forest):
        index = InvertedFileIndex()
        index.add_trees(forest)
        vectors = index.vectors()
        for tree_id, tree in enumerate(forest):
            assert vectors[tree_id] == branch_vector(tree)

    @given(st.lists(trees(), min_size=2, max_size=4))
    @settings(max_examples=30, deadline=None)
    def test_profiles_match_direct_construction(self, forest):
        index = InvertedFileIndex()
        index.add_trees(forest)
        profiles = index.profiles()
        for tree_id, tree in enumerate(forest):
            direct = positional_profile(tree)
            via_index = profiles[tree_id]
            assert via_index.pre_positions == direct.pre_positions
            assert via_index.post_positions == direct.post_positions
            assert via_index.tree_size == direct.tree_size

    def test_single_profile_extraction(self):
        index = build_index(T1, T2)
        profile = index.profile(1)
        direct = positional_profile(parse_bracket(T2))
        assert profile.pre_positions == direct.pre_positions

    def test_single_profile_missing_id(self):
        with pytest.raises(KeyError):
            build_index(T1).profile(42)

    def test_profiles_usable_for_distances(self):
        index = build_index(T1, T2)
        profiles = index.profiles()
        t1, t2 = parse_bracket(T1), parse_bracket(T2)
        assert positional_branch_distance(
            profiles[0], profiles[1], 1
        ) == positional_branch_distance(t1, t2, 1)
        assert search_lower_bound(profiles[0], profiles[1]) == search_lower_bound(
            t1, t2
        )


class TestQLevelIndex:
    def test_q3_vectors(self):
        index = build_index(T1, T2, q=3)
        vectors = index.vectors()
        assert vectors[0] == branch_vector(parse_bracket(T1), q=3)
        assert vectors[1] == branch_vector(parse_bracket(T2), q=3)

    def test_space_linear_in_input(self):
        # one posting entry per node: total occurrences equal total nodes
        index = build_index(T1, T2, q=3)
        total = sum(
            posting.occurrences
            for branch in list(index._lists)
            for posting in index.postings(branch)
        )
        assert total == 8 + 9
