"""Unit and property tests for branch vectors and BDist (Definitions 3–4)."""

import pytest
from hypothesis import given, settings

from repro.core import branch_distance, branch_vector
from repro.trees import parse_bracket
from tests.strategies import tree_pairs, trees

T1 = "a(b(c,d),b(c,d),e)"
T2 = "a(b(c,d,b(e)),c,d,e)"


class TestVectorConstruction:
    def test_total_count_equals_size(self):
        tree = parse_bracket(T1)
        vector = branch_vector(tree)
        assert sum(vector.counts.values()) == tree.size == vector.tree_size

    def test_dimensions(self):
        assert branch_vector(parse_bracket(T1)).dimensions == 6

    def test_repr(self):
        assert "BranchVector" in repr(branch_vector(parse_bracket("a")))

    def test_equality(self):
        v1 = branch_vector(parse_bracket("a(b,c)"))
        v2 = branch_vector(parse_bracket("a(b,c)"))
        assert v1 == v2
        assert hash(v1) == hash(v2)
        assert v1 != branch_vector(parse_bracket("a(b)"))
        assert v1.__eq__("x") is NotImplemented


class TestBDist:
    def test_paper_figure_3_distance(self):
        # BRV(T1) = (1,1,0,1,0,2,0,0,2,1), BRV(T2) = (1,0,1,0,1,2,1,1,0,2)
        # over the lexicographic vocabulary -> L1 = 9
        assert branch_distance(parse_bracket(T1), parse_bracket(T2)) == 9

    def test_identical_trees(self):
        assert branch_distance(parse_bracket(T1), parse_bracket(T1)) == 0

    def test_figure_4_zero_distance_different_trees(self):
        """BDist is not a metric: distinct trees can have distance 0.

        Like the paper's Figure 4: with repeated labels the LCRS triples
        cannot tell a child run from a sibling run — A(A,A(A)) and
        A(A(A,A)) produce the same branch multiset.
        """
        ta = parse_bracket("A(A,A(A))")
        tb = parse_bracket("A(A(A,A))")
        assert ta != tb
        assert branch_distance(ta, tb) == 0
        # and the chain variant
        tc = parse_bracket("A(A(B(A)))")
        td = parse_bracket("A(B(A(A)))")
        assert tc != td
        assert branch_distance(tc, td) == 0

    def test_zero_distance_pair_exists_exhaustively(self):
        """Exhaustively find two distinct ≤6-node trees with BDist = 0."""
        from itertools import product

        def all_trees(size, labels=("A", "B")):
            if size == 1:
                return [parse_bracket(label) for label in labels]
            result = []
            for root_label in labels:
                for split in partitions(size - 1):
                    for combo in product(
                        *(all_trees(part, labels) for part in split)
                    ):
                        tree = parse_bracket(root_label)
                        for child in combo:
                            tree.add_child(child.clone())
                        result.append(tree)
            return result

        def partitions(total):
            if total == 0:
                return [[]]
            result = []
            for first in range(1, total + 1):
                for rest in partitions(total - first):
                    result.append([first] + rest)
            return result

        seen = {}
        for tree in all_trees(5) + all_trees(6):
            key = frozenset(branch_vector(tree).counts.items())
            if key in seen and seen[key] != tree:
                return  # found the collision the paper's Figure 4 promises
            seen[key] = tree
        pytest.fail("no zero-distance pair among small trees")

    @given(tree_pairs())
    @settings(max_examples=60, deadline=None)
    def test_non_negative_and_reflexive(self, pair):
        t1, t2 = pair
        assert branch_distance(t1, t2) >= 0
        assert branch_distance(t1, t1) == 0

    @given(tree_pairs())
    @settings(max_examples=60, deadline=None)
    def test_symmetry(self, pair):
        t1, t2 = pair
        assert branch_distance(t1, t2) == branch_distance(t2, t1)

    @given(tree_pairs(max_leaves=8), trees(max_leaves=8))
    @settings(max_examples=40, deadline=None)
    def test_triangle_inequality(self, pair, t3):
        t1, t2 = pair
        d12 = branch_distance(t1, t2)
        d23 = branch_distance(t2, t3)
        d13 = branch_distance(t1, t3)
        assert d13 <= d12 + d23

    @given(tree_pairs())
    @settings(max_examples=60, deadline=None)
    def test_parity(self, pair):
        # BDist counts a symmetric multiset difference of equal totals ...
        # |T1| + |T2| - 2*overlap has the same parity as |T1| + |T2|
        t1, t2 = pair
        distance = branch_distance(t1, t2)
        assert (distance - (t1.size + t2.size)) % 2 == 0

    def test_vector_inputs_accepted(self):
        v1 = branch_vector(parse_bracket(T1))
        v2 = branch_vector(parse_bracket(T2))
        assert v1.l1_distance(v2) == 9
        assert branch_distance(v1, v2) == 9
        assert branch_distance(parse_bracket(T1), v2) == 9

    def test_level_mismatch_rejected(self):
        v2 = branch_vector(parse_bracket("a(b)"), q=2)
        v3 = branch_vector(parse_bracket("a(b)"), q=3)
        with pytest.raises(ValueError):
            v2.l1_distance(v3)
        with pytest.raises(ValueError):
            v2.overlap(v3)


class TestOverlap:
    def test_overlap_plus_distance_identity(self):
        t1, t2 = parse_bracket(T1), parse_bracket(T2)
        v1, v2 = branch_vector(t1), branch_vector(t2)
        assert v1.l1_distance(v2) == t1.size + t2.size - 2 * v1.overlap(v2)

    @given(tree_pairs())
    @settings(max_examples=60, deadline=None)
    def test_overlap_identity_random(self, pair):
        t1, t2 = pair
        v1, v2 = branch_vector(t1), branch_vector(t2)
        assert v1.l1_distance(v2) == t1.size + t2.size - 2 * v1.overlap(v2)
