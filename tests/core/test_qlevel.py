"""Unit and property tests for q-level binary branches (§3.4)."""

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    iter_branches,
    iter_positional_branches,
    iter_positional_qlevel_branches,
    iter_qlevel_branches,
    qlevel_bound_factor,
)
from repro.trees import EPSILON, parse_bracket
from tests.strategies import trees


class TestBoundFactor:
    def test_values(self):
        assert qlevel_bound_factor(2) == 5
        assert qlevel_bound_factor(3) == 9
        assert qlevel_bound_factor(4) == 13

    @pytest.mark.parametrize("q", [0, 1, -3])
    def test_invalid_q(self, q):
        with pytest.raises(ValueError):
            qlevel_bound_factor(q)


class TestWindowShape:
    def test_q2_window_size(self):
        branches = list(iter_qlevel_branches(parse_bracket("a(b,c)"), q=2))
        assert all(len(b.labels) == 3 for b in branches)

    def test_q3_window_size(self):
        branches = list(iter_qlevel_branches(parse_bracket("a(b,c)"), q=3))
        assert all(len(b.labels) == 7 for b in branches)

    def test_q4_window_size(self):
        branches = list(iter_qlevel_branches(parse_bracket("a"), q=4))
        assert all(len(b.labels) == 15 for b in branches)

    def test_q_property(self):
        branch = next(iter(iter_qlevel_branches(parse_bracket("a"), q=3)))
        assert branch.q == 3

    def test_str(self):
        branch = next(iter(iter_qlevel_branches(parse_bracket("a(b)"), q=2)))
        assert str(branch) == "[a,b,ε]"

    def test_epsilon_padding_propagates(self):
        # single node: everything below the root is ε
        (branch,) = list(iter_qlevel_branches(parse_bracket("x"), q=3))
        assert branch.labels[0] == "x"
        assert all(label is EPSILON for label in branch.labels[1:])

    def test_known_q3_window(self):
        # a(b(c),d): window at a (LCRS: a.left=b, b.left=c, b.right=d)
        branches = list(iter_qlevel_branches(parse_bracket("a(b(c),d)"), q=3))
        root_window = branches[0].labels
        # preorder of the window: a, b, c, d, ε(a.right), ε, ε
        assert root_window == ("a", "b", "c", "d", EPSILON, EPSILON, EPSILON)


class TestConsistencyWithTwoLevel:
    @given(trees())
    @settings(max_examples=60, deadline=None)
    def test_q2_equals_binary_branches(self, tree):
        two_level = [(b.root, b.left, b.right) for b in iter_branches(tree)]
        q_level = [tuple(b.labels) for b in iter_qlevel_branches(tree, q=2)]
        assert two_level == q_level

    @given(trees(), st.sampled_from([2, 3, 4]))
    @settings(max_examples=50, deadline=None)
    def test_one_branch_per_node(self, tree, q):
        assert len(list(iter_qlevel_branches(tree, q))) == tree.size

    @given(trees(), st.sampled_from([3, 4]))
    @settings(max_examples=50, deadline=None)
    def test_window_prefix_is_lower_level_window(self, tree, q):
        """The first 3 preorder slots of a q-window are not literally the
        (q−1)-window, but the window roots line up one-to-one."""
        high = list(iter_qlevel_branches(tree, q))
        low = list(iter_qlevel_branches(tree, q - 1))
        assert [b.labels[0] for b in high] == [b.labels[0] for b in low]


class TestPositionalQLevel:
    @given(trees(), st.sampled_from([2, 3]))
    @settings(max_examples=50, deadline=None)
    def test_positions_match_two_level_positions(self, tree, q):
        qlevel_positions = [
            (p.pre, p.post) for p in iter_positional_qlevel_branches(tree, q)
        ]
        two_level_positions = [
            (p.pre, p.post) for p in iter_positional_branches(tree)
        ]
        assert sorted(qlevel_positions) == sorted(two_level_positions)

    @given(trees(), st.sampled_from([2, 3]))
    @settings(max_examples=50, deadline=None)
    def test_branches_match_plain_qlevel(self, tree, q):
        plain = Counter(iter_qlevel_branches(tree, q))
        positional = Counter(
            p.branch for p in iter_positional_qlevel_branches(tree, q)
        )
        assert plain == positional
