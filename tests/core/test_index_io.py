"""Unit tests for inverted-file index persistence."""

import json

import pytest

from repro.core import InvertedFileIndex
from repro.core.index_io import load_index, save_index
from repro.datasets import generate_dblp_dataset
from repro.exceptions import TreeParseError
from repro.search import indexed_range_query, sequential_range_query
from repro.trees import TreeNode, parse_bracket

TREES = [parse_bracket(t) for t in ["a(b,c)", "a(b,d)", "x(y)", "q(w(e))"]]


def build(trees=TREES, q=2):
    index = InvertedFileIndex(q=q)
    index.add_trees(trees)
    return index


class TestRoundTrip:
    def test_vectors_preserved(self, tmp_path):
        index = build()
        path = tmp_path / "index.json"
        save_index(index, path)
        restored = load_index(path)
        assert restored.q == index.q
        assert restored.tree_count == index.tree_count
        assert restored.vocabulary_size == index.vocabulary_size
        assert restored.vectors() == index.vectors()

    def test_profiles_preserved(self, tmp_path):
        index = build()
        path = tmp_path / "index.json"
        save_index(index, path)
        restored = load_index(path)
        original = index.profiles()
        reloaded = restored.profiles()
        for tree_id in original:
            assert reloaded[tree_id].pre_positions == original[tree_id].pre_positions
            assert reloaded[tree_id].post_positions == original[tree_id].post_positions
            assert reloaded[tree_id].pairs == original[tree_id].pairs

    def test_qlevel_round_trip(self, tmp_path):
        index = build(q=3)
        path = tmp_path / "index3.json"
        save_index(index, path)
        restored = load_index(path)
        assert restored.vectors() == index.vectors()

    def test_queries_work_after_reload(self, tmp_path):
        trees = generate_dblp_dataset(25, seed=5)
        index = InvertedFileIndex()
        index.add_trees(trees)
        path = tmp_path / "dblp.json"
        save_index(index, path)
        restored = load_index(path)
        query = trees[3]
        fast, _ = indexed_range_query(trees, restored, query, 2)
        brute, _ = sequential_range_query(trees, query, 2)
        assert fast == brute

    def test_non_string_labels(self, tmp_path):
        trees = [TreeNode(1, [TreeNode(2.5), TreeNode(None), TreeNode(True)])]
        index = build(trees)
        path = tmp_path / "typed.json"
        save_index(index, path)
        restored = load_index(path)
        assert restored.vectors() == index.vectors()


class TestErrors:
    def test_unserializable_label(self, tmp_path):
        index = build([TreeNode((1, 2))])
        with pytest.raises(TreeParseError):
            save_index(index, tmp_path / "bad.json")

    def test_wrong_format(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"format": "something-else"}))
        with pytest.raises(TreeParseError):
            load_index(path)

    def test_wrong_version(self, tmp_path):
        path = tmp_path / "future.json"
        path.write_text(json.dumps({"format": "repro-ifi", "version": 99}))
        with pytest.raises(TreeParseError):
            load_index(path)
