"""Engine mechanics: pragmas, baselines, fingerprints, reporters, CLI."""

import json
from pathlib import Path

import pytest

from repro.analysis import (
    Baseline,
    analyze_paths,
    partition,
    render_json,
    render_text,
)
from repro.cli import main

BAD_EXCEPT = """def f(fn):
    try:
        return fn()
    except Exception:
        return None
"""


def write(tmp_path: Path, source: str, name: str = "mod.py") -> Path:
    path = tmp_path / name
    path.write_text(source)
    return path


def run(tmp_path: Path, source: str, name: str = "mod.py"):
    return analyze_paths([write(tmp_path, source, name)], root=tmp_path)


class TestPragmas:
    def test_same_line_pragma_suppresses(self, tmp_path):
        source = BAD_EXCEPT.replace(
            "except Exception:", "except Exception:  # repro-lint: disable=RL008"
        )
        result = run(tmp_path, source)
        assert result.findings == []
        assert result.suppressed == 1

    def test_standalone_pragma_shields_next_line(self, tmp_path):
        source = BAD_EXCEPT.replace(
            "    except Exception:",
            "    # repro-lint: disable=RL008\n    except Exception:",
        )
        result = run(tmp_path, source)
        assert result.findings == []
        assert result.suppressed == 1

    def test_pragma_for_other_rule_does_not_suppress(self, tmp_path):
        source = BAD_EXCEPT.replace(
            "except Exception:", "except Exception:  # repro-lint: disable=RL005"
        )
        result = run(tmp_path, source)
        assert [f.rule for f in result.findings] == ["RL008"]
        assert result.suppressed == 0

    def test_disable_all(self, tmp_path):
        source = BAD_EXCEPT.replace(
            "except Exception:", "except Exception:  # repro-lint: disable=all"
        )
        assert run(tmp_path, source).findings == []


class TestFingerprints:
    def test_line_shift_keeps_fingerprint(self, tmp_path):
        before = run(tmp_path, BAD_EXCEPT, "a.py").findings
        shifted = run(tmp_path, "# a comment\n\n" + BAD_EXCEPT, "a.py").findings
        assert len(before) == len(shifted) == 1
        assert before[0].line != shifted[0].line
        assert before[0].fingerprint == shifted[0].fingerprint

    def test_distinct_paths_distinct_fingerprints(self, tmp_path):
        one = run(tmp_path, BAD_EXCEPT, "a.py").findings[0]
        two = run(tmp_path, BAD_EXCEPT, "b.py").findings[0]
        assert one.fingerprint != two.fingerprint


class TestBaseline:
    def test_roundtrip_and_partition(self, tmp_path):
        findings = run(tmp_path, BAD_EXCEPT).findings
        baseline_path = tmp_path / "baseline.json"
        Baseline.from_findings(findings, comment="legacy").save(baseline_path)
        loaded = Baseline.load(baseline_path)
        new, old = partition(findings, loaded)
        assert new == [] and old == findings
        record = next(iter(loaded.entries.values()))
        assert record["comment"] == "legacy"

    def test_missing_file_is_empty(self, tmp_path):
        assert len(Baseline.load(tmp_path / "absent.json")) == 0

    def test_wrong_format_rejected(self, tmp_path):
        bogus = tmp_path / "bogus.json"
        bogus.write_text(json.dumps({"format": "something-else"}))
        with pytest.raises(ValueError, match="not a repro-lint-baseline"):
            Baseline.load(bogus)


class TestReporters:
    def test_text_report_lists_location_and_counts(self, tmp_path):
        result = run(tmp_path, BAD_EXCEPT)
        text = render_text(result.findings, [], result.suppressed, 1)
        assert "mod.py:4: RL008 [error]" in text
        assert "1 finding(s) in 1 file(s)" in text

    def test_json_report_schema(self, tmp_path):
        result = run(tmp_path, BAD_EXCEPT)
        payload = json.loads(
            render_json(result.findings, [], result.suppressed, result.files)
        )
        assert payload["format"] == "repro-lint-report"
        assert payload["summary"]["new"] == 1
        (finding,) = payload["findings"]
        assert finding["rule"] == "RL008"
        assert finding["fingerprint"]

    def test_syntax_error_reported_as_rl000(self, tmp_path):
        result = run(tmp_path, "def broken(:\n")
        assert [f.rule for f in result.findings] == ["RL000"]


class TestCli:
    def test_clean_run_exits_zero(self, tmp_path, monkeypatch, capsys):
        write(tmp_path, "x = 1\n")
        monkeypatch.chdir(tmp_path)
        assert main(["lint", "mod.py"]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_findings_exit_one(self, tmp_path, monkeypatch, capsys):
        write(tmp_path, BAD_EXCEPT)
        monkeypatch.chdir(tmp_path)
        assert main(["lint", "mod.py"]) == 1
        assert "RL008" in capsys.readouterr().out

    def test_write_baseline_then_clean(self, tmp_path, monkeypatch, capsys):
        write(tmp_path, BAD_EXCEPT)
        monkeypatch.chdir(tmp_path)
        assert main(["lint", "mod.py", "--write-baseline"]) == 0
        assert (tmp_path / ".repro-lint-baseline.json").exists()
        assert main(["lint", "mod.py"]) == 0
        out = capsys.readouterr().out
        assert "1 baselined" in out
        assert main(["lint", "mod.py", "--no-baseline"]) == 1

    def test_json_flag(self, tmp_path, monkeypatch, capsys):
        write(tmp_path, BAD_EXCEPT)
        monkeypatch.chdir(tmp_path)
        assert main(["lint", "mod.py", "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["new"] == 1

    def test_explain(self, capsys):
        assert main(["lint", "--explain", "RL006"]) == 0
        out = capsys.readouterr().out
        assert "RL006" in out and "hot-path-purity" in out

    def test_explain_unknown_rule(self, capsys):
        assert main(["lint", "--explain", "RL999"]) == 2

    def test_rules_selection(self, tmp_path, monkeypatch, capsys):
        write(tmp_path, BAD_EXCEPT)
        monkeypatch.chdir(tmp_path)
        assert main(["lint", "mod.py", "--rules", "RL005"]) == 0
        assert main(["lint", "mod.py", "--rules", "RL008"]) == 1

    def test_fix_hints(self, tmp_path, monkeypatch, capsys):
        write(tmp_path, BAD_EXCEPT)
        monkeypatch.chdir(tmp_path)
        assert main(["lint", "mod.py", "--fix-hints"]) == 1
        assert "hint:" in capsys.readouterr().out
