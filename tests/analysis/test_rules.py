"""Each rule, proven on a known-bad fixture.

Every test analyzes one fixture file (or directory, for the cross-file
rules) and asserts *exactly* the expected findings — rule id, enclosing
symbol, and message content — so a rule that goes blind or noisy fails
loudly here before it ships.
"""

from pathlib import Path

from repro.analysis import analyze_paths

FIXTURES = Path(__file__).parent / "fixtures"


def lint(*names, rules=None):
    paths = [FIXTURES / name for name in names]
    run = analyze_paths(paths, rules=rules, root=FIXTURES)
    assert not run.parse_failures
    return run.findings


def brief(findings):
    return sorted((f.rule, f.symbol) for f in findings)


class TestRL001FilterContract:
    def test_signature_drift(self):
        findings = lint("rl001_signature.py")
        assert brief(findings) == [
            ("RL001", "DriftedFilter.fit"),
            ("RL001", "DriftedFilter.refutes"),
        ]
        by_symbol = {f.symbol: f for f in findings}
        assert "threshold" in by_symbol["DriftedFilter.refutes"].message
        assert "extra" in by_symbol["DriftedFilter.fit"].message
        assert all(f.severity == "error" for f in findings)

    def test_unregistered_concrete_filter(self):
        findings = lint("rl001_unregistered")
        assert brief(findings) == [("RL001", "OrphanFilter")]
        assert "soundness oracle" in findings[0].message

    def test_no_oracle_module_no_registration_check(self):
        # Analyzing the filter file alone: no oracles.py in the set, so the
        # registration half of the rule stays silent (it cannot know).
        assert lint("rl001_unregistered/filters.py") == []


class TestRL002LockDiscipline:
    def test_unlocked_write_to_guarded_attribute(self):
        findings = lint("rl002_lock.py")
        assert brief(findings) == [("RL002", "Racy.reset")]
        assert "_hits" in findings[0].message
        assert "without holding a lock" in findings[0].message


class TestRL003SpanHygiene:
    def test_orphan_span_call(self):
        findings = lint("rl003_span.py")
        assert brief(findings) == [("RL003", "leaky")]
        assert "`with` block" in findings[0].message


class TestRL004MetricLabels:
    def test_fstring_label(self):
        findings = lint("rl004_labels.py")
        assert brief(findings) == [
            ("RL004", "observe_query"),
            ("RL004", "traced_query"),
        ]
        assert "'tree'" in findings[0].message
        assert "f-string" in findings[0].message
        assert findings[0].severity == "warning"

    def test_span_name_interpolation(self):
        findings = lint("rl004_labels.py")
        span_findings = [f for f in findings if "span name" in f.message]
        assert len(span_findings) == 1
        assert "computed value" in span_findings[0].message
        # literal names and f"filter.{name}" interpolations are not flagged
        assert span_findings[0].symbol == "traced_query"


class TestRL005UnboundedRecursion:
    def test_recursive_child_walk(self):
        findings = lint("rl005_recursion.py")
        assert brief(findings) == [("RL005", "count_nodes")]
        assert "recursion-depth guard" in findings[0].message


class TestRL006HotPathPurity:
    def test_heavy_and_loop_extraction_calls(self):
        findings = lint(
            "rl006_hotpath.py",
            rules=[r for r in _all_rules() if r.rule_id == "RL006"],
        )
        assert brief(findings) == [
            ("RL006", "CheatingFilter.bound"),
            ("RL006", "CheatingFilter.refutes"),
        ]
        by_symbol = {f.symbol: f for f in findings}
        assert "tree_edit_distance" in by_symbol["CheatingFilter.bound"].message
        assert "loop" in by_symbol["CheatingFilter.refutes"].message


class TestRL007ExportSurface:
    def test_unbound_and_duplicate_names(self):
        findings = lint("rl007_exports.py")
        assert {f.rule for f in findings} == {"RL007"}
        messages = " | ".join(f.message for f in findings)
        assert "'ghost'" in messages and "never binds" in messages
        assert "'exported'" in messages and "more than once" in messages
        assert len(findings) == 2

    def test_missing_reexport_in_init(self):
        findings = lint("rl007_pkg")
        assert brief(findings) == [("RL007", "__all__")]
        assert "'hidden'" in findings[0].message


class TestRL008BareExcept:
    def test_blanket_handlers(self):
        findings = lint("rl008_except.py")
        assert brief(findings) == [
            ("RL008", "swallow"),
            ("RL008", "swallow_everything"),
        ]
        assert "except Exception" in findings[0].message
        assert "bare except" in findings[1].message


class TestRL009LockOrder:
    def test_cross_file_acquisition_cycle(self):
        findings = lint("rl009_deadlock")
        assert brief(findings) == [
            ("RL009", "alpha_then_beta"),
            ("RL009", "flush"),
        ]
        by_symbol = {f.symbol: f for f in findings}
        cycle = by_symbol["alpha_then_beta"]
        assert "lock-order cycle" in cycle.message
        assert "alpha_lock -> beta_lock" in cycle.message
        assert "beta_lock -> alpha_lock" in cycle.message
        assert "via beta_then_alpha" in cycle.message
        assert cycle.path == "rl009_deadlock/pipeline.py"
        assert all(f.severity == "error" for f in findings)

    def test_blocking_call_under_lock(self):
        findings = lint("rl009_deadlock")
        blocking = [f for f in findings if f.symbol == "flush"]
        assert len(blocking) == 1
        assert "alpha_lock held across blocking Connection.send()" in (
            blocking[0].message
        )

    def test_each_half_alone_has_no_cycle(self):
        # only the interprocedural view sees the cycle: either module in
        # isolation orders its acquisitions consistently
        assert [
            f for f in lint("rl009_deadlock/locks.py")
            if "cycle" in f.message
        ] == []


class TestRL010RpcPickleSafety:
    def test_bad_payload_shapes(self):
        findings = lint("rl010_rpc.py")
        assert brief(findings) == [
            ("RL010", "enqueue"),
            ("RL010", "push_callback"),
            ("RL010", "push_lock"),
            ("RL010", "push_tree"),
        ]
        by_symbol = {f.symbol: f for f in findings}
        assert "recursive TreeNode" in by_symbol["push_tree"].message
        assert "parse_bracket" in by_symbol["push_tree"].message
        assert "lambda" in by_symbol["push_callback"].message
        assert "Lock()" in by_symbol["push_lock"].message
        # the interprocedural case: the handle reaches the wire through
        # relay()'s parameter, and the finding lands at the caller
        assert "open()" in by_symbol["enqueue"].message
        assert "payload of relay" in by_symbol["enqueue"].message

    def test_flat_relay_itself_is_clean(self):
        # relay() forwards an opaque parameter; unresolved is not evidence,
        # so the helper carries no finding — its callers do
        findings = lint("rl010_rpc.py")
        assert all(f.symbol != "relay" for f in findings)


class TestRL011SchemaDrift:
    def test_written_and_read_drift(self):
        findings = lint("rl011_schema")
        assert brief(findings) == [
            ("RL011", "load_widget"),
            ("RL011", "save_widget"),
        ]
        by_symbol = {f.symbol: f for f in findings}
        assert "'color'" in by_symbol["save_widget"].message
        assert "written but no loader" in by_symbol["save_widget"].message
        assert "'made_on'" in by_symbol["load_widget"].message
        assert "read but no writer" in by_symbol["load_widget"].message
        assert all("repro-widget" in f.message for f in findings)


class TestRL012ExceptionContract:
    def test_taxonomy_violations(self):
        findings = lint("rl012_exceptions.py")
        assert brief(findings) == [
            ("RL012", "BareError"),
            ("RL012", "BareError"),
            ("RL012", "BareError"),
            ("RL012", "GhostError"),
            ("RL012", "MutedError"),
        ]
        messages = " | ".join(sorted(f.message for f in findings))
        assert "GhostError is defined but never raised" in messages
        assert "BareError has no docstring" in messages
        assert "BareError is not exported via __all__" in messages
        assert "silently swallows MutedError" in messages

    def test_swallow_finding_points_at_handler(self):
        findings = lint("rl012_exceptions.py")
        swallow = [f for f in findings if "swallows" in f.message]
        assert len(swallow) == 1
        assert swallow[0].symbol == "MutedError"


def _all_rules():
    from repro.analysis import all_rules

    return all_rules()


def test_fixture_directory_reproduces_every_rule():
    """The acceptance-criteria run: lint the whole fixtures tree and see
    every rule fire at least once."""
    run = analyze_paths([FIXTURES], root=FIXTURES)
    fired = {finding.rule for finding in run.findings}
    assert fired >= {f"RL{n:03d}" for n in range(1, 13)}
