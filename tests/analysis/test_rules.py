"""Each rule, proven on a known-bad fixture.

Every test analyzes one fixture file (or directory, for the cross-file
rules) and asserts *exactly* the expected findings — rule id, enclosing
symbol, and message content — so a rule that goes blind or noisy fails
loudly here before it ships.
"""

from pathlib import Path

from repro.analysis import analyze_paths

FIXTURES = Path(__file__).parent / "fixtures"


def lint(*names, rules=None):
    paths = [FIXTURES / name for name in names]
    run = analyze_paths(paths, rules=rules, root=FIXTURES)
    assert not run.parse_failures
    return run.findings


def brief(findings):
    return sorted((f.rule, f.symbol) for f in findings)


class TestRL001FilterContract:
    def test_signature_drift(self):
        findings = lint("rl001_signature.py")
        assert brief(findings) == [
            ("RL001", "DriftedFilter.fit"),
            ("RL001", "DriftedFilter.refutes"),
        ]
        by_symbol = {f.symbol: f for f in findings}
        assert "threshold" in by_symbol["DriftedFilter.refutes"].message
        assert "extra" in by_symbol["DriftedFilter.fit"].message
        assert all(f.severity == "error" for f in findings)

    def test_unregistered_concrete_filter(self):
        findings = lint("rl001_unregistered")
        assert brief(findings) == [("RL001", "OrphanFilter")]
        assert "soundness oracle" in findings[0].message

    def test_no_oracle_module_no_registration_check(self):
        # Analyzing the filter file alone: no oracles.py in the set, so the
        # registration half of the rule stays silent (it cannot know).
        assert lint("rl001_unregistered/filters.py") == []


class TestRL002LockDiscipline:
    def test_unlocked_write_to_guarded_attribute(self):
        findings = lint("rl002_lock.py")
        assert brief(findings) == [("RL002", "Racy.reset")]
        assert "_hits" in findings[0].message
        assert "without holding a lock" in findings[0].message


class TestRL003SpanHygiene:
    def test_orphan_span_call(self):
        findings = lint("rl003_span.py")
        assert brief(findings) == [("RL003", "leaky")]
        assert "`with` block" in findings[0].message


class TestRL004MetricLabels:
    def test_fstring_label(self):
        findings = lint("rl004_labels.py")
        assert brief(findings) == [
            ("RL004", "observe_query"),
            ("RL004", "traced_query"),
        ]
        assert "'tree'" in findings[0].message
        assert "f-string" in findings[0].message
        assert findings[0].severity == "warning"

    def test_span_name_interpolation(self):
        findings = lint("rl004_labels.py")
        span_findings = [f for f in findings if "span name" in f.message]
        assert len(span_findings) == 1
        assert "computed value" in span_findings[0].message
        # literal names and f"filter.{name}" interpolations are not flagged
        assert span_findings[0].symbol == "traced_query"


class TestRL005UnboundedRecursion:
    def test_recursive_child_walk(self):
        findings = lint("rl005_recursion.py")
        assert brief(findings) == [("RL005", "count_nodes")]
        assert "recursion-depth guard" in findings[0].message


class TestRL006HotPathPurity:
    def test_heavy_and_loop_extraction_calls(self):
        findings = lint(
            "rl006_hotpath.py",
            rules=[r for r in _all_rules() if r.rule_id == "RL006"],
        )
        assert brief(findings) == [
            ("RL006", "CheatingFilter.bound"),
            ("RL006", "CheatingFilter.refutes"),
        ]
        by_symbol = {f.symbol: f for f in findings}
        assert "tree_edit_distance" in by_symbol["CheatingFilter.bound"].message
        assert "loop" in by_symbol["CheatingFilter.refutes"].message


class TestRL007ExportSurface:
    def test_unbound_and_duplicate_names(self):
        findings = lint("rl007_exports.py")
        assert {f.rule for f in findings} == {"RL007"}
        messages = " | ".join(f.message for f in findings)
        assert "'ghost'" in messages and "never binds" in messages
        assert "'exported'" in messages and "more than once" in messages
        assert len(findings) == 2

    def test_missing_reexport_in_init(self):
        findings = lint("rl007_pkg")
        assert brief(findings) == [("RL007", "__all__")]
        assert "'hidden'" in findings[0].message


class TestRL008BareExcept:
    def test_blanket_handlers(self):
        findings = lint("rl008_except.py")
        assert brief(findings) == [
            ("RL008", "swallow"),
            ("RL008", "swallow_everything"),
        ]
        assert "except Exception" in findings[0].message
        assert "bare except" in findings[1].message


def _all_rules():
    from repro.analysis import all_rules

    return all_rules()


def test_fixture_directory_reproduces_every_rule():
    """The acceptance-criteria run: lint the whole fixtures tree and see
    every rule fire at least once."""
    run = analyze_paths([FIXTURES], root=FIXTURES)
    fired = {finding.rule for finding in run.findings}
    assert fired >= {f"RL00{n}" for n in range(1, 9)}
