"""Unit tests for the interprocedural core: call graph + dataflow.

Modules are built in-memory from source strings (``ModuleInfo`` parses
text; no files needed), so each test states its whole world inline.
"""

import ast
from pathlib import Path

from repro.analysis.dataflow import (
    lock_constructor_kinds,
    lock_events,
    lock_identity,
    reaching_assignments,
    resolve_name,
)
from repro.analysis.engine import ModuleInfo, ProjectModel


def project(**sources):
    modules = [
        ModuleInfo(Path(f"{name}.py"), f"{name}.py", text)
        for name, text in sorted(sources.items())
    ]
    return ProjectModel(modules)


def edge_pairs(graph):
    return {
        (edge.caller.split("::")[1], edge.callee.split("::")[1], edge.kind)
        for edge in graph.edges
    }


class TestResolution:
    def test_direct_and_cross_module_calls(self):
        graph = project(
            mod_a="from mod_b import helper\n"
            "def top():\n"
            "    helper()\n"
            "    local()\n"
            "def local():\n"
            "    pass\n",
            mod_b="def helper():\n    pass\n",
        ).callgraph()
        pairs = edge_pairs(graph)
        assert ("top", "helper", "direct") in pairs
        assert ("top", "local", "direct") in pairs

    def test_module_alias_call(self):
        graph = project(
            mod_a="import mod_b\n"
            "def top():\n"
            "    mod_b.helper()\n",
            mod_b="def helper():\n    pass\n",
        ).callgraph()
        assert ("top", "helper", "module") in edge_pairs(graph)

    def test_method_resolution_walks_hierarchy_and_overrides(self):
        graph = project(
            mod="class Base:\n"
            "    def run(self):\n"
            "        self.step()\n"
            "    def step(self):\n"
            "        pass\n"
            "class Child(Base):\n"
            "    def step(self):\n"
            "        pass\n",
        ).callgraph()
        pairs = edge_pairs(graph)
        # dynamic dispatch: self.step() may land on Base.step or the
        # subclass override — the graph must carry both
        assert ("Base.run", "Base.step", "self") in pairs
        assert ("Base.run", "Child.step", "self") in pairs

    def test_constructor_links_to_init(self):
        graph = project(
            mod="class Thing:\n"
            "    def __init__(self):\n"
            "        pass\n"
            "def make():\n"
            "    return Thing()\n",
        ).callgraph()
        assert ("make", "Thing.__init__", "constructor") in edge_pairs(graph)


class TestConservatism:
    def test_builtin_method_is_unresolved_not_guessed(self):
        graph = project(
            mod="class Store:\n"
            "    def get(self, key):\n"
            "        return key\n"
            "def use(d):\n"
            "    return d.get('x')\n",
        ).callgraph()
        key = "mod.py::use"
        assert graph.callees(key) == set()
        records = graph.unresolved_calls(key)
        assert [r.reason for r in records] == ["builtin-method"]
        assert records[0].name == "get"

    def test_unknown_name_is_unresolved(self):
        graph = project(mod="def use():\n    return mystery()\n").callgraph()
        records = graph.unresolved_calls("mod.py::use")
        assert [(r.name, r.reason) for r in records] == [
            ("mystery", "unknown")
        ]

    def test_too_wide_attribute_set_is_refused(self):
        classes = "\n".join(
            f"class C{i}:\n    def poke(self):\n        pass"
            for i in range(9)
        )
        graph = project(
            mod=classes + "\ndef use(obj):\n    obj.poke()\n",
        ).callgraph()
        assert graph.callees("mod.py::use") == set()
        assert [r.reason for r in graph.unresolved_calls("mod.py::use")] == [
            "too-wide"
        ]

    def test_computed_callee_is_unresolved(self):
        graph = project(
            mod="def use(fns):\n    (fns[0])()\n",
        ).callgraph()
        assert [r.reason for r in graph.unresolved_calls("mod.py::use")] == [
            "computed"
        ]


class TestCycles:
    def test_mutual_recursion_is_one_component(self):
        graph = project(
            mod="def ping():\n    pong()\ndef pong():\n    ping()\n",
        ).callgraph()
        cycles = graph.cycles()
        assert ["mod.py::ping", "mod.py::pong"] in cycles

    def test_self_recursion_is_a_cycle(self):
        graph = project(
            mod="def loop():\n    loop()\n",
        ).callgraph()
        assert ["mod.py::loop"] in graph.cycles()

    def test_acyclic_chain_has_no_cycles(self):
        graph = project(
            mod="def a():\n    b()\ndef b():\n    c()\ndef c():\n    pass\n",
        ).callgraph()
        assert graph.cycles() == []

    def test_transitive_callees(self):
        graph = project(
            mod="def a():\n    b()\ndef b():\n    c()\ndef c():\n    pass\n",
        ).callgraph()
        assert graph.transitive_callees("mod.py::a") == {
            "mod.py::b",
            "mod.py::c",
        }


class TestExports:
    def test_json_export_is_schema_versioned(self):
        graph = project(mod="def f():\n    pass\n").callgraph()
        payload = graph.to_json()
        assert payload["format"] == "repro-callgraph"
        assert payload["version"] == 1
        assert [f["qualname"] for f in payload["functions"]] == ["f"]

    def test_dot_export_clusters_by_module(self):
        graph = project(
            mod_a="def f():\n    pass\n",
            mod_b="def g():\n    pass\n",
        ).callgraph()
        dot = graph.to_dot()
        assert 'label="mod_a.py"' in dot
        assert 'label="mod_b.py"' in dot
        assert '"mod_a.py::f"' in dot


class TestDataflow:
    def test_reaching_assignments_and_alias_chase(self):
        fn = ast.parse(
            "def f(x):\n"
            "    a = g(x)\n"
            "    b = a\n"
            "    c = b\n"
        ).body[0]
        env = reaching_assignments(fn)
        values = resolve_name("c", env)
        assert len(values) == 1
        assert isinstance(values[0], ast.Call)

    def test_parameter_is_opaque(self):
        fn = ast.parse("def f(x):\n    return x\n").body[0]
        assert resolve_name("x", reaching_assignments(fn)) == []

    def test_lock_identity_qualifies_self_by_class(self):
        expr = ast.parse("self._lock", mode="eval").body
        assert lock_identity(expr, "Cache") == "Cache._lock"
        other = ast.parse("client.lock", mode="eval").body
        assert lock_identity(other) == "client.lock"
        assert lock_identity(ast.parse("self.data", mode="eval").body, "C") is None

    def test_lock_events_track_held_sets(self):
        fn = ast.parse(
            "def f(self):\n"
            "    with self._lock:\n"
            "        with self._aux_lock:\n"
            "            work()\n"
        ).body[0]
        acquisitions, calls = lock_events(fn, "Cache")
        held_at = {a.lock: a.held_before for a in acquisitions}
        assert held_at["Cache._lock"] == ()
        assert held_at["Cache._aux_lock"] == ("Cache._lock",)
        work_calls = [
            c for c in calls
            if isinstance(c.call.func, ast.Name) and c.call.func.id == "work"
        ]
        assert work_calls[0].held == ("Cache._lock", "Cache._aux_lock")

    def test_nested_defs_do_not_inherit_held_locks(self):
        fn = ast.parse(
            "def f(self):\n"
            "    with self._lock:\n"
            "        def inner():\n"
            "            work()\n"
        ).body[0]
        _, calls = lock_events(fn, "Cache")
        assert calls == []

    def test_lock_constructor_kinds(self):
        module = ModuleInfo(
            Path("m.py"),
            "m.py",
            "import threading\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.RLock()\n"
            "        self._condition = threading.Condition()\n",
        )
        kinds = lock_constructor_kinds(module.tree)
        assert kinds == {
            "C._lock": "RLock",
            "C._condition": "Condition",
        }
