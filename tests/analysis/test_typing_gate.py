"""The mypy strict gate over repro.core / repro.filters / repro.trees.

mypy is not a runtime dependency; when it is absent (minimal environments)
the gate is enforced by the CI ``typing`` job instead and this test skips.
"""

from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_mypy_strict_on_gated_packages(monkeypatch):
    api = pytest.importorskip("mypy.api", reason="mypy not installed")
    # `files`/`mypy_path` in pyproject.toml are repo-root-relative
    monkeypatch.chdir(REPO_ROOT)
    stdout, stderr, status = api.run(["--config-file", "pyproject.toml"])
    assert status == 0, f"mypy failed:\n{stdout}\n{stderr}"
