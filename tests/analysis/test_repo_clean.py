"""The repository's own code passes its own linter.

This is the enforcement test behind the CI gate: every rule active, the
checked-in baseline honored, zero new findings.  A change that violates a
project invariant fails here (tier-1) before any workflow runs.
"""

from pathlib import Path

from repro.analysis import Baseline, analyze_paths, partition

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_src_repro_lints_clean_against_checked_in_baseline():
    run = analyze_paths([REPO_ROOT / "src" / "repro"], root=REPO_ROOT)
    assert not run.parse_failures
    baseline = Baseline.load(REPO_ROOT / ".repro-lint-baseline.json")
    new, _grandfathered = partition(run.findings, baseline)
    assert new == [], "\n".join(
        f"{f.location}: {f.rule} {f.message}" for f in new
    )


def test_baseline_entries_are_all_still_live():
    """Fixed findings must leave the baseline (no stale grandfathering)."""
    run = analyze_paths([REPO_ROOT / "src" / "repro"], root=REPO_ROOT)
    baseline = Baseline.load(REPO_ROOT / ".repro-lint-baseline.json")
    live = {finding.fingerprint for finding in run.findings}
    stale = set(baseline.entries) - live
    assert not stale, f"baseline entries no longer observed: {sorted(stale)}"


def test_every_baseline_entry_carries_a_comment():
    baseline = Baseline.load(REPO_ROOT / ".repro-lint-baseline.json")
    for record in baseline.entries.values():
        assert str(record.get("comment", "")).strip(), record
