"""RL003 fixture: a span opened without a context manager."""


def span(name):
    return name


def traced_ok():
    with span("good"):
        pass


def leaky():
    span("orphan")  # never entered, never finished
