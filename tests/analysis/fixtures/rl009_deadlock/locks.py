"""Known-bad fixture half 1: takes beta_lock, then alpha_lock (RL009).

The other half (``pipeline.py``) takes alpha_lock and then calls into
this module while holding it — the classic two-thread deadlock, split
across files so only an interprocedural analysis can see the cycle.
"""

import threading

alpha_lock = threading.Lock()
beta_lock = threading.Lock()


def beta_then_alpha():
    with beta_lock:
        with alpha_lock:
            return 1
