"""Known-bad fixture half 2: alpha_lock -> (call) -> beta_lock (RL009).

``alpha_then_beta`` holds alpha_lock while calling ``beta_then_alpha``,
which acquires beta_lock then alpha_lock — closing the cross-file
acquisition-order cycle.  ``flush`` separately holds a lock across a
pipe send, the blocking-call half of the rule.
"""

from locks import alpha_lock, beta_then_alpha


def alpha_then_beta():
    with alpha_lock:
        return beta_then_alpha()


def flush(conn):
    with alpha_lock:
        conn.send(("flush",))
