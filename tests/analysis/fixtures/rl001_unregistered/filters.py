"""RL001 fixture: a concrete filter the oracle registry never mentions."""


class LowerBoundFilter:
    """Stand-in for repro.filters.base.LowerBoundFilter (name-matched)."""


class OrphanFilter(LowerBoundFilter):
    name = "Orphan"

    def signature(self, tree):
        return tree

    def bound(self, query, data):
        return 0.0
