"""RL001 fixture: an oracle registry that forgot OrphanFilter."""

ORACLE_FACTORIES = {
    "bound:Other": lambda: None,
}
