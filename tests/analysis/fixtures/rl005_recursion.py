"""RL005 fixture: naive recursion down the tree structure."""


def count_nodes(node):
    total = 1
    for child in node.children:
        total += count_nodes(child)  # no depth guard
    return total


def count_iterative(node):
    total = 0
    stack = [node]
    while stack:
        current = stack.pop()
        total += 1
        stack.extend(current.children)  # iterative: fine
    return total
