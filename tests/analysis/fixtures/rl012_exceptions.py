"""Known-bad fixture: typed-exception contract violations (RL012).

``GhostError`` is never raised; ``BareError`` is undocumented,
unexported and unraised; ``MutedError`` is raised but silently
swallowed by a handler.
"""


class ReproError(Exception):
    """Taxonomy root (mirrors repro.exceptions.ReproError)."""


class GhostError(ReproError):
    """Documented and exported — but no code path ever raises it."""


class MutedError(ReproError):
    """Raised by ``trip`` and dropped on the floor by ``swallow``."""


class BareError(ReproError):
    pass


__all__ = ["GhostError", "MutedError", "ReproError"]


def trip():
    raise MutedError("tripped")


def swallow():
    try:
        return trip()
    except MutedError:
        pass
    return None
