"""RL004 fixture: unbounded metric label values and span names."""

import contextlib


class _Counter:
    def inc(self, amount=1, **labels):
        pass


@contextlib.contextmanager
def span(name):
    yield


def observe_query(registry, tree_id):
    counter = _Counter()
    counter.inc(1, kind="range")  # bounded literal: fine
    counter.inc(1, tree=f"tree-{tree_id}")  # unbounded f-string label


def traced_query(filter_name, tree_id):
    with span("search.range"):  # literal: fine
        pass
    with span(f"filter.{filter_name}"):  # name interpolation: fine
        pass
    with span(f"tree.{compute_key(tree_id)}"):  # computed value: unbounded
        pass


def compute_key(tree_id):
    return tree_id * 7
