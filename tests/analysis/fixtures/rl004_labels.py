"""RL004 fixture: an unbounded metric label value."""


class _Counter:
    def inc(self, amount=1, **labels):
        pass


def observe_query(registry, tree_id):
    counter = _Counter()
    counter.inc(1, kind="range")  # bounded literal: fine
    counter.inc(1, tree=f"tree-{tree_id}")  # unbounded f-string label
