"""Known-bad fixture: unpicklable payloads reaching a shard pipe (RL010).

Four distinct bad shapes: a recursive tree through a local alias, a
closure, a lock, and an open handle smuggled through a helper whose
parameter flows to the wire (the interprocedural case).
"""

import threading


def push_tree(conn, text):
    tree = parse_bracket(text)
    conn.send(("tree", tree))


def push_callback(conn):
    conn.send(lambda reply: reply)


def push_lock(conn):
    guard = threading.Lock()
    conn.send(("guard", guard))


def relay(conn, payload):
    conn.send(payload)


def enqueue(conn):
    relay(conn, open("state.bin", "rb"))
