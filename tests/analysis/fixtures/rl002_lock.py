"""RL002 fixture: a lock-guarded attribute mutated without the lock."""

import threading


class Racy:
    def __init__(self):
        self._lock = threading.Lock()
        self._hits = 0  # construction is exempt

    def record(self):
        with self._lock:
            self._hits += 1

    def reset(self):
        self._hits = 0  # unlocked write to a guarded attribute
