"""Definitions the RL007 package fixture re-exports."""

__all__ = ["hidden", "visible"]


def visible():
    return 1


def hidden():
    return 2
