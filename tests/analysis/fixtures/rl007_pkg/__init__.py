"""RL007 fixture: a package re-export missing from __all__."""

from tests.analysis.fixtures.rl007_pkg.inner import hidden, visible  # noqa: F401

__all__ = ["visible"]
