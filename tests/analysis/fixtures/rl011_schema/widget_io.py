"""Known-bad fixture: key drift on a versioned schema (RL011).

The writer emits ``color`` that no loader reads (dead weight in every
artifact), and the loader reads ``made_on`` that no writer emits (a
silent ``None`` on every artifact this code ever writes).
"""

import json

_FORMAT = "repro-widget"
_VERSION = 1


def save_widget(widget, path):
    document = {
        "format": _FORMAT,
        "version": _VERSION,
        "name": widget.name,
        "mass": widget.mass,
        "color": widget.color,
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle)


def load_widget(path):
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    if document.get("format") != _FORMAT:
        raise ValueError(f"{path}: not a {_FORMAT} file")
    return {
        "name": document["name"],
        "mass": document["mass"],
        "made_on": document.get("made_on"),
    }
