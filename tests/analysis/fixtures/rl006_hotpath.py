"""RL006 fixture: refinement-grade work on the filter hot path."""


def tree_edit_distance(t1, t2):
    return 0.0


class LowerBoundFilter:
    """Stand-in for repro.filters.base.LowerBoundFilter (name-matched)."""


class CheatingFilter(LowerBoundFilter):
    name = "Cheat"

    def signature(self, tree):
        return tree

    def bound(self, query, data):
        return tree_edit_distance(query, data)  # the bound IS the refinement

    def refutes(self, query, data, threshold):
        for candidate in [data]:
            if self.signature(candidate):  # extraction inside the loop
                return True
        return False
