"""RL007 fixture: __all__ out of sync with the module's bindings."""

__all__ = ["exported", "ghost", "exported"]


def exported():
    return 1
