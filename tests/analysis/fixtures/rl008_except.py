"""RL008 fixture: blanket exception handlers."""


def swallow(fn):
    try:
        return fn()
    except Exception:
        return None


def swallow_everything(fn):
    try:
        return fn()
    except:  # noqa: E722
        return None
