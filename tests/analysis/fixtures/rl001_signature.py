"""RL001 fixture: a filter override that drifts from the contract."""


class LowerBoundFilter:
    """Stand-in for repro.filters.base.LowerBoundFilter (name-matched)."""


class DriftedFilter(LowerBoundFilter):
    name = "Drifted"

    def refutes(self, query, data):  # threshold parameter dropped
        return False

    def fit(self, trees, extra=None):  # extra parameter added
        return self

    def bound(self, query, data):
        return 0.0
