# Convenience targets for the SIGMOD 2005 reproduction.

.PHONY: install test soak bench bench-medium bench-paper examples clean

install:
	python setup.py develop

test:
	pytest tests/

soak:
	HYPOTHESIS_PROFILE=soak pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

bench-medium:
	REPRO_BENCH_SCALE=medium pytest benchmarks/ --benchmark-only

# full paper scale; the sequential baselines alone take hours in pure
# Python — disable them with REPRO_BENCH_SEQUENTIAL=0 to get the accessed-%
# series quickly
bench-paper:
	REPRO_BENCH_SCALE=paper REPRO_BENCH_SEQUENTIAL=0 pytest benchmarks/ --benchmark-only

examples:
	for script in examples/*.py; do python $$script || exit 1; done

clean:
	rm -rf build dist src/repro.egg-info .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
