# Convenience targets for the SIGMOD 2005 reproduction.

.PHONY: install test lint soak bench bench-medium bench-paper examples clean

install:
	python setup.py develop

test:
	pytest tests/

# ruff + repro-lint + mypy in one shot. ruff and mypy are dev-only tools:
# when one is not installed the step is skipped with a note (CI installs
# both), but a real finding from an installed tool still fails the target.
lint:
	@if python -c "import ruff" 2>/dev/null || command -v ruff >/dev/null; \
	then ruff check src tests benchmarks; \
	else echo "ruff not installed - skipping (pip install ruff)"; fi
	PYTHONPATH=src python -m repro.cli lint
	PYTHONPATH=src python scripts/check_fixture_coverage.py
	@if python -c "import mypy" 2>/dev/null; \
	then mypy --config-file pyproject.toml; \
	else echo "mypy not installed - skipping (pip install mypy)"; fi

soak:
	HYPOTHESIS_PROFILE=soak pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

bench-medium:
	REPRO_BENCH_SCALE=medium pytest benchmarks/ --benchmark-only

# full paper scale; the sequential baselines alone take hours in pure
# Python — disable them with REPRO_BENCH_SEQUENTIAL=0 to get the accessed-%
# series quickly
bench-paper:
	REPRO_BENCH_SCALE=paper REPRO_BENCH_SEQUENTIAL=0 pytest benchmarks/ --benchmark-only

examples:
	for script in examples/*.py; do python $$script || exit 1; done

clean:
	rm -rf build dist src/repro.egg-info .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
