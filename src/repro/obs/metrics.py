"""Process-wide metrics registry: counters, gauges, histograms.

A zero-dependency, Prometheus-shaped metrics layer.  A
:class:`MetricsRegistry` owns named instruments — :class:`Counter`,
:class:`Gauge`, :class:`Histogram` — each optionally split by label values,
and exports the whole collection two ways:

* :meth:`MetricsRegistry.prometheus_text` — the Prometheus text exposition
  format (``# HELP`` / ``# TYPE`` comments, cumulative ``_bucket{le=…}``
  histogram series, escaped label values), scrapeable as-is;
* :meth:`MetricsRegistry.snapshot` / :meth:`~MetricsRegistry.to_json` — a
  point-in-time JSON document for dashboards and tests.

Instrument registration is get-or-create: asking twice for the same name
returns the same instrument (so independent modules can share counters),
while re-registering a name with a different type or label set raises —
that is always a bug.  :data:`the module-level default registry
<get_registry>` plays the role of Prometheus' global registry; the serving
layer's :class:`~repro.service.metrics.ServiceMetrics` builds its private
registry by default and can be pointed at the global one.

:class:`HistogramState` is the single-series histogram engine (log-bucketed
counts with interpolated percentiles); the service layer's
``LatencyHistogram`` is the same class with the default latency buckets.
"""

from __future__ import annotations

import json
import re
import threading
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramState",
    "MetricsRegistry",
    "default_latency_bounds",
    "get_registry",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def default_latency_bounds() -> List[float]:
    """1 µs .. ~100 s in half-decade steps.

    Wide enough for cache hits (microseconds) and pure-Python refinement
    of large trees (seconds).
    """
    bounds: List[float] = []
    value = 1e-6
    while value < 100.0:
        bounds.append(value)
        bounds.append(value * 3.1623)  # half a decade
        value *= 10.0
    return bounds


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_labels(labelnames: Sequence[str], labelvalues: Sequence[str]) -> str:
    if not labelnames:
        return ""
    pairs = ",".join(
        f'{name}="{_escape_label_value(str(value))}"'
        for name, value in zip(labelnames, labelvalues)
    )
    return "{" + pairs + "}"


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    return repr(float(value))


class _Instrument:
    """Shared machinery: name/help/labels bookkeeping and locking."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> None:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        for label in labelnames:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r} on metric {name!r}")
        self.name = name
        self.help = help
        self.labelnames: Tuple[str, ...] = tuple(labelnames)
        self._lock = threading.Lock()

    def _key(self, labels: Dict[str, object]) -> Tuple[str, ...]:
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"metric {self.name!r} takes labels {list(self.labelnames)}, "
                f"got {sorted(labels)}"
            )
        return tuple(str(labels[name]) for name in self.labelnames)

    def _header(self) -> List[str]:
        lines = []
        if self.help:
            lines.append(f"# HELP {self.name} {self.help}")
        lines.append(f"# TYPE {self.name} {self.kind}")
        return lines


class Counter(_Instrument):
    """A monotonically increasing sum, optionally split by labels."""

    kind = "counter"

    def __init__(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> None:
        super().__init__(name, help, labelnames)
        self._values: Dict[Tuple[str, ...], float] = {}

    def inc(self, amount: float = 1.0, **labels) -> None:
        """Add ``amount`` (must be >= 0) to the labelled series."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease ({amount})")
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        """Current value of the labelled series (0 when never incremented)."""
        return self._values.get(self._key(labels), 0.0)

    def values(self) -> Dict[Tuple[str, ...], float]:
        """Every labelled series, keyed by label-value tuple."""
        with self._lock:
            return dict(self._values)

    def reset(self) -> None:
        with self._lock:
            self._values.clear()

    def expose(self) -> List[str]:
        lines = self._header()
        with self._lock:
            series = sorted(self._values.items()) or (
                [((), 0.0)] if not self.labelnames else []
            )
            for labelvalues, value in series:
                lines.append(
                    f"{self.name}{_format_labels(self.labelnames, labelvalues)} "
                    f"{_format_value(value)}"
                )
        return lines

    def snapshot_value(self):
        values = self.values()
        if not self.labelnames:
            return values.get((), 0.0)
        return {",".join(key): value for key, value in sorted(values.items())}


class Gauge(Counter):
    """A value that can go up and down (current sizes, rates, flags)."""

    kind = "gauge"

    def inc(self, amount: float = 1.0, **labels) -> None:
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels) -> None:
        self.inc(-amount, **labels)

    def set(self, value: float, **labels) -> None:
        key = self._key(labels)
        with self._lock:
            self._values[key] = float(value)


class HistogramState:
    """One histogram series: fixed buckets, interpolated percentiles.

    Buckets are upper-bound-inclusive like Prometheus histograms; the last
    bucket is implicit ``+Inf``.  Percentile estimates interpolate linearly
    inside the winning bucket, which is accurate to within a bucket width —
    plenty for serving dashboards (exact percentiles belong to the workload
    driver, which keeps raw samples).
    """

    def __init__(self, bounds: Optional[Sequence[float]] = None) -> None:
        self.bounds: List[float] = sorted(bounds) if bounds else default_latency_bounds()
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.total = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = 0.0

    def record(self, value: float) -> None:
        """Fold one observation into the histogram."""
        index = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                index = i
                break
        self.counts[index] += 1
        self.total += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        """Mean observation (0 when empty)."""
        return self.sum / self.total if self.total else 0.0

    def quantile(self, p: float) -> float:
        """Interpolated ``p``-th percentile (0 when empty)."""
        if not 0 <= p <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        if self.total == 0:
            return 0.0
        target = p / 100 * self.total
        cumulative = 0
        for i, count in enumerate(self.counts):
            if count == 0:
                continue
            previous = cumulative
            cumulative += count
            if cumulative >= target:
                lower = self.bounds[i - 1] if i > 0 else 0.0
                upper = self.bounds[i] if i < len(self.bounds) else self.max
                lower = max(lower, self.min if previous == 0 else lower)
                upper = min(upper, self.max)
                if upper <= lower:
                    return upper
                fraction = (target - previous) / count
                return lower + fraction * (upper - lower)
        return self.max

    def to_dict(self) -> Dict[str, object]:
        """Snapshot: count / sum / min / max / mean and key percentiles."""
        return {
            "count": self.total,
            "sum_seconds": self.sum,
            "min_seconds": self.min if self.total else 0.0,
            "max_seconds": self.max,
            "mean_seconds": self.mean,
            "p50_seconds": self.quantile(50),
            "p90_seconds": self.quantile(90),
            "p99_seconds": self.quantile(99),
        }


class Histogram(_Instrument):
    """A registry instrument holding one :class:`HistogramState` per label set."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        bounds: Optional[Sequence[float]] = None,
    ) -> None:
        super().__init__(name, help, labelnames)
        self.bounds = sorted(bounds) if bounds else default_latency_bounds()
        self._states: Dict[Tuple[str, ...], HistogramState] = {}

    def observe(self, value: float, **labels) -> None:
        """Record one observation into the labelled series."""
        self.state(**labels).record(value)

    def state(self, **labels) -> HistogramState:
        """The labelled series' state, created on first access."""
        key = self._key(labels)
        with self._lock:
            state = self._states.get(key)
            if state is None:
                state = self._states[key] = HistogramState(self.bounds)
            return state

    def states(self) -> Dict[Tuple[str, ...], HistogramState]:
        """Every labelled series, keyed by label-value tuple."""
        with self._lock:
            return dict(self._states)

    def reset(self) -> None:
        with self._lock:
            self._states.clear()

    def expose(self) -> List[str]:
        lines = self._header()
        for labelvalues, state in sorted(self.states().items()):
            cumulative = 0
            for bound, count in zip(state.bounds, state.counts):
                cumulative += count
                labels = _format_labels(
                    self.labelnames + ("le",),
                    labelvalues + (_format_value(bound),),
                )
                lines.append(f"{self.name}_bucket{labels} {cumulative}")
            labels = _format_labels(
                self.labelnames + ("le",), labelvalues + ("+Inf",)
            )
            lines.append(f"{self.name}_bucket{labels} {state.total}")
            plain = _format_labels(self.labelnames, labelvalues)
            lines.append(f"{self.name}_sum{plain} {_format_value(state.sum)}")
            lines.append(f"{self.name}_count{plain} {state.total}")
        return lines

    def snapshot_value(self):
        states = self.states()
        if not self.labelnames:
            state = states.get(())
            return state.to_dict() if state is not None else HistogramState(self.bounds).to_dict()
        return {
            ",".join(key): state.to_dict() for key, state in sorted(states.items())
        }


class MetricsRegistry:
    """A named collection of instruments with text/JSON exposition.

    Registration is get-or-create and thread-safe; a name clash with a
    different instrument type or label set raises ``ValueError``.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: Dict[str, _Instrument] = {}

    def _register(self, cls, name: str, help: str, labelnames: Sequence[str], **kwargs):
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if type(existing) is not cls or existing.labelnames != tuple(labelnames):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{type(existing).__name__} with labels "
                        f"{list(existing.labelnames)}"
                    )
                return existing
            instrument = cls(name, help, labelnames, **kwargs)
            self._instruments[name] = instrument
            return instrument

    def counter(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Counter:
        """Get or create a counter."""
        return self._register(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> Gauge:
        """Get or create a gauge."""
        return self._register(Gauge, name, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        bounds: Optional[Sequence[float]] = None,
    ) -> Histogram:
        """Get or create a histogram (``bounds`` only applies on creation)."""
        return self._register(Histogram, name, help, labelnames, bounds=bounds)

    def get(self, name: str) -> Optional[_Instrument]:
        """The instrument registered under ``name``, if any."""
        return self._instruments.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def __len__(self) -> int:
        return len(self._instruments)

    def instruments(self) -> List[_Instrument]:
        """Every registered instrument in registration order."""
        with self._lock:
            return list(self._instruments.values())

    def reset(self) -> None:
        """Zero every instrument (registrations are kept)."""
        for instrument in self.instruments():
            instrument.reset()

    def prometheus_text(self) -> str:
        """The whole registry in the Prometheus text exposition format."""
        lines: List[str] = []
        for instrument in self.instruments():
            lines.extend(instrument.expose())
        return "\n".join(lines) + ("\n" if lines else "")

    def snapshot(self) -> Dict[str, object]:
        """Point-in-time JSON-serialisable view of every instrument."""
        return {
            instrument.name: {
                "type": instrument.kind,
                "help": instrument.help,
                "labels": list(instrument.labelnames),
                "value": instrument.snapshot_value(),
            }
            for instrument in self.instruments()
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        """:meth:`snapshot` serialised as JSON."""
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)


#: The process-wide default registry (Prometheus' "global registry" role).
_DEFAULT_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default :class:`MetricsRegistry`."""
    return _DEFAULT_REGISTRY
