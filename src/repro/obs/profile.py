"""Zero-dependency sampling profiler attributed to the active span path.

Where tracing answers "how long did each operation take", the profiler
answers "*which code* was running inside it".  :class:`SamplingProfiler`
periodically captures the interrupted Python frame stack and keys every
sample on the innermost live span's root-to-leaf path
(:func:`repro.obs.tracing.current_path`), so a collapsed-stack export
reads ``search.range;filter.BiBranch;repro.filters...:refutes 42`` — the
span cascade the paper's cost model talks about, with the concrete
frames under it.

Two sampling backends:

* ``signal`` — :func:`signal.setitimer` fires ``SIGPROF`` (CPU time) or
  ``SIGALRM`` (wall time) every ``interval`` seconds; the handler samples
  the interrupted frame.  Lowest overhead and unbiased, but POSIX-only
  and main-thread-only (signal handlers always run on the main thread).
* ``setprofile`` — :func:`sys.setprofile` + :func:`threading.setprofile`
  install a per-thread callback that records a sample when at least
  ``interval`` seconds have elapsed on that thread (``interval=0``
  records every call event — deterministic, useful for tests).  Works on
  every platform and every thread, at higher overhead.

``mode="auto"`` picks ``signal`` when possible, else ``setprofile``.

The **disabled path is a true NOOP**: nothing in the library calls into
this module per-operation; an uninstalled profiler costs instrumented
code zero work (the overhead-guard test in ``tests/obs/test_profile.py``
pins this).  Samples are bounded (``max_samples`` distinct keys beyond
which new keys are dropped and counted), and export is available as a
flamegraph-compatible collapsed-stack text or a schema-versioned JSON
document (``repro-profile`` v1).
"""

from __future__ import annotations

import signal
import sys
import threading
import time
from typing import Dict, List, Optional, Tuple

from repro.obs import tracing

__all__ = [
    "SamplingProfiler",
    "get_profiler",
    "profiling_enabled",
    "PROFILE_FORMAT",
    "PROFILE_VERSION",
]

PROFILE_FORMAT = "repro-profile"
PROFILE_VERSION = 1

#: span-path segment used for samples taken outside any live span
NO_SPAN = "(no span)"

#: frames deeper than this are truncated (innermost kept)
_MAX_DEPTH = 64

_ACTIVE_PROFILER: Optional["SamplingProfiler"] = None


def get_profiler() -> Optional["SamplingProfiler"]:
    """The currently started profiler, or ``None`` when profiling is off."""
    return _ACTIVE_PROFILER


def profiling_enabled() -> bool:
    """Whether a profiler is currently sampling this process."""
    return _ACTIVE_PROFILER is not None


def _frame_id(frame) -> str:
    """``module:function`` for one frame (bounded: code objects, not data)."""
    code = frame.f_code
    module = frame.f_globals.get("__name__", "?")
    return f"{module}:{code.co_name}"


def _walk_stack(frame) -> Tuple[str, ...]:
    """Root-first ``module:function`` tuple for ``frame`` and its callers."""
    frames: List[str] = []
    while frame is not None and len(frames) < _MAX_DEPTH:
        frames.append(_frame_id(frame))
        frame = frame.f_back
    frames.reverse()
    return tuple(frames)


class SamplingProfiler:
    """Samples Python stacks, attributed to the active span path.

    Parameters
    ----------
    interval:
        Seconds between samples.  In ``setprofile`` mode, ``0.0`` records
        a sample on *every* call event (deterministic; for tests).
    mode:
        ``"signal"``, ``"setprofile"``, or ``"auto"`` (signal when the
        platform and thread allow it, else the setprofile fallback).
    timer:
        ``"cpu"`` (``ITIMER_PROF``/``SIGPROF`` — samples only while this
        process burns CPU) or ``"wall"`` (``ITIMER_REAL``/``SIGALRM``).
        Signal mode only.
    max_samples:
        Bound on *distinct* sample keys; samples for new keys beyond the
        bound are counted in :attr:`dropped`, never stored.
    """

    def __init__(
        self,
        interval: float = 0.005,
        mode: str = "auto",
        timer: str = "cpu",
        max_samples: int = 100_000,
    ) -> None:
        if interval < 0:
            raise ValueError(f"interval must be >= 0, got {interval}")
        if mode not in ("auto", "signal", "setprofile"):
            raise ValueError(f"unknown profiler mode {mode!r}")
        if timer not in ("cpu", "wall"):
            raise ValueError(f"timer must be 'cpu' or 'wall', got {timer!r}")
        if max_samples < 1:
            raise ValueError(f"max_samples must be >= 1, got {max_samples}")
        self.interval = interval
        self.requested_mode = mode
        self.timer = timer
        self.max_samples = max_samples
        self.mode: Optional[str] = None  # resolved at start()
        self.dropped = 0
        self.total = 0
        self._lock = threading.Lock()
        self._samples: Dict[Tuple[str, Tuple[str, ...]], int] = {}
        self._started = False
        self._prev_handler = None
        self._prev_profilers: Dict[int, object] = {}
        self._thread_last: Dict[int, float] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "SamplingProfiler":
        """Begin sampling; installs as the process-wide active profiler."""
        global _ACTIVE_PROFILER
        if self._started:
            raise RuntimeError("profiler already started")
        if _ACTIVE_PROFILER is not None:
            raise RuntimeError("another profiler is already active")
        mode = self.requested_mode
        if mode == "auto":
            # interval=0 means "every call event" — only setprofile can do
            # that; signal mode needs a positive timer period
            mode = (
                "signal"
                if self.interval > 0 and self._signal_possible()
                else "setprofile"
            )
        if mode == "signal":
            self._start_signal()
        else:
            self._start_setprofile()
        self.mode = mode
        self._started = True
        _ACTIVE_PROFILER = self
        return self

    def stop(self) -> "SamplingProfiler":
        """Stop sampling and restore the previous handlers/hooks."""
        global _ACTIVE_PROFILER
        if not self._started:
            return self
        if self.mode == "signal":
            self._stop_signal()
        else:
            self._stop_setprofile()
        self._started = False
        if _ACTIVE_PROFILER is self:
            _ACTIVE_PROFILER = None
        return self

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc_info) -> bool:
        self.stop()
        return False

    @staticmethod
    def _signal_possible() -> bool:
        return (
            hasattr(signal, "setitimer")
            and threading.current_thread() is threading.main_thread()
        )

    # ------------------------------------------------------------------
    # signal backend
    # ------------------------------------------------------------------
    def _start_signal(self) -> None:
        if not hasattr(signal, "setitimer"):
            raise RuntimeError("signal mode needs signal.setitimer (POSIX)")
        if threading.current_thread() is not threading.main_thread():
            raise RuntimeError("signal mode must be started from the main thread")
        if self.interval <= 0:
            raise ValueError("signal mode needs a positive interval")
        which, signum = self._timer_pair()
        self._prev_handler = signal.signal(signum, self._on_signal)
        signal.setitimer(which, self.interval, self.interval)

    def _stop_signal(self) -> None:
        which, signum = self._timer_pair()
        signal.setitimer(which, 0.0, 0.0)
        if self._prev_handler is not None:
            signal.signal(signum, self._prev_handler)
            self._prev_handler = None

    def _timer_pair(self):
        if self.timer == "cpu":
            return signal.ITIMER_PROF, signal.SIGPROF
        return signal.ITIMER_REAL, signal.SIGALRM

    def _on_signal(self, signum, frame) -> None:
        if frame is not None:
            self._record(frame)

    # ------------------------------------------------------------------
    # setprofile backend
    # ------------------------------------------------------------------
    def _start_setprofile(self) -> None:
        # threads started after this call inherit the hook; already-running
        # worker threads are not retroactively hooked (documented limit)
        threading.setprofile(self._on_event)
        sys.setprofile(self._on_event)

    def _stop_setprofile(self) -> None:
        threading.setprofile(None)
        sys.setprofile(None)
        self._thread_last.clear()

    def _on_event(self, frame, event, arg) -> None:
        if event not in ("call", "return"):
            return
        if self.interval > 0.0:
            ident = threading.get_ident()
            now = time.perf_counter()
            last = self._thread_last.get(ident, 0.0)
            if now - last < self.interval:
                return
            self._thread_last[ident] = now
        self._record(frame)

    # ------------------------------------------------------------------
    # Sample storage
    # ------------------------------------------------------------------
    def _record(self, frame) -> None:
        if frame.f_globals.get("__name__") == __name__:
            return  # never sample the profiler's own machinery
        path = tracing.current_path() or NO_SPAN
        key = (path, _walk_stack(frame))
        # signal mode runs this inside a handler *on the main thread*; if
        # that same thread already holds the lock (it was interrupted inside
        # samples()/clear()) a blocking acquire would deadlock — drop the
        # sample instead.  setprofile mode runs on ordinary threads where
        # blocking is safe (CPython disables the hook inside the hook).
        if not self._lock.acquire(self.mode != "signal"):
            self.dropped += 1  # repro-lint: disable=RL002 -- advisory counter bumped exactly when the lock is unavailable; signal handlers cannot block
            return
        try:
            count = self._samples.get(key)
            if count is None:
                if len(self._samples) >= self.max_samples:
                    self.dropped += 1  # repro-lint: disable=RL002 -- guarded by the manual acquire above (non-blocking form, so no `with` block)
                    return
                self._samples[key] = 1
            else:
                self._samples[key] = count + 1
            self.total += 1  # repro-lint: disable=RL002 -- guarded by the manual acquire above (non-blocking form, so no `with` block)
        finally:
            self._lock.release()

    def samples(self) -> Dict[Tuple[str, Tuple[str, ...]], int]:
        """Snapshot: ``(span_path, frames root-first) -> count``."""
        with self._lock:
            return dict(self._samples)

    def by_span_path(self) -> Dict[str, int]:
        """Sample counts folded down to the span path alone."""
        folded: Dict[str, int] = {}
        for (path, _frames), count in self.samples().items():
            folded[path] = folded.get(path, 0) + count
        return folded

    def clear(self) -> None:
        with self._lock:
            self._samples.clear()
            self.total = 0
            self.dropped = 0

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def collapsed(self) -> str:
        """Flamegraph folded format: ``seg;seg;frame;frame count`` lines.

        The span path's ``/`` separators become stack frames, so a
        flamegraph renders the span cascade as the upper layers and the
        Python frames under each leaf span.  Feed to ``flamegraph.pl``
        or https://www.speedscope.app (paste as "collapsed").
        """
        lines = []
        for (path, frames), count in sorted(self.samples().items()):
            stack = ";".join(path.split("/") + list(frames))
            lines.append(f"{stack} {count}")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        """Schema-versioned JSON document of every sample."""
        records = [
            {"span_path": path, "frames": list(frames), "count": count}
            for (path, frames), count in sorted(self.samples().items())
        ]
        return {
            "format": PROFILE_FORMAT,
            "version": PROFILE_VERSION,
            "mode": self.mode or self.requested_mode,
            "timer": self.timer,
            "interval_seconds": self.interval,
            "total_samples": self.total,
            "dropped": self.dropped,
            "samples": records,
        }

    def __repr__(self) -> str:
        return (
            f"SamplingProfiler(mode={self.mode or self.requested_mode!r}, "
            f"interval={self.interval}, samples={self.total})"
        )
