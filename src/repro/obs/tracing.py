"""Lightweight span tracing with contextvars propagation.

The observability layer's answer to "where did this query spend its
time".  A :class:`Tracer` hands out :class:`Span` context managers; spans
nest through a :mod:`contextvars` variable (so propagation survives thread
hops when the caller copies its context, as the service batch executor
does), time themselves with the monotonic :func:`time.perf_counter`, and
are collected into a flat buffer from which the tracer can export a JSON
document, a ``chrome://tracing`` event file, or a rendered span tree.

Design constraints, in priority order:

1. **near-zero overhead when disabled** — library code calls the
   module-level :func:`span`; with no tracer installed it returns the
   shared :data:`NOOP_SPAN` singleton immediately (one global read, one
   identity check, no allocation);
2. **sampling** — the keep/drop decision is made once per *root* span;
   descendants of an unsampled root short-circuit to the no-op span, so a
   sampled-out query costs one tiny marker allocation total;
3. **bounded memory** — the span buffer is capped (``max_spans``); spans
   beyond the cap are counted in :attr:`Tracer.dropped`, never stored.

Hot loops (the Zhang–Shasha refinement step) should guard instrumentation
with :func:`enabled` so even the no-op call and its keyword-argument dict
are skipped when tracing is off.
"""

from __future__ import annotations

import itertools
import json
import random
import threading
import time
from contextvars import ContextVar
from typing import Dict, List, Optional

__all__ = [
    "Span",
    "Tracer",
    "NOOP_SPAN",
    "span",
    "enabled",
    "current_span",
    "current_path",
    "get_tracer",
    "set_tracer",
]

#: The innermost live span of the current execution context (or a
#: sampled-out marker).  Copied by ``contextvars.copy_context()``, which is
#: how parent ids survive ThreadPoolExecutor hand-offs.
_CURRENT: "ContextVar[Optional[object]]" = ContextVar(
    "repro_obs_current_span", default=None
)

_ACTIVE_TRACER: Optional["Tracer"] = None


class _NoopSpan:
    """The shared do-nothing span returned whenever tracing is off.

    Stateless, so one instance serves every caller concurrently; its
    methods are no-ops and it never touches the context variable.
    """

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False

    def set(self, **attributes) -> "_NoopSpan":
        return self

    def __repr__(self) -> str:
        return "<noop span>"


NOOP_SPAN = _NoopSpan()


class _UnrecordedSpan:
    """Marker entered for a *sampled-out* root span.

    It installs itself as the current span so every descendant sees "this
    trace is dropped" and short-circuits to :data:`NOOP_SPAN`; nothing is
    ever recorded.  One tiny instance per unsampled root.
    """

    __slots__ = ("_token",)

    def __enter__(self) -> "_UnrecordedSpan":
        self._token = _CURRENT.set(self)
        return self

    def __exit__(self, *exc_info) -> bool:
        _CURRENT.reset(self._token)
        return False

    def set(self, **attributes) -> "_UnrecordedSpan":
        return self


class Span:
    """One timed, attributed operation; a context manager.

    ``start``/``end`` are :func:`time.perf_counter` readings (monotonic;
    meaningful only relative to other spans of the same process).
    """

    __slots__ = (
        "tracer",
        "name",
        "path",
        "span_id",
        "parent_id",
        "trace_id",
        "thread_id",
        "start",
        "end",
        "attributes",
        "error",
        "_token",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        span_id: int,
        parent_id: Optional[int],
        trace_id: int,
        attributes: Dict[str, object],
        path: Optional[str] = None,
    ) -> None:
        self.tracer = tracer
        self.name = name
        #: "/"-joined span names from the trace root down to this span
        #: (``search.range/filter.BiBranch``).  Computed once at creation so
        #: the sampling profiler can key samples on it with a single
        #: attribute read from inside an interrupt handler.
        self.path = path if path is not None else name
        self.span_id = span_id
        self.parent_id = parent_id
        self.trace_id = trace_id
        self.thread_id = 0
        self.start = 0.0
        self.end = 0.0
        self.attributes = attributes
        self.error: Optional[str] = None

    def __enter__(self) -> "Span":
        self._token = _CURRENT.set(self)
        self.thread_id = threading.get_ident()
        self.start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> bool:
        self.end = time.perf_counter()
        _CURRENT.reset(self._token)
        if exc_type is not None:
            self.error = f"{exc_type.__name__}: {exc_value}"
        self.tracer._finish(self)
        return False

    def set(self, **attributes) -> "Span":
        """Attach (or overwrite) attributes; chainable."""
        self.attributes.update(attributes)
        return self

    @property
    def duration(self) -> float:
        """Wall seconds between enter and exit (0 while still open)."""
        return max(0.0, self.end - self.start)

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable record of one finished span."""
        record: Dict[str, object] = {
            "name": self.name,
            "path": self.path,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "trace_id": self.trace_id,
            "thread_id": self.thread_id,
            "start_seconds": self.start,
            "duration_seconds": self.duration,
            "attributes": dict(self.attributes),
        }
        if self.error is not None:
            record["error"] = self.error
        return record

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, id={self.span_id}, "
            f"parent={self.parent_id}, {self.duration * 1000:.3f} ms)"
        )


class Tracer:
    """Creates, samples and collects spans.

    Parameters
    ----------
    sample_rate:
        Probability that a *root* span (and therefore its whole trace) is
        recorded.  ``1.0`` records everything, ``0.0`` nothing.
    max_spans:
        Bound on the finished-span buffer; further spans still time their
        block but are dropped (counted in :attr:`dropped`).
    seed:
        Optional seed for the sampling stream, for deterministic tests.
    """

    def __init__(
        self,
        sample_rate: float = 1.0,
        max_spans: int = 100_000,
        seed: Optional[int] = None,
    ) -> None:
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError(f"sample_rate must be in [0, 1], got {sample_rate}")
        if max_spans < 1:
            raise ValueError(f"max_spans must be >= 1, got {max_spans}")
        self.sample_rate = sample_rate
        self.max_spans = max_spans
        self.dropped = 0
        self._rng = random.Random(seed)
        self._ids = itertools.count(1)
        self._trace_ids = itertools.count(1)
        self._lock = threading.Lock()
        self._spans: List[Span] = []

    # ------------------------------------------------------------------
    # Span creation
    # ------------------------------------------------------------------
    def span(self, name: str, **attributes):
        """Open a span as a child of the context's current span.

        Returns a context manager: a real :class:`Span`, an unrecorded
        marker (sampled-out root), or :data:`NOOP_SPAN` (descendant of a
        sampled-out root).
        """
        parent = _CURRENT.get()
        if parent is None:
            if self.sample_rate < 1.0 and self._rng.random() >= self.sample_rate:
                return _UnrecordedSpan()
            return Span(
                self, name, next(self._ids), None, next(self._trace_ids), attributes
            )
        if type(parent) is _UnrecordedSpan:
            return NOOP_SPAN
        return Span(
            self,
            name,
            next(self._ids),
            parent.span_id,
            parent.trace_id,
            attributes,
            path=parent.path + "/" + name,
        )

    def _finish(self, span: Span) -> None:
        with self._lock:
            if len(self._spans) >= self.max_spans:
                self.dropped += 1
            else:
                self._spans.append(span)

    # ------------------------------------------------------------------
    # Collection access
    # ------------------------------------------------------------------
    def finished_spans(self) -> List[Span]:
        """Snapshot of the collected spans (completion order)."""
        with self._lock:
            return list(self._spans)

    def clear(self) -> None:
        """Drop every collected span and reset the drop counter."""
        with self._lock:
            self._spans.clear()
            self.dropped = 0

    def __len__(self) -> int:
        return len(self._spans)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """The whole collection as one JSON-serialisable document."""
        spans = self.finished_spans()
        return {
            "format": "repro-trace",
            "version": 1,
            "sample_rate": self.sample_rate,
            "dropped": self.dropped,
            "spans": [record.to_dict() for record in spans],
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        """:meth:`to_dict` serialised as JSON."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True, default=repr)

    def to_chrome_trace(self) -> Dict[str, object]:
        """The collection as a ``chrome://tracing`` / Perfetto event file.

        Complete ("X") events with microsecond timestamps relative to the
        earliest span, one row per thread.  Load the JSON dump of this
        dict via ``chrome://tracing`` or https://ui.perfetto.dev.
        """
        spans = self.finished_spans()
        epoch = min((record.start for record in spans), default=0.0)
        events = [
            {
                "name": record.name,
                "cat": "repro",
                "ph": "X",
                "ts": (record.start - epoch) * 1e6,
                "dur": record.duration * 1e6,
                "pid": record.trace_id,
                "tid": record.thread_id,
                "args": {
                    key: value if isinstance(value, (int, float, str, bool)) else repr(value)
                    for key, value in record.attributes.items()
                },
            }
            for record in spans
        ]
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def format_tree(self) -> str:
        """Render the collected spans as indented trees (one per trace)."""
        spans = self.finished_spans()
        if not spans:
            return "(no spans recorded)"
        children: Dict[Optional[int], List[Span]] = {}
        for record in spans:
            children.setdefault(record.parent_id, []).append(record)
        for siblings in children.values():
            siblings.sort(key=lambda record: (record.start, record.span_id))

        lines: List[str] = []

        def render(record: Span, prefix: str, is_last: bool, is_root: bool) -> None:
            connector = "" if is_root else ("└─ " if is_last else "├─ ")
            attributes = " ".join(
                f"{key}={value:g}" if isinstance(value, float) else f"{key}={value}"
                for key, value in record.attributes.items()
            )
            suffix = f"  [{attributes}]" if attributes else ""
            error = f"  !{record.error}" if record.error else ""
            lines.append(
                f"{prefix}{connector}{record.name}  "
                f"{record.duration * 1000:.3f} ms{suffix}{error}"
            )
            kids = children.get(record.span_id, [])
            for position, child in enumerate(kids):
                extension = "" if is_root else ("   " if is_last else "│  ")
                render(
                    child,
                    prefix + extension,
                    position == len(kids) - 1,
                    False,
                )

        for root in children.get(None, []):
            render(root, "", True, True)
        if self.dropped:
            lines.append(f"({self.dropped} spans dropped beyond max_spans)")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Module-level switchboard
# ----------------------------------------------------------------------
def get_tracer() -> Optional[Tracer]:
    """The installed process-wide tracer, or ``None`` when tracing is off."""
    return _ACTIVE_TRACER


def set_tracer(tracer: Optional[Tracer]) -> Optional[Tracer]:
    """Install (or, with ``None``, remove) the process-wide tracer.

    Returns the tracer for chaining.  Instrumented library code observes
    the change on its next :func:`span` call.
    """
    global _ACTIVE_TRACER
    _ACTIVE_TRACER = tracer
    return tracer


def enabled() -> bool:
    """Whether a tracer is installed (guards hot-loop instrumentation)."""
    return _ACTIVE_TRACER is not None


def span(name: str, **attributes):
    """Open a span on the installed tracer; no-op when tracing is off.

    This is the one call instrumented code makes::

        with span("search.refine", candidates=n) as sp:
            ...
            sp.set(results=len(matches))
    """
    tracer = _ACTIVE_TRACER
    if tracer is None:
        return NOOP_SPAN
    return tracer.span(name, **attributes)


def current_span():
    """The context's innermost live span (``None`` outside any span)."""
    current = _CURRENT.get()
    if current is None or type(current) is _UnrecordedSpan:
        return None
    return current


def current_path() -> Optional[str]:
    """The innermost live span's root-to-leaf path (``None`` outside spans).

    One ContextVar read and one attribute read — cheap enough to call from
    a profiler's sampling interrupt.
    """
    current = _CURRENT.get()
    if current is None or type(current) is _UnrecordedSpan:
        return None
    return current.path  # type: ignore[union-attr]
