"""Filter-funnel telemetry: who pruned what, per query and per corpus.

The paper's whole efficiency argument is a funnel — corpus → filter
survivors → refined candidates → results — yet an aggregate candidate
count cannot say *which* filter stage did the pruning or whether a change
silently degraded selectivity.  This module records the funnel explicitly:

* :class:`FilterFunnel` — one query's complete funnel: corpus size, one
  :class:`FunnelStage` per filter stage (entered / survivors / seconds),
  then the refinement outcome (refined, results, false positives);
* :func:`collect_funnels` — a contextvars-scoped collector; inside the
  ``with`` block every search call records its funnel into the yielded
  :class:`FunnelSink` (and onto its ``SearchStats.funnel``), across thread
  hops when the context is propagated;
* :class:`FunnelAggregate` — corpus-level selectivity statistics folded
  from many funnels, grouped by query kind and stage.

Funnels obey two invariants the CI job and the ``obs:funnel-consistency``
oracle enforce: survivor counts are monotonically non-increasing through
the stages, and the refined set is drawn from the last stage's survivors
(``refined ≤`` last survivors, ``results ≤ refined``).
"""

from __future__ import annotations

import threading
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = [
    "FunnelStage",
    "FilterFunnel",
    "FunnelSink",
    "FunnelAggregate",
    "collect_funnels",
    "active_sink",
]


@dataclass
class FunnelStage:
    """One filter stage's contribution to a query's funnel."""

    name: str
    #: candidates entering this stage (= previous stage's survivors)
    entered: int
    #: candidates the stage could not refute
    survivors: int
    seconds: float = 0.0

    @property
    def refuted(self) -> int:
        """Candidates this stage pruned."""
        return self.entered - self.survivors

    @property
    def selectivity(self) -> float:
        """Fraction of entrants that survive (0.0 for an empty stage).

        An empty stage (empty corpus, or a cascade that pruned everything
        upstream) has no entrants to select from; reporting 0.0 keeps the
        value a safe ratio — never a ZeroDivisionError, and never the
        misleading "kept 100%" an empty stage used to report.
        """
        return self.survivors / self.entered if self.entered else 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "entered": self.entered,
            "survivors": self.survivors,
            "refuted": self.refuted,
            "selectivity": self.selectivity,
            "seconds": self.seconds,
        }


@dataclass
class FilterFunnel:
    """One query's funnel record, from corpus to results."""

    kind: str
    corpus_size: int
    stages: List[FunnelStage] = field(default_factory=list)
    #: candidates handed to the exact edit-distance refinement
    refined: int = 0
    #: candidates confirmed by refinement (the answer size)
    results: int = 0
    refine_seconds: float = 0.0
    #: the query parameter (range threshold or k)
    parameter: float = 0.0

    @property
    def false_positives(self) -> int:
        """Refined candidates the exact distance rejected."""
        return self.refined - self.results

    @property
    def survivors(self) -> int:
        """Survivors of the last filter stage (corpus size with no stages)."""
        return self.stages[-1].survivors if self.stages else self.corpus_size

    @property
    def selectivity(self) -> float:
        """End-to-end filter selectivity: last survivors / corpus size.

        0.0 on an empty corpus (a ratio over nothing is no survivors, not
        a division error).
        """
        return self.survivors / self.corpus_size if self.corpus_size else 0.0

    @property
    def filter_seconds(self) -> float:
        """Total seconds spent across the filter stages."""
        return sum(stage.seconds for stage in self.stages)

    def survivor_counts(self) -> List[int]:
        """``[corpus, stage1 survivors, …, refined, results]`` — the funnel."""
        return (
            [self.corpus_size]
            + [stage.survivors for stage in self.stages]
            + [self.refined, self.results]
        )

    def check_invariants(self) -> List[str]:
        """Violated funnel invariants (empty list = consistent record)."""
        problems: List[str] = []
        previous = self.corpus_size
        for stage in self.stages:
            if stage.entered != previous:
                problems.append(
                    f"stage {stage.name!r} entered {stage.entered} but the "
                    f"previous stage left {previous} survivors"
                )
            if stage.survivors > stage.entered:
                problems.append(
                    f"stage {stage.name!r} survivors {stage.survivors} exceed "
                    f"entrants {stage.entered}"
                )
            previous = stage.survivors
        if self.refined > previous:
            problems.append(
                f"refined {self.refined} candidates but only {previous} "
                "survived filtering"
            )
        if self.results > self.refined:
            problems.append(
                f"{self.results} results from only {self.refined} refined "
                "candidates"
            )
        counts = self.survivor_counts()
        if any(b > a for a, b in zip(counts, counts[1:])):
            problems.append(f"survivor counts not monotone: {counts}")
        return problems

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "parameter": self.parameter,
            "corpus_size": self.corpus_size,
            "stages": [stage.to_dict() for stage in self.stages],
            "refined": self.refined,
            "results": self.results,
            "false_positives": self.false_positives,
            "filter_seconds": self.filter_seconds,
            "refine_seconds": self.refine_seconds,
            "survivor_counts": self.survivor_counts(),
        }

    def format_table(self) -> str:
        """Human-readable funnel table for one query."""
        rows = [("stage", "entered", "survivors", "refuted", "seconds")]
        rows.append(("corpus", "", f"{self.corpus_size}", "", ""))
        for stage in self.stages:
            rows.append(
                (
                    f"filter:{stage.name}",
                    f"{stage.entered}",
                    f"{stage.survivors}",
                    f"{stage.refuted}",
                    f"{stage.seconds:.6f}",
                )
            )
        rows.append(
            (
                "refine",
                f"{self.refined}",
                f"{self.results}",
                f"{self.false_positives}",
                f"{self.refine_seconds:.6f}",
            )
        )
        widths = [max(len(row[col]) for row in rows) for col in range(5)]
        lines = []
        for index, row in enumerate(rows):
            lines.append(
                "  ".join(cell.ljust(widths[col]) for col, cell in enumerate(row)).rstrip()
            )
            if index == 0:
                lines.append("  ".join("-" * widths[col] for col in range(5)))
        return "\n".join(lines)


class FunnelSink:
    """Thread-safe collector the search functions append funnels to."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.funnels: List[FilterFunnel] = []

    def add(self, funnel: FilterFunnel) -> None:
        with self._lock:
            self.funnels.append(funnel)

    def __len__(self) -> int:
        return len(self.funnels)

    def __iter__(self):
        return iter(list(self.funnels))

    def aggregate(self) -> "FunnelAggregate":
        """Fold every collected funnel into corpus-level statistics."""
        aggregate = FunnelAggregate()
        for funnel in self:
            aggregate.add(funnel)
        return aggregate


#: The active sink of the current execution context (None = not collecting).
_SINK: "ContextVar[Optional[FunnelSink]]" = ContextVar(
    "repro_obs_funnel_sink", default=None
)


def active_sink() -> Optional[FunnelSink]:
    """The context's funnel sink, or ``None`` when collection is off."""
    return _SINK.get()


class collect_funnels:
    """Context manager scoping funnel collection to a block.

    >>> from repro.trees import parse_bracket
    >>> from repro.search.range_query import range_query
    >>> from repro.filters.binary_branch import BinaryBranchFilter
    >>> trees = [parse_bracket("a(b,c)"), parse_bracket("x(y)")]
    >>> with collect_funnels() as sink:
    ...     _ = range_query(trees, parse_bracket("a(b,c)"), 1.0,
    ...                     BinaryBranchFilter().fit(trees))
    >>> sink.funnels[0].corpus_size
    2
    """

    def __init__(self) -> None:
        self.sink = FunnelSink()
        self._token = None

    def __enter__(self) -> FunnelSink:
        self._token = _SINK.set(self.sink)
        return self.sink

    def __exit__(self, *exc_info) -> bool:
        _SINK.reset(self._token)
        return False


@dataclass
class _StageAggregate:
    """Running totals for one (kind, stage position) cell."""

    name: str
    queries: int = 0
    entered: int = 0
    survivors: int = 0
    seconds: float = 0.0

    @property
    def selectivity(self) -> float:
        # 0.0 for an empty cell, mirroring FunnelStage.selectivity
        return self.survivors / self.entered if self.entered else 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "queries": self.queries,
            "entered": self.entered,
            "survivors": self.survivors,
            "refuted": self.entered - self.survivors,
            "selectivity": self.selectivity,
            "seconds": self.seconds,
        }


class FunnelAggregate:
    """Corpus-level selectivity statistics folded from many funnels.

    Grouped by query kind (stage layouts differ between range and k-NN
    pipelines), then by stage position.
    """

    def __init__(self) -> None:
        self.queries = 0
        self._kinds: Dict[str, Dict[str, object]] = {}

    def add(self, funnel: FilterFunnel) -> None:
        """Fold one query's funnel into the totals."""
        self.queries += 1
        entry = self._kinds.setdefault(
            funnel.kind,
            {
                "queries": 0,
                "corpus": 0,
                "refined": 0,
                "results": 0,
                "false_positives": 0,
                "refine_seconds": 0.0,
                "stages": [],
            },
        )
        entry["queries"] += 1
        entry["corpus"] += funnel.corpus_size
        entry["refined"] += funnel.refined
        entry["results"] += funnel.results
        entry["false_positives"] += funnel.false_positives
        entry["refine_seconds"] += funnel.refine_seconds
        stages: List[_StageAggregate] = entry["stages"]
        for position, stage in enumerate(funnel.stages):
            if position == len(stages):
                stages.append(_StageAggregate(stage.name))
            cell = stages[position]
            cell.queries += 1
            cell.entered += stage.entered
            cell.survivors += stage.survivors
            cell.seconds += stage.seconds

    def cost_report(self):
        """Per-stage cost accounting over the folded funnels.

        Joins each stage's survivor counts with its measured seconds into
        per-candidate unit costs and a predicted-vs-actual cascade cost
        comparison; see :func:`repro.perf.costs.cost_reports`.  Returns
        ``{kind: CascadeCostReport}``.
        """
        from repro.perf.costs import cost_reports  # local: perf builds on obs

        return cost_reports(self)

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable summary (what ``--funnel-export`` writes)."""
        kinds = {}
        for kind, entry in sorted(self._kinds.items()):
            corpus = entry["corpus"]
            kinds[kind] = {
                "queries": entry["queries"],
                "corpus_considered": corpus,
                "refined": entry["refined"],
                "results": entry["results"],
                "false_positives": entry["false_positives"],
                "refined_fraction": entry["refined"] / corpus if corpus else 0.0,
                "refine_seconds": entry["refine_seconds"],
                "stages": [cell.to_dict() for cell in entry["stages"]],
            }
        return {"queries": self.queries, "kinds": kinds}

    def format_table(self) -> str:
        """Human-readable aggregate funnel, one block per query kind."""
        if not self.queries:
            return "(no funnels collected)"
        lines: List[str] = []
        summary = self.to_dict()
        for kind, entry in summary["kinds"].items():
            lines.append(
                f"{kind}: {entry['queries']} queries, "
                f"{entry['corpus_considered']} objects considered"
            )
            for cell in entry["stages"]:
                lines.append(
                    f"  filter:{cell['name']:<16} kept {cell['survivors']}"
                    f"/{cell['entered']} "
                    f"(selectivity {cell['selectivity']:.1%}, "
                    f"{cell['seconds']:.4f}s)"
                )
            lines.append(
                f"  refine{'':<17} {entry['results']} results from "
                f"{entry['refined']} refined "
                f"({entry['false_positives']} false positives, "
                f"{entry['refine_seconds']:.4f}s)"
            )
        return "\n".join(lines)
