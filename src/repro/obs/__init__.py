"""repro.obs — end-to-end observability: tracing, funnels, metrics.

A zero-dependency observability layer threaded through the whole stack:

* :mod:`repro.obs.tracing` — a lightweight span API (context managers,
  contextvars propagation, monotonic clocks, configurable sampling,
  near-zero overhead when disabled) with JSON and ``chrome://tracing``
  export, instrumented into the search pipeline, the composite filter,
  the Zhang–Shasha refinement, the feature store and the serving layer;
* :mod:`repro.obs.funnel` — per-query :class:`~repro.obs.funnel.FilterFunnel`
  records (corpus → survivors per filter stage → refined → results, with
  per-stage seconds and false-positive counts) and corpus-level
  selectivity aggregation;
* :mod:`repro.obs.profile` — a zero-dependency sampling profiler
  (``setitimer`` signals with a thread-safe ``sys.setprofile`` fallback)
  whose samples are attributed to the active span path, exported as
  flamegraph collapsed stacks or schema-versioned JSON;
* :mod:`repro.obs.metrics` — a process-wide
  :class:`~repro.obs.metrics.MetricsRegistry` (counters, gauges,
  histograms) with Prometheus text exposition and JSON snapshots; the
  service layer's ``ServiceMetrics`` is implemented on top of it.

See ``docs/OBSERVABILITY.md`` and the ``repro trace`` / ``repro metrics``
CLI commands.
"""

from repro.obs.funnel import (
    FilterFunnel,
    FunnelAggregate,
    FunnelSink,
    FunnelStage,
    active_sink,
    collect_funnels,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    HistogramState,
    MetricsRegistry,
    default_latency_bounds,
    get_registry,
)
from repro.obs.profile import (
    SamplingProfiler,
    get_profiler,
    profiling_enabled,
)
from repro.obs.tracing import (
    NOOP_SPAN,
    Span,
    Tracer,
    current_path,
    current_span,
    enabled,
    get_tracer,
    set_tracer,
    span,
)

__all__ = [
    "Span",
    "Tracer",
    "NOOP_SPAN",
    "span",
    "enabled",
    "current_span",
    "current_path",
    "get_tracer",
    "set_tracer",
    "SamplingProfiler",
    "get_profiler",
    "profiling_enabled",
    "FilterFunnel",
    "FunnelStage",
    "FunnelSink",
    "FunnelAggregate",
    "collect_funnels",
    "active_sink",
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramState",
    "MetricsRegistry",
    "default_latency_bounds",
    "get_registry",
]
