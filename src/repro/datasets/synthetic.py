"""The paper's synthetic data generator (§5).

Datasets are specified by four parameter groups, written exactly like the
paper's figure captions, e.g. ``N{4,0.5}N{50,2}L8D0.05``:

* ``N{f_mean, f_std}`` — node fanout distribution;
* ``N{s_mean, s_std}`` — tree size distribution;
* ``Ly``               — number of distinct labels in the dataset;
* ``Dz``               — decay factor: per-node mutation probability.

Generation follows the paper's two phases:

1. a number of *seed* trees are grown breadth-first (label sampled uniformly
   per node, fanout sampled per node, growth stops at the sampled maximum
   size);
2. each new tree is derived from a previous tree by visiting every node and,
   with probability ``D``, applying an equiprobable insertion / deletion /
   relabeling at that node; each generated tree joins the seed pool for
   subsequent derivations (lineage chains, which is what creates clusters
   and a controlled distance distribution).
"""

from __future__ import annotations

import random
import re
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.trees.node import TreeNode
from repro.trees.random_trees import random_tree

__all__ = ["SyntheticSpec", "parse_spec", "mutate_tree", "generate_dataset"]

_SPEC_RE = re.compile(
    r"^N\{(?P<fm>[\d.]+),(?P<fs>[\d.]+)\}"
    r"N\{(?P<sm>[\d.]+),(?P<ss>[\d.]+)\}"
    r"L(?P<labels>\d+)"
    r"(?:D(?P<decay>[\d.]+))?$"
)


@dataclass(frozen=True)
class SyntheticSpec:
    """Parameters of one synthetic dataset (the paper's caption notation)."""

    fanout_mean: float = 4.0
    fanout_stddev: float = 0.5
    size_mean: float = 50.0
    size_stddev: float = 2.0
    label_count: int = 8
    decay: float = 0.05

    @property
    def labels(self) -> List[str]:
        """The label alphabet ``l0 … l{y−1}``."""
        return [f"l{i}" for i in range(self.label_count)]

    def describe(self) -> str:
        """Caption-style description, e.g. ``N{4,0.5}N{50,2}L8D0.05``."""
        return (
            f"N{{{self.fanout_mean:g},{self.fanout_stddev:g}}}"
            f"N{{{self.size_mean:g},{self.size_stddev:g}}}"
            f"L{self.label_count}D{self.decay:g}"
        )


def parse_spec(text: str) -> SyntheticSpec:
    """Parse a caption-style specification string.

    >>> parse_spec("N{4,0.5}N{50,2}L8D0.05").label_count
    8
    """
    match = _SPEC_RE.match(text.replace(" ", ""))
    if match is None:
        raise ValueError(f"invalid dataset specification: {text!r}")
    return SyntheticSpec(
        fanout_mean=float(match.group("fm")),
        fanout_stddev=float(match.group("fs")),
        size_mean=float(match.group("sm")),
        size_stddev=float(match.group("ss")),
        label_count=int(match.group("labels")),
        decay=float(match.group("decay")) if match.group("decay") else 0.05,
    )


def mutate_tree(
    tree: TreeNode,
    decay: float,
    labels: Sequence[str],
    rng: random.Random,
) -> TreeNode:
    """Derive a new tree: per-node mutation with probability ``decay``.

    Changes are equiprobably insertion (a new node under the visited node,
    adopting a random consecutive run of its children), deletion (of the
    visited node; skipped for the root) and relabeling.  The input tree is
    not modified.
    """
    result = tree.clone()
    # decisions target the snapshot nodes; structural edits do not disturb
    # iteration because we operate on node references, not positions
    for node in list(result.iter_preorder()):
        if rng.random() >= decay:
            continue
        kind = rng.choice(("insert", "delete", "relabel"))
        if kind == "relabel":
            node.label = rng.choice(labels)
        elif kind == "delete":
            parent = node.parent
            if parent is None:
                continue  # root is not deletable under the paper's operations
            index = node.child_index()
            orphans = list(node.children)
            for orphan in orphans:
                node.remove_child(orphan)
            parent.remove_child(node)
            for offset, orphan in enumerate(orphans):
                parent.insert_child(index + offset, orphan)
        else:  # insert
            if node.parent is None and node is not result:
                continue  # node was deleted earlier in this pass
            degree = node.degree
            start = rng.randint(0, degree)
            count = rng.randint(0, degree - start)
            adopted = list(node.children[start : start + count])
            for child in adopted:
                node.remove_child(child)
            node.insert_child(start, TreeNode(rng.choice(labels), adopted))
    return result


def generate_dataset(
    spec: SyntheticSpec,
    count: int,
    seed_count: int = 10,
    rng: Optional[random.Random] = None,
    seed: int = 0,
) -> List[TreeNode]:
    """Generate a dataset of ``count`` trees following ``spec``.

    ``seed_count`` trees are grown from scratch; the remainder derive from
    uniformly chosen earlier trees via :func:`mutate_tree`.  Deterministic
    given ``seed`` (or a supplied ``rng``).
    """
    if count < 1:
        raise ValueError("count must be >= 1")
    if rng is None:
        rng = random.Random(seed)
    labels = spec.labels
    pool: List[TreeNode] = []
    for _ in range(min(seed_count, count)):
        pool.append(
            random_tree(
                rng,
                labels,
                size_mean=spec.size_mean,
                size_stddev=spec.size_stddev,
                fanout_mean=spec.fanout_mean,
                fanout_stddev=spec.fanout_stddev,
            )
        )
    while len(pool) < count:
        parent = rng.choice(pool)
        pool.append(mutate_tree(parent, spec.decay, labels, rng))
    return pool
