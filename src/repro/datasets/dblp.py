"""DBLP-like bibliographic dataset (substitute for the paper's real DBLP).

The original experiments sample 2000 records from the 2005 DBLP XML dump —
"very bushy and shallow trees … average depth is 2.902, and there are 10.15
nodes on average in each tree" (§5).  The dump is not available offline, so
this module synthesizes records with the same statistical profile:

* a record is rooted at its publication type (``article``,
  ``inproceedings``, …);
* fields (``author``, ``title``, ``year``, ``journal``/``booktitle``,
  ``pages``, ``volume``, ``ee``, …) hang off the root, each carrying a text
  leaf, so typical node depth is 2 and trees are bushy and shallow;
* text values are drawn from finite pools (author names, venue names, title
  words, years) so that records of the same community share labels — this
  recreates DBLP's tight distance clustering, the property behind the
  paper's Figures 13–15.

Records can also be rendered to/parsed from actual XML via
:mod:`repro.trees.xml_io`, which the XML example application uses.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from repro.trees.node import TreeNode

__all__ = ["DblpConfig", "generate_dblp_record", "generate_dblp_dataset"]

_FIRST_NAMES = [
    "Wei", "Anna", "Rui", "Panos", "Anthony", "Divesh", "Nick", "Michael",
]
_LAST_NAMES = [
    "Yang", "Kalnis", "Tung", "Zhang", "Shasha", "Koudas", "Widom", "Han",
]
_TITLE_WORDS = [
    "efficient", "similarity", "search", "tree", "data", "indexing",
    "query", "processing", "xml", "mining",
]
_JOURNALS = ["TODS", "VLDB Journal", "TKDE"]
_CONFERENCES = ["SIGMOD Conference", "VLDB", "ICDE", "EDBT"]


@dataclass(frozen=True)
class DblpConfig:
    """Tunable knobs of the DBLP-like generator (defaults match the paper)."""

    min_authors: int = 1
    max_authors: int = 3
    title_words: int = 2
    optional_field_probability: float = 0.35
    year_range: tuple = (2003, 2005)
    #: fraction of records derived from an earlier record via small edits
    #: (duplicate/near-duplicate entries, republications, typos) — this is
    #: what makes real DBLP "cluster very well" (§5.2) and what similarity
    #: search is used for on it (data cleansing, §1)
    variant_probability: float = 0.92


def _author_name(rng: random.Random) -> str:
    # quadratic skew: a few prolific authors dominate, as in real DBLP, so
    # records frequently share author names
    first = _FIRST_NAMES[int(rng.random() ** 2 * len(_FIRST_NAMES))]
    last = _LAST_NAMES[int(rng.random() ** 2 * len(_LAST_NAMES))]
    return f"{first} {last}"


def _title(rng: random.Random, config: DblpConfig) -> str:
    # skewed word choice: recurring themes make some titles collide
    words = []
    while len(words) < config.title_words:
        word = _TITLE_WORDS[int(rng.random() ** 2 * len(_TITLE_WORDS))]
        if word not in words:
            words.append(word)
    return " ".join(words)


def _field(tag: str, value: str) -> TreeNode:
    return TreeNode(tag, [TreeNode(value)])


def generate_dblp_record(
    rng: random.Random, config: Optional[DblpConfig] = None
) -> TreeNode:
    """Generate one bibliographic record tree.

    >>> record = generate_dblp_record(random.Random(7))
    >>> record.label in {"article", "inproceedings"}
    True
    >>> record.height
    2
    """
    config = config or DblpConfig()
    kind = rng.choice(("article", "article", "inproceedings", "inproceedings",
                       "inproceedings"))
    record = TreeNode(kind)
    for _ in range(rng.randint(config.min_authors, config.max_authors)):
        record.add_child(_field("author", _author_name(rng)))
    record.add_child(_field("title", _title(rng, config)))
    # real DBLP records do not order their remaining fields consistently —
    # this order variation is exactly the structure signal that ordered-tree
    # methods can exploit and unordered histograms cannot (§2.2)
    tail: List[TreeNode] = []
    if kind == "article":
        tail.append(_field("journal", rng.choice(_JOURNALS)))
        if rng.random() < config.optional_field_probability:
            tail.append(_field("volume", str(rng.randint(1, 8))))
    else:
        tail.append(_field("booktitle", rng.choice(_CONFERENCES)))
    if rng.random() < config.optional_field_probability:
        start = 20 * rng.randint(1, 10)
        tail.append(_field("pages", f"{start}-{start + 19}"))
    tail.append(_field("year", str(rng.randint(*config.year_range))))
    rng.shuffle(tail)
    for field in tail:
        record.add_child(field)
    return record


def make_variant(
    record: TreeNode, rng: random.Random, config: Optional[DblpConfig] = None
) -> TreeNode:
    """Derive a near-duplicate of a record via 1–3 small edits.

    The edits model real bibliographic noise: a changed year, a title typo,
    an added or dropped author, corrected page numbers, and — crucially for
    the ordered-vs-unordered comparison — swapped field order, which keeps
    every histogram identical while moving the ordered edit distance.
    """
    config = config or DblpConfig()
    result = record.clone()

    def fields(tag: str) -> List[TreeNode]:
        return [c for c in result.children if c.label == tag]

    for _ in range(rng.randint(1, 2) if rng.random() < 0.3 else 1):
        kind = rng.choice(("year", "typo", "author", "pages", "swap"))
        if kind == "year":
            for field in fields("year"):
                field.children[0].label = str(rng.randint(*config.year_range))
        elif kind == "typo":
            for field in fields("title"):
                text = str(field.children[0].label)
                if len(text) > 2:
                    index = rng.randrange(len(text))
                    field.children[0].label = (
                        text[:index] + rng.choice("abcdefgh") + text[index + 1 :]
                    )
        elif kind == "author":
            authors = fields("author")
            if len(authors) > 1 and rng.random() < 0.5:
                result.remove_child(authors[-1])
            else:
                position = len(authors)
                result.insert_child(position, _field("author", _author_name(rng)))
        elif kind == "pages":
            for field in fields("pages"):
                start = 20 * rng.randint(1, 10)
                field.children[0].label = f"{start}-{start + 19}"
        else:  # swap two trailing fields: invisible to unordered histograms
            children = list(result.children)
            if len(children) >= 2:
                i = rng.randrange(len(children) - 1)
                a, b = children[i], children[i + 1]
                result.remove_child(a)
                result.insert_child(i + 1, a)
                del b  # order swapped in place
    return result


def generate_dblp_dataset(
    count: int,
    rng: Optional[random.Random] = None,
    seed: int = 0,
    config: Optional[DblpConfig] = None,
) -> List[TreeNode]:
    """Generate ``count`` DBLP-like records (deterministic given ``seed``).

    The collection averages roughly 10 nodes per tree with height 2 — the
    shallow, bushy shape the paper reports — and contains near-duplicate
    families (see :func:`make_variant`), which is what makes real DBLP
    "cluster very well" and keeps k-NN radii small.
    """
    if count < 1:
        raise ValueError("count must be >= 1")
    if rng is None:
        rng = random.Random(seed)
    config = config or DblpConfig()
    records: List[TreeNode] = []
    while len(records) < count:
        base = generate_dblp_record(rng, config)
        records.append(base)
        # grow the family: near-duplicates derived directly from the base,
        # so within-family distances stay small (1–4 operations)
        while (
            len(records) < count
            and rng.random() < config.variant_probability
        ):
            records.append(make_variant(base, rng, config))
    return records
