"""Dataset generation: the §5 synthetic workloads and the DBLP-like corpus."""

from repro.datasets.dblp import DblpConfig, generate_dblp_dataset, generate_dblp_record
from repro.datasets.synthetic import (
    SyntheticSpec,
    generate_dataset,
    mutate_tree,
    parse_spec,
)

__all__ = [
    "SyntheticSpec",
    "parse_spec",
    "mutate_tree",
    "generate_dataset",
    "DblpConfig",
    "generate_dblp_record",
    "generate_dblp_dataset",
]
