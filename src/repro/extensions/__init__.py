"""Extensions beyond the paper's own contribution.

Related systems the paper discusses and contrasts against, implemented to
make those comparisons runnable.  Everything here is clearly separated from
the faithful reproduction in :mod:`repro.core`.
"""

from repro.extensions.hierarchical_embedding import (
    HierarchicalParser,
    hierarchical_embedding_distance,
)

__all__ = ["HierarchicalParser", "hierarchical_embedding_distance"]
