"""A hierarchical-parsing tree embedding (Garofalakis & Kumar, PODS 2003).

The paper's §2.2 contrasts its binary branch embedding against the
tree-edit-distance embedding of Garofalakis & Kumar: trees are
*hierarchically parsed* into valid subtrees over O(log n) contraction
phases; the characteristic vector of the multiset of parsed subtrees is
compared under L1.  Their guarantee bounds the distortion from above —
useful for approximate stream correlation — but, as the paper points out,
"the method fails to give a constant lower bound on the tree-edit distance
to facilitate the retrieval of exact answers".

This module implements a **simplified variant** of that embedding so the
contrast is runnable:

* phase 0 assigns every node a name derived from its label;
* each subsequent phase contracts the tree — a unary node merges with its
  child (pairwise along chains), consecutive leaf siblings merge pairwise,
  and a lone leaf child folds into its parent — every contracted group
  forming a new named supernode covering a valid subtree of the original;
* the embedding vector counts every name produced in any phase.

Differences from the original: Garofalakis & Kumar use deterministic coin
tossing / alphabet reduction to decide *which* neighbors merge so that a
single edit only disturbs O(log* n) groups per phase; the simplified
variant merges left-to-right.  The structure (O(log n) phases, multiset of
valid subtrees, L1 comparison) and the qualitative property the paper
cares about — **no constant-factor lower-bound relation to the edit
distance** — are preserved and demonstrated in the tests; the exact
distortion constants are not.

All passes are iterative, so deep chains parse fine.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Tuple

from repro.trees.node import TreeNode

__all__ = ["HierarchicalParser", "hierarchical_embedding_distance"]


class _Super:
    """A supernode of the contracted tree (covers a valid subtree)."""

    __slots__ = ("name", "children")

    def __init__(self, name: int, children: Optional[List["_Super"]] = None):
        self.name = name
        self.children: List[_Super] = children if children is not None else []


class HierarchicalParser:
    """Shared naming context for comparable embedding vectors.

    Names are interned integers; two trees must be embedded by the *same*
    parser instance for their vectors to live in the same space (exactly
    like sharing the inverted-file vocabulary in the core method).
    """

    def __init__(self) -> None:
        self._names: Dict[Tuple, int] = {}

    def _intern(self, key: Tuple) -> int:
        name = self._names.get(key)
        if name is None:
            name = len(self._names)
            self._names[key] = name
        return name

    @property
    def vocabulary_size(self) -> int:
        """Distinct supernode names seen so far."""
        return len(self._names)

    # ------------------------------------------------------------------
    def embed(self, tree: TreeNode) -> Counter:
        """Parse ``tree`` and return its embedding vector (name counts)."""
        counts: Counter = Counter()
        self._parse(tree, counts)
        return counts

    def phases(self, tree: TreeNode) -> int:
        """Number of contraction phases used for ``tree`` (O(log |T|))."""
        return self._parse(tree, Counter())

    # ------------------------------------------------------------------
    def _parse(self, tree: TreeNode, counts: Counter) -> int:
        # a dummy super-root lets the real root merge like any other node
        dummy = _Super(-1, [self._initial(tree, counts)])
        phase = 0
        while dummy.children[0].children:
            phase += 1
            before = _size(dummy)
            self._merge_chains(dummy, phase, counts)
            self._merge_leaves(dummy.children[0], phase, counts)
            if _size(dummy) >= before:  # pragma: no cover - safety net
                raise RuntimeError("contraction failed to make progress")
        return phase

    def _initial(self, tree: TreeNode, counts: Counter) -> _Super:
        mapping: Dict[int, _Super] = {}
        for node in tree.iter_postorder():
            name = self._intern((0, "node", node.label))
            counts[name] += 1
            mapping[id(node)] = _Super(
                name, [mapping[id(child)] for child in node.children]
            )
        return mapping[id(tree)]

    def _merge_chains(self, dummy: _Super, phase: int, counts: Counter) -> None:
        """Merge unary parent-child pairs, pairwise along maximal chains.

        After merging (v1, v2) the merged node's child (v3) starts a fresh
        pairing decision, so a chain of length L halves each phase.
        """
        stack = [dummy]
        while stack:
            parent = stack.pop()
            children = parent.children
            for index, child in enumerate(children):
                if len(child.children) == 1:
                    kid = child.children[0]
                    name = self._intern((phase, "chain", child.name, kid.name))
                    counts[name] += 1
                    merged = _Super(name, kid.children)
                    children[index] = merged
                    stack.append(merged)
                else:
                    stack.append(child)

    def _merge_leaves(self, root: _Super, phase: int, counts: Counter) -> None:
        """Pair consecutive leaf siblings; fold a lone leaf child upward."""
        stack = [root]
        while stack:
            node = stack.pop()
            children = node.children
            if not children:
                continue
            if len(children) == 1 and not children[0].children:
                name = self._intern((phase, "fold", node.name, children[0].name))
                counts[name] += 1
                node.name = name
                node.children = []
                continue
            merged: List[_Super] = []
            index = 0
            while index < len(children):
                current = children[index]
                nxt = children[index + 1] if index + 1 < len(children) else None
                if nxt is not None and not current.children and not nxt.children:
                    name = self._intern((phase, "pair", current.name, nxt.name))
                    counts[name] += 1
                    merged.append(_Super(name))
                    index += 2
                else:
                    merged.append(current)
                    index += 1
            node.children = merged
            stack.extend(child for child in merged if child.children)


def _size(node: _Super) -> int:
    total = 0
    stack = [node]
    while stack:
        current = stack.pop()
        total += 1
        stack.extend(current.children)
    return total


def hierarchical_embedding_distance(
    t1: TreeNode,
    t2: TreeNode,
    parser: Optional[HierarchicalParser] = None,
) -> int:
    """L1 distance of the two trees' hierarchical embedding vectors.

    >>> from repro.trees import parse_bracket
    >>> hierarchical_embedding_distance(
    ...     parse_bracket("a(b,c)"), parse_bracket("a(b,c)")
    ... )
    0
    """
    if parser is None:
        parser = HierarchicalParser()
    v1 = parser.embed(t1)
    v2 = parser.embed(t2)
    keys = set(v1) | set(v2)
    return sum(abs(v1[key] - v2[key]) for key in keys)
