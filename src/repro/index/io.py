"""Persistence of a candidate index next to its feature plane.

The VP-tree costs Θ(n log n) BDist evaluations to build; persisting its
shape next to the feature plane (``<plane>.index.json``) lets a reloaded
database answer its first indexed query without paying that again.  The
sidecar follows the same strict-accelerator contract as the matrix
sidecar (:mod:`repro.features.io`): it is validated against the live
store — format, version, kind, q level, generation, tree count — and a
corrupt or stale sidecar is *ignored* (warning + the
``repro_sidecar_fallback_total`` metric), never fatal; the index is then
rebuilt lazily from the store.

The IFI persists no payload: its build is a single linear pass over the
packed vectors, cheaper than parsing a JSON copy of its postings.  A
sidecar of kind ``ifi`` therefore only records that the plane had an IFI
attached; loading it re-derives the postings from the store.
"""

from __future__ import annotations

import json
import os
import warnings
from typing import Optional, Union

from repro.features.io import sidecar_fallback
from repro.features.store import FeatureStore

from repro.index.base import CandidateIndex

__all__ = [
    "index_sidecar_path",
    "save_index_sidecar",
    "load_index_sidecar",
]

_FORMAT = "repro-index"
_VERSION = 1

PathLike = Union[str, os.PathLike]


def index_sidecar_path(path: PathLike) -> str:
    """Where the candidate-index sidecar of plane ``path`` lives."""
    return f"{os.fspath(path)}.index.json"


def save_index_sidecar(index: CandidateIndex, path: PathLike) -> str:
    """Persist ``index`` next to the feature plane at ``path``.

    The index must be synced (a stale one would stamp a generation it
    does not reflect).  Returns the sidecar path.
    """
    if index.stale():
        index.sync()
    document = {
        "format": _FORMAT,
        "version": _VERSION,
        "kind": index.kind,
        "q": index.q,
        "generation": index._generation,
        "trees": len(index),
        "structure": index.structure(),
    }
    sidecar = index_sidecar_path(path)
    with open(sidecar, "w", encoding="utf-8") as handle:
        json.dump(document, handle)
    return sidecar


def load_index_sidecar(
    store: FeatureStore, path: PathLike, kind: Optional[str] = None
) -> Optional[CandidateIndex]:
    """Restore the candidate index persisted next to plane ``path``.

    Returns ``None`` — after bumping the fallback metric where a sidecar
    exists but cannot be used — when the sidecar is missing, corrupt, of
    an unexpected ``kind``, or stale relative to ``store``.  Callers fall
    back to building the index fresh from the store.
    """
    sidecar = index_sidecar_path(path)
    if not os.path.exists(sidecar):
        return None
    try:
        with open(sidecar, "r", encoding="utf-8") as handle:
            document = json.load(handle)
        if (
            document.get("format") != _FORMAT
            or document.get("version") != _VERSION
        ):
            sidecar_fallback("index", "version")
            return None
        if kind is not None and document.get("kind") != kind:
            sidecar_fallback("index", "kind")
            return None
        if (
            document.get("generation") != store.generation
            or document.get("trees") != len(store)
            or document.get("q") not in store.q_levels
        ):
            sidecar_fallback("index", "stale")
            return None
        return _restore(store, document)
    except (OSError, ValueError, KeyError, TypeError) as error:
        # json.JSONDecodeError is a ValueError; a structurally mangled
        # document trips the decoder's Key/Type errors instead
        warnings.warn(
            f"ignoring corrupt index sidecar {sidecar}: {error}",
            stacklevel=2,
        )
        sidecar_fallback("index", "corrupt")
        return None


def _restore(store: FeatureStore, document: dict) -> CandidateIndex:
    from repro.index import build_candidate_index
    from repro.index.vptree import VPTreeIndex

    index_kind = document["kind"]
    q = int(document["q"])
    if index_kind == "vptree":
        index = VPTreeIndex(store, q, _structure=document["structure"])
        rows = sorted(index._root.rows()) if index._root is not None else []
        if rows != list(range(int(document["trees"]))):
            raise ValueError(
                "vptree structure rows do not cover the store prefix"
            )
        return index
    # ifi (and any future linear-build kind): re-derive from the store
    return build_candidate_index(index_kind, store, q)
