"""Sublinear candidate generation: metric + inverted-file indexes.

Two index structures over the corpus's BDist vectors, both exposing the
:class:`~repro.index.base.CandidateIndex` contract (exact range balls,
lazy ascending streams, generation-stamped sync against the feature
store):

* :class:`~repro.index.vptree.VPTreeIndex` — a vantage-point tree that
  prunes whole subtrees via the triangle inequality; wins on tightly
  clustered corpora and very selective thresholds.
* :class:`~repro.index.inverted.ExtendedInvertedFile` — the paper's
  Algorithm 1: posting lists per branch dimension plus stored vector
  norms, so trees sharing no branch with the query are never touched;
  wins when queries share few branches with most of the corpus.

They plug into :func:`~repro.search.range_query.range_query`,
:func:`~repro.search.knn.knn_query`,
:func:`~repro.search.tiered_knn.tiered_knn_query` and the serving layer
as ``candidate_source`` values (``vptree`` / ``ifi``), next to ``loop``
and ``vectorized``; see ``docs/INDEXING.md``.
"""

from __future__ import annotations

import typing

from repro.index.base import CandidateIndex
from repro.index.inverted import ExtendedInvertedFile
from repro.index.io import (
    index_sidecar_path,
    load_index_sidecar,
    save_index_sidecar,
)
from repro.index.ordering import OrderedBoundStream
from repro.index.vptree import LEAF_CAPACITY, VPTreeIndex

if typing.TYPE_CHECKING:
    from repro.features.store import FeatureStore

__all__ = [
    "CANDIDATE_SOURCES",
    "INDEX_KINDS",
    "CandidateIndex",
    "ExtendedInvertedFile",
    "LEAF_CAPACITY",
    "OrderedBoundStream",
    "VPTreeIndex",
    "build_candidate_index",
    "index_sidecar_path",
    "load_index_sidecar",
    "save_index_sidecar",
]

#: The index-backed candidate sources.
INDEX_KINDS = ("vptree", "ifi")

#: Every pluggable ``candidate_source`` value the serving layer accepts.
CANDIDATE_SOURCES = ("auto", "loop", "vectorized") + INDEX_KINDS


def build_candidate_index(
    kind: str, store: FeatureStore, q: typing.Optional[int] = None
) -> CandidateIndex:
    """Construct the candidate index named ``kind`` over ``store``."""
    from repro.exceptions import InvalidParameterError

    if kind == "vptree":
        return VPTreeIndex(store, q)
    if kind == "ifi":
        return ExtendedInvertedFile(store, q)
    raise InvalidParameterError(
        f"unknown candidate index kind {kind!r} (expected one of {INDEX_KINDS})"
    )
