"""VP-tree metric index over BDist vectors.

A vantage-point tree (Yianilos' VP-tree; see "Search Efficiency in
Indexing Structures for Similarity Searching" in PAPERS.md) partitions the
corpus recursively: each internal node holds one *vantage* row and its
median distance ``radius`` to the remaining rows; rows at distance
``≤ radius`` from the vantage go to the inner child, the rest to the
outer child.  Because BDist is a metric (the ``metric:bdist`` oracle
proves the triangle inequality corpus-wide), one distance computation
``dq = BDist(query, vantage)`` bounds a whole subtree:

* every inner row ``x`` has ``BDist(q, x) ≥ dq − radius``
  (``dq ≤ BDist(q,x) + BDist(x,v) ≤ BDist(q,x) + radius``), and
* every outer row ``x`` has ``BDist(q, x) ≥ radius − dq``
  (``BDist(x,v) ≤ BDist(q,x) + dq`` and ``BDist(x,v) > radius``).

A range traversal with budget ``b`` therefore skips the inner child when
``dq − radius > b`` and the outer child when ``radius − dq > b`` — whole
subtrees pruned per one examined vector.  The same bounds drive a
best-first heap for the lazy ascending stream used by k-NN.

Construction is deterministic (vantage = first row of the slice, radius =
exact median), so two indexes built over the same corpus — or one built
incrementally through leaf-bucket overflow splits — answer identically
even if their internal shapes differ.  Leaves hold up to
:data:`LEAF_CAPACITY` rows in a flat bucket; incremental ``add`` descends
by the metric test and appends to a bucket, splitting it into a subtree
on overflow.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.features.packed import PackedVector
from repro.features.store import FeatureStore

from repro.index.base import CandidateIndex

__all__ = ["VPTreeIndex", "LEAF_CAPACITY"]

#: Rows a leaf bucket holds before an insert splits it into a subtree.
LEAF_CAPACITY = 16


class _Node:
    """One VP-tree node: either internal (vantage/radius/children) or leaf.

    A node is a leaf iff ``bucket is not None``; leaves have no vantage.
    """

    __slots__ = ("vantage", "radius", "inner", "outer", "bucket")

    def __init__(
        self,
        vantage: int = -1,
        radius: int = 0,
        inner: Optional["_Node"] = None,
        outer: Optional["_Node"] = None,
        bucket: Optional[List[int]] = None,
    ) -> None:
        self.vantage = vantage
        self.radius = radius
        self.inner = inner
        self.outer = outer
        self.bucket = bucket

    def rows(self) -> Iterator[int]:
        """Every row in this subtree (audit/serialization helper)."""
        stack = [self]
        while stack:
            node = stack.pop()
            if node.bucket is not None:
                yield from node.bucket
            else:
                yield node.vantage
                stack.append(node.outer)  # type: ignore[arg-type]
                stack.append(node.inner)  # type: ignore[arg-type]


class VPTreeIndex(CandidateIndex):
    """Triangle-inequality pruned candidate generation (``kind="vptree"``)."""

    kind = "vptree"

    def __init__(
        self,
        store: FeatureStore,
        q: Optional[int] = None,
        _structure: Optional[object] = None,
    ) -> None:
        self._root: Optional[_Node] = None
        self._distance_calls = 0
        self._restored = 0
        if _structure is not None:
            # sidecar restore: adopt the serialized shape; the base class
            # fast-forwards past the restored prefix (``_preinstalled``)
            # and its sync() installs only rows added after the save
            self._root, self._restored = _decode_node(_structure)
        super().__init__(store, q)

    def _preinstalled(self) -> int:
        return self._restored

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _insert_row(self, row: int) -> None:
        if self._root is None:
            self._root = _Node(bucket=[row])
            return
        vector = self._vector(row)
        node = self._root
        while node.bucket is None:
            self._distance_calls += 1
            if vector.l1_distance(self._vector(node.vantage)) <= node.radius:
                node = node.inner  # type: ignore[assignment]
            else:
                node = node.outer  # type: ignore[assignment]
        node.bucket.append(row)
        if len(node.bucket) > LEAF_CAPACITY:
            split = self._build(node.bucket)
            node.vantage = split.vantage
            node.radius = split.radius
            node.inner = split.inner
            node.outer = split.outer
            node.bucket = split.bucket

    def _build(self, rows: Sequence[int]) -> _Node:
        """Deterministic median split of ``rows`` into a subtree."""
        if len(rows) <= LEAF_CAPACITY:
            return _Node(bucket=list(rows))
        vantage = rows[0]
        anchor = self._vector(vantage)
        distances = []
        for row in rows[1:]:
            self._distance_calls += 1
            distances.append((anchor.l1_distance(self._vector(row)), row))
        distances.sort()
        radius = distances[(len(distances) - 1) // 2][0]
        inner = [row for d, row in distances if d <= radius]
        outer = [row for d, row in distances if d > radius]
        if not outer:
            # every remaining row sits at the same distance: unsplittable
            # by this vantage — keep an (oversized) leaf to terminate
            return _Node(bucket=list(rows))
        return _Node(
            vantage=vantage,
            radius=radius,
            inner=self._build(inner),
            outer=self._build(outer),
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def range_rows(
        self,
        vector: PackedVector,
        budget: float,
        audit: Optional[List[Tuple[float, List[int]]]] = None,
    ) -> List[int]:
        """Rows with ``L1 ≤ budget`` via triangle-inequality pruning.

        ``audit`` (tests only) collects ``(lower_bound, subtree_rows)`` for
        every pruned subtree, so the property suite can check that each
        skipped row really satisfies ``L1 > budget`` and ``L1 ≥ bound``.
        """
        out: List[int] = []
        examined = 0
        if self._root is not None and budget >= 0:
            stack = [self._root]
            while stack:
                node = stack.pop()
                if node.bucket is not None:
                    for row in node.bucket:
                        examined += 1
                        if self._distance(vector, row) <= budget:
                            out.append(row)
                    continue
                examined += 1
                dq = self._distance(vector, node.vantage)
                if dq <= budget:
                    out.append(node.vantage)
                for child, bound in (
                    (node.inner, dq - node.radius),
                    (node.outer, node.radius - dq),
                ):
                    if bound > budget:
                        if audit is not None:
                            rows = list(child.rows())  # type: ignore[union-attr]
                            audit.append((bound, rows))
                        continue
                    stack.append(child)  # type: ignore[arg-type]
        self.last_examined = examined
        out.sort()
        return out

    def ascending(self, vector: PackedVector) -> Iterator[Tuple[int, int]]:
        """Best-first ``(L1, row)`` stream in non-decreasing L1 order.

        The heap mixes subtree entries keyed by their triangle-inequality
        lower bound with exact row entries; a popped row's distance is a
        floor for everything still enqueued, so emission order is globally
        sorted without scoring the whole corpus up front.
        """
        if self._root is None:
            return
        counter = itertools.count()
        # entries: (key, is_node, seq, payload) — rows (is_node=0) drain
        # ahead of subtrees whose lower bound equals the row's distance,
        # which keeps the stream maximally lazy at ties
        heap: List[Tuple[float, int, int, object]] = [
            (0.0, 1, next(counter), self._root)
        ]
        self.last_examined = 0
        while heap:
            key, is_node, _, payload = heapq.heappop(heap)
            if not is_node:
                yield int(key), payload  # type: ignore[misc]
                continue
            node: _Node = payload  # type: ignore[assignment]
            if node.bucket is not None:
                for row in node.bucket:
                    self.last_examined += 1
                    heapq.heappush(
                        heap,
                        (self._distance(vector, row), 0, next(counter), row),
                    )
                continue
            self.last_examined += 1
            dq = self._distance(vector, node.vantage)
            heapq.heappush(heap, (dq, 0, next(counter), node.vantage))
            for child, bound in (
                (node.inner, dq - node.radius),
                (node.outer, node.radius - dq),
            ):
                heapq.heappush(
                    heap, (max(key, bound), 1, next(counter), child)
                )

    # ------------------------------------------------------------------
    # Introspection / persistence
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        nodes = leaves = bucketed = 0
        depth = 0
        if self._root is not None:
            stack = [(self._root, 1)]
            while stack:
                node, level = stack.pop()
                depth = max(depth, level)
                if node.bucket is not None:
                    leaves += 1
                    bucketed += len(node.bucket)
                else:
                    nodes += 1
                    stack.append((node.inner, level + 1))  # type: ignore[arg-type]
                    stack.append((node.outer, level + 1))  # type: ignore[arg-type]
        return {
            "kind": self.kind,
            "q": self.q,
            "rows": self._built,
            "internal_nodes": nodes,
            "leaves": leaves,
            "bucketed_rows": bucketed,
            "depth": depth,
            "leaf_capacity": LEAF_CAPACITY,
            "distance_calls": self._distance_calls,
        }

    def structure(self) -> object:
        """JSON-serializable tree shape for the ``.index.json`` sidecar."""
        return _encode_node(self._root)


def _encode_node(node: Optional[_Node]) -> object:
    if node is None:
        return None
    if node.bucket is not None:
        return {"b": node.bucket}
    return {
        "v": node.vantage,
        "r": node.radius,
        "in": _encode_node(node.inner),
        "out": _encode_node(node.outer),
    }


def _decode_node(payload: object) -> Tuple[Optional[_Node], int]:
    """Rebuild a node from sidecar JSON; returns (node, rows restored)."""
    if payload is None:
        return None, 0
    if not isinstance(payload, dict):
        raise ValueError("malformed vptree structure")
    if "b" in payload:
        bucket = [int(row) for row in payload["b"]]
        return _Node(bucket=bucket), len(bucket)
    inner, n_inner = _decode_node(payload["in"])
    outer, n_outer = _decode_node(payload["out"])
    if inner is None or outer is None:
        raise ValueError("malformed vptree structure")
    node = _Node(
        vantage=int(payload["v"]),
        radius=int(payload["r"]),
        inner=inner,
        outer=outer,
    )
    return node, n_inner + n_outer + 1
