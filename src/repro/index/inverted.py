"""Extended inverted-file index over binary branch vectors (Alg. 1).

The paper's Algorithm 1 evaluates range queries through an inverted file
on binary branches: one posting list per branch dimension, each entry a
``(row, count)`` pair.  Merging only the posting lists of the *query's*
dimensions computes the exact multiset overlap

    ``overlap(q, row) = Σ_d min(q_d, row_d)``

for every row sharing at least one branch with the query — dimensions the
query lacks contribute ``min(0, row_d) = 0``, and the query's
out-of-vocabulary branches have no postings and contribute 0 against
fully interned data rows.  With stored vector norms (``total = Σ_d
row_d``) the exact BDist follows without materializing the row:

    ``L1(q, row) = q.total + row.total − 2·overlap(q, row)``

Rows sharing **no** branch with the query never appear in the merge at
all; for them ``L1 = q.total + row.total`` exactly, so the untouched rows
inside a budget ``b`` are precisely those with ``total ≤ b − q.total`` —
a prefix of the norm-sorted row list, found by binary search.  A query
whose budget is below ``q.total`` therefore never materializes any
zero-overlap tree, which is the sublinearity claim of the extended IFI.

The structure is insertion-order independent: postings are keyed by row
id and the norm list is kept sorted, so two indexes over permuted
insertion streams answer identically (pinned by the metamorphic tests).
"""

from __future__ import annotations

import heapq
from bisect import bisect_right, insort
from typing import Dict, Iterator, List, Optional, Tuple

from repro.features.packed import PackedVector
from repro.features.store import FeatureStore

from repro.index.base import CandidateIndex

__all__ = ["ExtendedInvertedFile"]


class ExtendedInvertedFile(CandidateIndex):
    """Posting-list candidate generation with norm bounds (``kind="ifi"``)."""

    kind = "ifi"

    def __init__(self, store: FeatureStore, q: Optional[int] = None) -> None:
        #: dimension id → [(row, count)] in ascending row order (rows are
        #: installed in ascending order and ids never repeat)
        self._postings: Dict[int, List[Tuple[int, int]]] = {}
        #: row → vector norm (Σ counts, including nothing extra: data-side
        #: vectors are fully interned)
        self._norms: List[int] = []
        #: (norm, row), kept sorted — the prefix scan for untouched rows
        self._by_norm: List[Tuple[int, int]] = []
        super().__init__(store, q)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _insert_row(self, row: int) -> None:
        vector = self._vector(row)
        for dim, count in zip(vector.dims, vector.counts):
            self._postings.setdefault(dim, []).append((row, count))
        self._norms.append(vector.total)
        insort(self._by_norm, (vector.total, row))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def _overlaps(self, vector: PackedVector) -> Dict[int, int]:
        """``row → overlap`` for every row sharing a branch with ``vector``."""
        overlaps: Dict[int, int] = {}
        postings = self._postings
        for dim, qcount in zip(vector.dims, vector.counts):
            for row, count in postings.get(dim, ()):
                overlaps[row] = overlaps.get(row, 0) + (
                    qcount if qcount < count else count
                )
        return overlaps

    def lower_bound(self, vector: PackedVector, row: int) -> int:
        """Exact BDist to one row, computed from postings + norms only.

        This is the quantity the metamorphic suite probes: growing a row
        by a branch the query lacks adds 1 to the row's norm and 0 to the
        overlap, so the bound can only go up.
        """
        overlap = 0
        postings = self._postings
        for dim, qcount in zip(vector.dims, vector.counts):
            for entry_row, count in postings.get(dim, ()):
                if entry_row == row:
                    overlap += qcount if qcount < count else count
                    break
        return vector.total + self._norms[row] - 2 * overlap

    def range_rows(self, vector: PackedVector, budget: float) -> List[int]:
        """Rows with ``L1 ≤ budget`` without touching branch-disjoint rows."""
        overlaps = self._overlaps(vector)
        q_total = vector.total
        out = [
            row
            for row, overlap in overlaps.items()
            if q_total + self._norms[row] - 2 * overlap <= budget
        ]
        examined = len(overlaps)
        # branch-disjoint rows: L1 = q_total + norm exactly
        limit = budget - q_total
        if limit >= 0:
            prefix = bisect_right(self._by_norm, (limit, len(self._norms)))
            for norm, row in self._by_norm[:prefix]:
                if row not in overlaps:
                    out.append(row)
            examined += prefix
        self.last_examined = examined
        out.sort()
        return out

    def ascending(self, vector: PackedVector) -> Iterator[Tuple[int, int]]:
        """Lazy ``(L1, row)`` stream merging scored and untouched rows.

        Rows touched by the posting merge are scored exactly and sorted
        once; the branch-disjoint remainder is already in ascending-L1
        order in the norm list (``L1 = q.total + norm``), so the two
        streams merge lazily — the disjoint tail is only consumed as far
        as the consumer (k-NN early stopping) actually reads.
        """
        overlaps = self._overlaps(vector)
        self.last_examined = len(overlaps)
        q_total = vector.total
        touched = sorted(
            (q_total + self._norms[row] - 2 * overlap, row)
            for row, overlap in overlaps.items()
        )

        def disjoint() -> Iterator[Tuple[int, int]]:
            for norm, row in self._by_norm:
                if row not in overlaps:
                    yield q_total + norm, row

        yield from heapq.merge(touched, disjoint())

    # ------------------------------------------------------------------
    # Introspection / persistence
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "q": self.q,
            "rows": self._built,
            "posting_lists": len(self._postings),
            "posting_entries": sum(
                len(entries) for entries in self._postings.values()
            ),
            "max_posting_length": max(
                (len(entries) for entries in self._postings.values()),
                default=0,
            ),
            "min_norm": self._by_norm[0][0] if self._by_norm else 0,
            "max_norm": self._by_norm[-1][0] if self._by_norm else 0,
        }

    def structure(self) -> object:
        """Sidecar payload — the IFI rebuilds linearly, nothing to persist."""
        return None
