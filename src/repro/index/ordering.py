"""Lazy exact ``(bound, row)`` ordering on top of an ascending index stream.

The k-NN search (:mod:`repro.search.knn`, the Seidl–Kriegel optimal
multi-step algorithm) consumes database rows in ascending ``(filter
bound, row)`` order.  The reference path materializes every bound and
sorts; a candidate index instead yields rows in ascending *BDist* order,
and for filters whose bound dominates the count bound —

    ``flt.bound(q, row) ≥ ⌈BDist(q, row) / factor⌉``

(:attr:`~repro.filters.base.LowerBoundFilter.bdist_dominant`) — that
stream can be reordered lazily into the **exact** reference order:

score rows off the stream into a pending min-heap keyed ``(bound, row)``;
the heap head ``(f, row)`` is safe to emit once the stream head's count
bound ``⌈L1/factor⌉`` strictly exceeds ``f``, because every unscored row
then has ``bound ≥ ⌈L1/factor⌉ > f``.  Emission order — including
tie-breaks on the row id — matches ``sorted(rows, key=(bound, row))``
bit for bit, so funnel counts and answers are identical to the reference
path; only the number of rows *scored* shrinks.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Callable, Iterator, List, Optional, Tuple

from repro.features.packed import PackedVector
from repro.index.base import CandidateIndex

__all__ = ["AscendingCountBounds", "OrderedBoundStream"]


class OrderedBoundStream:
    """Iterate ``(bound, row)`` in exact ascending order, scoring lazily.

    Parameters
    ----------
    index:
        A synced candidate index (supplies the ascending BDist stream).
    score:
        ``row → filter bound``; must dominate the count bound (the caller
        checks :attr:`~repro.filters.base.LowerBoundFilter.bdist_dominant`
        before constructing one of these).
    vector:
        The query's packed vector at the index's q level.

    Attributes
    ----------
    scored:
        Rows pulled off the stream and scored so far — the funnel
        ``survivors`` figure for the index stage, and the lazy-win
        measure (``scored < corpus`` once early stopping kicks in).
    """

    def __init__(
        self,
        index: CandidateIndex,
        score: Callable[[int], int],
        vector: PackedVector,
    ) -> None:
        self._stream = index.ascending(vector)
        self._score = score
        self._factor = index.factor
        self.scored = 0

    def __iter__(self) -> Iterator[Tuple[int, int]]:
        stream = self._stream
        score = self._score
        factor = self._factor
        pending: List[Tuple[int, int]] = []
        head: Optional[Tuple[int, int]] = next(stream, None)
        while True:
            # pull while an unscored row could still sort at or before
            # the pending head: its bound is ≥ ⌈L1/factor⌉ of the stream
            # head, so strict excess makes the head safe to emit
            while head is not None and (
                not pending or -(-head[0] // factor) <= pending[0][0]
            ):
                row = head[1]
                heappush(pending, (score(row), row))
                self.scored += 1
                head = next(stream, None)
            if not pending:
                return
            yield heappop(pending)


class AscendingCountBounds:
    """Iterate ``(⌈L1/factor⌉, row)`` in exact ``(bound, row)`` order.

    The count bound is a monotone function of L1, so the index's
    ascending stream is already sorted by it — but rows inside one
    count-bound plateau arrive in L1-then-heap order, not row order.
    Buffering each plateau and sorting it by row restores the reference
    ``sorted(rows, key=(bound, row))`` sequence exactly, which is what
    the tiered k-NN's optimal stopping and funnel accounting replay.
    ``scored`` counts rows actually pulled off the index stream.
    """

    def __init__(self, index: CandidateIndex, vector: PackedVector) -> None:
        self._stream = index.ascending(vector)
        self._factor = index.factor
        self.scored = 0

    def __iter__(self) -> Iterator[Tuple[int, int]]:
        factor = self._factor
        group: List[int] = []
        group_bound = 0
        for l1, row in self._stream:
            bound = -(-l1 // factor)
            if group and bound != group_bound:
                group.sort()
                for buffered in group:
                    yield group_bound, buffered
                group = []
            group_bound = bound
            group.append(row)
            self.scored += 1
        group.sort()
        for buffered in group:
            yield group_bound, buffered
