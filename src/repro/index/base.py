"""Candidate-generation indexes over BDist vectors — the shared contract.

The filter stage of :func:`repro.search.range_query.range_query` scores
every database row, even vectorized (PR 7 made the scoring ~7.6× faster,
but it is still Θ(corpus)).  A *candidate index* makes the generation step
sublinear: it returns, for a range query, exactly the rows whose binary
branch distance ``BDist = L1(branch counts)`` fits the query's budget
``factor·τ`` (``factor = 4(q−1)+1``, Theorem 3.2), touching provably
irrelevant rows never (inverted file) or only through whole-subtree bounds
(VP-tree).  Both concrete indexes in this package share one contract:

* ``range_rows(vector, budget)`` — the **exact** BDist ball: every row
  with ``L1(vector, row) ≤ budget``, in ascending row order, and no row
  beyond it.  Exactness keeps the downstream funnel deterministic: the
  filter cascade then runs over the ball only, and answers match the
  sequential scan because ``BDist > factor·τ ⟹ EDist > τ`` refutes every
  row outside the ball regardless of the filter in front.
* ``ascending(vector)`` — a lazy stream of ``(L1, row)`` pairs in
  non-decreasing L1 order, the raw material for index-accelerated k-NN
  (see :mod:`repro.index.ordering`).
* ``sync()`` — generation-stamped catch-up with the backing
  :class:`~repro.features.store.FeatureStore`: the store is append-only,
  so syncing installs exactly the rows added since the last sync and
  re-stamps the index with the store's generation counter.

Soundness rests on the ``metric:bdist`` oracle: BDist is a metric
(symmetry, identity, triangle inequality), which is precisely what the
VP-tree's subtree pruning and the inverted file's norm bound require.
"""

from __future__ import annotations

import threading
from abc import ABC, abstractmethod
from typing import Dict, Iterator, List, Optional, Tuple

from repro.core.qlevel import qlevel_bound_factor
from repro.features.packed import PackedVector
from repro.features.store import FeatureStore
from repro.trees.node import TreeNode

__all__ = ["CandidateIndex"]


class CandidateIndex(ABC):
    """Base of the BDist candidate indexes (VP-tree, extended IFI).

    Parameters
    ----------
    store:
        The feature plane the index is built over.  The index keeps a
        reference and reads packed vectors at level :attr:`q` from it;
        rows are identified by store position, matching database indices.
    q:
        Branch level to index (default: the store's first level).

    Attributes
    ----------
    q / factor:
        The indexed branch level and its bound factor ``4(q−1)+1``.
    last_examined:
        Rows whose vectors the most recent ``range_rows`` call actually
        touched (distance computations + posting hits) — the sublinearity
        measure the candidate-sources benchmark records.
    """

    #: Registry spelling of the concrete index ("vptree" / "ifi").
    kind: str = "abstract"

    def __init__(self, store: FeatureStore, q: Optional[int] = None) -> None:
        self._store = store
        self.q = q if q is not None else store.q_levels[0]
        if self.q not in store.q_levels:
            from repro.exceptions import InvalidParameterError

            raise InvalidParameterError(
                f"index q={self.q} not extracted by the store "
                f"(levels: {store.q_levels})"
            )
        self.factor = qlevel_bound_factor(self.q)
        #: rows installed so far (store prefix length at the last sync);
        #: a sidecar restore pre-installs a prefix (see _preinstalled)
        self._built = self._preinstalled()
        #: the store generation the index was last synced against
        self._generation = store.generation
        self._sync_lock = threading.Lock()
        self.last_examined = 0
        self.sync()

    def _preinstalled(self) -> int:
        """Rows already installed before ``__init__`` runs (sidecar restore)."""
        return 0

    # ------------------------------------------------------------------
    # Store synchronisation
    # ------------------------------------------------------------------
    def stale(self) -> bool:
        """Whether the backing store has rows this index has not seen."""
        return (
            self._built != len(self._store)
            or self._generation != self._store.generation
        )

    def sync(self) -> int:
        """Install every store row added since the last sync.

        Returns the number of rows installed.  The store is append-only,
        so catching up is incremental: rows ``[built, len(store))`` are
        inserted one by one (VP-tree leaf-bucket insertion / posting
        appends) and the index is re-stamped with the store's generation.
        Thread safety: concurrent ``sync`` calls are serialised; callers
        that interleave ``sync`` with reads must hold their own exclusion
        (the service's writer lock does).
        """
        with self._sync_lock:
            installed = 0
            while self._built < len(self._store):
                self._insert_row(self._built)
                self._built += 1
                installed += 1
            self._generation = self._store.generation
            return installed

    def __len__(self) -> int:
        return self._built

    # ------------------------------------------------------------------
    # Query-side helpers
    # ------------------------------------------------------------------
    def pack(self, query: TreeNode) -> PackedVector:
        """The query's packed branch vector at the indexed level.

        Interning is read-only (unseen branches go to the vector's
        ``extra`` map), so packing is safe on concurrent read paths.
        """
        return self._store.pack_query(query, self.q)

    def _vector(self, row: int) -> PackedVector:
        return self._store.packed_vector(row, self.q)

    def _distance(self, vector: PackedVector, row: int) -> int:
        return vector.l1_distance(self._vector(row))

    # ------------------------------------------------------------------
    # To implement
    # ------------------------------------------------------------------
    @abstractmethod
    def _insert_row(self, row: int) -> None:
        """Install one store row (rows arrive in ascending order)."""

    @abstractmethod
    def range_rows(self, vector: PackedVector, budget: float) -> List[int]:
        """Exactly the rows with ``L1(vector, row) ≤ budget``, ascending."""

    @abstractmethod
    def ascending(self, vector: PackedVector) -> Iterator[Tuple[int, int]]:
        """Lazy ``(L1, row)`` pairs in non-decreasing L1 order, all rows."""

    @abstractmethod
    def stats(self) -> Dict[str, object]:
        """Structure counters for the CLI / diagnostics."""

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(kind={self.kind!r}, q={self.q}, "
            f"rows={self._built})"
        )
