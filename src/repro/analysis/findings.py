"""Finding objects: what a lint rule reports and how it is fingerprinted.

A :class:`Finding` is one rule violation at one source location.  Its
:attr:`~Finding.fingerprint` deliberately excludes the line number — the
baseline workflow (:mod:`repro.analysis.baseline`) must keep recognising a
grandfathered finding when unrelated edits shift the file, so the identity
is ``(rule, path, symbol, message)`` hashed.  Rules therefore keep line
numbers (and anything else volatile) out of their messages and anchor each
finding to the enclosing class/function via ``symbol``.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Tuple

__all__ = ["Finding", "SEVERITIES"]

#: Recognised severities, strongest first.  Both gate the exit code — a
#: warning that is not baselined still fails ``repro lint`` (severity is
#: advice about urgency, not about enforcement).
SEVERITIES = ("error", "warning")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    severity: str
    path: str  # posix-style, relative to the analysis root
    line: int
    message: str
    #: enclosing ``Class.method`` (or function) — anchors the fingerprint
    symbol: str = ""
    #: how to fix it (shown by ``repro lint --fix-hints``)
    hint: str = ""

    @property
    def fingerprint(self) -> str:
        """Line-independent identity used for baseline matching."""
        payload = "|".join((self.rule, self.path, self.symbol, self.message))
        return hashlib.sha1(payload.encode("utf-8")).hexdigest()[:16]

    @property
    def location(self) -> str:
        """Clickable ``path:line``."""
        return f"{self.path}:{self.line}"

    def sort_key(self) -> Tuple[str, int, str, str]:
        return (self.path, self.line, self.rule, self.message)

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable record (what ``repro lint --json`` emits)."""
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "symbol": self.symbol,
            "message": self.message,
            "hint": self.hint,
            "fingerprint": self.fingerprint,
        }
