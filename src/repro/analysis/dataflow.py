"""Intraprocedural dataflow shared by the interprocedural rules.

Two small analyses, both deliberately *flow-insensitive or structurally
scoped* — cheap enough to run over the whole repository on every lint
pass, precise enough for the contracts the rules encode:

* **Reaching assignments** (:func:`reaching_assignments`,
  :func:`resolve_name`): for each local name, every expression ever
  assigned to it in the function.  RL010 uses this to trace what flows
  into a ``Connection.send`` — a name bound to ``parse_bracket(...)``
  *may* be a recursive tree at the send site, and the rule must see
  through the intermediate binding.
* **Lock-held-set propagation** (:func:`lock_events`): a structural walk
  of a function body tracking which lock identities are held at every
  call site and every nested acquisition.  ``with`` nesting is the only
  acquisition form the project convention allows (RL003's argument about
  context managers applies to locks just as much), so the held set is
  syntactic and exact per function; the interprocedural extension (what a
  *callee* acquires) lives in the RL009 rule on top of the call graph.

Lock identity is name-based, like everything in this analyzer: ``self._x``
inside ``class C`` is ``"C._x"`` (two classes' ``_lock`` attributes are
different locks), any other dotted path keeps its trailing two segments
(``client.lock``), a bare name keeps itself.  Identities never embed line
numbers, so finding fingerprints survive unrelated edits.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.astutils import FunctionNode

__all__ = [
    "LOCK_ATTR_PATTERN",
    "LockAcquisition",
    "CallUnderLocks",
    "lock_constructor_kinds",
    "lock_identity",
    "lock_events",
    "reaching_assignments",
    "resolve_name",
    "parameter_names",
]

#: ``self.<attr>`` / ``obj.<attr>`` names that count as locks when used as a
#: context manager (same vocabulary as RL002's per-class discipline check).
LOCK_ATTR_PATTERN = re.compile(r"lock|mutex|condition|sema", re.IGNORECASE)

_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)


# ----------------------------------------------------------------------
# Reaching assignments
# ----------------------------------------------------------------------
def parameter_names(fn: FunctionNode) -> List[str]:
    """Every parameter name of ``fn``, positional-only through ``**kwargs``."""
    args = fn.args
    names = [arg.arg for arg in args.posonlyargs + args.args + args.kwonlyargs]
    if args.vararg:
        names.append(args.vararg.arg)
    if args.kwarg:
        names.append(args.kwarg.arg)
    return names


def reaching_assignments(fn: FunctionNode) -> Dict[str, List[ast.expr]]:
    """Flow-insensitive ``name -> [assigned value expressions]`` for ``fn``.

    Covers plain/annotated/augmented assignment, ``with ... as name`` and
    walrus bindings.  Tuple-unpacked and loop-bound names map to an empty
    marker list entry (the binding exists, its value is opaque) so callers
    can distinguish "never assigned locally" (absent — likely a parameter
    or closure) from "assigned something we cannot decompose".
    """
    out: Dict[str, List[ast.expr]] = {}

    def bind(target: ast.expr, value: Optional[ast.expr]) -> None:
        if isinstance(target, ast.Name):
            bucket = out.setdefault(target.id, [])
            if value is not None:
                bucket.append(value)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                bind(element, None)
        elif isinstance(target, ast.Starred):
            bind(target.value, None)

    stack: List[ast.AST] = list(fn.body)
    while stack:
        node = stack.pop()
        if isinstance(node, _SCOPE_NODES):
            continue  # nested scopes bind their own names
        if isinstance(node, ast.Assign):
            for target in node.targets:
                bind(target, node.value)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            bind(node.target, node.value)
        elif isinstance(node, ast.AugAssign):
            bind(node.target, None)
        elif isinstance(node, ast.NamedExpr):
            bind(node.target, node.value)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if item.optional_vars is not None:
                    bind(item.optional_vars, item.context_expr)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            bind(node.target, None)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # a nested def binds its name to a function object
            out.setdefault(node.name, []).append(
                ast.Lambda(args=node.args, body=ast.Constant(value=None))
            )
        stack.extend(ast.iter_child_nodes(node))
    return out


def resolve_name(
    name: str,
    env: Dict[str, List[ast.expr]],
    depth: int = 4,
) -> List[ast.expr]:
    """Transitively chase ``name`` through ``env`` to non-Name expressions.

    Returns the value expressions that may reach ``name``; an empty list
    means the name is opaque (parameter, loop variable, closure) — callers
    must treat that conservatively.  ``depth`` bounds alias chains.
    """
    results: List[ast.expr] = []
    seen: Set[str] = set()

    def walk(current: str, remaining: int) -> None:
        if current in seen or remaining < 0:
            return
        seen.add(current)
        for value in env.get(current, ()):
            if isinstance(value, ast.Name):
                walk(value.id, remaining - 1)
            else:
                results.append(value)

    walk(name, depth)
    return results


# ----------------------------------------------------------------------
# Lock identity and held-set propagation
# ----------------------------------------------------------------------
def lock_identity(expr: ast.expr, class_name: str = "") -> Optional[str]:
    """Name-based lock identity of a context-manager expression.

    ``self._lock`` inside ``class C`` -> ``"C._lock"``; ``client.lock`` ->
    ``"client.lock"``; a bare ``LOCK`` name -> ``"LOCK"``.  Returns ``None``
    when the expression does not look like a lock at all.
    """
    if isinstance(expr, ast.Attribute):
        if not LOCK_ATTR_PATTERN.search(expr.attr):
            return None
        base = expr.value
        if isinstance(base, ast.Name):
            if base.id == "self" and class_name:
                return f"{class_name}.{expr.attr}"
            return f"{base.id}.{expr.attr}"
        if isinstance(base, ast.Attribute):
            return f"{base.attr}.{expr.attr}"
        return expr.attr
    if isinstance(expr, ast.Name) and LOCK_ATTR_PATTERN.search(expr.id):
        return expr.id
    return None


@dataclass(frozen=True)
class LockAcquisition:
    """One ``with <lock>:`` entry and the locks already held there."""

    lock: str
    held_before: Tuple[str, ...]
    line: int


@dataclass(frozen=True)
class CallUnderLocks:
    """One call site annotated with the lock identities held around it."""

    call: ast.Call
    held: Tuple[str, ...]
    line: int


def lock_events(
    fn: FunctionNode, class_name: str = ""
) -> Tuple[List[LockAcquisition], List[CallUnderLocks]]:
    """Acquisitions and lock-annotated call sites of one function body.

    The walk is structural: a ``with`` item whose context expression has a
    lock identity pushes that identity for the body.  Nested defs and
    lambdas are skipped — their bodies execute on whatever thread calls
    them and are analyzed as their own call-graph nodes.
    """
    acquisitions: List[LockAcquisition] = []
    calls: List[CallUnderLocks] = []
    stack: List[Tuple[ast.AST, Tuple[str, ...]]] = [
        (child, ()) for child in fn.body
    ]
    while stack:
        node, held = stack.pop()
        if isinstance(node, _SCOPE_NODES):
            continue
        entered = held
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                identity = lock_identity(item.context_expr, class_name)
                if identity is not None:
                    acquisitions.append(
                        LockAcquisition(identity, entered, node.lineno)
                    )
                    if identity not in entered:
                        entered = entered + (identity,)
        if isinstance(node, ast.Call):
            calls.append(CallUnderLocks(node, held, node.lineno))
        for child in ast.iter_child_nodes(node):
            stack.append((child, entered))
    return acquisitions, calls


def lock_constructor_kinds(tree: ast.AST) -> Dict[str, str]:
    """Map lock identity -> constructor kind (``Lock``/``RLock``/…).

    Scans ``self.<attr> = threading.Lock()``-style assignments anywhere in
    ``tree`` (which must have parents attached, as every
    :class:`~repro.analysis.engine.ModuleInfo` tree does) and qualifies
    ``self`` targets with the enclosing class.  RL009 uses the kinds to
    avoid flagging re-entrant self-cycles on ``RLock``.
    """
    from repro.analysis.astutils import parent_chain

    kinds: Dict[str, str] = {}
    for node in ast.walk(tree):
        if not isinstance(node, ast.Assign) or not isinstance(
            node.value, ast.Call
        ):
            continue
        ctor = node.value.func
        ctor_name = (
            ctor.attr if isinstance(ctor, ast.Attribute) else
            ctor.id if isinstance(ctor, ast.Name) else ""
        )
        if ctor_name not in {
            "Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore"
        }:
            continue
        owner = ""
        for ancestor in parent_chain(node):
            if isinstance(ancestor, ast.ClassDef):
                owner = ancestor.name
                break
        for target in node.targets:
            identity = lock_identity(target, owner)
            if identity is not None:
                kinds[identity] = ctor_name
    return kinds
