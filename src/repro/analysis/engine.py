"""The analysis engine: file collection, project model, rule driving.

``repro lint`` is a *project-invariant* checker: its rules encode contracts
("every filter is registered with a soundness oracle", "attributes guarded
by a lock stay guarded") that span files, so the engine runs in two passes.
Pass one parses every file into a :class:`ModuleInfo` and folds them into
one :class:`ProjectModel` — the cross-file facts rules may consult: a
name-based class hierarchy and the set of identifiers the oracle registry
references.  Pass two runs every rule over every module against that model.

Suppression happens here, uniformly, after the rules run: a
``# repro-lint: disable=RL00x`` pragma on a finding's line (or on a
comment-only line directly above it) drops the finding; everything else
flows to the baseline/reporting layers untouched.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

if TYPE_CHECKING:  # circular at runtime only: callgraph builds on this module
    from repro.analysis.callgraph import CallGraph

from repro.analysis.astutils import (
    attach_parents,
    base_name,
    decorator_names,
)
from repro.analysis.findings import Finding

__all__ = [
    "ClassInfo",
    "LintRun",
    "ModuleInfo",
    "ProjectModel",
    "analyze_paths",
    "collect_files",
    "load_project",
]

#: ``# repro-lint: disable=RL001`` or ``disable=RL001,RL005`` or ``disable=all``
_PRAGMA = re.compile(r"#\s*repro-lint\s*:\s*disable\s*=\s*([A-Za-z0-9_,\s]+)")

#: Modules whose filename marks them as the soundness-oracle registry.
_ORACLE_FILENAME = "oracles.py"


class ModuleInfo:
    """One parsed source file plus its pragma suppression map."""

    def __init__(self, path: Path, display_path: str, source: str) -> None:
        self.path = path
        #: posix-style path relative to the analysis root (baseline identity)
        self.display_path = display_path
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source)
        attach_parents(self.tree)
        self._suppressions = self._scan_pragmas(self.lines)

    @property
    def filename(self) -> str:
        return self.path.name

    @property
    def is_init(self) -> bool:
        return self.filename == "__init__.py"

    @staticmethod
    def _scan_pragmas(lines: Sequence[str]) -> Dict[int, Set[str]]:
        suppressions: Dict[int, Set[str]] = {}
        for number, line in enumerate(lines, start=1):
            match = _PRAGMA.search(line)
            if match is None:
                continue
            rules = {
                token.strip().upper()
                for token in match.group(1).split(",")
                if token.strip()
            }
            targets = [number]
            if line.lstrip().startswith("#"):
                # a standalone pragma comment shields the following line
                targets.append(number + 1)
            for target in targets:
                suppressions.setdefault(target, set()).update(rules)
        return suppressions

    def suppressed(self, rule_id: str, line: int) -> bool:
        rules = self._suppressions.get(line)
        if not rules:
            return False
        return rule_id.upper() in rules or "ALL" in rules


class ClassInfo:
    """One class definition as the project model sees it."""

    def __init__(self, module: ModuleInfo, node: ast.ClassDef) -> None:
        self.module = module
        self.node = node
        self.name = node.name
        self.base_names = [
            name for name in (base_name(expr) for expr in node.bases) if name
        ]
        self.methods: Dict[str, ast.FunctionDef] = {}
        for statement in node.body:
            if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # later (e.g. version-gated) redefinitions win, like runtime
                self.methods[statement.name] = statement  # type: ignore[assignment]


class ProjectModel:
    """Cross-file facts the rules consult.

    Class ancestry is resolved *by name*: the analyzer never imports the
    code it checks, so ``class X(LowerBoundFilter)`` links to whichever
    analyzed class is called ``LowerBoundFilter``.  Shadowed names could in
    principle confuse this, but rule scopes are narrow enough (and the
    repository disciplined enough) that name identity is the right
    cost/precision trade for a lint pass.
    """

    def __init__(self, modules: Sequence[ModuleInfo]) -> None:
        self.modules = list(modules)
        self.classes_by_name: Dict[str, List[ClassInfo]] = {}
        self.oracle_names: Set[str] = set()
        self.has_oracles_module = False
        self._callgraph: Optional[CallGraph] = None
        for module in self.modules:
            for node in ast.walk(module.tree):
                if isinstance(node, ast.ClassDef):
                    info = ClassInfo(module, node)
                    self.classes_by_name.setdefault(info.name, []).append(info)
            if module.filename == _ORACLE_FILENAME:
                self.has_oracles_module = True
                for node in ast.walk(module.tree):
                    if isinstance(node, ast.Name):
                        self.oracle_names.add(node.id)
                    elif isinstance(node, ast.Attribute):
                        self.oracle_names.add(node.attr)

    def callgraph(self) -> CallGraph:
        """The project call graph, built once per model (lazily).

        Imported here, not at module top, because
        :mod:`repro.analysis.callgraph` depends on this module's types.
        """
        if self._callgraph is None:
            from repro.analysis.callgraph import CallGraph

            self._callgraph = CallGraph(self)
        return self._callgraph

    def ancestry(self, info: ClassInfo) -> Set[str]:
        """Transitive base-class *names* of ``info`` (excluding itself)."""
        seen: Set[str] = set()
        frontier = list(info.base_names)
        while frontier:
            name = frontier.pop()
            if name in seen:
                continue
            seen.add(name)
            for ancestor in self.classes_by_name.get(name, ()):
                frontier.extend(ancestor.base_names)
        return seen

    def subclasses_of(self, root_name: str) -> List[ClassInfo]:
        """Every analyzed class whose ancestry reaches ``root_name``."""
        return [
            info
            for infos in self.classes_by_name.values()
            for info in infos
            if root_name in self.ancestry(info)
        ]

    def resolve_method(
        self, info: ClassInfo, method: str
    ) -> Optional[ast.FunctionDef]:
        """MRO-ish lookup: the class's own def, else the nearest ancestor's."""
        if method in info.methods:
            return info.methods[method]
        frontier = list(info.base_names)
        seen: Set[str] = set()
        while frontier:
            name = frontier.pop(0)
            if name in seen:
                continue
            seen.add(name)
            for ancestor in self.classes_by_name.get(name, ()):
                if method in ancestor.methods:
                    return ancestor.methods[method]
                frontier.extend(ancestor.base_names)
        return None

    def is_concrete_filter(self, info: ClassInfo) -> bool:
        """A filter subclass with concrete ``signature`` *and* ``bound``."""
        for method in ("signature", "bound"):
            resolved = self.resolve_method(info, method)
            if resolved is None or "abstractmethod" in decorator_names(resolved):
                return False
        return True


class LintRun:
    """The outcome of one analysis pass."""

    def __init__(
        self,
        findings: List[Finding],
        suppressed: int,
        files: List[str],
        parse_failures: List[Finding],
    ) -> None:
        #: pragma-surviving findings, sorted by location (parse failures last)
        self.findings = sorted(findings, key=Finding.sort_key) + parse_failures
        self.suppressed = suppressed
        self.files = files
        self.parse_failures = parse_failures


def collect_files(paths: Iterable[Path]) -> List[Path]:
    """Expand files/directories into a sorted, de-duplicated ``.py`` list."""
    out: List[Path] = []
    seen: Set[Path] = set()
    for path in paths:
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            if any(part.startswith(".") for part in candidate.parts):
                continue
            if "__pycache__" in candidate.parts:
                continue
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                out.append(candidate)
    return out


def _display_path(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def load_project(
    paths: Sequence[Path],
    root: Optional[Path] = None,
) -> Tuple[ProjectModel, List[str], List[Finding]]:
    """Parse ``paths`` into a :class:`ProjectModel` without running rules.

    Returns ``(project, files, parse_failures)``.  This is the shared
    front half of :func:`analyze_paths`; the CLI's ``--callgraph`` export
    uses it directly (the call graph needs the model, not the findings).
    """
    root = root if root is not None else Path.cwd()
    modules: List[ModuleInfo] = []
    parse_failures: List[Finding] = []
    files: List[str] = []
    for path in collect_files(paths):
        display = _display_path(path, root)
        files.append(display)
        try:
            source = path.read_text(encoding="utf-8")
            modules.append(ModuleInfo(path, display, source))
        except (SyntaxError, UnicodeDecodeError) as exc:
            line = getattr(exc, "lineno", 0) or 0
            parse_failures.append(
                Finding(
                    rule="RL000",
                    severity="error",
                    path=display,
                    line=line,
                    message=f"file could not be parsed: {exc.msg if isinstance(exc, SyntaxError) else exc}",
                    symbol="",
                    hint="fix the syntax error; unparseable files are invisible to every other rule",
                )
            )
    return ProjectModel(modules), files, parse_failures


def analyze_paths(
    paths: Sequence[Path],
    rules: Optional[Sequence[object]] = None,
    root: Optional[Path] = None,
) -> LintRun:
    """Run the rule set over ``paths``; the one entry point callers need.

    ``root`` anchors the relative paths findings (and therefore baseline
    fingerprints) carry — pass the repository root for stable baselines
    regardless of the current directory.  ``rules`` defaults to the full
    registry.
    """
    from repro.analysis.registry import all_rules

    active = list(rules) if rules is not None else list(all_rules())
    project, files, parse_failures = load_project(paths, root)
    modules = project.modules
    findings: List[Finding] = []
    suppressed = 0
    for module in modules:
        for rule in active:
            for finding in rule.check(module, project):
                if module.suppressed(finding.rule, finding.line):
                    suppressed += 1
                else:
                    findings.append(finding)
    return LintRun(findings, suppressed, files, parse_failures)
