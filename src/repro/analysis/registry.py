"""Rule registry: one decorator, one lookup, stable ordering.

A rule is a small class with metadata (id, title, severity, rationale,
hint) and a ``check(module, project)`` generator.  Modules in
:mod:`repro.analysis.rules` register themselves at import time via
:func:`register`; the engine and the CLI only ever talk to
:func:`all_rules` / :func:`get_rule`.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Type

from repro.analysis.engine import ModuleInfo, ProjectModel
from repro.analysis.findings import SEVERITIES, Finding

__all__ = ["Rule", "all_rules", "get_rule", "register"]


class Rule:
    """Base class for lint rules; subclasses override :meth:`check`."""

    rule_id: str = ""
    title: str = ""
    severity: str = "error"
    #: why the rule exists — printed by ``repro lint --explain``
    rationale: str = ""
    #: generic fix guidance, used when a finding carries no specific hint
    hint: str = ""

    def check(self, module: ModuleInfo, project: ProjectModel) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self,
        module: ModuleInfo,
        line: int,
        message: str,
        symbol: str = "",
        hint: str = "",
    ) -> Finding:
        """Build a finding pre-filled with this rule's id/severity/hint."""
        return Finding(
            rule=self.rule_id,
            severity=self.severity,
            path=module.display_path,
            line=line,
            message=message,
            symbol=symbol,
            hint=hint or self.hint,
        )


_RULES: Dict[str, Rule] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: instantiate and index a rule by its id."""
    if not cls.rule_id:
        raise ValueError(f"{cls.__name__} has no rule_id")
    if cls.severity not in SEVERITIES:
        raise ValueError(f"{cls.__name__}: unknown severity {cls.severity!r}")
    if cls.rule_id in _RULES:
        raise ValueError(f"duplicate rule id {cls.rule_id}")
    _RULES[cls.rule_id] = cls()
    return cls


def _ensure_loaded() -> None:
    # Importing the rules package triggers the @register decorators.
    from repro.analysis import rules  # noqa: F401


def all_rules() -> List[Rule]:
    """Every registered rule, ordered by id."""
    _ensure_loaded()
    return [_RULES[rule_id] for rule_id in sorted(_RULES)]


def get_rule(rule_id: str) -> Rule:
    """Look up one rule by id (case-insensitive); raises ``KeyError``."""
    _ensure_loaded()
    return _RULES[rule_id.upper()]
