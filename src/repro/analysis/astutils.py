"""Shared AST plumbing for the lint rules.

The standard :mod:`ast` module gives child links only; the rules also need
parents (to classify the syntactic context of a call), scope walks that do
*not* descend into nested function/class bodies, and a handful of "what
does this node refer to" helpers that every rule would otherwise reinvent.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Sequence, Set, Tuple, Union

__all__ = [
    "LOOP_NODES",
    "attach_parents",
    "base_name",
    "call_name",
    "decorator_names",
    "iter_scope",
    "iter_self_writes",
    "parent_chain",
    "self_attribute",
    "string_elements",
]

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: Nodes whose bodies open a new variable scope for :func:`iter_scope`.
_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)

#: Comprehensions iterate their element expression per item — rules that
#: care about "inside a loop" must treat them like ``for`` statements.
LOOP_NODES = (
    ast.For,
    ast.While,
    ast.AsyncFor,
    ast.ListComp,
    ast.SetComp,
    ast.DictComp,
    ast.GeneratorExp,
)


def attach_parents(tree: ast.AST) -> None:
    """Set a ``.repro_parent`` attribute on every node (root gets ``None``)."""
    tree.repro_parent = None  # type: ignore[attr-defined]
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            child.repro_parent = node  # type: ignore[attr-defined]


def parent_chain(node: ast.AST) -> Iterator[ast.AST]:
    """Ancestors of ``node``, innermost first (requires attached parents)."""
    current = getattr(node, "repro_parent", None)
    while current is not None:
        yield current
        current = getattr(current, "repro_parent", None)


def iter_scope(node: ast.AST, *, skip_nested: bool = True) -> Iterator[ast.AST]:
    """Walk ``node``'s subtree, optionally skipping nested def/class bodies.

    The root node itself is not yielded.  With ``skip_nested`` (the
    default), a nested ``def``/``class``/``lambda`` is yielded as a node
    but its body is not entered — what "this function's own code" means
    for recursion and span-ownership analyses.
    """
    stack: List[ast.AST] = list(ast.iter_child_nodes(node))
    while stack:
        current = stack.pop()
        yield current
        if skip_nested and isinstance(current, _SCOPE_NODES):
            continue
        stack.extend(ast.iter_child_nodes(current))


def call_name(node: ast.Call) -> str:
    """The trailing identifier of a call: ``f`` for ``f(…)``/``a.b.f(…)``."""
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""


def base_name(node: ast.expr) -> str:
    """The class-name identifier of a base-class expression.

    Unwraps subscripts so ``LowerBoundFilter[int]`` and
    ``filters.LowerBoundFilter`` both resolve to ``LowerBoundFilter``.
    """
    if isinstance(node, ast.Subscript):
        return base_name(node.value)
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return ""


def self_attribute(node: ast.AST) -> Optional[str]:
    """``"x"`` when ``node`` is exactly ``self.x``, else ``None``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _write_targets(node: ast.stmt) -> Sequence[ast.expr]:
    if isinstance(node, ast.Assign):
        return node.targets
    if isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        return (node.target,)
    return ()


def iter_self_writes(node: ast.stmt) -> Iterator[Tuple[str, int]]:
    """``(attribute, line)`` for every ``self.x`` an assignment mutates.

    Covers plain/augmented/annotated assignment, tuple unpacking, and
    item/slice mutation of an attribute (``self.x[k] = v`` counts as a
    write to ``x`` — the container changed).
    """
    for target in _write_targets(node):
        stack: List[ast.expr] = [target]
        while stack:
            current = stack.pop()
            if isinstance(current, (ast.Tuple, ast.List)):
                stack.extend(current.elts)
                continue
            if isinstance(current, ast.Starred):
                stack.append(current.value)
                continue
            if isinstance(current, ast.Subscript):
                current = current.value
            attribute = self_attribute(current)
            if attribute is not None:
                yield attribute, current.lineno


def string_elements(node: ast.expr) -> Optional[List[str]]:
    """The string elements of a literal list/tuple, or ``None`` if not one."""
    if not isinstance(node, (ast.List, ast.Tuple)):
        return None
    out: List[str] = []
    for element in node.elts:
        if isinstance(element, ast.Constant) and isinstance(element.value, str):
            out.append(element.value)
        else:
            return None
    return out


def decorator_names(node: FunctionNode) -> Set[str]:
    """Trailing identifiers of a function's decorators."""
    names: Set[str] = set()
    for decorator in node.decorator_list:
        if isinstance(decorator, ast.Call):
            decorator = decorator.func
        name = base_name(decorator)
        if name:
            names.add(name)
    return names
