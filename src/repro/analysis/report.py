"""Reporters: render a lint run for terminals (text) and machines (JSON)."""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

from repro.analysis.findings import Finding

__all__ = ["render_json", "render_text"]


def render_text(
    new: Sequence[Finding],
    grandfathered: Sequence[Finding],
    suppressed: int,
    file_count: int,
    show_hints: bool = False,
) -> str:
    """Human-readable report: one ``path:line rule [severity] message`` per
    finding, grandfathered ones counted but not listed."""
    lines: List[str] = []
    for finding in new:
        location = finding.location
        lines.append(
            f"{location}: {finding.rule} [{finding.severity}] {finding.message}"
        )
        if show_hints and finding.hint:
            lines.append(f"    hint: {finding.hint}")
    summary = (
        f"{len(new)} finding(s) in {file_count} file(s)"
        f" ({len(grandfathered)} baselined, {suppressed} suppressed by pragma)"
    )
    if new:
        lines.append("")
    lines.append(summary)
    return "\n".join(lines)


def render_json(
    new: Sequence[Finding],
    grandfathered: Sequence[Finding],
    suppressed: int,
    files: Sequence[str],
) -> str:
    """Machine-readable report (consumed by the CI artifact upload)."""
    payload: Dict[str, object] = {
        "format": "repro-lint-report",
        "version": 1,
        "files": list(files),
        "summary": {
            "new": len(new),
            "baselined": len(grandfathered),
            "suppressed": suppressed,
        },
        "findings": [finding.to_dict() for finding in new],
        "baselined": [finding.to_dict() for finding in grandfathered],
    }
    return json.dumps(payload, indent=2)
