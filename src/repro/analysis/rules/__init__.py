"""Rule modules; importing this package registers every rule.

Each module groups rules by the subsystem contract they protect:

- :mod:`~repro.analysis.rules.contracts` — the filter-and-refine contract
  (RL001 filter-contract, RL006 hot-path-purity)
- :mod:`~repro.analysis.rules.concurrency` — service/obs locking
  (RL002 lock-discipline)
- :mod:`~repro.analysis.rules.observability` — tracing + metrics hygiene
  (RL003 span-hygiene, RL004 metric-label-cardinality)
- :mod:`~repro.analysis.rules.structure` — repo-wide structural hygiene
  (RL005 unbounded-recursion, RL007 export-surface, RL008 bare-except)
- :mod:`~repro.analysis.rules.interprocedural` — call-graph-driven
  concurrency/RPC contracts (RL009 lock-order, RL010 rpc-pickle-safety)
- :mod:`~repro.analysis.rules.schema` — versioned artifact schemas
  (RL011 schema-drift)
- :mod:`~repro.analysis.rules.exceptions_contract` — the typed-exception
  taxonomy (RL012 exception-contract)
"""

from repro.analysis.rules import (  # noqa: F401
    concurrency,
    contracts,
    exceptions_contract,
    interprocedural,
    observability,
    schema,
    structure,
)

__all__ = [
    "concurrency",
    "contracts",
    "exceptions_contract",
    "interprocedural",
    "observability",
    "schema",
    "structure",
]
