"""Rule modules; importing this package registers every rule.

Each module groups rules by the subsystem contract they protect:

- :mod:`~repro.analysis.rules.contracts` — the filter-and-refine contract
  (RL001 filter-contract, RL006 hot-path-purity)
- :mod:`~repro.analysis.rules.concurrency` — service/obs locking
  (RL002 lock-discipline)
- :mod:`~repro.analysis.rules.observability` — tracing + metrics hygiene
  (RL003 span-hygiene, RL004 metric-label-cardinality)
- :mod:`~repro.analysis.rules.structure` — repo-wide structural hygiene
  (RL005 unbounded-recursion, RL007 export-surface, RL008 bare-except)
"""

from repro.analysis.rules import (  # noqa: F401
    concurrency,
    contracts,
    observability,
    structure,
)

__all__ = ["concurrency", "contracts", "observability", "structure"]
