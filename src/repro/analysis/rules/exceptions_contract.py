"""RL012: the typed-exception contract.

The repository's error taxonomy (``repro/exceptions.py``) is part of the
public API: callers are told to catch ``SignatureMismatchError`` when
feature planes disagree, ``FilterStateError`` when a filter is driven out
of protocol, ``SharedPlaneClosedError`` when a shard races a shutdown.
That contract only holds if every class in the taxonomy is *real*:

* **documented** — a docstring saying when it is raised (the docs build
  and ``--explain`` both quote it);
* **exported** — listed in its module's ``__all__`` (RL007 keeps the list
  honest; this rule requires the name to be on it at all);
* **raised somewhere** — an exception class nobody raises is dead API
  surface that callers write handlers for in vain;
* **never silently swallowed** — ``except FooError: pass`` turns a typed,
  documented failure into silent corruption, which on the serving hot
  path means wrong similarity results rather than a clean 500.

The rule finds the taxonomy by ancestry (every analyzed class that
derives, transitively and by name, from ``ReproError``), so fixture and
future subsystem exceptions are held to the same contract automatically.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.astutils import string_elements
from repro.analysis.engine import ClassInfo, ProjectModel
from repro.analysis.findings import Finding
from repro.analysis.registry import register
from repro.analysis.rules.interprocedural import ProjectRule

__all__ = ["ExceptionContractRule"]

#: The root of the typed-exception taxonomy.
_ROOT = "ReproError"


def _module_all(tree: ast.Module) -> Optional[Set[str]]:
    for node in tree.body:
        if isinstance(node, ast.Assign) and any(
            isinstance(t, ast.Name) and t.id == "__all__" for t in node.targets
        ):
            names = string_elements(node.value)
            if names is not None:
                return set(names)
    return None


def _raised_names(project: ProjectModel) -> Set[str]:
    """Every class name that appears in a ``raise``/``raise from`` statement."""
    out: Set[str] = set()
    for module in project.modules:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            exc = node.exc
            if isinstance(exc, ast.Call):
                exc = exc.func
            if isinstance(exc, ast.Name):
                out.add(exc.id)
            elif isinstance(exc, ast.Attribute):
                out.add(exc.attr)
    return out


def _handler_names(handler: ast.ExceptHandler) -> List[str]:
    """The exception class names one ``except`` clause catches."""
    node = handler.type
    if node is None:
        return []
    nodes = node.elts if isinstance(node, ast.Tuple) else [node]
    names: List[str] = []
    for item in nodes:
        if isinstance(item, ast.Name):
            names.append(item.id)
        elif isinstance(item, ast.Attribute):
            names.append(item.attr)
    return names


def _swallows(handler: ast.ExceptHandler) -> bool:
    """True when the handler body does nothing observable with the error."""
    for statement in handler.body:
        if isinstance(statement, ast.Pass):
            continue
        if isinstance(statement, ast.Expr) and isinstance(
            statement.value, ast.Constant
        ):
            continue  # docstring/ellipsis placeholder
        if isinstance(statement, ast.Continue):
            continue
        return False
    return True


@register
class ExceptionContractRule(ProjectRule):
    """RL012: typed exceptions are documented, exported, raised, not dropped."""

    rule_id = "RL012"
    title = "exception-contract"
    severity = "error"
    rationale = (
        "The ReproError taxonomy is API: callers catch "
        "SignatureMismatchError, FilterStateError or "
        "SharedPlaneClosedError by name and trust what the docs say "
        "about when each fires. An undocumented or unexported subclass "
        "is a contract nobody can read; one that is never raised is "
        "dead surface callers guard against in vain; and `except "
        "FooError: pass` converts a typed failure into silent "
        "corruption - on the serving path that means wrong similarity "
        "results instead of a clean error response."
    )
    hint = (
        "give the exception a docstring saying when it is raised, list "
        "it in __all__, raise it from the code path it describes, and "
        "make every handler either recover meaningfully or re-raise"
    )

    def _analyze(self, project: ProjectModel) -> Iterator[Finding]:
        taxonomy = project.subclasses_of(_ROOT)
        taxonomy_names = {info.name for info in taxonomy} | {_ROOT}
        # an intermediate base (subclassed within the taxonomy) need not be
        # raised directly — its concrete subclasses carry that obligation
        bases: Set[str] = set()
        for info in taxonomy:
            bases.update(
                name for name in project.ancestry(info) if name in taxonomy_names
            )
        raised = _raised_names(project)
        exports: Dict[int, Optional[Set[str]]] = {}
        for info in taxonomy:
            module = info.module
            if id(module) not in exports:
                exports[id(module)] = _module_all(module.tree)
            yield from self._class_findings(
                info, raised, exports[id(module)], is_base=info.name in bases
            )
        for module in project.modules:
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.ExceptHandler):
                    continue
                caught = [
                    name for name in _handler_names(node)
                    if name in taxonomy_names
                ]
                if caught and _swallows(node):
                    yield Finding(
                        rule=self.rule_id,
                        severity=self.severity,
                        path=module.display_path,
                        line=node.lineno,
                        message=(
                            f"handler silently swallows "
                            f"{', '.join(sorted(caught))}; typed failures "
                            "must be handled or re-raised"
                        ),
                        symbol=", ".join(sorted(caught)),
                        hint=self.hint,
                    )

    def _class_findings(
        self,
        info: ClassInfo,
        raised: Set[str],
        module_exports: Optional[Set[str]],
        is_base: bool,
    ) -> Iterator[Finding]:
        line = info.node.lineno
        if ast.get_docstring(info.node) is None:
            yield self._taxonomy_finding(
                info, line,
                f"exception {info.name} has no docstring; the taxonomy is "
                "API and each class must say when it is raised",
            )
        if module_exports is not None and info.name not in module_exports:
            yield self._taxonomy_finding(
                info, line,
                f"exception {info.name} is not exported via __all__",
            )
        if info.name not in raised and not is_base:
            yield self._taxonomy_finding(
                info, line,
                f"exception {info.name} is defined but never raised",
            )

    def _taxonomy_finding(
        self, info: ClassInfo, line: int, message: str
    ) -> Finding:
        return Finding(
            rule=self.rule_id,
            severity=self.severity,
            path=info.module.display_path,
            line=line,
            message=message,
            symbol=info.name,
            hint=self.hint,
        )
