"""RL009/RL010: interprocedural concurrency and RPC-serialization rules.

Both rules run on the project :class:`~repro.analysis.callgraph.CallGraph`
plus the :mod:`~repro.analysis.dataflow` summaries, so they see a lock
acquired in one file and re-taken through a call chain ending in another —
the class of bug the per-function rules of PR 5 structurally cannot.

**RL009 (lock-order)** builds the project's lock-acquisition graph: an
edge ``A -> B`` means lock ``B`` is acquired (directly, or by anything the
code under ``A`` transitively calls) while ``A`` is held.  A cycle in that
graph is a deadlock waiting for the right thread interleaving.  The same
held-set machinery flags locks held across *blocking* calls — a pipe
``send``/``recv``, a ``Condition.wait`` on a different lock, a
``Future.result``, a thread ``join``, a ``SharedMemory`` attach — which
stall every thread queued on the lock for as long as the peer takes.

**RL010 (rpc-pickle-safety)** traces what reaches a shard pipe.  The
sharding protocol's contract (``docs/SHARDING.md``) is that only the flat
query encoding crosses a ``Connection`` — strings, numbers, tuples/dicts
of them.  A recursive :class:`TreeNode` would re-introduce the
deep-recursion pickling the encoding exists to avoid; a lambda, lock, open
handle or executor simply does not pickle and fails only at runtime, on
the first query that takes that code path.  The rule classifies every
expression flowing into a conn-like ``.send(...)`` (through local aliases,
and through the parameters of helpers like ``_call``/``_scatter`` whose
arguments end up on the wire) and flags provably-unsafe shapes; unknown
values stay silent — unresolved is not evidence.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.callgraph import CallGraph, FunctionInfo
from repro.analysis.dataflow import (
    CallUnderLocks,
    LockAcquisition,
    lock_constructor_kinds,
    lock_events,
    lock_identity,
    parameter_names,
    reaching_assignments,
    resolve_name,
)
from repro.analysis.engine import ModuleInfo, ProjectModel
from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, register

__all__ = ["LockOrderRule", "ProjectRule", "RpcPickleSafetyRule"]


class ProjectRule(Rule):
    """A rule whose findings are computed once per project, then replayed.

    ``check`` still yields per module (the engine's pragma/suppression
    pass is per-module), but the analysis runs exactly once per
    :class:`ProjectModel` and is memoized on the rule instance.
    """

    def check(self, module: ModuleInfo, project: ProjectModel) -> Iterator[Finding]:
        for finding in self._memoized(project):
            if finding.path == module.display_path:
                yield finding

    def _memoized(self, project: ProjectModel) -> List[Finding]:
        cached = getattr(self, "_cache", None)
        if cached is not None and cached[0] is project:
            return cached[1]
        findings = list(self._analyze(project))
        self._cache = (project, findings)
        return findings

    def _analyze(self, project: ProjectModel) -> Iterator[Finding]:
        raise NotImplementedError

    def project_finding(
        self,
        info: FunctionInfo,
        line: int,
        message: str,
        hint: str = "",
    ) -> Finding:
        return Finding(
            rule=self.rule_id,
            severity=self.severity,
            path=info.module.display_path,
            line=line,
            message=message,
            symbol=info.qualname,
            hint=hint or self.hint,
        )


# ----------------------------------------------------------------------
# RL009: lock order and blocking calls under locks
# ----------------------------------------------------------------------

#: Method names whose call may block on a peer/thread, not just the CPU.
_BLOCKING_METHODS = {
    "send": "Connection.send",
    "recv": "Connection.recv",
    "result": "Future.result",
    "wait": "wait",
    "join": "join",
}

#: Constructors that attach OS resources and can block on the kernel.
_BLOCKING_CONSTRUCTORS = {"SharedMemory"}

#: ``.join()`` is blocking only on thread/process-like receivers —
#: ``", ".join(parts)`` and ``os.path.join`` are the common impostors.
_JOINABLE_RECEIVER = re.compile(r"thread|proc|worker|child", re.IGNORECASE)

#: Call-graph edge kinds trusted for interprocedural lock propagation.
#: "attr" edges are wildcard over-approximations (every method of that
#: name); they stay in the graph for export but would make the deadlock
#: and blocking reports noise, so the summaries only follow edges whose
#: callee is structurally determined.
_SUMMARY_KINDS = frozenset({"direct", "self", "module", "constructor"})


def _blocking_description(call: ast.Call, class_name: str) -> Optional[Tuple[str, Optional[str]]]:
    """``(description, receiver lock identity)`` when ``call`` may block."""
    func = call.func
    if isinstance(func, ast.Name):
        if func.id in _BLOCKING_CONSTRUCTORS:
            return f"{func.id}()", None
        return None
    if not isinstance(func, ast.Attribute):
        return None
    if func.attr in _BLOCKING_CONSTRUCTORS:
        return f"{func.attr}()", None
    label = _BLOCKING_METHODS.get(func.attr)
    if label is None:
        return None
    if label == "join":
        if not _JOINABLE_RECEIVER.search(_dotted(func.value)):
            return None
        return "join()", None
    receiver = lock_identity(func.value, class_name)
    if label == "wait":
        base = func.value
        shown = base.attr if isinstance(base, ast.Attribute) else (
            base.id if isinstance(base, ast.Name) else "?"
        )
        return f"{shown}.wait()", receiver
    return f"{label}()", receiver


class _FunctionSummary:
    """Per-function lock facts RL009 folds over the call graph."""

    __slots__ = ("info", "acquisitions", "calls", "blocking")

    def __init__(self, info: FunctionInfo) -> None:
        self.info = info
        self.acquisitions: List[LockAcquisition] = []
        self.calls: List[CallUnderLocks] = []
        #: directly blocking calls: (description, receiver lock id, line)
        self.blocking: List[Tuple[str, Optional[str], int]] = []


@register
class LockOrderRule(ProjectRule):
    """RL009: no lock-acquisition cycles; no blocking calls under a lock."""

    rule_id = "RL009"
    title = "lock-order"
    severity = "error"
    rationale = (
        "The serving stack holds ~14 locks across service, obs, features "
        "and sharding. Two threads taking the same pair of locks in "
        "opposite orders deadlock on the right interleaving - and only "
        "under production concurrency, never in single-threaded tests. "
        "The acquisition graph is built interprocedurally over the call "
        "graph, so a lock taken in service/engine.py and re-taken through "
        "a call chain into sharding/coordinator.py still forms an edge. "
        "The same machinery flags locks held across blocking calls (pipe "
        "send/recv, Condition.wait on another lock, Future.result, "
        "join, SharedMemory attach): one slow peer then stalls every "
        "thread queued on that lock."
    )
    hint = (
        "impose a global acquisition order (document it where the locks "
        "are constructed), or narrow the critical section so the second "
        "lock/blocking call happens after release; if holding the lock "
        "across the call is the design (e.g. a lock that exists to "
        "serialize a pipe), suppress with `# repro-lint: disable=RL009` "
        "and a comment saying so"
    )

    def _analyze(self, project: ProjectModel) -> Iterator[Finding]:
        graph: CallGraph = project.callgraph()
        summaries: Dict[str, _FunctionSummary] = {}
        for key, info in graph.functions.items():
            summary = _FunctionSummary(info)
            summary.acquisitions, summary.calls = lock_events(
                info.node, info.class_name
            )
            for call in summary.calls:
                described = _blocking_description(call.call, info.class_name)
                if described is not None:
                    summary.blocking.append(
                        (described[0], described[1], call.line)
                    )
            summaries[key] = summary

        lock_kinds: Dict[str, str] = {}
        for module in project.modules:
            lock_kinds.update(lock_constructor_kinds(module.tree))

        edge_targets = self._edge_targets(graph)
        acquires_star = self._acquires_fixpoint(graph, summaries, edge_targets)
        blocking_star = self._blocking_fixpoint(graph, summaries, edge_targets)

        yield from self._cycle_findings(
            graph, summaries, edge_targets, acquires_star, lock_kinds
        )
        yield from self._blocking_findings(
            summaries, edge_targets, blocking_star
        )

    @staticmethod
    def _edge_targets(graph: CallGraph) -> Dict[Tuple[str, int], List[str]]:
        """``(caller key, line) -> callee keys`` for summary-grade edges."""
        out: Dict[Tuple[str, int], List[str]] = {}
        for edge in graph.edges:
            if edge.kind in _SUMMARY_KINDS:
                out.setdefault((edge.caller, edge.line), []).append(edge.callee)
        return out

    @staticmethod
    def _acquires_fixpoint(
        graph: CallGraph,
        summaries: Dict[str, _FunctionSummary],
        edge_targets: Dict[Tuple[str, int], List[str]],
    ) -> Dict[str, Set[str]]:
        """Locks each function may acquire, transitively through calls."""
        acquires: Dict[str, Set[str]] = {
            key: {a.lock for a in summary.acquisitions}
            for key, summary in summaries.items()
        }
        callees: Dict[str, Set[str]] = {}
        for (caller, _line), targets in edge_targets.items():
            callees.setdefault(caller, set()).update(targets)
        changed = True
        while changed:
            changed = False
            for key, summary_callees in callees.items():
                bucket = acquires.setdefault(key, set())
                before = len(bucket)
                for callee in summary_callees:
                    bucket.update(acquires.get(callee, ()))
                if len(bucket) != before:
                    changed = True
        return acquires

    @staticmethod
    def _blocking_fixpoint(
        graph: CallGraph,
        summaries: Dict[str, _FunctionSummary],
        edge_targets: Dict[Tuple[str, int], List[str]],
    ) -> Dict[str, Dict[str, Tuple[str, ...]]]:
        """``function -> {blocking description -> shortest call chain}``.

        A chain is the sequence of callee qualnames between the function
        and the actual blocking call (empty for direct sites).
        """
        blocking: Dict[str, Dict[str, Tuple[str, ...]]] = {}
        for key, summary in summaries.items():
            blocking[key] = {
                description: () for description, _recv, _line in summary.blocking
            }
        callees: Dict[str, Set[str]] = {}
        for (caller, _line), targets in edge_targets.items():
            callees.setdefault(caller, set()).update(targets)
        changed = True
        while changed:
            changed = False
            for key, summary_callees in callees.items():
                mine = blocking.setdefault(key, {})
                for callee in summary_callees:
                    callee_qualname = summaries[callee].info.qualname if (
                        callee in summaries
                    ) else callee
                    for description, chain in blocking.get(callee, {}).items():
                        if len(chain) >= 3:
                            continue  # deep chains add noise, not signal
                        extended = (callee_qualname,) + chain
                        current = mine.get(description)
                        if current is None or len(extended) < len(current):
                            mine[description] = extended
                            changed = True
        return blocking

    def _cycle_findings(
        self,
        graph: CallGraph,
        summaries: Dict[str, _FunctionSummary],
        edge_targets: Dict[Tuple[str, int], List[str]],
        acquires_star: Dict[str, Set[str]],
        lock_kinds: Dict[str, str],
    ) -> Iterator[Finding]:
        #: (held, acquired) -> (function info, line, via qualname or "")
        witnesses: Dict[Tuple[str, str], Tuple[FunctionInfo, int, str]] = {}
        order: Dict[str, Set[str]] = {}

        def note(held: str, acquired: str, info: FunctionInfo, line: int, via: str) -> None:
            order.setdefault(held, set()).add(acquired)
            witnesses.setdefault((held, acquired), (info, line, via))

        for key, summary in summaries.items():
            for acquisition in summary.acquisitions:
                for held in acquisition.held_before:
                    if held != acquisition.lock:
                        note(
                            held, acquisition.lock, summary.info,
                            acquisition.line, "",
                        )
                    elif lock_kinds.get(acquisition.lock, "Lock") not in (
                        "RLock", "Condition"
                    ):
                        # direct re-entry on a non-reentrant lock
                        yield self.project_finding(
                            summary.info,
                            acquisition.line,
                            f"non-reentrant lock {acquisition.lock} is "
                            "re-acquired while already held",
                        )
            for call in summary.calls:
                if not call.held:
                    continue
                for callee in edge_targets.get((key, call.line), ()):
                    callee_summary = summaries.get(callee)
                    via = (
                        callee_summary.info.qualname
                        if callee_summary is not None
                        else callee
                    )
                    for acquired in acquires_star.get(callee, ()):
                        for held in call.held:
                            if held != acquired:
                                note(held, acquired, summary.info, call.line, via)

        for cycle in _digraph_cycles(order):
            arcs = []
            witness: Optional[Tuple[FunctionInfo, int, str]] = None
            for position, held in enumerate(cycle):
                acquired = cycle[(position + 1) % len(cycle)]
                site = witnesses.get((held, acquired))
                if site is None:
                    continue
                info, line, via = site
                if witness is None:
                    witness = site
                arc = f"{held} -> {acquired} in {info.qualname}"
                if via:
                    arc += f" (via {via})"
                arcs.append(arc)
            if witness is None:
                continue
            info, line, _via = witness
            yield self.project_finding(
                info,
                line,
                "lock-order cycle: " + "; ".join(arcs),
            )

    def _blocking_findings(
        self,
        summaries: Dict[str, _FunctionSummary],
        edge_targets: Dict[Tuple[str, int], List[str]],
        blocking_star: Dict[str, Dict[str, Tuple[str, ...]]],
    ) -> Iterator[Finding]:
        for key, summary in summaries.items():
            reported: Set[Tuple[int, str]] = set()
            # direct blocking sites under a held lock
            for call in summary.calls:
                if not call.held:
                    continue
                described = _blocking_description(
                    call.call, summary.info.class_name
                )
                if described is None:
                    continue
                description, receiver = described
                effective = [
                    lock for lock in call.held if lock != receiver
                ] if receiver is not None else list(call.held)
                if receiver is not None and receiver in call.held:
                    # waiting on the lock you hold is the condition-variable
                    # pattern (wait releases it); only other locks matter
                    pass
                if not effective:
                    continue
                marker = (call.line, description)
                if marker in reported:
                    continue
                reported.add(marker)
                yield self.project_finding(
                    summary.info,
                    call.line,
                    f"lock {', '.join(sorted(effective))} held across "
                    f"blocking {description}",
                )
            # calls into functions that (transitively) block
            for call in summary.calls:
                if not call.held:
                    continue
                if _blocking_description(
                    call.call, summary.info.class_name
                ) is not None:
                    continue  # already reported as a direct site
                for callee in edge_targets.get((key, call.line), ()):
                    for description, chain in sorted(
                        blocking_star.get(callee, {}).items()
                    ):
                        callee_qualname = (
                            summaries[callee].info.qualname
                            if callee in summaries
                            else callee
                        )
                        path = " -> ".join((callee_qualname,) + chain)
                        marker = (call.line, description)
                        if marker in reported:
                            continue
                        reported.add(marker)
                        yield self.project_finding(
                            summary.info,
                            call.line,
                            f"lock {', '.join(sorted(call.held))} held "
                            f"across call to {callee_qualname}, which "
                            f"reaches blocking {description} ({path})",
                        )
                        break  # one finding per callee is enough


def _digraph_cycles(order: Dict[str, Set[str]]) -> List[List[str]]:
    """Elementary cycles of the lock-order digraph via SCC decomposition.

    Each SCC with more than one node (the digraph has no self-edges by
    construction) is reported once, as a canonical rotation starting from
    its smallest node, walking greedily through in-SCC successors.
    """
    index: Dict[str, int] = {}
    low: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    counter = [0]
    sccs: List[List[str]] = []

    for root in sorted(order):
        if root in index:
            continue
        work: List[Tuple[str, int]] = [(root, 0)]
        while work:
            node, child_index = work[-1]
            if child_index == 0:
                index[node] = low[node] = counter[0]
                counter[0] += 1
                stack.append(node)
                on_stack.add(node)
            children = sorted(order.get(node, ()))
            advanced = False
            while child_index < len(children):
                child = children[child_index]
                child_index += 1
                if child not in index:
                    work[-1] = (node, child_index)
                    work.append((child, 0))
                    advanced = True
                    break
                if child in on_stack:
                    low[node] = min(low[node], index[child])
            if advanced:
                continue
            work.pop()
            if low[node] == index[node]:
                component: List[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                if len(component) > 1:
                    sccs.append(sorted(component))
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])

    cycles: List[List[str]] = []
    for component in sccs:
        members = set(component)
        cycle = [component[0]]
        while True:
            successors = sorted(
                node for node in order.get(cycle[-1], ()) if node in members
            )
            next_node = next(
                (node for node in successors if node not in cycle),
                None,
            )
            if next_node is None:
                break
            cycle.append(next_node)
        cycles.append(cycle)
    return cycles


# ----------------------------------------------------------------------
# RL010: pickle safety of shard RPC payloads
# ----------------------------------------------------------------------

#: Calls whose result is a recursive TreeNode (never wire-safe).
_TREE_CALLS = frozenset(
    {"parse_bracket", "json_to_tree", "parse_json_string", "parse_xml_string",
     "TreeNode", "random_tree"}
)

#: Constructors whose instances do not pickle (locks, handles, pools, shm).
_UNPICKLABLE_CALLS = frozenset(
    {"Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore", "Event",
     "open", "SharedMemory", "Thread", "Process", "ThreadPoolExecutor",
     "ProcessPoolExecutor", "Pipe"}
)


def _dotted(expr: ast.expr) -> str:
    parts: List[str] = []
    current = expr
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
    return ".".join(reversed(parts))


def _is_conn_send(call: ast.Call) -> bool:
    func = call.func
    if not isinstance(func, ast.Attribute) or func.attr != "send":
        return False
    receiver = _dotted(func.value)
    return any("conn" in part for part in receiver.split(".") if part)


class _SendScan:
    """What one function contributes to the send-flow analysis."""

    __slots__ = ("sites", "env", "params")

    def __init__(self, info: FunctionInfo) -> None:
        self.sites: List[ast.Call] = []
        for node in ast.walk(info.node):
            if isinstance(node, ast.Call) and _is_conn_send(node):
                self.sites.append(node)
        self.env = reaching_assignments(info.node) if self.sites else {}
        self.params = parameter_names(info.node)


@register
class RpcPickleSafetyRule(ProjectRule):
    """RL010: only flat picklable encodings reach a shard pipe."""

    rule_id = "RL010"
    title = "rpc-pickle-safety"
    severity = "error"
    rationale = (
        "The shard protocol ships queries as (kind, bracket, parameter) "
        "tuples precisely so that no recursive TreeNode is ever pickled "
        "(deep trees overflow the pickler the same way they overflow "
        "naive traversals) and nothing process-bound - locks, open "
        "handles, executors, shared-memory segments, closures - crosses "
        "the pipe. A tree or lock reaching Connection.send works on "
        "every shallow test corpus and then fails (or hangs the worker "
        "protocol) on the first production-shaped payload. The check is "
        "interprocedural: helpers whose parameters end up on the wire "
        "(coordinator _call/_scatter) are send sites for their callers."
    )
    hint = (
        "encode the payload flat before sending (see encode_query in "
        "sharding/coordinator.py): brackets for trees, primitives for "
        "parameters; keep process-bound objects on their own side of "
        "the pipe"
    )

    def _analyze(self, project: ProjectModel) -> Iterator[Finding]:
        graph: CallGraph = project.callgraph()
        scans: Dict[str, _SendScan] = {
            key: _SendScan(info) for key, info in graph.functions.items()
        }
        #: (function key, parameter index) whose value reaches a send
        send_params: Set[Tuple[str, int]] = set()
        findings: List[Finding] = []

        # direct send sites: classify every argument expression
        for key, scan in scans.items():
            info = graph.functions[key]
            for site in scan.sites:
                for argument in site.args:
                    findings.extend(
                        self._classify_site(
                            info, site, argument, scan, send_params, key
                        )
                    )

        # interprocedural: arguments at call sites of send-reaching params
        edge_targets: Dict[Tuple[str, int], List[str]] = {}
        for edge in graph.edges:
            edge_targets.setdefault((edge.caller, edge.line), []).append(
                edge.callee
            )
        changed = True
        seen_sites: Set[Tuple[str, int, int]] = set()
        while changed:
            changed = False
            for key, info in graph.functions.items():
                scan = scans[key]
                for node in ast.walk(info.node):
                    if not isinstance(node, ast.Call):
                        continue
                    for callee in edge_targets.get((key, node.lineno), ()):
                        callee_info = graph.functions.get(callee)
                        if callee_info is None:
                            continue
                        offset = 1 if (
                            callee_info.class_name
                            and isinstance(node.func, ast.Attribute)
                        ) else 0
                        for position, argument in enumerate(node.args):
                            target = (callee, position + offset)
                            if target not in send_params:
                                continue
                            marker = (key, node.lineno, position)
                            if marker in seen_sites:
                                continue
                            seen_sites.add(marker)
                            before = len(send_params)
                            findings.extend(
                                self._classify_site(
                                    info, node, argument, scan,
                                    send_params, key,
                                    via=callee_info.qualname,
                                )
                            )
                            if len(send_params) != before:
                                changed = True
        for finding in findings:
            yield finding

    def _classify_site(
        self,
        info: FunctionInfo,
        site: ast.Call,
        argument: ast.expr,
        scan: _SendScan,
        send_params: Set[Tuple[str, int]],
        key: str,
        via: str = "",
    ) -> List[Finding]:
        findings: List[Finding] = []
        for reason, node in self._bad_values(argument, scan, send_params, key):
            suffix = f" (payload of {via})" if via else ""
            findings.append(
                self.project_finding(
                    info,
                    node.lineno if hasattr(node, "lineno") else site.lineno,
                    f"{reason} reaches Connection.send{suffix}; shard RPC "
                    "payloads must be flat picklable encodings",
                )
            )
        return findings

    def _bad_values(
        self,
        expr: ast.expr,
        scan: _SendScan,
        send_params: Set[Tuple[str, int]],
        key: str,
        depth: int = 5,
    ) -> Iterator[Tuple[str, ast.expr]]:
        if depth < 0:
            return
        if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            for element in expr.elts:
                yield from self._bad_values(
                    element, scan, send_params, key, depth - 1
                )
            return
        if isinstance(expr, ast.Dict):
            for value in expr.values:
                if value is not None:
                    yield from self._bad_values(
                        value, scan, send_params, key, depth - 1
                    )
            return
        if isinstance(expr, ast.Starred):
            yield from self._bad_values(
                expr.value, scan, send_params, key, depth - 1
            )
            return
        if isinstance(expr, ast.Lambda):
            yield "a lambda (closures do not pickle)", expr
            return
        if isinstance(expr, (ast.GeneratorExp,)):
            yield "a generator (generators do not pickle)", expr
            return
        if isinstance(expr, ast.Call):
            name = (
                expr.func.attr
                if isinstance(expr.func, ast.Attribute)
                else expr.func.id if isinstance(expr.func, ast.Name) else ""
            )
            if name in _TREE_CALLS:
                yield (
                    f"a recursive TreeNode (result of {name}())", expr
                )
            elif name in _UNPICKLABLE_CALLS:
                yield f"an unpicklable {name}() object", expr
            return
        if isinstance(expr, ast.Attribute):
            identity = lock_identity(expr, "")
            if identity is not None:
                yield f"a lock ({_dotted(expr)})", expr
            return
        if isinstance(expr, ast.Name):
            if expr.id in scan.env:
                for value in resolve_name(expr.id, scan.env):
                    yield from self._bad_values(
                        value, scan, send_params, key, depth - 1
                    )
            elif expr.id in scan.params:
                # the value comes from our caller: mark the parameter as a
                # send path so call sites get checked instead
                send_params.add((key, scan.params.index(expr.id)))
            return
