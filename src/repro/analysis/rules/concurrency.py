"""RL002: lock discipline in the concurrent layers.

The service and obs layers share mutable state across request threads.  The
project convention is a private lock attribute acquired with ``with
self._lock:`` (or ``_condition``, etc.); any attribute *ever* written under
such a block is treated as lock-guarded, and every other write to it in the
same class must also hold a lock.  ``__init__`` is exempt — construction
happens-before publication.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Set, Tuple

from repro.analysis.astutils import (
    iter_scope,
    iter_self_writes,
    self_attribute,
)
from repro.analysis.engine import ClassInfo, ModuleInfo, ProjectModel
from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, register

__all__ = ["LockDisciplineRule"]

#: ``self.<attr>`` names that count as locks when used as a context manager.
_LOCK_ATTR = re.compile(r"lock|mutex|condition|sema", re.IGNORECASE)


def _is_lock_with(item: ast.withitem) -> bool:
    attribute = self_attribute(item.context_expr)
    return attribute is not None and bool(_LOCK_ATTR.search(attribute))


def _walk_method(
    fn: ast.FunctionDef,
) -> Iterator[Tuple[str, int, bool]]:
    """``(attribute, line, under_lock)`` for every self-attribute write."""
    # Manual stack walk tracking lock depth; nested defs get their own
    # discipline (they run on whatever thread calls them).
    stack: List[Tuple[ast.AST, int]] = [(child, 0) for child in fn.body]
    while stack:
        node, depth = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        if isinstance(node, ast.stmt):
            for attribute, line in iter_self_writes(node):
                yield attribute, line, depth > 0
        entered = depth
        if isinstance(node, (ast.With, ast.AsyncWith)):
            if any(_is_lock_with(item) for item in node.items):
                entered = depth + 1
        for child in ast.iter_child_nodes(node):
            stack.append((child, entered))


@register
class LockDisciplineRule(Rule):
    """RL002: attributes written under a lock are never written without one."""

    rule_id = "RL002"
    title = "lock-discipline"
    severity = "error"
    rationale = (
        "TreeSearchService and the obs sinks share caches, counters and "
        "buffers across request threads. The convention is `with "
        "self._lock:` around every mutation of shared state; a single "
        "unlocked write reintroduces the torn-read/lost-update races the "
        "locks exist to prevent, and those races only surface under "
        "production concurrency, never in single-threaded tests."
    )
    hint = (
        "wrap the write in `with self._lock:` (or move it into __init__ if "
        "it is construction-time only)"
    )

    def check(self, module: ModuleInfo, project: ProjectModel) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(module, node)

    def _check_class(
        self, module: ModuleInfo, cls: ast.ClassDef
    ) -> Iterator[Finding]:
        methods = [
            stmt
            for stmt in cls.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        guarded: Set[str] = set()
        writes: Dict[str, List[Tuple[str, int, bool]]] = {}
        for fn in methods:
            records = list(_walk_method(fn))
            writes[fn.name] = records
            if fn.name != "__init__":
                for attribute, _line, under_lock in records:
                    if under_lock and not _LOCK_ATTR.search(attribute):
                        guarded.add(attribute)
        if not guarded:
            return
        for fn in methods:
            if fn.name == "__init__":
                continue
            for attribute, line, under_lock in writes[fn.name]:
                if attribute in guarded and not under_lock:
                    yield self.finding(
                        module,
                        line,
                        f"{cls.name}.{fn.name} writes self.{attribute} "
                        "without holding a lock, but the attribute is "
                        "lock-guarded elsewhere in the class",
                        symbol=f"{cls.name}.{fn.name}",
                    )
