"""Rules for tracing and metrics hygiene.

RL003 keeps span lifecycles structural: a span must be entered via ``with``
(the context manager guarantees ``finish`` on every exit path), because a
leaked open span corrupts the parent chain of every span recorded after it
on that context.  RL004 keeps metric label sets enumerable: a label value
interpolated from unbounded data (tree ids, queries, error strings) makes
the registry grow one time series per distinct value until snapshotting and
Prometheus scraping fall over.  The same rule holds span names to the same
vocabulary bar, because span paths key the sampling profiler's sample table
(:mod:`repro.obs.profile`) and trace groupings.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set

from repro.analysis.astutils import call_name, iter_scope, parent_chain
from repro.analysis.engine import ModuleInfo, ProjectModel
from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, register

__all__ = ["MetricLabelCardinalityRule", "SpanHygieneRule"]

#: Call names that create a span (module-level helper and Tracer method).
_SPAN_CALLS = frozenset({"span", "start_span"})


def _enclosing_symbol(node: ast.AST) -> str:
    parts = []
    for ancestor in parent_chain(node):
        if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            parts.append(ancestor.name)
    return ".".join(reversed(parts))


def _enclosing_scope(node: ast.AST) -> Optional[ast.AST]:
    for ancestor in parent_chain(node):
        if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Module)):
            return ancestor
    return None


@register
class SpanHygieneRule(Rule):
    """RL003: spans are only opened via ``with`` (no orphan span calls)."""

    rule_id = "RL003"
    title = "span-hygiene"
    severity = "error"
    rationale = (
        "A span entered without a context manager has no guaranteed finish "
        "on exceptions; the contextvars parent chain then dangles, so every "
        "span recorded afterwards on that context nests under a dead "
        "parent. The `with tracing.span(...)` form closes the span on every "
        "exit path; anything else leaks."
    )
    hint = "open spans with `with tracing.span(name) as sp:`"

    def check(self, module: ModuleInfo, project: ProjectModel) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call) or call_name(node) not in _SPAN_CALLS:
                continue
            if self._allowed(node, module):
                continue
            yield self.finding(
                module,
                node.lineno,
                f"span call `{call_name(node)}(...)` is not entered via a "
                "`with` block",
                symbol=_enclosing_symbol(node),
            )

    def _allowed(self, node: ast.Call, module: ModuleInfo) -> bool:
        parent = getattr(node, "repro_parent", None)
        # `with span(...) as sp:` — the canonical form.
        if isinstance(parent, ast.withitem) and parent.context_expr is node:
            return True
        # `return tracer.span(...)` — factory delegation (tracing.span itself).
        if isinstance(parent, ast.Return):
            return True
        # `cm = span(...)` later entered with `with cm:` in the same scope.
        if isinstance(parent, ast.Assign) and len(parent.targets) == 1:
            target = parent.targets[0]
            if isinstance(target, ast.Name):
                return self._entered_later(target.id, node, module)
        return False

    @staticmethod
    def _entered_later(name: str, call: ast.Call, module: ModuleInfo) -> bool:
        scope = _enclosing_scope(call)
        if scope is None:
            return False
        for node in iter_scope(scope, skip_nested=False):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    expr = item.context_expr
                    if isinstance(expr, ast.Name) and expr.id == name:
                        return True
        return False


#: Instrument mutators whose keyword arguments are label values.  ``set`` is
#: deliberately absent: Span.set(**attributes) shares the name and span
#: attributes legitimately carry unbounded values.
_LABEL_METHODS = frozenset({"inc", "dec", "observe", "state"})

#: Call names that build strings out of runtime values.
_FORMATTING_CALLS = frozenset({"str", "repr", "format"})


@register
class MetricLabelCardinalityRule(Rule):
    """RL004: metric labels and span names come from bounded vocabularies."""

    rule_id = "RL004"
    title = "metric-label-cardinality"
    severity = "warning"
    rationale = (
        "MetricsRegistry keeps one time series per distinct label "
        "combination. A label built with an f-string (or str()/%/+) of an "
        "unbounded value - tree ids, thresholds, error messages - grows the "
        "registry without limit, bloating every snapshot and Prometheus "
        "scrape until the process pays O(corpus) per observation. Span "
        "names are held to the same bar: span paths key the sampling "
        "profiler's sample table and every trace grouping, so a name "
        "interpolating a computed value (a call result, a subscript) makes "
        "the profile vocabulary unbounded too. Attribute/name "
        "interpolations (f\"filter.{name}\") stay allowed - they draw from "
        "small closed sets the code already enumerates."
    )
    hint = (
        "pass a value from a bounded enumeration (literal, constant, or a "
        "small closed set computed upstream); unbounded detail belongs in "
        "span attributes, not metric labels or span names"
    )

    def check(self, module: ModuleInfo, project: ProjectModel) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if call_name(node) in _SPAN_CALLS and node.args:
                problem = self._span_name_interpolation(node.args[0])
                if problem:
                    yield self.finding(
                        module,
                        node.args[0].lineno,
                        f"span name for `{call_name(node)}(...)` is built "
                        f"with {problem}; span paths key profiler samples, "
                        "so their vocabulary must stay bounded",
                        symbol=_enclosing_symbol(node),
                    )
            if not isinstance(node.func, ast.Attribute):
                continue
            if node.func.attr not in _LABEL_METHODS:
                continue
            for keyword in node.keywords:
                if keyword.arg is None:
                    continue  # **labels: the values are bound upstream
                problem = self._interpolation(keyword.value)
                if problem:
                    yield self.finding(
                        module,
                        keyword.value.lineno,
                        f"metric label {keyword.arg!r} is built with "
                        f"{problem}; label values must come from a bounded "
                        "set",
                        symbol=_enclosing_symbol(node),
                    )

    @staticmethod
    def _interpolation(value: ast.expr) -> str:
        if isinstance(value, ast.JoinedStr):
            return "an f-string"
        if isinstance(value, ast.Call) and call_name(value) in _FORMATTING_CALLS:
            return f"{call_name(value)}()"
        if isinstance(value, ast.BinOp) and isinstance(value.op, (ast.Mod, ast.Add)):
            # flag only when a string literal participates - arithmetic is fine
            for side in (value.left, value.right):
                if isinstance(side, ast.Constant) and isinstance(side.value, str):
                    return "string concatenation/%-formatting"
            for side in (value.left, value.right):
                if isinstance(side, ast.JoinedStr):
                    return "string concatenation of an f-string"
        return ""

    @classmethod
    def _span_name_interpolation(cls, value: ast.expr) -> str:
        """Like :meth:`_interpolation`, but f-strings interpolating plain
        names/attributes are allowed — `f"filter.{name}"` draws from the
        registered filter set, a bounded vocabulary by construction."""
        if isinstance(value, ast.JoinedStr):
            for part in value.values:
                if isinstance(part, ast.FormattedValue) and not isinstance(
                    part.value, (ast.Name, ast.Attribute)
                ):
                    return "an f-string interpolating a computed value"
            return ""
        return cls._interpolation(value)
