"""RL011: writer/loader agreement on the versioned ``"repro-*"`` schemas.

Every persistent artifact in this repository is a JSON (or JSON-sidecar)
document stamped with a ``"format": "repro-<thing>"`` marker and a
``"version"`` integer — feature planes, traces, profiles, bench ledgers,
indexes, workloads.  Writers and loaders live in the same module by
convention but drift independently: a writer grows a key the loader never
reads (dead weight that bloats every artifact), or a loader starts reading
a key no writer emits (a latent ``KeyError``/silent-``None`` that only
fires on artifacts written after the reader shipped — the classic
cross-version bug).

The rule anchors on the format marker itself: a dict literal carrying
``"format": "repro-*"`` marks its enclosing function as a *writer*; a
``payload.get("format")`` / ``payload["format"]`` access (plus the
comparison that names the expected format string) marks a *loader*.  From
each anchor it collects the key vocabulary: written keys are the string
dict-literal keys across the writer function, its same-module transitive
callees, and — when the writer is a method — its same-class siblings
(serializer classes assemble records in one method and write the envelope
in another); read keys are the string subscripts and ``.get`` calls
across the loader's *whole module* — loaders hand the decoded payload to
sibling consumers (``compare_records``, ``format_replay``) that a
callee-closure of the loader cannot see.  The two vocabularies must match
per format, with one asymmetry: a writer dict that merges ``**expr`` has
a knowingly incomplete key set, so read-but-never-written is not judged
for that format (written-but-never-read still is).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.astutils import parent_chain
from repro.analysis.callgraph import CallGraph, FunctionInfo
from repro.analysis.engine import ModuleInfo, ProjectModel
from repro.analysis.findings import Finding
from repro.analysis.registry import register
from repro.analysis.rules.interprocedural import ProjectRule

__all__ = ["SchemaDriftRule"]

#: Keys every envelope carries; present on both sides by construction.
_ENVELOPE_KEYS = frozenset({"format", "version"})


def _module_string_constants(tree: ast.Module) -> Dict[str, str]:
    """Top-level ``NAME = "literal"`` bindings (schema markers live here)."""
    out: Dict[str, str] = {}
    for node in tree.body:
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Constant):
            if isinstance(node.value.value, str):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        out[target.id] = node.value.value
    return out


def _string_value(
    expr: Optional[ast.expr], constants: Dict[str, str]
) -> Optional[str]:
    """A compile-time string: literal, or module-level constant name."""
    if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
        return expr.value
    if isinstance(expr, ast.Name):
        return constants.get(expr.id)
    if isinstance(expr, ast.Attribute):
        return constants.get(expr.attr)
    return None


def _enclosing_function(node: ast.AST) -> Optional[ast.AST]:
    for ancestor in parent_chain(node):
        if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return ancestor
    return None


class _Anchor:
    """One writer or loader anchor: the function plus its anchor line."""

    __slots__ = ("info", "line", "version", "has_splat")

    def __init__(
        self,
        info: FunctionInfo,
        line: int,
        version: Optional[int],
        has_splat: bool = False,
    ) -> None:
        self.info = info
        self.line = line
        self.version = version
        #: the anchor dict merges ``**expr`` — its key set is knowingly
        #: incomplete, so read-but-never-written cannot be judged
        self.has_splat = has_splat


@register
class SchemaDriftRule(ProjectRule):
    """RL011: dict keys written at the writer match keys read at the loader."""

    rule_id = "RL011"
    title = "schema-drift"
    severity = "error"
    rationale = (
        "Every persistent artifact carries a 'format': 'repro-*' marker "
        "and a version. Writers and loaders drift independently: a key "
        "written but never read is dead weight in every artifact on disk "
        "(the bench ledger and feature sidecars are written per-shard, "
        "per-run); a key read but never written is a latent KeyError or "
        "silent None default that only fires on artifacts produced by a "
        "different version of the code - precisely the failure the "
        "version stamp exists to prevent. The rule cross-checks the key "
        "vocabulary of each writer (dict-literal keys, through its "
        "same-module helpers) against its loader (.get/[...] string "
        "accesses) per format marker."
    )
    hint = (
        "add the missing key to the writer dict (bumping the schema "
        "version if old artifacts must still load), or delete the stale "
        "key/access on the other side; keep writer and loader key "
        "vocabularies identical per format"
    )

    def _analyze(self, project: ProjectModel) -> Iterator[Finding]:
        graph: CallGraph = project.callgraph()
        writers: Dict[str, List[_Anchor]] = {}
        readers: Dict[str, List[_Anchor]] = {}
        for module in project.modules:
            constants = _module_string_constants(module.tree)
            for node in ast.walk(module.tree):
                self._scan_node(node, constants, graph, writers, readers)
        for format_name in sorted(set(writers) & set(readers)):
            yield from self._cross_check(
                format_name, writers[format_name], readers[format_name], graph
            )

    # -- anchor discovery ------------------------------------------------
    def _scan_node(
        self,
        node: ast.AST,
        constants: Dict[str, str],
        graph: CallGraph,
        writers: Dict[str, List[_Anchor]],
        readers: Dict[str, List[_Anchor]],
    ) -> None:
        if isinstance(node, ast.Dict):
            format_name, version = self._writer_marker(node, constants)
            if format_name is not None:
                anchor = self._anchor_for(
                    node, graph, version,
                    has_splat=any(key is None for key in node.keys),
                )
                if anchor is not None:
                    writers.setdefault(format_name, []).append(anchor)
        format_name = self._reader_marker(node, constants)
        if format_name is not None:
            anchor = self._anchor_for(node, graph, None)
            if anchor is not None:
                readers.setdefault(format_name, []).append(anchor)

    @staticmethod
    def _writer_marker(
        node: ast.Dict, constants: Dict[str, str]
    ) -> Tuple[Optional[str], Optional[int]]:
        format_name: Optional[str] = None
        version: Optional[int] = None
        for key, value in zip(node.keys, node.values):
            key_str = _string_value(key, constants)
            if key_str == "format":
                candidate = _string_value(value, constants)
                if candidate is not None and candidate.startswith("repro-"):
                    format_name = candidate
            elif key_str == "version":
                if isinstance(value, ast.Constant) and isinstance(
                    value.value, int
                ):
                    version = value.value
        return format_name, version

    def _reader_marker(
        self, node: ast.AST, constants: Dict[str, str]
    ) -> Optional[str]:
        """A comparison of a ``format`` access against a ``repro-*`` string."""
        if not isinstance(node, ast.Compare) or len(node.comparators) != 1:
            return None
        sides = [node.left, node.comparators[0]]
        access = next((s for s in sides if self._is_format_access(s)), None)
        if access is None:
            return None
        other = sides[1] if access is sides[0] else sides[0]
        value = _string_value(other, constants)
        if value is not None and value.startswith("repro-"):
            return value
        return None

    @staticmethod
    def _is_format_access(expr: ast.expr) -> bool:
        if isinstance(expr, ast.Subscript):
            index = expr.slice
            return isinstance(index, ast.Constant) and index.value == "format"
        if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Attribute):
            if expr.func.attr == "get" and expr.args:
                first = expr.args[0]
                return isinstance(first, ast.Constant) and first.value == "format"
        return False

    @staticmethod
    def _anchor_for(
        node: ast.AST,
        graph: CallGraph,
        version: Optional[int],
        has_splat: bool = False,
    ) -> Optional[_Anchor]:
        fn = _enclosing_function(node)
        if fn is None:
            return None
        info = graph.function_for(fn)
        if info is None:
            return None
        return _Anchor(info, node.lineno, version, has_splat)

    # -- key vocabulary and cross-check ---------------------------------
    def _cross_check(
        self,
        format_name: str,
        writers: List[_Anchor],
        readers: List[_Anchor],
        graph: CallGraph,
    ) -> Iterator[Finding]:
        written: Dict[str, Tuple[_Anchor, int]] = {}
        read: Dict[str, Tuple[_Anchor, int]] = {}
        for anchor in writers:
            for key, line in self._written_keys(anchor, graph):
                written.setdefault(key, (anchor, line))
        for anchor in readers:
            for key, line in self._read_keys(anchor, graph):
                read.setdefault(key, (anchor, line))
        version = next(
            (a.version for a in writers if a.version is not None), None
        )
        tag = f"{format_name} v{version}" if version is not None else format_name
        for key in sorted(set(written) - set(read) - _ENVELOPE_KEYS):
            anchor, line = written[key]
            yield self.project_finding(
                anchor.info,
                line,
                f"schema {tag}: key {key!r} is written but no loader of "
                "this format ever reads it",
            )
        if not any(anchor.has_splat for anchor in writers):
            for key in sorted(set(read) - set(written) - _ENVELOPE_KEYS):
                anchor, line = read[key]
                yield self.project_finding(
                    anchor.info,
                    line,
                    f"schema {tag}: key {key!r} is read but no writer of "
                    "this format ever emits it",
                )

    def _closure(self, anchor: _Anchor, graph: CallGraph) -> List[FunctionInfo]:
        """The anchor, its same-module transitive callees, and — for a
        method — its same-class siblings: serializer classes routinely
        assemble payload records in one method and write the envelope in
        another (``Baseline.from_findings`` vs ``Baseline.save``)."""
        roots = [anchor.info]
        if anchor.info.class_name:
            for info in graph.functions.values():
                if (
                    info.module is anchor.info.module
                    and info.class_name == anchor.info.class_name
                    and info is not anchor.info
                ):
                    roots.append(info)
        out = list(roots)
        for root in roots:
            for key in graph.transitive_callees(root.key):
                info = graph.functions.get(key)
                if info is not None and info.module is anchor.info.module:
                    out.append(info)
        return out

    def _written_keys(
        self, anchor: _Anchor, graph: CallGraph
    ) -> Iterator[Tuple[str, int]]:
        for info in self._closure(anchor, graph):
            for node in ast.walk(info.node):
                if isinstance(node, ast.Dict):
                    for key in node.keys:
                        if isinstance(key, ast.Constant) and isinstance(
                            key.value, str
                        ):
                            yield key.value, node.lineno
                elif isinstance(node, ast.Subscript) and isinstance(
                    node.ctx, ast.Store
                ):
                    index = node.slice
                    if isinstance(index, ast.Constant) and isinstance(
                        index.value, str
                    ):
                        yield index.value, node.lineno

    def _read_keys(
        self, anchor: _Anchor, graph: CallGraph
    ) -> Iterator[Tuple[str, int]]:
        # module-wide: consumers of the decoded payload live beside the
        # loader but are not its callees (the loader returns to them)
        for node in ast.walk(anchor.info.module.tree):
            if isinstance(node, ast.Subscript) and isinstance(
                node.ctx, ast.Load
            ):
                index = node.slice
                if isinstance(index, ast.Constant) and isinstance(
                    index.value, str
                ):
                    yield index.value, node.lineno
            elif isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                if node.func.attr in {"get", "pop"} and node.args:
                    first = node.args[0]
                    if isinstance(first, ast.Constant) and isinstance(
                        first.value, str
                    ):
                        yield first.value, node.lineno
