"""Repo-wide structural hygiene rules.

RL005 guards stack safety: trees in the target workloads reach depths that
overflow CPython's default recursion limit, so functions that recurse down
``Node.children`` must either be iterative or sit in a module that manages
``sys.setrecursionlimit`` the way ``editdist/alignment.py`` does.  RL007
keeps ``__all__`` honest — the export list is what mypy's
``no_implicit_reexport`` and the API docs trust.  RL008 bans blanket
exception handlers, which in this codebase have a history of swallowing
oracle violations; the one sanctioned catch lives in ``verify/shrink.py``
and carries a pragma explaining itself.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set

from repro.analysis.astutils import (
    FunctionNode,
    call_name,
    iter_scope,
    parent_chain,
    string_elements,
)
from repro.analysis.engine import ModuleInfo, ProjectModel
from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, register

__all__ = ["BareExceptRule", "ExportSurfaceRule", "UnboundedRecursionRule"]

_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)

#: Attribute names that mark traversal of the tree structure.
_CHILD_ATTRS = frozenset({"children", "_children"})


def _module_sets_recursionlimit(module: ModuleInfo) -> bool:
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Call) and call_name(node) == "setrecursionlimit":
            return True
    return False


def _qualified_name(fn: FunctionNode) -> str:
    parts = [fn.name]
    for ancestor in parent_chain(fn):
        if isinstance(ancestor, (*_FUNCTION_NODES, ast.ClassDef)):
            parts.append(ancestor.name)
    return ".".join(reversed(parts))


def _is_recursive(fn: FunctionNode) -> bool:
    """Does ``fn``'s own body call something named like itself?

    Both ``helper(...)`` and ``node.clone()``-style method recursion count:
    a method recursing through child objects calls ``child.<own name>()``,
    not ``self.<own name>()``.
    """
    for node in iter_scope(fn):
        if isinstance(node, ast.Call) and call_name(node) == fn.name:
            return True
    return False


def _touches_children(fn: FunctionNode) -> bool:
    for node in iter_scope(fn):
        if isinstance(node, ast.Attribute) and node.attr in _CHILD_ATTRS:
            return True
    return False


@register
class UnboundedRecursionRule(Rule):
    """RL005: no unguarded recursion over ``Node.children`` outside editdist."""

    rule_id = "RL005"
    title = "unbounded-recursion"
    severity = "warning"
    rationale = (
        "Production corpora contain trees deeper than CPython's default "
        "recursion limit (~1000 frames). A function that recurses down "
        "Node.children works on every test corpus and then dies with "
        "RecursionError on the first deep tree. editdist/ is exempt "
        "because alignment.py manages sys.setrecursionlimit explicitly; "
        "everywhere else, traversals must be iterative (explicit stack) or "
        "the module must do the same recursionlimit dance."
    )
    hint = (
        "rewrite with an explicit stack/worklist, or manage "
        "sys.setrecursionlimit like editdist/alignment.py and suppress "
        "with `# repro-lint: disable=RL005` plus a depth-bound argument"
    )

    def check(self, module: ModuleInfo, project: ProjectModel) -> Iterator[Finding]:
        if "editdist" in module.path.parts:
            return
        if _module_sets_recursionlimit(module):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, _FUNCTION_NODES):
                continue
            if _is_recursive(node) and _touches_children(node):
                symbol = _qualified_name(node)
                yield self.finding(
                    module,
                    node.lineno,
                    f"{symbol} recurses over tree children without a "
                    "recursion-depth guard",
                    symbol=symbol,
                )


def _top_level_bindings(tree: ast.Module) -> Set[str]:
    """Names bound at module top level (descending into top-level If/Try)."""
    bound: Set[str] = set()
    stack: List[ast.stmt] = list(tree.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (*_FUNCTION_NODES, ast.ClassDef)):
            bound.add(node.name)
        elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                for leaf in ast.walk(target):
                    if isinstance(leaf, ast.Name):
                        bound.add(leaf.id)
        elif isinstance(node, ast.Import):
            for alias in node.names:
                bound.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                if alias.name != "*":
                    bound.add(alias.asname or alias.name)
        elif isinstance(node, ast.If):
            stack.extend(node.body)
            stack.extend(node.orelse)
        elif isinstance(node, ast.Try):
            stack.extend(node.body)
            stack.extend(node.orelse)
            stack.extend(node.finalbody)
            for handler in node.handlers:
                stack.extend(handler.body)
    return bound


def _import_star(tree: ast.Module) -> bool:
    return any(
        isinstance(node, ast.ImportFrom)
        and any(alias.name == "*" for alias in node.names)
        for node in ast.walk(tree)
    )


def _public_from_imports(tree: ast.Module) -> Iterator[str]:
    for node in tree.body:
        if not isinstance(node, ast.ImportFrom):
            continue
        if node.module == "__future__":
            continue
        for alias in node.names:
            name = alias.asname or alias.name
            if name != "*" and not name.startswith("_"):
                yield name


@register
class ExportSurfaceRule(Rule):
    """RL007: ``__all__`` lists exactly what the module actually exports."""

    rule_id = "RL007"
    title = "export-surface"
    severity = "error"
    rationale = (
        "__all__ is the contract the API docs, star-imports and mypy's "
        "no_implicit_reexport all trust. A name listed but not bound "
        "breaks `from pkg import *` at runtime; a re-export bound in an "
        "__init__ but missing from __all__ is invisible to strict typing "
        "consumers and silently drops out of the documented surface."
    )
    hint = "keep __all__ in sync with the module's top-level bindings"

    def check(self, module: ModuleInfo, project: ProjectModel) -> Iterator[Finding]:
        declaration = self._find_all(module.tree)
        if declaration is None:
            return
        node, names = declaration
        bound = _top_level_bindings(module.tree)
        has_star = _import_star(module.tree)
        seen: Set[str] = set()
        for name in names:
            if name in seen:
                yield self.finding(
                    module,
                    node.lineno,
                    f"__all__ lists {name!r} more than once",
                    symbol="__all__",
                )
            seen.add(name)
            if name not in bound and not has_star:
                yield self.finding(
                    module,
                    node.lineno,
                    f"__all__ lists {name!r} but the module never binds it",
                    symbol="__all__",
                )
        if module.is_init and not has_star:
            for name in _public_from_imports(module.tree):
                if name not in seen:
                    yield self.finding(
                        module,
                        node.lineno,
                        f"package re-exports {name!r} but __all__ omits it",
                        symbol="__all__",
                        hint=(
                            "add the name to __all__ (or alias it with a "
                            "leading underscore if it is internal)"
                        ),
                    )

    @staticmethod
    def _find_all(tree: ast.Module) -> Optional[tuple]:
        for node in tree.body:
            if isinstance(node, ast.Assign) and any(
                isinstance(t, ast.Name) and t.id == "__all__" for t in node.targets
            ):
                names = string_elements(node.value)
                if names is not None:
                    return node, names
        return None


#: Exception names whose blanket catch RL008 bans.
_BLANKET = frozenset({"Exception", "BaseException"})


def _blanket_name(expr: Optional[ast.expr]) -> str:
    if expr is None:
        return "bare except"
    if isinstance(expr, ast.Name) and expr.id in _BLANKET:
        return f"except {expr.id}"
    if isinstance(expr, ast.Tuple):
        for element in expr.elts:
            if isinstance(element, ast.Name) and element.id in _BLANKET:
                return f"except (... {element.id} ...)"
    return ""


@register
class BareExceptRule(Rule):
    """RL008: no bare ``except`` / ``except Exception`` blanket handlers."""

    rule_id = "RL008"
    title = "bare-except"
    severity = "error"
    rationale = (
        "A blanket handler cannot distinguish the failure it anticipates "
        "from the bug it doesn't - in this codebase that means an oracle "
        "violation or a corrupted signature gets logged-and-ignored "
        "instead of failing loudly. The one sanctioned catch is "
        "verify/shrink.py's _holds (a shrinking probe must never escalate "
        "a violation into a crash witness); it carries an explanatory "
        "pragma, which is the required pattern for any future exception."
    )
    hint = (
        "catch the specific exceptions the operation can raise; if a "
        "blanket catch is genuinely required, add `# repro-lint: "
        "disable=RL008` with a comment justifying it"
    )

    def check(self, module: ModuleInfo, project: ProjectModel) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            shape = _blanket_name(node.type)
            if shape:
                yield self.finding(
                    module,
                    node.lineno,
                    f"blanket `{shape}` handler",
                    symbol=_symbol_for(node),
                )


def _symbol_for(node: ast.AST) -> str:
    parts = []
    for ancestor in parent_chain(node):
        if isinstance(ancestor, (*_FUNCTION_NODES, ast.ClassDef)):
            parts.append(ancestor.name)
    return ".".join(reversed(parts))
