"""Rules protecting the filter-and-refine contract (Theorem 4.2).

Every :class:`LowerBoundFilter` promises ``bound(q, d) <= EDist(q, d)``; the
whole search architecture (range/knn pruning, tiered cascades, the service
cache) is only correct if that holds.  RL001 checks the *shape* of the
contract — override signatures stay compatible, and every concrete filter is
wired to a soundness oracle in ``repro.verify.oracles`` so the dynamic
harness actually exercises it.  RL006 checks the *cost* side: the reason
filters exist is that the bound is orders of magnitude cheaper than the
refinement step, so refinement-grade calls inside a filter's per-candidate
path defeat the architecture even when the answer stays correct.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Tuple

from repro.analysis.astutils import LOOP_NODES, call_name, iter_scope, parent_chain
from repro.analysis.engine import ClassInfo, ModuleInfo, ProjectModel
from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, register

__all__ = ["FilterContractRule", "HotPathPurityRule"]

_ROOT = "LowerBoundFilter"

#: method -> exact positional parameter names an override must keep.
#: ``None`` entries are optional methods (checked only when overridden).
_SIGNATURES = {
    "fit": ("self", "trees"),
    "refutes": ("self", "query", "data", "threshold"),
    "bound": ("self", "query", "data"),
    "signature": ("self", "tree"),
}


def _positional_names(fn: ast.FunctionDef) -> Optional[Tuple[str, ...]]:
    """Positional parameter names, or ``None`` when *args/**kwargs blur them."""
    args = fn.args
    if args.vararg or args.kwarg or args.kwonlyargs:
        return None
    return tuple(arg.arg for arg in args.posonlyargs + args.args)


def _is_exempt(info: ClassInfo) -> bool:
    """The ABC itself and private helpers are outside RL001's scope."""
    return info.name == _ROOT or info.name.startswith("_")


@register
class FilterContractRule(Rule):
    """RL001: filter overrides keep the contract signature and every
    concrete filter is registered with a soundness oracle."""

    rule_id = "RL001"
    title = "filter-contract"
    severity = "error"
    rationale = (
        "Every LowerBoundFilter must be a sound lower bound of the tree edit "
        "distance (Theorem 4.2); repro.verify checks that dynamically, but "
        "only for filters its oracle registry knows about. A filter that "
        "drifts its override signatures breaks polymorphic callers (the "
        "cascade calls refutes(query, data, threshold) on every stage), and "
        "a filter missing from repro.verify.oracles ships with its soundness "
        "unchecked."
    )
    hint = (
        "match the LowerBoundFilter signature exactly, and register the "
        "class with a bound-soundness oracle in repro/verify/oracles.py"
    )

    def check(self, module: ModuleInfo, project: ProjectModel) -> Iterator[Finding]:
        for info in project.subclasses_of(_ROOT):
            if info.module is not module or _is_exempt(info):
                continue
            yield from self._check_signatures(module, info)
            if project.has_oracles_module and project.is_concrete_filter(info):
                if info.name not in project.oracle_names:
                    yield self.finding(
                        module,
                        info.node.lineno,
                        f"filter {info.name} is not referenced by any "
                        "soundness oracle in repro.verify.oracles",
                        symbol=info.name,
                        hint=(
                            "add the filter to the oracle registry in "
                            "repro/verify/oracles.py so `repro verify` "
                            "exercises its lower-bound soundness"
                        ),
                    )

    def _check_signatures(
        self, module: ModuleInfo, info: ClassInfo
    ) -> Iterator[Finding]:
        for method, expected in _SIGNATURES.items():
            fn = info.methods.get(method)
            if fn is None:
                continue
            actual = _positional_names(fn)
            if actual == expected:
                continue
            shown = "(" + ", ".join(actual) + ")" if actual is not None else (
                "*args/**kwargs"
            )
            yield self.finding(
                module,
                fn.lineno,
                f"{info.name}.{method} signature {shown} does not match the "
                f"LowerBoundFilter contract ({', '.join(expected)})",
                symbol=f"{info.name}.{method}",
            )


#: Refinement-grade calls: quadratic-or-worse edit distances and tree prep.
_HEAVY_CALLS = frozenset(
    {
        "tree_edit_distance",
        "tree_edit_mapping",
        "memoized_edit_distance",
        "alignment_distance",
        "constrained_edit_distance",
        "selkow_edit_distance",
        "prepare_tree",
    }
)

#: Fitting/extraction calls: legitimate at fit time, not per candidate.
_FIT_CALLS = frozenset({"signature", "fit", "fit_from_store", "_index_signature"})

#: Methods on the per-candidate hot path of a filter.
_HOT_METHODS = ("bound", "bounds", "refutes")


@register
class HotPathPurityRule(Rule):
    """RL006: no refinement-grade or extraction calls on the filter hot path."""

    rule_id = "RL006"
    title = "hot-path-purity"
    severity = "error"
    rationale = (
        "Filters exist because their bound is orders of magnitude cheaper "
        "than the Zhang-Shasha refinement step. An edit-distance or "
        "prepare_tree call inside bound/bounds/refutes, or feature "
        "extraction inside a per-candidate loop, silently turns the filter "
        "funnel into a full refinement pass - correct answers, catastrophic "
        "cost, invisible to unit tests on small corpora."
    )
    hint = (
        "precompute per-tree state in fit()/signature() and keep "
        "bound()/refutes() to cheap vector arithmetic"
    )

    def check(self, module: ModuleInfo, project: ProjectModel) -> Iterator[Finding]:
        for info in project.subclasses_of(_ROOT):
            if info.module is not module:
                continue
            for method in _HOT_METHODS:
                fn = info.methods.get(method)
                if fn is None:
                    continue
                symbol = f"{info.name}.{method}"
                for node in iter_scope(fn):
                    if not isinstance(node, ast.Call):
                        continue
                    name = call_name(node)
                    if name in _HEAVY_CALLS:
                        yield self.finding(
                            module,
                            node.lineno,
                            f"{symbol} calls refinement-grade {name}() on "
                            "the per-candidate filter path",
                            symbol=symbol,
                        )
                    elif name in _FIT_CALLS and self._in_loop(node, fn):
                        yield self.finding(
                            module,
                            node.lineno,
                            f"{symbol} calls extraction-grade {name}() "
                            "inside a per-candidate loop",
                            symbol=symbol,
                            hint=(
                                "hoist extraction out of the loop; "
                                "signatures belong in fit()/add(), not on "
                                "the per-candidate path"
                            ),
                        )

    @staticmethod
    def _in_loop(node: ast.AST, stop: ast.AST) -> bool:
        for ancestor in parent_chain(node):
            if ancestor is stop:
                return False
            if isinstance(ancestor, LOOP_NODES):
                return True
        return False
