"""Project-wide call graph over the :class:`~repro.analysis.engine.ProjectModel`.

The per-function rules of PR 5 see one body at a time; the concurrency and
serialization contracts this repository actually depends on (lock order,
what reaches a shard pipe) span calls.  This module gives every rule the
same interprocedural substrate: one :class:`CallGraph` per analysis run,
built purely from names — the analyzer never imports the code it checks.

Resolution is deliberately *conservative over-approximation*:

* ``f(...)`` resolves to the module-local (or from-imported) definition,
  falling back to a unique project-wide top-level function of that name;
* ``self.m(...)`` resolves through the class hierarchy (nearest ancestor
  definition) **plus** every subclass override — dynamic dispatch may pick
  any of them at runtime, and a lock-order rule must see all;
* ``obj.m(...)`` with an untyped receiver resolves to *every* project
  method named ``m``, unless the name is a common builtin-container method
  or the candidate set is implausibly wide (:data:`ATTR_CANDIDATE_CAP`), in
  which case the call is recorded as **unresolved** rather than guessed;
* anything else (stdlib calls, computed callees) is unresolved.

Unresolved calls are first-class: they are kept per caller so rules can
stay sound — a rule that needs "no blocking call can happen here" must
treat an unresolved callee by *name* (e.g. ``.recv``) rather than assume
it is harmless.

The graph exports to DOT and JSON (``repro lint --callgraph``) so call
structure can be diffed across PRs in CI.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.astutils import FunctionNode, call_name
from repro.analysis.engine import ClassInfo, ModuleInfo, ProjectModel

__all__ = [
    "ATTR_CANDIDATE_CAP",
    "BUILTIN_METHOD_NAMES",
    "CallEdge",
    "CallGraph",
    "FunctionInfo",
    "UnresolvedCall",
]

#: Methods of builtin containers/strings that an untyped attribute call must
#: never resolve to a project method of the same name (``d.get``, ``l.pop``,
#: ``s.update`` … are overwhelmingly builtin receivers in this codebase).
BUILTIN_METHOD_NAMES = frozenset(
    {
        "add", "append", "clear", "copy", "count", "decode", "discard",
        "encode", "endswith", "extend", "find", "format", "get", "index",
        "insert", "items", "join", "keys", "lower", "pop", "popitem",
        "remove", "replace", "reverse", "rfind", "rsplit", "setdefault",
        "sort", "split", "startswith", "strip", "title", "update", "upper",
        "values",
    }
)

#: An untyped ``obj.m(...)`` linking to more defining classes than this is
#: treated as unresolved — a wildcard edge set that wide carries no signal.
ATTR_CANDIDATE_CAP = 8


@dataclass(frozen=True)
class UnresolvedCall:
    """A call site the graph could not (or refused to) link."""

    name: str  # trailing identifier, "" for computed callees
    line: int
    reason: str  # "unknown" | "builtin-method" | "too-wide" | "computed"


class FunctionInfo:
    """One function or method definition as a call-graph node."""

    __slots__ = ("module", "node", "class_name", "name", "qualname", "key")

    def __init__(
        self, module: ModuleInfo, node: FunctionNode, class_name: str
    ) -> None:
        self.module = module
        self.node = node
        self.class_name = class_name
        self.name = node.name
        self.qualname = f"{class_name}.{node.name}" if class_name else node.name
        #: globally unique node id: ``path::Class.method``
        self.key = f"{module.display_path}::{self.qualname}"

    def __repr__(self) -> str:
        return f"FunctionInfo({self.key})"


@dataclass(frozen=True)
class CallEdge:
    """One resolved call: ``caller`` invokes ``callee`` at ``line``."""

    caller: str
    callee: str
    line: int
    kind: str  # "direct" | "self" | "attr" | "module" | "constructor"


def _module_dotted(module: ModuleInfo) -> str:
    """Best-effort dotted module name from the display path."""
    parts = list(module.path.with_suffix("").parts)
    if "src" in parts:
        parts = parts[parts.index("src") + 1 :]
    else:
        parts = parts[-2:] if len(parts) >= 2 else parts
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


class _ModuleScope:
    """Per-module name environment: imports and top-level definitions."""

    def __init__(self, module: ModuleInfo) -> None:
        self.module = module
        #: top-level function name -> node
        self.functions: Dict[str, FunctionNode] = {}
        #: top-level class name -> node
        self.classes: Dict[str, ast.ClassDef] = {}
        #: local alias -> dotted module name (``import a.b as c``)
        self.module_aliases: Dict[str, str] = {}
        #: local name -> (dotted source module, original symbol name)
        self.imported_symbols: Dict[str, Tuple[str, str]] = {}
        for node in module.tree.body:
            self._scan(node)

    def _scan(self, node: ast.stmt) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self.functions[node.name] = node
        elif isinstance(node, ast.ClassDef):
            self.classes[node.name] = node
        elif isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                self.module_aliases[local] = alias.name
        elif isinstance(node, ast.ImportFrom):
            source = node.module or ""
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                # ``from pkg import mod`` aliases a module; ``from mod
                # import f`` imports a symbol.  Record both readings — the
                # resolver checks the module table first.
                self.module_aliases.setdefault(
                    local, f"{source}.{alias.name}" if source else alias.name
                )
                self.imported_symbols[local] = (source, alias.name)
        elif isinstance(node, (ast.If, ast.Try)):
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.stmt):
                    self._scan(child)


class CallGraph:
    """The project call graph: nodes, resolved edges, unresolved calls."""

    def __init__(self, project: ProjectModel) -> None:
        self.project = project
        self.functions: Dict[str, FunctionInfo] = {}
        self.edges: List[CallEdge] = []
        #: caller key -> unresolved call records
        self.unresolved: Dict[str, List[UnresolvedCall]] = {}
        self._callees: Dict[str, Set[str]] = {}
        self._by_node_id: Dict[int, FunctionInfo] = {}
        #: plain function name -> infos (top-level defs only)
        self._top_level: Dict[str, List[FunctionInfo]] = {}
        #: method name -> infos (defined inside a class body)
        self._methods: Dict[str, List[FunctionInfo]] = {}
        #: dotted module name -> scope
        self._scopes: Dict[str, _ModuleScope] = {}
        self._scope_by_module: Dict[int, _ModuleScope] = {}
        #: root class name -> transitive subclass ClassInfos
        self._subclasses: Dict[str, List[ClassInfo]] = {}
        self._transitive_cache: Dict[str, Set[str]] = {}
        self._build()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build(self) -> None:
        for module in self.project.modules:
            scope = _ModuleScope(module)
            self._scopes[_module_dotted(module)] = scope
            self._scope_by_module[id(module)] = scope
            for info in self._collect_functions(module):
                self.functions[info.key] = info
                self._by_node_id[id(info.node)] = info
                if info.class_name:
                    self._methods.setdefault(info.name, []).append(info)
                else:
                    self._top_level.setdefault(info.name, []).append(info)
        for infos in self.project.classes_by_name.values():
            for info in infos:
                for ancestor in self.project.ancestry(info):
                    self._subclasses.setdefault(ancestor, []).append(info)
        for info in list(self.functions.values()):
            self._link_calls(info)

    @staticmethod
    def _collect_functions(module: ModuleInfo) -> Iterator[FunctionInfo]:
        """Every def in the module, tagged with its enclosing class name.

        Nested defs are graph nodes of their own (their bodies may run on
        any thread); the enclosing *class* is the nearest ClassDef ancestor
        so ``Class.method`` stays stable for doubly nested helpers.
        """
        stack: List[Tuple[ast.AST, str]] = [(module.tree, "")]
        while stack:
            node, class_name = stack.pop()
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.ClassDef):
                    stack.append((child, child.name))
                elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield FunctionInfo(module, child, class_name)
                    stack.append((child, class_name))
                else:
                    stack.append((child, class_name))

    def _link_calls(self, caller: FunctionInfo) -> None:
        callees = self._callees.setdefault(caller.key, set())
        for node in ast.walk(caller.node):
            if not isinstance(node, ast.Call):
                continue
            targets, kind, unresolved = self._resolve(caller, node)
            for target in targets:
                callees.add(target.key)
                self.edges.append(
                    CallEdge(caller.key, target.key, node.lineno, kind)
                )
            if unresolved is not None:
                self.unresolved.setdefault(caller.key, []).append(unresolved)

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------
    def _resolve(
        self, caller: FunctionInfo, call: ast.Call
    ) -> Tuple[List[FunctionInfo], str, Optional[UnresolvedCall]]:
        func = call.func
        if isinstance(func, ast.Name):
            return self._resolve_name(caller, func.id, call.lineno)
        if isinstance(func, ast.Attribute):
            return self._resolve_attribute(caller, func, call.lineno)
        return [], "", UnresolvedCall("", call.lineno, "computed")

    def _resolve_name(
        self, caller: FunctionInfo, name: str, line: int
    ) -> Tuple[List[FunctionInfo], str, Optional[UnresolvedCall]]:
        scope = self._scope_by_module[id(caller.module)]
        if name in scope.functions:
            info = self._by_node_id.get(id(scope.functions[name]))
            if info is not None:
                return [info], "direct", None
        if name in scope.classes:
            return self._constructor(name), "constructor", None
        if name in scope.imported_symbols:
            source, symbol = scope.imported_symbols[name]
            target_scope = self._lookup_scope(source)
            if target_scope is not None:
                if symbol in target_scope.functions:
                    info = self._by_node_id.get(
                        id(target_scope.functions[symbol])
                    )
                    if info is not None:
                        return [info], "direct", None
                if symbol in target_scope.classes:
                    return self._constructor(symbol), "constructor", None
        # unique project-wide top-level function of that name
        candidates = self._top_level.get(name, [])
        if len(candidates) == 1:
            return [candidates[0]], "direct", None
        if name in self.project.classes_by_name:
            return self._constructor(name), "constructor", None
        return [], "", UnresolvedCall(name, line, "unknown")

    def _constructor(self, class_name: str) -> List[FunctionInfo]:
        """``C(...)`` links to every analyzed ``C.__init__`` (name identity)."""
        out = []
        for info in self.project.classes_by_name.get(class_name, ()):
            init = info.methods.get("__init__")
            if init is not None:
                node_info = self._by_node_id.get(id(init))
                if node_info is not None:
                    out.append(node_info)
        return out

    def _resolve_attribute(
        self, caller: FunctionInfo, func: ast.Attribute, line: int
    ) -> Tuple[List[FunctionInfo], str, Optional[UnresolvedCall]]:
        method = func.attr
        receiver = func.value
        # self.m(...): hierarchy resolution + subclass overrides
        if (
            isinstance(receiver, ast.Name)
            and receiver.id == "self"
            and caller.class_name
        ):
            targets = self._resolve_self_call(caller, method)
            if targets:
                return targets, "self", None
            return [], "", UnresolvedCall(method, line, "unknown")
        # module alias: tracing.span(...)
        if isinstance(receiver, ast.Name):
            scope = self._scope_by_module[id(caller.module)]
            dotted = scope.module_aliases.get(receiver.id)
            if dotted is not None:
                target_scope = self._lookup_scope(dotted)
                if target_scope is not None and method in target_scope.functions:
                    info = self._by_node_id.get(
                        id(target_scope.functions[method])
                    )
                    if info is not None:
                        return [info], "module", None
            # class attribute call: SomeClass.m(...)
            for cls in self.project.classes_by_name.get(receiver.id, ()):
                fn = cls.methods.get(method)
                if fn is not None:
                    info = self._by_node_id.get(id(fn))
                    if info is not None:
                        return [info], "attr", None
        # untyped receiver: every project method of that name, capped
        if method in BUILTIN_METHOD_NAMES:
            return [], "", UnresolvedCall(method, line, "builtin-method")
        candidates = self._methods.get(method, [])
        defining_classes = {info.class_name for info in candidates}
        if not candidates:
            return [], "", UnresolvedCall(method, line, "unknown")
        if len(defining_classes) > ATTR_CANDIDATE_CAP:
            return [], "", UnresolvedCall(method, line, "too-wide")
        return list(candidates), "attr", None

    def _resolve_self_call(
        self, caller: FunctionInfo, method: str
    ) -> List[FunctionInfo]:
        out: List[FunctionInfo] = []
        seen: Set[int] = set()
        for cls in self.project.classes_by_name.get(caller.class_name, ()):
            resolved = self.project.resolve_method(cls, method)
            if resolved is not None and id(resolved) not in seen:
                info = self._by_node_id.get(id(resolved))
                if info is not None:
                    seen.add(id(resolved))
                    out.append(info)
        # dynamic dispatch: subclasses may override the method
        for sub in self._subclasses.get(caller.class_name, ()):
            fn = sub.methods.get(method)
            if fn is not None and id(fn) not in seen:
                info = self._by_node_id.get(id(fn))
                if info is not None:
                    seen.add(id(fn))
                    out.append(info)
        return out

    def _lookup_scope(self, dotted: str) -> Optional[_ModuleScope]:
        """Match an import path against analyzed modules, suffix-tolerant."""
        if dotted in self._scopes:
            return self._scopes[dotted]
        for name, scope in self._scopes.items():
            if name.endswith(f".{dotted}") or dotted.endswith(f".{name}"):
                return scope
        tail = dotted.rsplit(".", 1)[-1]
        for name, scope in self._scopes.items():
            if name.rsplit(".", 1)[-1] == tail:
                return scope
        return None

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def function_for(self, node: FunctionNode) -> Optional[FunctionInfo]:
        return self._by_node_id.get(id(node))

    def callees(self, key: str) -> Set[str]:
        return self._callees.get(key, set())

    def unresolved_calls(self, key: str) -> List[UnresolvedCall]:
        return self.unresolved.get(key, [])

    def transitive_callees(self, key: str) -> Set[str]:
        """Every function reachable from ``key`` (excluding itself unless
        it participates in a cycle)."""
        cached = self._transitive_cache.get(key)
        if cached is not None:
            return cached
        seen: Set[str] = set()
        stack = list(self._callees.get(key, ()))
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(self._callees.get(current, ()))
        self._transitive_cache[key] = seen
        return seen

    def cycles(self) -> List[List[str]]:
        """Strongly connected components with >1 node, plus self-loops.

        Iterative Tarjan — the analyzer must not itself die on deep call
        chains (RL005's own medicine).
        """
        index: Dict[str, int] = {}
        low: Dict[str, int] = {}
        on_stack: Set[str] = set()
        stack: List[str] = []
        counter = [0]
        components: List[List[str]] = []

        for root in sorted(self.functions):
            if root in index:
                continue
            work: List[Tuple[str, int]] = [(root, 0)]
            while work:
                node, child_index = work[-1]
                if child_index == 0:
                    index[node] = low[node] = counter[0]
                    counter[0] += 1
                    stack.append(node)
                    on_stack.add(node)
                children = sorted(self._callees.get(node, ()))
                children = [c for c in children if c in self.functions]
                advanced = False
                while child_index < len(children):
                    child = children[child_index]
                    child_index += 1
                    if child not in index:
                        work[-1] = (node, child_index)
                        work.append((child, 0))
                        advanced = True
                        break
                    if child in on_stack:
                        low[node] = min(low[node], index[child])
                if advanced:
                    continue
                work.pop()
                if low[node] == index[node]:
                    component: List[str] = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == node:
                            break
                    if len(component) > 1 or node in self._callees.get(
                        node, set()
                    ):
                        components.append(sorted(component))
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])
        return components

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def to_json(self) -> Dict[str, object]:
        """Schema-versioned graph document (CI diffs this across PRs)."""
        return {
            "format": "repro-callgraph",
            "version": 1,
            "functions": [
                {
                    "key": info.key,
                    "path": info.module.display_path,
                    "qualname": info.qualname,
                    "line": info.node.lineno,
                }
                for info in sorted(
                    self.functions.values(), key=lambda f: f.key
                )
            ],
            "edges": [
                {
                    "caller": edge.caller,
                    "callee": edge.callee,
                    "line": edge.line,
                    "kind": edge.kind,
                }
                for edge in sorted(
                    self.edges, key=lambda e: (e.caller, e.callee, e.line)
                )
            ],
            "unresolved": {
                key: [
                    {"name": rec.name, "line": rec.line, "reason": rec.reason}
                    for rec in records
                ]
                for key, records in sorted(self.unresolved.items())
            },
        }

    def to_dot(self) -> str:
        """Graphviz rendering, one cluster per module."""
        lines = ["digraph callgraph {", "  rankdir=LR;", "  node [shape=box];"]
        by_module: Dict[str, List[FunctionInfo]] = {}
        for info in self.functions.values():
            by_module.setdefault(info.module.display_path, []).append(info)
        for cluster_index, (path, infos) in enumerate(sorted(by_module.items())):
            lines.append(f'  subgraph "cluster_{cluster_index}" {{')
            lines.append(f'    label="{path}";')
            for info in sorted(infos, key=lambda f: f.qualname):
                lines.append(f'    "{info.key}" [label="{info.qualname}"];')
            lines.append("  }")
        seen: Set[Tuple[str, str]] = set()
        for edge in sorted(self.edges, key=lambda e: (e.caller, e.callee)):
            pair = (edge.caller, edge.callee)
            if pair in seen:
                continue
            seen.add(pair)
            lines.append(f'  "{edge.caller}" -> "{edge.callee}";')
        lines.append("}")
        return "\n".join(lines) + "\n"
