"""Baseline file handling: grandfathering known findings.

The baseline is a checked-in JSON file mapping finding fingerprints to a
human-written ``comment`` explaining why each grandfathered finding is
tolerated.  ``repro lint`` subtracts baselined findings from its output and
exits non-zero only on *new* ones, so the rule set can ship strict while
legacy debt is paid down incrementally.  Fingerprints exclude line numbers
(see :mod:`repro.analysis.findings`), so routine edits don't churn the file.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from repro.analysis.findings import Finding

__all__ = ["Baseline", "partition"]

_FORMAT = "repro-lint-baseline"
_VERSION = 1


class Baseline:
    """The set of grandfathered finding fingerprints."""

    def __init__(self, entries: Dict[str, Dict[str, object]]) -> None:
        #: fingerprint -> {rule, path, symbol, message, comment}
        self.entries = entries

    def __contains__(self, finding: Finding) -> bool:
        return finding.fingerprint in self.entries

    def __len__(self) -> int:
        return len(self.entries)

    @classmethod
    def empty(cls) -> "Baseline":
        return cls({})

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Read a baseline file; a missing file is an empty baseline."""
        if not path.exists():
            return cls.empty()
        payload = json.loads(path.read_text(encoding="utf-8"))
        if payload.get("format") != _FORMAT:
            raise ValueError(f"{path}: not a {_FORMAT} file")
        entries: Dict[str, Dict[str, object]] = {}
        for record in payload.get("findings", []):
            entries[str(record["fingerprint"])] = dict(record)
        return cls(entries)

    @classmethod
    def from_findings(
        cls, findings: Sequence[Finding], comment: str = ""
    ) -> "Baseline":
        entries: Dict[str, Dict[str, object]] = {}
        for finding in findings:
            # symbol/message/comment are never machine-read back: they
            # exist so a reviewer of the checked-in baseline file can see
            # what each fingerprint grandfathers and why
            # repro-lint: disable=RL011
            entries[finding.fingerprint] = {
                "fingerprint": finding.fingerprint,
                "rule": finding.rule,
                "path": finding.path,
                "symbol": finding.symbol,
                "message": finding.message,
                "comment": comment,
            }
        return cls(entries)

    def save(self, path: Path) -> None:
        records = sorted(
            self.entries.values(),
            key=lambda r: (str(r.get("path", "")), str(r.get("rule", ""))),
        )
        payload = {
            "format": _FORMAT,
            "version": _VERSION,
            "findings": records,
        }
        path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def partition(
    findings: Sequence[Finding], baseline: Baseline
) -> Tuple[List[Finding], List[Finding]]:
    """Split findings into ``(new, grandfathered)`` against the baseline."""
    new: List[Finding] = []
    old: List[Finding] = []
    for finding in findings:
        (old if finding in baseline else new).append(finding)
    return new, old
