"""repro.analysis — project-invariant static checking (``repro lint``).

An AST-based linter whose rules encode *this repository's* contracts —
filter soundness registration, lock discipline, span hygiene, metric label
cardinality, recursion safety, export surfaces — rather than generic style.
Since PR 10 the engine is interprocedural: a project-wide call graph
(:mod:`repro.analysis.callgraph`) and an intraprocedural dataflow layer
(:mod:`repro.analysis.dataflow`) back the lock-order, RPC-pickle-safety,
schema-drift and exception-contract rules.  See ``docs/ANALYSIS.md`` for
the rule catalog and the baseline workflow.
"""

from repro.analysis.baseline import Baseline, partition
from repro.analysis.callgraph import CallEdge, CallGraph, FunctionInfo, UnresolvedCall
from repro.analysis.engine import (
    ClassInfo,
    LintRun,
    ModuleInfo,
    ProjectModel,
    analyze_paths,
    collect_files,
    load_project,
)
from repro.analysis.findings import SEVERITIES, Finding
from repro.analysis.registry import Rule, all_rules, get_rule, register
from repro.analysis.report import render_json, render_text

__all__ = [
    "Baseline",
    "CallEdge",
    "CallGraph",
    "ClassInfo",
    "Finding",
    "FunctionInfo",
    "LintRun",
    "ModuleInfo",
    "ProjectModel",
    "Rule",
    "SEVERITIES",
    "UnresolvedCall",
    "all_rules",
    "analyze_paths",
    "collect_files",
    "get_rule",
    "load_project",
    "partition",
    "register",
    "render_json",
    "render_text",
]
