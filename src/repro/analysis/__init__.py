"""repro.analysis — project-invariant static checking (``repro lint``).

An AST-based linter whose rules encode *this repository's* contracts —
filter soundness registration, lock discipline, span hygiene, metric label
cardinality, recursion safety, export surfaces — rather than generic style.
See ``docs/ANALYSIS.md`` for the rule catalog and the baseline workflow.
"""

from repro.analysis.baseline import Baseline, partition
from repro.analysis.engine import (
    ClassInfo,
    LintRun,
    ModuleInfo,
    ProjectModel,
    analyze_paths,
    collect_files,
)
from repro.analysis.findings import SEVERITIES, Finding
from repro.analysis.registry import Rule, all_rules, get_rule, register
from repro.analysis.report import render_json, render_text

__all__ = [
    "Baseline",
    "ClassInfo",
    "Finding",
    "LintRun",
    "ModuleInfo",
    "ProjectModel",
    "Rule",
    "SEVERITIES",
    "all_rules",
    "analyze_paths",
    "collect_files",
    "get_rule",
    "partition",
    "register",
    "render_json",
    "render_text",
]
