"""Histogram filtration (Kailing et al., EDBT 2004) — the paper's comparator.

Three per-tree histograms are kept, exactly as the paper's §5 describes:
"one histogram records the distribution of heights of every node in the
tree, a second records the fanouts for each of the nodes, and a third
records the distribution of labels used".  Each yields a sound lower bound
on the *unordered* unit-cost tree edit distance, which in turn lower-bounds
the ordered edit distance (any ordered edit script is also an unordered
one); the combined filter takes the maximum.

**Label histogram** (`L1/2`): a relabel moves one unit between two bins
(L1 change 2); an insert or delete changes one bin by one (change 1).
Hence ``L1 ≤ 2k`` and ``⌈L1/2⌉ ≤ EDist``.

**Degree histogram** (`L1/3`): a relabel changes no degree.  An insert adds
one element (the new node's degree) and changes exactly one existing
element (the parent's degree): the multiset changes by one addition plus one
arbitrary move — L1 change ≤ 3.  Deletion is symmetric.  Hence
``⌈L1/3⌉ ≤ EDist``.

**Height histogram** (tolerance matching): the *height* of a node (longest
downward path) changes by **at most one** for every surviving node under a
single insert or delete, and a relabel changes none — inserting below ``u``
lengthens any root-to-leaf path under ``u`` by at most one; deleting only
splices children up, shortening paths by at most one.  After ``k ≤ l``
operations every surviving node's height moved by at most ``l``, and at
most one element is added/removed per insert/delete.  So match the two
sorted height multisets greedily with tolerance ``l``; if the number of
unmatched elements exceeds ``l``, then ``EDist > l``.  The numeric bound is
the smallest ``l`` whose deficit is ``≤ l`` (monotone → binary search),
mirroring the paper's ``SearchLBound`` construction.  This realizes the
behaviour of Kailing's folded height-histogram filter with an offline-
friendly proof.
"""

from __future__ import annotations

import zlib
from collections import Counter
from typing import TYPE_CHECKING, Dict, List, NamedTuple, Optional, Sequence

from repro.core.positional import greedy_interval_matching
from repro.core.vectors import branch_vector
from repro.exceptions import InvalidParameterError
from repro.features.matrix import ceil_div, histogram_l1, keep_at_most
from repro.filters.base import LowerBoundFilter
from repro.trees.node import TreeNode

if TYPE_CHECKING:
    from repro.features.extract import TreeFeatures
    from repro.features.matrix import FeatureMatrices
    from repro.features.store import FeatureStore

__all__ = [
    "HistogramSignature",
    "HistogramFilter",
    "space_parity_histogram_filter",
    "LabelHistogramFilter",
    "DegreeHistogramFilter",
    "HeightHistogramFilter",
    "label_histogram_bound",
    "degree_histogram_bound",
    "height_histogram_bound",
]


class HistogramSignature(NamedTuple):
    """Per-tree histogram bundle."""

    labels: Dict[object, int]
    degrees: Dict[int, int]
    heights: List[int]  # sorted multiset of node heights
    size: int


def _build_signature(
    tree: TreeNode,
    label_bins: Optional[int] = None,
    degree_bins: Optional[int] = None,
    height_cap: Optional[int] = None,
) -> HistogramSignature:
    """Histograms of one tree, optionally *folded* to a fixed dimension.

    Folding (Kailing et al.'s technique for bounding histogram storage, and
    what the paper's §5 space-parity rule implies) maps labels to
    ``hash(label) % label_bins``, clamps degrees to ``degree_bins − 1`` and
    clamps heights to ``height_cap``.  Every fold merges bins, which can
    only *decrease* L1 distances and absolute value differences, so all
    three lower bounds remain sound — just (intentionally) weaker.
    """
    labels: Counter = Counter()
    degrees: Counter = Counter()
    heights: Dict[int, int] = {}
    height_list: List[int] = []
    for node in tree.iter_postorder():
        label = node.label
        if label_bins is not None:
            label = _stable_fold(label, label_bins)
        labels[label] += 1
        degree = node.degree
        if degree_bins is not None and degree >= degree_bins:
            degree = degree_bins - 1
        degrees[degree] += 1
        if node.is_leaf:
            height = 0
        else:
            height = 1 + max(heights.pop(id(child)) for child in node.children)
        heights[id(node)] = height
        if height_cap is not None and height > height_cap:
            height_list.append(height_cap)
        else:
            height_list.append(height)
    height_list.sort()
    return HistogramSignature(dict(labels), dict(degrees), height_list, len(height_list))


def _stable_fold(label: object, bins: int) -> int:
    """Process-stable label folding (builtin ``hash`` is salted per run)."""
    return zlib.crc32(repr(label).encode("utf-8")) % bins


def _fold_signature(
    features: "TreeFeatures",
    label_bins: Optional[int],
    degree_bins: Optional[int],
    height_cap: Optional[int],
) -> HistogramSignature:
    """Fold a store's raw (unfolded) histograms to a filter's parameters.

    Folding after extraction is exactly equivalent to folding during the
    traversal: every fold merges bins by summing their counts, heights stay
    sorted under the monotone ``min(·, cap)``, so the result is bit-identical
    to :func:`_build_signature` on the original tree.
    """
    if label_bins is None:
        labels = features.labels
    else:
        folded: Counter = Counter()
        for label, count in features.labels.items():
            folded[_stable_fold(label, label_bins)] += count
        labels = dict(folded)
    if degree_bins is None:
        degrees = features.degrees
    else:
        clamped: Counter = Counter()
        for degree, count in features.degrees.items():
            clamped[min(degree, degree_bins - 1)] += count
        degrees = dict(clamped)
    if height_cap is None:
        heights = features.heights
    else:
        heights = [min(height, height_cap) for height in features.heights]
    return HistogramSignature(labels, degrees, heights, features.size)


def _l1(a: Dict, b: Dict) -> int:
    if len(a) > len(b):
        a, b = b, a
    total = 0
    for key, count in a.items():
        total += abs(count - b.get(key, 0))
    for key, count in b.items():
        if key not in a:
            total += count
    return total


def label_histogram_bound(a: HistogramSignature, b: HistogramSignature) -> int:
    """``⌈L1(label histograms)/2⌉ ≤ EDist``."""
    return -(-_l1(a.labels, b.labels) // 2)


def degree_histogram_bound(a: HistogramSignature, b: HistogramSignature) -> int:
    """``⌈L1(degree histograms)/3⌉ ≤ EDist``."""
    return -(-_l1(a.degrees, b.degrees) // 3)


def _height_deficit(a: HistogramSignature, b: HistogramSignature, tolerance: int) -> int:
    matched = greedy_interval_matching(a.heights, b.heights, tolerance)
    return a.size + b.size - 2 * matched


def height_histogram_bound(a: HistogramSignature, b: HistogramSignature) -> int:
    """Smallest ``l`` with height-matching deficit ``≤ l`` (see module doc)."""
    low = abs(a.size - b.size)
    if _height_deficit(a, b, low) <= low:
        return low
    high = a.size + b.size  # deficit(high) = |n1 - n2| <= high: always holds
    result = high
    low += 1
    while low <= high:
        mid = (low + high) // 2
        if _height_deficit(a, b, mid) <= mid:
            result = mid
            high = mid - 1
        else:
            low = mid + 1
    return result


class HistogramFilter(LowerBoundFilter[HistogramSignature]):
    """Combined histogram filter: max of the three individual bounds.

    Parameters
    ----------
    label_bins, degree_bins, height_cap:
        Optional folding parameters bounding each histogram's dimension
        (``None`` = exact, unbounded histograms).  The paper's experiments
        give the three histograms a fixed space budget comparable to the
        branch vectors; :func:`space_parity_histogram_filter` computes that
        configuration for a dataset.
    """

    name = "Histo"
    supports_store = True

    def __init__(
        self,
        label_bins: Optional[int] = None,
        degree_bins: Optional[int] = None,
        height_cap: Optional[int] = None,
    ) -> None:
        super().__init__()
        self.label_bins = label_bins
        self.degree_bins = degree_bins
        self.height_cap = height_cap

    def signature(self, tree: TreeNode) -> HistogramSignature:
        return _build_signature(
            tree, self.label_bins, self.degree_bins, self.height_cap
        )

    def store_signature(self, store: "FeatureStore", index: int) -> HistogramSignature:
        return _fold_signature(
            store.features(index), self.label_bins, self.degree_bins, self.height_cap
        )

    def bound(self, query: HistogramSignature, data: HistogramSignature) -> float:
        label = label_histogram_bound(query, data)
        degree = degree_histogram_bound(query, data)
        height = height_histogram_bound(query, data)
        return max(label, degree, height)

    def refutes(
        self, query: HistogramSignature, data: HistogramSignature, threshold: float
    ) -> bool:
        """Range fast path: short-circuit the three tests at ``τ``."""
        tau = int(threshold)
        if label_histogram_bound(query, data) > threshold:
            return True
        if degree_histogram_bound(query, data) > threshold:
            return True
        return _height_deficit(query, data, tau) > tau

    def refute_rows(
        self,
        query: HistogramSignature,
        threshold: float,
        rows: Sequence[int],
        matrices: "FeatureMatrices",
    ) -> Sequence[int]:
        """Vectorized label+degree L1 stages, then the height loop.

        Only sound on *unfolded* configurations: the matrix planes hold
        raw histograms, and folding merges bins, which can only shrink
        L1 — testing unfolded values against a folded filter's loop
        would prune rows the loop keeps.  Folded filters (and
        packed-only shard stores, where histograms never crossed the
        shared plane) fall back to the per-candidate loop.
        """
        if self.label_bins is not None or self.degree_bins is not None:
            return super().refute_rows(query, threshold, rows, matrices)
        try:
            label_l1 = histogram_l1(matrices, "labels", query.labels, rows)
        except InvalidParameterError:
            return super().refute_rows(query, threshold, rows, matrices)
        rows = keep_at_most(rows, ceil_div(label_l1, 2), threshold)
        if len(rows):
            degree_l1 = histogram_l1(matrices, "degrees", query.degrees, rows)
            rows = keep_at_most(rows, ceil_div(degree_l1, 3), threshold)
        tau = int(threshold)
        signatures = self._signatures
        return [
            index
            for index in rows
            if _height_deficit(query, signatures[index], tau) <= tau
        ]


def space_parity_histogram_filter(trees: "Sequence[TreeNode]") -> HistogramFilter:
    """A :class:`HistogramFilter` folded to the paper's space budget.

    §5: "we set the sum of dimension of the three type histogram vectors
    for one tree to be the averaged vector size plus two averaged tree
    size" — i.e. the histograms may use as much storage as one sparse
    binary branch vector plus the two positional sequences.  The budget is
    split half to the label histogram (the largest domain) and a quarter
    each to the degree and height histograms.
    """
    trees = list(trees)
    if not trees:
        return HistogramFilter()
    vector_dims = 0
    total_size = 0
    for tree in trees:
        vector_dims += branch_vector(tree).dimensions
        total_size += tree.size
    budget = (vector_dims + 2 * total_size) / len(trees)
    label_bins = max(2, int(budget / 2))
    degree_bins = max(2, int(budget / 4))
    height_cap = max(2, int(budget / 4))
    return HistogramFilter(
        label_bins=label_bins, degree_bins=degree_bins, height_cap=height_cap
    )


class _UnfoldedHistogramFilter(LowerBoundFilter[HistogramSignature]):
    """Shared plumbing of the single-histogram ablation filters."""

    supports_store = True

    #: matrix family + L1 divisor of the single histogram this ablation
    #: uses; ``None`` (the height filter — its bound is a binary search,
    #: not an L1 quotient) keeps the per-candidate defaults.
    _matrix_family: Optional[str] = None
    _matrix_divisor: int = 1

    def signature(self, tree: TreeNode) -> HistogramSignature:
        return _build_signature(tree)

    def store_signature(self, store: "FeatureStore", index: int) -> HistogramSignature:
        features = store.features(index)
        return HistogramSignature(
            features.labels, features.degrees, features.heights, features.size
        )

    def _matrix_counts(self, query: HistogramSignature) -> Dict:
        return query.labels if self._matrix_family == "labels" else query.degrees

    def lower_bounds_matrix(
        self, query: HistogramSignature, matrices: "FeatureMatrices"
    ) -> Optional[Sequence[float]]:
        if self._matrix_family is None:
            return None
        try:
            values = histogram_l1(
                matrices, self._matrix_family, self._matrix_counts(query), None
            )
        except InvalidParameterError:
            return None
        return ceil_div(values, self._matrix_divisor)

    def refute_rows(
        self,
        query: HistogramSignature,
        threshold: float,
        rows: Sequence[int],
        matrices: "FeatureMatrices",
    ) -> Sequence[int]:
        if self._matrix_family is None:
            return super().refute_rows(query, threshold, rows, matrices)
        try:
            values = histogram_l1(
                matrices, self._matrix_family, self._matrix_counts(query), rows
            )
        except InvalidParameterError:
            return super().refute_rows(query, threshold, rows, matrices)
        return keep_at_most(rows, ceil_div(values, self._matrix_divisor), threshold)


class LabelHistogramFilter(_UnfoldedHistogramFilter):
    """Label histogram only (component ablation)."""

    name = "Histo-label"
    _matrix_family = "labels"
    _matrix_divisor = 2

    def bound(self, query: HistogramSignature, data: HistogramSignature) -> float:
        return label_histogram_bound(query, data)


class DegreeHistogramFilter(_UnfoldedHistogramFilter):
    """Degree histogram only (component ablation)."""

    name = "Histo-degree"
    _matrix_family = "degrees"
    _matrix_divisor = 3

    def bound(self, query: HistogramSignature, data: HistogramSignature) -> float:
        return degree_histogram_bound(query, data)


class HeightHistogramFilter(_UnfoldedHistogramFilter):
    """Height histogram only (component ablation)."""

    name = "Histo-height"

    def bound(self, query: HistogramSignature, data: HistogramSignature) -> float:
        return height_histogram_bound(query, data)
