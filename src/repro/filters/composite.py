"""Combining filters.

The maximum of several lower bounds is itself a lower bound, so filters
compose freely; Kailing et al. combine their three histograms this way, and
§4.3 combines the positional bound with ``BDist/5`` and the size difference.
:class:`MaxCompositeFilter` expresses the pattern generically.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, List, Optional, Sequence, Tuple

from repro.exceptions import InvalidParameterError
from repro.features.matrix import elementwise_max, keep_at_most, size_bounds
from repro.filters.base import LowerBoundFilter
from repro.trees.node import TreeNode

if TYPE_CHECKING:
    from repro.features.matrix import FeatureMatrices
    from repro.features.store import FeatureStore

#: A composite signature: one opaque component signature per sub-filter.
CompositeSignature = Tuple[Any, ...]

__all__ = ["MaxCompositeFilter", "SizeDifferenceFilter"]


class SizeDifferenceFilter(LowerBoundFilter[int]):
    """The trivial ``||T1| − |T2||`` bound, mostly useful inside composites."""

    name = "SizeDiff"
    supports_store = True

    def signature(self, tree: TreeNode) -> int:
        return tree.size

    def store_signature(self, store: "FeatureStore", index: int) -> int:
        return store.tree_size(index)

    def bound(self, query: int, data: int) -> float:
        return abs(query - data)

    def lower_bounds_matrix(
        self, query: int, matrices: "FeatureMatrices"
    ) -> Optional[Sequence[float]]:
        try:
            return size_bounds(matrices, query, None)
        except InvalidParameterError:
            return None

    def refute_rows(
        self,
        query: int,
        threshold: float,
        rows: Sequence[int],
        matrices: "FeatureMatrices",
    ) -> Sequence[int]:
        try:
            bounds = size_bounds(matrices, query, rows)
        except InvalidParameterError:
            return super().refute_rows(query, threshold, rows, matrices)
        return keep_at_most(rows, bounds, threshold)


class MaxCompositeFilter(LowerBoundFilter[CompositeSignature]):
    """Pointwise maximum of several lower-bound filters.

    >>> from repro.filters.histogram import LabelHistogramFilter
    >>> from repro.trees import parse_bracket
    >>> composite = MaxCompositeFilter(
    ...     [LabelHistogramFilter(), SizeDifferenceFilter()], name="demo"
    ... ).fit([parse_bracket("a(b)")])
    >>> composite.bounds(parse_bracket("a(b,c,d)"))
    [2]
    """

    def __init__(
        self,
        filters: Sequence[LowerBoundFilter[Any]],
        name: str = "Composite",
    ) -> None:
        super().__init__()
        if not filters:
            raise ValueError("composite needs at least one filter")
        self.filters: List[LowerBoundFilter[Any]] = list(filters)
        self.name = name

    @property
    def supports_store(self) -> bool:  # type: ignore[override]
        return all(child.supports_store for child in self.filters)

    def required_q_levels(self) -> Tuple[int, ...]:
        levels: List[int] = []
        for child in self.filters:
            levels.extend(child.required_q_levels())
        return tuple(dict.fromkeys(levels))

    def _bind_store(self, store: "FeatureStore") -> None:
        for child in self.filters:
            child._bind_store(store)

    def signature(self, tree: TreeNode) -> CompositeSignature:
        return tuple(child.signature(tree) for child in self.filters)

    def _index_signature(self, tree: TreeNode) -> CompositeSignature:
        return tuple(child._index_signature(tree) for child in self.filters)

    def store_signature(self, store: "FeatureStore", index: int) -> CompositeSignature:
        return tuple(
            child.store_signature(store, index) for child in self.filters
        )

    def bound(self, query: CompositeSignature, data: CompositeSignature) -> float:
        return max(
            child.bound(q, d)
            for child, q, d in zip(self.filters, query, data)
        )

    def refutes(
        self, query: CompositeSignature, data: CompositeSignature, threshold: float
    ) -> bool:
        """Short-circuit: any component refutation suffices."""
        return any(
            child.refutes(q, d, threshold)
            for child, q, d in zip(self.filters, query, data)
        )

    def lower_bounds_matrix(
        self, query: CompositeSignature, matrices: "FeatureMatrices"
    ) -> Optional[Sequence[float]]:
        """Elementwise max of the children's exact vectorized bounds.

        Exact only when *every* child is — one child without a kernel
        makes the whole composite fall back (a partial max would be a
        weaker bound and would change knn refined-candidate counts).
        """
        columns: List[Sequence[float]] = []
        for position, child in enumerate(self.filters):
            column = child.lower_bounds_matrix(query[position], matrices)
            if column is None:
                return None
            columns.append(column)
        return elementwise_max(columns)

    def _sync_child_signatures(self) -> None:
        """Mirror each child's signature components into the child.

        The composite indexes only tuples; children are never fitted on
        their own, so a child's per-row fallback (``refute_rows`` without
        a kernel, the histogram height loop) would find an empty
        signature list.  Before delegating, extend each child's list
        with its slice of the composite tuples — pure references, no
        recomputation.  Assumes children were handed over unfitted (the
        only supported construction); a child somehow longer than the
        composite is reset and rebuilt from the tuples.
        """
        for position, child in enumerate(self.filters):
            if len(child._signatures) > len(self._signatures):
                child._signatures = []
            have = len(child._signatures)
            if have < len(self._signatures):
                child._signatures.extend(
                    signature[position]
                    for signature in self._signatures[have:]
                )

    def refute_rows(
        self,
        query: CompositeSignature,
        threshold: float,
        rows: Sequence[int],
        matrices: "FeatureMatrices",
    ) -> Sequence[int]:
        """Cascade the children over a shrinking row set.

        Equivalent to the ``any``-refutation of :meth:`refutes` because
        each child's ``refute_rows`` keeps exactly its own survivors.
        """
        self._sync_child_signatures()
        for position, child in enumerate(self.filters):
            rows = child.refute_rows(query[position], threshold, rows, matrices)
        return rows

    def matrix_funnel_components(
        self,
    ) -> List[
        Tuple[
            str,
            Callable[
                [CompositeSignature, float, Sequence[int], "FeatureMatrices"],
                Sequence[int],
            ],
        ]
    ]:
        """Vectorized cascade, one stage per sub-filter (names as loop path)."""
        components: List[
            Tuple[
                str,
                Callable[
                    [CompositeSignature, float, Sequence[int], "FeatureMatrices"],
                    Sequence[int],
                ],
            ]
        ] = []
        for position, child in enumerate(self.filters):

            def refute_rows(
                query: CompositeSignature,
                threshold: float,
                rows: Sequence[int],
                matrices: "FeatureMatrices",
                _child: LowerBoundFilter[Any] = child,
                _position: int = position,
            ) -> Sequence[int]:
                self._sync_child_signatures()
                return _child.refute_rows(
                    query[_position], threshold, rows, matrices
                )

            components.append((f"{position}:{child.name}", refute_rows))
        return components

    def funnel_components(
        self,
    ) -> List[
        Tuple[str, Callable[[CompositeSignature, CompositeSignature, float], bool]]
    ]:
        """One funnel stage per sub-filter, applied as a cascade.

        Stage names are position-prefixed so two children of the same class
        stay distinguishable.  A candidate surviving every stage survives
        :meth:`refutes` and vice versa (refutation is an ``any`` over the
        children), so the cascade's final survivor set is identical.
        """
        components: List[
            Tuple[
                str,
                Callable[[CompositeSignature, CompositeSignature, float], bool],
            ]
        ] = []
        for position, child in enumerate(self.filters):

            def refute(
                query: CompositeSignature,
                data: CompositeSignature,
                threshold: float,
                _child: LowerBoundFilter[Any] = child,
                _position: int = position,
            ) -> bool:
                return _child.refutes(query[_position], data[_position], threshold)

            components.append((f"{position}:{child.name}", refute))
        return components
