"""Combining filters.

The maximum of several lower bounds is itself a lower bound, so filters
compose freely; Kailing et al. combine their three histograms this way, and
§4.3 combines the positional bound with ``BDist/5`` and the size difference.
:class:`MaxCompositeFilter` expresses the pattern generically.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, List, Sequence, Tuple

from repro.filters.base import LowerBoundFilter
from repro.trees.node import TreeNode

if TYPE_CHECKING:
    from repro.features.store import FeatureStore

#: A composite signature: one opaque component signature per sub-filter.
CompositeSignature = Tuple[Any, ...]

__all__ = ["MaxCompositeFilter", "SizeDifferenceFilter"]


class SizeDifferenceFilter(LowerBoundFilter[int]):
    """The trivial ``||T1| − |T2||`` bound, mostly useful inside composites."""

    name = "SizeDiff"
    supports_store = True

    def signature(self, tree: TreeNode) -> int:
        return tree.size

    def store_signature(self, store: "FeatureStore", index: int) -> int:
        return store.tree_size(index)

    def bound(self, query: int, data: int) -> float:
        return abs(query - data)


class MaxCompositeFilter(LowerBoundFilter[CompositeSignature]):
    """Pointwise maximum of several lower-bound filters.

    >>> from repro.filters.histogram import LabelHistogramFilter
    >>> from repro.trees import parse_bracket
    >>> composite = MaxCompositeFilter(
    ...     [LabelHistogramFilter(), SizeDifferenceFilter()], name="demo"
    ... ).fit([parse_bracket("a(b)")])
    >>> composite.bounds(parse_bracket("a(b,c,d)"))
    [2]
    """

    def __init__(
        self,
        filters: Sequence[LowerBoundFilter[Any]],
        name: str = "Composite",
    ) -> None:
        super().__init__()
        if not filters:
            raise ValueError("composite needs at least one filter")
        self.filters: List[LowerBoundFilter[Any]] = list(filters)
        self.name = name

    @property
    def supports_store(self) -> bool:  # type: ignore[override]
        return all(child.supports_store for child in self.filters)

    def required_q_levels(self) -> Tuple[int, ...]:
        levels: List[int] = []
        for child in self.filters:
            levels.extend(child.required_q_levels())
        return tuple(dict.fromkeys(levels))

    def _bind_store(self, store: "FeatureStore") -> None:
        for child in self.filters:
            child._bind_store(store)

    def signature(self, tree: TreeNode) -> CompositeSignature:
        return tuple(child.signature(tree) for child in self.filters)

    def _index_signature(self, tree: TreeNode) -> CompositeSignature:
        return tuple(child._index_signature(tree) for child in self.filters)

    def store_signature(self, store: "FeatureStore", index: int) -> CompositeSignature:
        return tuple(
            child.store_signature(store, index) for child in self.filters
        )

    def bound(self, query: CompositeSignature, data: CompositeSignature) -> float:
        return max(
            child.bound(q, d)
            for child, q, d in zip(self.filters, query, data)
        )

    def refutes(
        self, query: CompositeSignature, data: CompositeSignature, threshold: float
    ) -> bool:
        """Short-circuit: any component refutation suffices."""
        return any(
            child.refutes(q, d, threshold)
            for child, q, d in zip(self.filters, query, data)
        )

    def funnel_components(
        self,
    ) -> List[
        Tuple[str, Callable[[CompositeSignature, CompositeSignature, float], bool]]
    ]:
        """One funnel stage per sub-filter, applied as a cascade.

        Stage names are position-prefixed so two children of the same class
        stay distinguishable.  A candidate surviving every stage survives
        :meth:`refutes` and vice versa (refutation is an ``any`` over the
        children), so the cascade's final survivor set is identical.
        """
        components: List[
            Tuple[
                str,
                Callable[[CompositeSignature, CompositeSignature, float], bool],
            ]
        ] = []
        for position, child in enumerate(self.filters):

            def refute(
                query: CompositeSignature,
                data: CompositeSignature,
                threshold: float,
                _child: LowerBoundFilter[Any] = child,
                _position: int = position,
            ) -> bool:
                return _child.refutes(query[_position], data[_position], threshold)

            components.append((f"{position}:{child.name}", refute))
        return components
