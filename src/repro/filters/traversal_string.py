"""Traversal-string filtration (Guha et al., SIGMOD 2002) — extension baseline.

An edit operation on a tree induces at most one edit operation on the
preorder label sequence (a relabel substitutes one symbol; a delete removes
one symbol, the rest keeping their relative order; an insert adds one), and
likewise on the postorder sequence.  Hence

    max( SED(pre(T1), pre(T2)), SED(post(T1), post(T2)) ) ≤ EDist(T1, T2).

The bound is tight-ish but costs ``O(|T1|·|T2|)`` per pair — the very cost
the paper's linear-time filter avoids; it is included as the "expensive
filter" reference point for the ablation benchmarks (§2.2 discusses why it
does not scale).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, NamedTuple

from repro.editdist.string_ed import string_edit_distance, string_edit_distance_bounded
from repro.filters.base import LowerBoundFilter
from repro.trees.node import TreeNode
from repro.trees.traversal import postorder_labels, preorder_labels

if TYPE_CHECKING:
    from repro.features.store import FeatureStore

__all__ = ["TraversalStringSignature", "TraversalStringFilter"]


class TraversalStringSignature(NamedTuple):
    """Preorder and postorder label sequences of one tree."""

    pre: List
    post: List


class TraversalStringFilter(LowerBoundFilter[TraversalStringSignature]):
    """Guha-style lower bound: max of the two traversal string distances."""

    name = "TraversalSED"
    supports_store = True

    def signature(self, tree: TreeNode) -> TraversalStringSignature:
        return TraversalStringSignature(preorder_labels(tree), postorder_labels(tree))

    def store_signature(self, store: "FeatureStore", index: int) -> TraversalStringSignature:
        features = store.features(index)
        return TraversalStringSignature(features.pre_labels, features.post_labels)

    def bound(
        self, query: TraversalStringSignature, data: TraversalStringSignature
    ) -> float:
        pre = string_edit_distance(query.pre, data.pre)
        post = string_edit_distance(query.post, data.post)
        return max(pre, post)

    def refutes(
        self,
        query: TraversalStringSignature,
        data: TraversalStringSignature,
        threshold: float,
    ) -> bool:
        """Range fast path with banded (early-exit) string edit distance."""
        tau = int(threshold)
        pre = string_edit_distance_bounded(query.pre, data.pre, tau)
        if pre is None:
            return True
        post = string_edit_distance_bounded(query.post, data.post, tau)
        return post is None
