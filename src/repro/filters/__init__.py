"""Lower-bound filters for the filter-and-refine framework.

The paper's binary branch filter, the histogram filtration comparator
(Kailing et al.), the traversal-string baseline (Guha et al.), and
composition utilities.
"""

from repro.filters.base import LowerBoundFilter
from repro.filters.binary_branch import BinaryBranchFilter, BranchCountFilter
from repro.filters.composite import MaxCompositeFilter, SizeDifferenceFilter
from repro.filters.cost_scaled import CostScaledFilter
from repro.filters.histogram import (
    DegreeHistogramFilter,
    HeightHistogramFilter,
    HistogramFilter,
    HistogramSignature,
    LabelHistogramFilter,
    degree_histogram_bound,
    height_histogram_bound,
    label_histogram_bound,
    space_parity_histogram_filter,
)
from repro.filters.traversal_string import TraversalStringFilter, TraversalStringSignature

__all__ = [
    "LowerBoundFilter",
    "BinaryBranchFilter",
    "BranchCountFilter",
    "HistogramFilter",
    "HistogramSignature",
    "LabelHistogramFilter",
    "DegreeHistogramFilter",
    "HeightHistogramFilter",
    "label_histogram_bound",
    "space_parity_histogram_filter",
    "degree_histogram_bound",
    "height_histogram_bound",
    "TraversalStringFilter",
    "TraversalStringSignature",
    "MaxCompositeFilter",
    "CostScaledFilter",
    "SizeDifferenceFilter",
]
