"""Filter interface for the filter-and-refine framework.

A *filter* supplies, for every database tree, a cheap lower bound on its
edit distance to the query.  The search algorithms
(:mod:`repro.search.range_query`, :mod:`repro.search.knn`) are generic over
this interface: completeness of the query answers only requires the
lower-bound property ``bound(q, i) ≤ EDist(query, trees[i])``, which every
implementation in this package guarantees (each documents its proof).

Filters can be fitted two ways:

* **standalone** — :meth:`LowerBoundFilter.fit` traverses every tree and
  builds this filter's signatures from scratch;
* **store-backed** — :meth:`LowerBoundFilter.fit_from_store` derives the
  signatures as views over a shared
  :class:`~repro.features.store.FeatureStore`, whose one-pass extraction
  already computed every artifact the filter needs.  Filters that support
  this set :attr:`supports_store` and implement :meth:`store_signature`;
  the two paths are proven bound-identical by the property tests in
  ``tests/filters/test_store_equivalence.py``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import (
    TYPE_CHECKING,
    Callable,
    Generic,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

from repro.exceptions import FilterStateError
from repro.trees.node import TreeNode

if TYPE_CHECKING:  # import cycle: features.store fits via filter signatures
    from repro.features.matrix import FeatureMatrices
    from repro.features.store import FeatureStore

__all__ = ["LowerBoundFilter", "Signature"]

Signature = TypeVar("Signature")


class LowerBoundFilter(ABC, Generic[Signature]):
    """Abstract base class of edit-distance lower-bound filters.

    Lifecycle: construct, then :meth:`fit` (or :meth:`fit_from_store`) on
    the database trees once, then :meth:`bounds` per query and optionally
    :meth:`add` per insertion.  Calling :meth:`add` or :meth:`bounds` before
    a fit raises :class:`~repro.exceptions.FilterStateError`; to build a
    filter incrementally from nothing, start from the explicit empty fit
    ``flt.fit([])``.
    """

    #: Short identifier used in benchmark reports ("BiBranch", "Histo", …).
    name: str = "abstract"

    #: Whether this filter can derive its signatures from a FeatureStore.
    supports_store: bool = False

    #: Whether ``bound(q, d) ≥ ⌈BDist_q(q, d) / (4(q−1)+1)⌉`` holds row by
    #: row at this filter's own ``q`` level.  Index-accelerated k-NN
    #: (:mod:`repro.index.ordering`) relies on exactly this dominance to
    #: reorder an ascending-BDist stream into the reference ``(bound, row)``
    #: order lazily; filters that cannot guarantee it (histogram,
    #: traversal, size) leave it False and k-NN ignores the index for
    #: them — answers are unaffected, only the ordering pass stays linear.
    bdist_dominant: bool = False

    def __init__(self) -> None:
        self._signatures: List[Signature] = []
        self._fitted = False

    # ------------------------------------------------------------------
    # Indexing
    # ------------------------------------------------------------------
    def fit(self, trees: Sequence[TreeNode]) -> "LowerBoundFilter[Signature]":
        """Precompute signatures for the database trees; returns ``self``."""
        self._signatures = [self._index_signature(tree) for tree in trees]
        self._fitted = True
        return self

    def add(self, tree: TreeNode) -> int:
        """Append one tree's signature (dynamic insertion); returns its index.

        Signatures are independent per tree, so insertion is O(|tree|) for
        every filter in this package.  The filter must already be fitted —
        an ``add`` on a never-fitted filter would let :meth:`bounds` run
        silently against a partial index; use ``fit([])`` first to build up
        a filter from an empty collection.
        """
        if not self._fitted:
            raise FilterStateError(
                f"filter {self.name!r}: add() before fit(); "
                "call fit([]) first to start from an empty index"
            )
        self._signatures.append(self._index_signature(tree))
        return len(self._signatures) - 1

    # ------------------------------------------------------------------
    # Store-backed indexing
    # ------------------------------------------------------------------
    def required_q_levels(self) -> Tuple[int, ...]:
        """Branch levels a backing FeatureStore must extract for this filter."""
        return ()

    def store_signature(self, store: "FeatureStore", index: int) -> Signature:
        """Signature of the ``index``-th store tree, as a view over ``store``.

        Must equal (in bound terms) ``self.signature(trees[index])``; only
        meaningful when :attr:`supports_store` is true.
        """
        raise NotImplementedError(
            f"filter {self.name!r} does not support store-backed signatures"
        )

    def _bind_store(self, store: "FeatureStore") -> None:
        """Adopt store-owned shared state (vocabularies); default no-op."""

    def fit_from_store(self, store: "FeatureStore") -> "LowerBoundFilter[Signature]":
        """Derive all signatures from a fitted FeatureStore; returns ``self``."""
        self._bind_store(store)
        self._signatures = [
            self.store_signature(store, index) for index in range(len(store))
        ]
        self._fitted = True
        return self

    def add_from_store(self, store: "FeatureStore", index: int) -> int:
        """Append the signature of a tree just added to the backing store."""
        if not self._fitted:
            raise FilterStateError(
                f"filter {self.name!r}: add_from_store() before fit"
            )
        self._signatures.append(self.store_signature(store, index))
        return len(self._signatures) - 1

    @property
    def size(self) -> int:
        """Number of indexed trees."""
        return len(self._signatures)

    def data_signature(self, index: int) -> Signature:
        """Signature of the ``index``-th database tree."""
        return self._signatures[index]

    # ------------------------------------------------------------------
    # To implement
    # ------------------------------------------------------------------
    @abstractmethod
    def signature(self, tree: TreeNode) -> Signature:
        """Build the per-tree signature the bound is computed from."""

    def _index_signature(self, tree: TreeNode) -> Signature:
        """Signature used for *database-side* trees during fit/add.

        Defaults to :meth:`signature`.  Filters whose index side may mutate
        shared state (e.g. grow a vocabulary) override this, keeping the
        query-side :meth:`signature` read-only and therefore thread-safe.
        """
        return self.signature(tree)

    @abstractmethod
    def bound(self, query: Signature, data: Signature) -> float:
        """Lower bound on ``EDist`` between the signatures' trees."""

    # ------------------------------------------------------------------
    # Query-side convenience
    # ------------------------------------------------------------------
    def bounds(self, query_tree: TreeNode) -> List[float]:
        """Lower bounds between ``query_tree`` and every indexed tree."""
        if not self._fitted:
            raise FilterStateError(f"filter {self.name!r} used before fit()")
        query = self.signature(query_tree)
        return [self.bound(query, data) for data in self._signatures]

    def refutes(self, query: Signature, data: Signature, threshold: float) -> bool:
        """True when the filter *proves* ``EDist > threshold``.

        Default: compare the numeric bound.  Filters with a cheaper direct
        refutation test (e.g. a single fixed-range positional distance) may
        override this for range queries.
        """
        return self.bound(query, data) > threshold

    # ------------------------------------------------------------------
    # Vectorized (matrix-plane) candidate generation
    # ------------------------------------------------------------------
    def lower_bounds_matrix(
        self, query: Signature, matrices: "FeatureMatrices"
    ) -> Optional[Sequence[float]]:
        """Per-row lower bounds against *every* indexed tree, or ``None``.

        Filters whose numeric bound is exactly computable from a
        corpus-level :class:`~repro.features.matrix.MatrixPlane` override
        this to return one value per tree (equal, row by row, to
        ``bound(query, data_signature(row))``).  ``None`` means "no exact
        vectorized bound" and callers fall back to :meth:`bounds` — knn
        ordering must never use an approximation, or optimal-stopping
        refined-candidate counts would drift from the reference path.
        """
        return None

    def refute_rows(
        self,
        query: Signature,
        threshold: float,
        rows: Sequence[int],
        matrices: "FeatureMatrices",
    ) -> Sequence[int]:
        """Survivors of ``rows`` — exactly those :meth:`refutes` keeps.

        The vectorized range cascade shrinks the active-row set through
        each funnel stage with this method.  Overrides may prescreen
        with matrix kernels, but the contract is strict set equality
        with the per-candidate loop: ``refute_rows(q, t, rows, m) ==
        [i for i in rows if not refutes(q, sig[i], t)]`` — pinned by the
        ``search:vectorized-equivalence`` oracle.  This default *is*
        that loop, so every filter is cascade-correct out of the box.
        """
        signatures = self._signatures
        return [
            index
            for index in rows
            if not self.refutes(query, signatures[index], threshold)
        ]

    def matrix_funnel_components(
        self,
    ) -> List[
        Tuple[
            str,
            Callable[
                [Signature, float, Sequence[int], "FeatureMatrices"],
                Sequence[int],
            ],
        ]
    ]:
        """Vectorized counterpart of :meth:`funnel_components`.

        Same stage names, same pruning attribution — each stage maps the
        active-row set to its survivors, so funnel telemetry comes from
        ``len(rows)`` before/after instead of per-candidate counting.
        """
        return [(self.name, self.refute_rows)]

    def funnel_components(
        self,
    ) -> List[Tuple[str, Callable[[Signature, Signature, float], bool]]]:
        """Per-stage ``(name, refute)`` decomposition for funnel telemetry.

        Each ``refute(query_signature, data_signature, threshold)`` callable
        operates on this filter's *full* signature objects.  Default: the
        filter is a single funnel stage; composites override this to expose
        one stage per sub-filter, so the observability layer can attribute
        pruning to the component that did it.  Applying the stages as a
        cascade must refute exactly the candidates :meth:`refutes` refutes.
        """
        return [(self.name, self.refutes)]

    def __repr__(self) -> str:
        status = f"{self.size} trees" if self._fitted else "unfitted"
        return f"{type(self).__name__}(name={self.name!r}, {status})"
