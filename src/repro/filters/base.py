"""Filter interface for the filter-and-refine framework.

A *filter* supplies, for every database tree, a cheap lower bound on its
edit distance to the query.  The search algorithms
(:mod:`repro.search.range_query`, :mod:`repro.search.knn`) are generic over
this interface: completeness of the query answers only requires the
lower-bound property ``bound(q, i) ≤ EDist(query, trees[i])``, which every
implementation in this package guarantees (each documents its proof).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Generic, List, Sequence, TypeVar

from repro.trees.node import TreeNode

__all__ = ["LowerBoundFilter"]

Signature = TypeVar("Signature")


class LowerBoundFilter(ABC, Generic[Signature]):
    """Abstract base class of edit-distance lower-bound filters.

    Lifecycle: construct, :meth:`fit` on the database trees once (building
    per-tree signatures), then call :meth:`bounds` per query.
    """

    #: Short identifier used in benchmark reports ("BiBranch", "Histo", …).
    name: str = "abstract"

    def __init__(self) -> None:
        self._signatures: List[Signature] = []
        self._fitted = False

    # ------------------------------------------------------------------
    # Indexing
    # ------------------------------------------------------------------
    def fit(self, trees: Sequence[TreeNode]) -> "LowerBoundFilter[Signature]":
        """Precompute signatures for the database trees; returns ``self``."""
        self._signatures = [self.signature(tree) for tree in trees]
        self._fitted = True
        return self

    def add(self, tree: TreeNode) -> int:
        """Append one tree's signature (dynamic insertion); returns its index.

        Signatures are independent per tree, so insertion is O(|tree|) for
        every filter in this package.
        """
        self._signatures.append(self.signature(tree))
        self._fitted = True
        return len(self._signatures) - 1

    @property
    def size(self) -> int:
        """Number of indexed trees."""
        return len(self._signatures)

    def data_signature(self, index: int) -> Signature:
        """Signature of the ``index``-th database tree."""
        return self._signatures[index]

    # ------------------------------------------------------------------
    # To implement
    # ------------------------------------------------------------------
    @abstractmethod
    def signature(self, tree: TreeNode) -> Signature:
        """Build the per-tree signature the bound is computed from."""

    @abstractmethod
    def bound(self, query: Signature, data: Signature) -> float:
        """Lower bound on ``EDist`` between the signatures' trees."""

    # ------------------------------------------------------------------
    # Query-side convenience
    # ------------------------------------------------------------------
    def bounds(self, query_tree: TreeNode) -> List[float]:
        """Lower bounds between ``query_tree`` and every indexed tree."""
        if not self._fitted:
            raise RuntimeError(f"filter {self.name!r} used before fit()")
        query = self.signature(query_tree)
        return [self.bound(query, data) for data in self._signatures]

    def refutes(self, query: Signature, data: Signature, threshold: float) -> bool:
        """True when the filter *proves* ``EDist > threshold``.

        Default: compare the numeric bound.  Filters with a cheaper direct
        refutation test (e.g. a single fixed-range positional distance) may
        override this for range queries.
        """
        return self.bound(query, data) > threshold

    def __repr__(self) -> str:
        status = f"{self.size} trees" if self._fitted else "unfitted"
        return f"{type(self).__name__}(name={self.name!r}, {status})"
