"""General-cost filtering (the paper's §2.1 extension remark).

All bounds in this package are stated for the unit-cost edit distance.  The
paper notes the approach "can be easily extended to the general edit
distance measure if there is a lower bound on the cost for each edit
operation": a script of cost ``C`` under a model whose effective operations
cost at least ``c_min`` contains at most ``C / c_min`` operations, so

    EDist_general(T1, T2)  >=  c_min · EDist_unit(T1, T2)
                           >=  c_min · unit_lower_bound(T1, T2).

:class:`CostScaledFilter` wraps any unit-cost filter accordingly, letting
the unchanged search algorithms answer queries under weighted cost models
exactly (verified against a weighted sequential scan in the tests).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Tuple

from repro.editdist.costs import CostModel
from repro.filters.base import LowerBoundFilter, Signature
from repro.trees.node import TreeNode

if TYPE_CHECKING:
    from repro.features.store import FeatureStore

__all__ = ["CostScaledFilter"]


class CostScaledFilter(LowerBoundFilter[Signature]):
    """Adapt a unit-cost lower-bound filter to a general cost model.

    Parameters
    ----------
    inner:
        Any unit-cost filter (BiBranch, histogram, …).
    costs:
        The cost model whose ``min_operation_cost`` scales the bound.

    >>> from repro.filters import BinaryBranchFilter
    >>> from repro.editdist import weighted_costs
    >>> from repro.trees import parse_bracket
    >>> flt = CostScaledFilter(BinaryBranchFilter(), weighted_costs(2, 2, 2))
    >>> flt = flt.fit([parse_bracket("a(b,c)")])
    >>> flt.bounds(parse_bracket("x(y,z)"))[0] >= 2.0
    True
    """

    def __init__(
        self, inner: LowerBoundFilter[Signature], costs: CostModel
    ) -> None:
        super().__init__()
        self.inner = inner
        self.costs = costs
        self.name = f"{inner.name}*{costs.min_operation_cost:g}"

    @property
    def supports_store(self) -> bool:  # type: ignore[override]
        return self.inner.supports_store

    def required_q_levels(self) -> Tuple[int, ...]:
        return self.inner.required_q_levels()

    def _bind_store(self, store: "FeatureStore") -> None:
        self.inner._bind_store(store)

    def signature(self, tree: TreeNode) -> Signature:
        return self.inner.signature(tree)

    def _index_signature(self, tree: TreeNode) -> Signature:
        return self.inner._index_signature(tree)

    def store_signature(self, store: "FeatureStore", index: int) -> Signature:
        return self.inner.store_signature(store, index)

    def bound(self, query: Signature, data: Signature) -> float:
        return self.inner.bound(query, data) * self.costs.min_operation_cost

    def refutes(self, query: Signature, data: Signature, threshold: float) -> bool:
        """Refute ``EDist_general <= threshold`` via the unit-cost filter.

        ``EDist_general <= t`` implies ``EDist_unit <= t / c_min``, so the
        inner filter may refute at the scaled threshold.
        """
        return self.inner.refutes(
            query, data, threshold / self.costs.min_operation_cost
        )
