"""The paper's filter: binary branch lower bounds (denoted *BiBranch*).

Two variants share the positional profile signature:

* :class:`BinaryBranchFilter` — the full method of §4: the positional
  optimistic bound ``pr_opt`` found by ``SearchLBound`` (always at least
  ``⌈BDist/factor⌉`` and the size difference).
* :class:`BranchCountFilter` — the §3-only ablation: ``⌈BDist/factor⌉``
  from branch counts alone, ignoring positions.

Both generalize to q-level branches via the ``q`` parameter
(factor ``4(q−1)+1``).
"""

from __future__ import annotations

from repro.core.positional import (
    PositionalProfile,
    positional_branch_distance,
    positional_profile,
    search_lower_bound,
)
from repro.core.qlevel import qlevel_bound_factor
from repro.filters.base import LowerBoundFilter
from repro.trees.node import TreeNode

__all__ = ["BinaryBranchFilter", "BranchCountFilter"]


class BinaryBranchFilter(LowerBoundFilter[PositionalProfile]):
    """Positional binary branch filter (the paper's §4 algorithm).

    Parameters
    ----------
    q:
        Branch level (2 = the paper's default).
    exact_matching:
        Use the exact two-constraint matching instead of the paper's
        linear-time approximation (slower; for experiments).
    """

    def __init__(self, q: int = 2, exact_matching: bool = False) -> None:
        super().__init__()
        self.q = q
        self.factor = qlevel_bound_factor(q)
        self.exact_matching = exact_matching
        self.name = f"BiBranch({q})" if q != 2 else "BiBranch"

    def signature(self, tree: TreeNode) -> PositionalProfile:
        return positional_profile(tree, self.q)

    def bound(self, query: PositionalProfile, data: PositionalProfile) -> float:
        return search_lower_bound(query, data, exact=self.exact_matching)

    def refutes(
        self, query: PositionalProfile, data: PositionalProfile, threshold: float
    ) -> bool:
        """Range-query fast path (§4.3).

        For a range ``τ`` it suffices to check Proposition 4.2 at the single
        range ``pr = ⌊τ⌋``: ``PosBDist(τ) > factor·τ ⟹ EDist > τ`` — one
        linear-time distance evaluation instead of a binary search.
        """
        pr = int(threshold)  # unit-cost distances are integers
        distance = positional_branch_distance(
            query, data, pr, exact=self.exact_matching
        )
        return distance > self.factor * pr

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BinaryBranchFilter(q={self.q}, trees={self.size})"


class BranchCountFilter(LowerBoundFilter[PositionalProfile]):
    """Count-only binary branch filter: ``⌈BDist / (4(q−1)+1)⌉``.

    The §3 bound without the positional refinement — the natural ablation
    for measuring what positions buy (see ``benchmarks/test_ablation_*``).
    """

    def __init__(self, q: int = 2) -> None:
        super().__init__()
        self.q = q
        self.factor = qlevel_bound_factor(q)
        self.name = f"BiBranchCount({q})" if q != 2 else "BiBranchCount"

    def signature(self, tree: TreeNode) -> PositionalProfile:
        return positional_profile(tree, self.q)

    def bound(self, query: PositionalProfile, data: PositionalProfile) -> float:
        # BDist equals PosBDist at unbounded range; computing it from the
        # profiles avoids a second signature type.
        distance = 0
        keys = set(query.pre_positions) | set(data.pre_positions)
        for key in keys:
            distance += abs(query.count(key) - data.count(key))
        return -(-distance // self.factor)
