"""The paper's filter: binary branch lower bounds (denoted *BiBranch*).

Two variants:

* :class:`BinaryBranchFilter` — the full method of §4: the positional
  optimistic bound ``pr_opt`` found by ``SearchLBound`` (always at least
  ``⌈BDist/factor⌉`` and the size difference).  Signatures are positional
  profiles.
* :class:`BranchCountFilter` — the §3-only ablation: ``⌈BDist/factor⌉``
  from branch counts alone, ignoring positions.  Signatures are packed
  branch vectors (:class:`~repro.features.packed.PackedVector`), so the L1
  distance runs over sorted int arrays instead of dict unions.

Both generalize to q-level branches via the ``q`` parameter
(factor ``4(q−1)+1``) and both can derive their signatures from a shared
:class:`~repro.features.store.FeatureStore` instead of re-traversing the
corpus (``fit_from_store``).
"""

from __future__ import annotations

from collections import Counter
from typing import TYPE_CHECKING, Optional, Sequence, Tuple

from repro.core.branches import iter_branches
from repro.core.positional import (
    PositionalProfile,
    positional_branch_distance,
    positional_profile,
    search_lower_bound,
)
from repro.core.qlevel import iter_qlevel_branches, qlevel_bound_factor
from repro.exceptions import InvalidParameterError
from repro.features.matrix import (
    branch_count_bounds,
    branch_l1_counts,
    keep_at_most,
)
from repro.features.packed import PackedVector, pack_counts
from repro.features.vocabulary import Vocabulary
from repro.filters.base import LowerBoundFilter
from repro.trees.node import TreeNode

if TYPE_CHECKING:
    from repro.features.matrix import FeatureMatrices
    from repro.features.store import FeatureStore

__all__ = ["BinaryBranchFilter", "BranchCountFilter"]


class BinaryBranchFilter(LowerBoundFilter[PositionalProfile]):
    """Positional binary branch filter (the paper's §4 algorithm).

    Parameters
    ----------
    q:
        Branch level (2 = the paper's default).
    exact_matching:
        Use the exact two-constraint matching instead of the paper's
        linear-time approximation (slower; for experiments).
    """

    supports_store = True
    #: SearchLBound starts its binary search at ``max(⌈BDist/factor⌉,
    #: size difference)`` and only ever moves up, so it dominates the
    #: count bound at this q — which licenses index-accelerated k-NN.
    bdist_dominant = True

    def __init__(self, q: int = 2, exact_matching: bool = False) -> None:
        super().__init__()
        self.q = q
        self.factor = qlevel_bound_factor(q)
        self.exact_matching = exact_matching
        self.name = f"BiBranch({q})" if q != 2 else "BiBranch"

    def required_q_levels(self) -> Tuple[int, ...]:
        return (self.q,)

    def signature(self, tree: TreeNode) -> PositionalProfile:
        return positional_profile(tree, self.q)

    def store_signature(self, store: "FeatureStore", index: int) -> PositionalProfile:
        return store.profile(index, self.q)

    def bound(self, query: PositionalProfile, data: PositionalProfile) -> float:
        return search_lower_bound(query, data, exact=self.exact_matching)

    def refutes(
        self, query: PositionalProfile, data: PositionalProfile, threshold: float
    ) -> bool:
        """Range-query fast path (§4.3).

        For a range ``τ`` it suffices to check Proposition 4.2 at the single
        range ``pr = ⌊τ⌋``: ``PosBDist(τ) > factor·τ ⟹ EDist > τ`` — one
        linear-time distance evaluation instead of a binary search.
        """
        pr = int(threshold)  # unit-cost distances are integers
        distance = positional_branch_distance(
            query, data, pr, exact=self.exact_matching
        )
        return distance > self.factor * pr

    def refute_rows(
        self,
        query: PositionalProfile,
        threshold: float,
        rows: Sequence[int],
        matrices: "FeatureMatrices",
    ) -> Sequence[int]:
        """Vectorized count-L1 prescreen, then the exact positional test.

        Soundness: ``PosBDist(pr) ≥ BDist`` for every range ``pr``
        (positions only add constraints to the matching), so a row with
        ``BDist > factor·τ`` has ``PosBDist(⌊τ⌋) ≥ BDist > factor·τ ≥
        factor·⌊τ⌋`` and is refuted by :meth:`refutes` too.  The matrix
        pass therefore prunes only loop-refuted rows; the surviving few
        get the exact per-candidate test, making the final survivor set
        identical to the pure loop.
        """
        try:
            counts = {
                branch: len(positions)
                for branch, positions in query.pre_positions.items()
            }
            distances = branch_l1_counts(matrices, self.q, counts, rows)
        except InvalidParameterError:
            return super().refute_rows(query, threshold, rows, matrices)
        candidates = keep_at_most(rows, distances, self.factor * threshold)
        signatures = self._signatures
        return [
            index
            for index in candidates
            if not self.refutes(query, signatures[index], threshold)
        ]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BinaryBranchFilter(q={self.q}, trees={self.size})"


class BranchCountFilter(LowerBoundFilter[PackedVector]):
    """Count-only binary branch filter: ``⌈BDist / (4(q−1)+1)⌉``.

    The §3 bound without the positional refinement — the natural ablation
    for measuring what positions buy (see ``benchmarks/test_ablation_*``).

    Signatures are packed vectors interned against a per-filter vocabulary
    (or, when store-backed, the corpus-wide store vocabulary).  Database
    trees intern new branches during :meth:`fit`/:meth:`add`; query
    signatures never mutate the vocabulary — branches the index has not
    seen stay keyed by raw branch in the vector's ``extra`` mapping, which
    keeps concurrent query threads race-free.
    """

    supports_store = True
    #: the bound *is* ``⌈BDist/factor⌉`` — dominance holds with equality
    bdist_dominant = True

    def __init__(self, q: int = 2) -> None:
        super().__init__()
        self.q = q
        self.factor = qlevel_bound_factor(q)
        self.name = f"BiBranchCount({q})" if q != 2 else "BiBranchCount"
        self._vocabulary = Vocabulary()

    def required_q_levels(self) -> Tuple[int, ...]:
        return (self.q,)

    def _counts(self, tree: TreeNode) -> "Counter[object]":
        if self.q == 2:
            return Counter(iter_branches(tree))
        return Counter(iter_qlevel_branches(tree, self.q))

    def signature(self, tree: TreeNode) -> PackedVector:
        """Query-side packed vector; leaves the vocabulary untouched."""
        return pack_counts(
            self._counts(tree), self._vocabulary, tree.size, self.q, grow=False
        )

    def _index_signature(self, tree: TreeNode) -> PackedVector:
        """Database-side packed vector; interns unseen branches."""
        return pack_counts(
            self._counts(tree), self._vocabulary, tree.size, self.q, grow=True
        )

    def _bind_store(self, store: "FeatureStore") -> None:
        self._vocabulary = store.vocabulary

    def store_signature(self, store: "FeatureStore", index: int) -> PackedVector:
        return store.packed_vector(index, self.q)

    def bound(self, query: PackedVector, data: PackedVector) -> float:
        return -(-query.l1_distance(data) // self.factor)

    def lower_bounds_matrix(
        self, query: PackedVector, matrices: "FeatureMatrices"
    ) -> Optional[Sequence[float]]:
        """Exact per-row ``⌈L1/factor⌉`` from the branch plane.

        L1 between count vectors is invariant under re-interning, so the
        kernel translates standalone-fitted queries through their branch
        keys and matches :meth:`bound` exactly, row for row.
        """
        try:
            return branch_count_bounds(
                matrices, self.q, query, self._vocabulary, self.factor, None
            )
        except InvalidParameterError:
            return None

    def refute_rows(
        self,
        query: PackedVector,
        threshold: float,
        rows: Sequence[int],
        matrices: "FeatureMatrices",
    ) -> Sequence[int]:
        try:
            bounds = branch_count_bounds(
                matrices, self.q, query, self._vocabulary, self.factor, rows
            )
        except InvalidParameterError:
            return super().refute_rows(query, threshold, rows, matrices)
        return keep_at_most(rows, bounds, threshold)
