"""Alignment of trees (Jiang, Wang & Zhang, TCS 1995 — paper ref. [18]).

The paper's §2.1 survey includes the *alignment distance*: both trees are
padded with λ-labeled nodes until they become structurally identical, and
the cost is the sum of the label-pair costs — equivalently, an edit script
in which "insertion is allowed only before deletion", as the paper puts it.
Alignment admits fewer scripts than the unrestricted edit distance, so

    EDist(T1, T2) ≤ AlignDist(T1, T2),

with equality on sequences (degenerate chains) — both reduce to the string
edit distance — and strict inequality possible on branching trees.

The implementation follows the JWZ dynamic program: subproblems are pairs
of *child-forest intervals*; besides the usual match/delete/insert cases, a
forest's last tree may align under a λ-node spanning a run of the other
forest's trees (the "span" cases), which is exactly what distinguishes
alignment from the constrained edit distance.  Complexity is
``O(|T1|·|T2|·(deg(T1)+deg(T2))²)``; the recursion is memoized over
``(parent1, interval1, parent2, interval2)`` keys.
"""

from __future__ import annotations

import sys
from typing import Dict, List, Tuple

from repro.editdist.costs import UNIT_COSTS, CostModel
from repro.trees.node import TreeNode

__all__ = ["alignment_distance"]


class _Aligner:
    def __init__(self, t1: TreeNode, t2: TreeNode, costs: CostModel) -> None:
        self.costs = costs
        self.nodes1 = list(t1.iter_postorder())
        self.nodes2 = list(t2.iter_postorder())
        self.index1 = {id(n): k for k, n in enumerate(self.nodes1)}
        self.index2 = {id(n): k for k, n in enumerate(self.nodes2)}
        # cost of aligning a whole subtree / forest against nothing
        self.gone1 = self._gone(self.nodes1, costs.delete)
        self.gone2 = self._gone(self.nodes2, costs.insert)
        self.tree_memo: Dict[Tuple[int, int], float] = {}
        self.forest_memo: Dict[Tuple, float] = {}

    @staticmethod
    def _gone(nodes: List[TreeNode], price) -> List[float]:
        totals = [0.0] * len(nodes)
        index = {id(n): k for k, n in enumerate(nodes)}
        for k, node in enumerate(nodes):
            totals[k] = price(node.label) + sum(
                totals[index[id(child)]] for child in node.children
            )
        return totals

    def gone_tree1(self, u: TreeNode) -> float:
        return self.gone1[self.index1[id(u)]]

    def gone_tree2(self, v: TreeNode) -> float:
        return self.gone2[self.index2[id(v)]]

    def gone_forest1(self, forest: Tuple[TreeNode, ...]) -> float:
        return sum(self.gone_tree1(u) for u in forest)

    def gone_forest2(self, forest: Tuple[TreeNode, ...]) -> float:
        return sum(self.gone_tree2(v) for v in forest)

    # ------------------------------------------------------------------
    def tree(self, u: TreeNode, v: TreeNode) -> float:
        key = (id(u), id(v))
        hit = self.tree_memo.get(key)
        if hit is not None:
            return hit
        children_u = u.children
        children_v = v.children
        best = self.forest(children_u, children_v) + self.costs.relabel(
            u.label, v.label
        )
        # v's root aligns with λ above u: u's whole tree goes inside one of
        # v's child subtrees
        if children_v:
            for child in children_v:
                candidate = (
                    self.gone_tree2(v)
                    - self.gone_tree2(child)
                    + self.tree(u, child)
                )
                if candidate < best:
                    best = candidate
        if children_u:
            for child in children_u:
                candidate = (
                    self.gone_tree1(u)
                    - self.gone_tree1(child)
                    + self.tree(child, v)
                )
                if candidate < best:
                    best = candidate
        self.tree_memo[key] = best
        return best

    # ------------------------------------------------------------------
    def forest(
        self, f1: Tuple[TreeNode, ...], f2: Tuple[TreeNode, ...]
    ) -> float:
        key = (tuple(id(t) for t in f1), tuple(id(t) for t in f2))
        hit = self.forest_memo.get(key)
        if hit is not None:
            return hit
        if not f1:
            value = self.gone_forest2(f2)
        elif not f2:
            value = self.gone_forest1(f1)
        else:
            last1 = f1[-1]
            last2 = f2[-1]
            rest1 = f1[:-1]
            rest2 = f2[:-1]
            # delete last1 wholesale / insert last2 wholesale / match them
            best = self.forest(rest1, f2) + self.gone_tree1(last1)
            candidate = self.forest(f1, rest2) + self.gone_tree2(last2)
            if candidate < best:
                best = candidate
            candidate = self.forest(rest1, rest2) + self.tree(last1, last2)
            if candidate < best:
                best = candidate
            # span cases: last1's root aligns with λ while its children
            # align against a suffix run of f2 (and symmetrically)
            children1 = last1.children
            delete_root1 = self.costs.delete(last1.label)
            for split in range(len(f2) + 1):
                candidate = (
                    delete_root1
                    + self.forest(rest1, f2[:split])
                    + self.forest(children1, f2[split:])
                )
                if candidate < best:
                    best = candidate
            children2 = last2.children
            insert_root2 = self.costs.insert(last2.label)
            for split in range(len(f1) + 1):
                candidate = (
                    insert_root2
                    + self.forest(f1[:split], rest2)
                    + self.forest(f1[split:], children2)
                )
                if candidate < best:
                    best = candidate
            value = best
        self.forest_memo[key] = value
        return value


def alignment_distance(
    t1: TreeNode, t2: TreeNode, costs: CostModel = UNIT_COSTS
) -> float:
    """The JWZ alignment distance between two trees (paper ref. [18]).

    >>> from repro.trees import parse_bracket
    >>> alignment_distance(parse_bracket("a(b,c)"), parse_bracket("a(b)"))
    1.0
    """
    aligner = _Aligner(t1, t2, costs)
    # the forest recursion peels one tree per call, so its depth is bounded
    # by the total node count, not the tree height
    needed = 4 * (t1.size + t2.size) + 100
    old_limit = sys.getrecursionlimit()
    if needed > old_limit:
        sys.setrecursionlimit(needed)
    try:
        return aligner.tree(t1, t2)
    finally:
        sys.setrecursionlimit(old_limit)
