"""q-grams for strings (Ukkonen 1992).

The paper motivates binary branches as "q-grams for trees": if two strings
are within edit distance ``k``, they share at least
``max(|S1|, |S2|) - (k - 1)·q - 1`` q-grams, so a q-gram count deficit
filters out dissimilar strings.  This module implements the string-side
machinery both for documentation value and because the positional variant
(Sutinen & Tarhio 1995, Gravano et al. 2001) is the direct ancestor of the
paper's positional binary branch filter.
"""

from __future__ import annotations

from collections import Counter
from typing import List, Sequence, Tuple

__all__ = [
    "qgrams",
    "qgram_profile",
    "qgram_overlap",
    "qgram_distance",
    "qgram_lower_bound",
    "shares_enough_qgrams",
    "positional_qgrams",
]


def qgrams(sequence: Sequence, q: int) -> List[Tuple]:
    """All contiguous length-``q`` subsequences, in order.

    >>> qgrams("abcd", 2)
    [('a', 'b'), ('b', 'c'), ('c', 'd')]
    """
    if q < 1:
        raise ValueError("q must be >= 1")
    return [tuple(sequence[i : i + q]) for i in range(len(sequence) - q + 1)]


def qgram_profile(sequence: Sequence, q: int) -> Counter:
    """Multiset of q-grams (the characteristic vector)."""
    return Counter(qgrams(sequence, q))


def qgram_overlap(a: Sequence, b: Sequence, q: int) -> int:
    """Number of q-grams the two sequences share (multiset intersection)."""
    profile_a = qgram_profile(a, q)
    profile_b = qgram_profile(b, q)
    return sum((profile_a & profile_b).values())


def qgram_distance(a: Sequence, b: Sequence, q: int) -> int:
    """L1 distance between q-gram profiles (the string analogue of BDist)."""
    profile_a = qgram_profile(a, q)
    profile_b = qgram_profile(b, q)
    keys = set(profile_a) | set(profile_b)
    return sum(abs(profile_a[key] - profile_b[key]) for key in keys)


def qgram_lower_bound(a: Sequence, b: Sequence, q: int) -> int:
    """Lower bound on the string edit distance from q-gram counts.

    One edit operation destroys at most ``q`` q-grams and creates at most
    ``q`` new ones, so ``L1(profiles) <= 2q · k`` and therefore
    ``ceil(L1 / (2q))`` lower-bounds the edit distance.
    """
    distance = qgram_distance(a, b, q)
    return -(-distance // (2 * q))


def shares_enough_qgrams(a: Sequence, b: Sequence, q: int, k: int) -> bool:
    """Ukkonen's count filter for the k-difference problem.

    Returns False only when ``a`` and ``b`` *cannot* be within edit distance
    ``k``: within distance ``k`` they must share at least
    ``max(|a|, |b|) - q + 1 - k·q`` q-grams.
    """
    threshold = max(len(a), len(b)) - q + 1 - k * q
    if threshold <= 0:
        return True
    return qgram_overlap(a, b, q) >= threshold


def positional_qgrams(sequence: Sequence, q: int) -> List[Tuple[int, Tuple]]:
    """q-grams annotated with their 1-based start positions.

    The positional refinement (two equal q-grams only match when their
    positions differ by at most the distance threshold) is what the paper
    adapts to trees via preorder/postorder numbers.
    """
    return [(i + 1, gram) for i, gram in enumerate(qgrams(sequence, q))]
