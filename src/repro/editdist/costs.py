"""Cost models for tree edit operations.

The paper adopts the *unit cost* edit distance (every operation costs 1) but
notes the approach extends to general costs whenever each operation's cost is
bounded from below; the binary branch lower bound is then scaled by that
minimum (see :func:`repro.core.lower_bounds.branch_lower_bound`).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.trees.node import Label

__all__ = ["CostModel", "UNIT_COSTS", "weighted_costs"]


class CostModel:
    """Costs ``γ(e)`` for relabel / delete / insert operations.

    Parameters
    ----------
    delete:
        ``label -> cost`` of deleting a node with that label.
    insert:
        ``label -> cost`` of inserting a node with that label.
    relabel:
        ``(old, new) -> cost`` of relabeling; must be 0 for ``old == new``.
    min_operation_cost:
        A lower bound on the cost of any *effective* operation (relabel with
        ``old != new``, any delete, any insert).  Needed to scale the binary
        branch lower bound for non-unit costs.
    """

    __slots__ = ("_delete", "_insert", "_relabel", "min_operation_cost")

    def __init__(
        self,
        delete: Callable[[Label], float],
        insert: Callable[[Label], float],
        relabel: Callable[[Label, Label], float],
        min_operation_cost: float,
    ) -> None:
        if min_operation_cost <= 0:
            raise ValueError("min_operation_cost must be positive")
        self._delete = delete
        self._insert = insert
        self._relabel = relabel
        self.min_operation_cost = min_operation_cost

    def delete(self, label: Label) -> float:
        """Cost of deleting a node labeled ``label``."""
        return self._delete(label)

    def insert(self, label: Label) -> float:
        """Cost of inserting a node labeled ``label``."""
        return self._insert(label)

    def relabel(self, old: Label, new: Label) -> float:
        """Cost of relabeling ``old`` to ``new`` (0 when identical)."""
        if old == new:
            return 0.0
        return self._relabel(old, new)

    @property
    def is_unit(self) -> bool:
        """True for the canonical unit-cost model (enables fast paths)."""
        return self is UNIT_COSTS


UNIT_COSTS = CostModel(
    delete=lambda label: 1.0,
    insert=lambda label: 1.0,
    relabel=lambda old, new: 1.0,
    min_operation_cost=1.0,
)
"""The unit cost model adopted throughout the paper."""


def weighted_costs(
    delete_cost: float = 1.0,
    insert_cost: float = 1.0,
    relabel_cost: float = 1.0,
    min_operation_cost: Optional[float] = None,
) -> CostModel:
    """Build a label-independent weighted cost model.

    >>> costs = weighted_costs(delete_cost=2.0, insert_cost=2.0)
    >>> costs.delete("a")
    2.0
    """
    minimum = (
        min(delete_cost, insert_cost, relabel_cost)
        if min_operation_cost is None
        else min_operation_cost
    )
    return CostModel(
        delete=lambda label: delete_cost,
        insert=lambda label: insert_cost,
        relabel=lambda old, new: relabel_cost,
        min_operation_cost=minimum,
    )
