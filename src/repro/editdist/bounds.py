"""Trivial lower and upper bounds on the tree edit distance.

Used as sanity envelopes by the search algorithms and by the property-based
test suite: every sophisticated lower bound must dominate the size bound and
stay below every upper bound.
"""

from __future__ import annotations

from repro.editdist.costs import UNIT_COSTS, CostModel
from repro.trees.node import TreeNode
from repro.trees.properties import label_counts

__all__ = ["size_lower_bound", "label_lower_bound", "naive_upper_bound"]


def size_lower_bound(t1: TreeNode, t2: TreeNode) -> int:
    """``EDist >= ||T1| - |T2||`` — each insert/delete changes size by one.

    The paper uses this to seed ``pr_min`` in the positional bound search.
    """
    return abs(t1.size - t2.size)


def label_lower_bound(t1: TreeNode, t2: TreeNode) -> int:
    """``EDist >= L1(label histograms) / 2``.

    Every relabel moves one unit between two label bins (L1 change 2); every
    insert or delete changes one bin by one (L1 change 1 ≤ 2).
    """
    counts1 = label_counts(t1)
    counts2 = label_counts(t2)
    keys = set(counts1) | set(counts2)
    l1 = sum(abs(counts1[key] - counts2[key]) for key in keys)
    return -(-l1 // 2)


def naive_upper_bound(
    t1: TreeNode, t2: TreeNode, costs: CostModel = UNIT_COSTS
) -> float:
    """``EDist <= cost(delete all of T1) + cost(insert all of T2)``."""
    total = sum(costs.delete(node.label) for node in t1.iter_preorder())
    total += sum(costs.insert(node.label) for node in t2.iter_preorder())
    return total
