"""Edit mappings between trees (paper §2.1).

A *mapping* between ``T1`` and ``T2`` is a one-to-one set of node pairs that
preserves both ancestor order and sibling order; it depicts graphically which
nodes are relabeled (mapped, labels differ), deleted (unmapped in ``T1``) and
inserted (unmapped in ``T2``) — the dashed lines of the paper's Figure 1.

This module recovers a minimum-cost mapping with a memoized forest dynamic
program.  It is asymptotically slower than Zhang–Shasha
(``O(|T1|²|T2|²)`` subproblems in the worst case) but:

* it doubles as an independent oracle for cross-checking the optimized
  Zhang–Shasha implementation in the test suite, and
* it exposes *which* edit operations the distance corresponds to, which the
  distance-only DP does not.

Forests are contiguous postorder intervals ``[l, r]``; the recursion peels
the rightmost root, exactly mirroring the textbook formulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple

from repro.editdist.costs import UNIT_COSTS, CostModel
from repro.trees.node import TreeNode

__all__ = [
    "EditMapping",
    "tree_edit_mapping",
    "mapping_cost",
    "is_valid_mapping",
    "memoized_edit_distance",
]

_Key = Tuple[int, int, int, int]


class _ForestDP:
    """Memoized forest edit distance over postorder intervals."""

    def __init__(self, t1: TreeNode, t2: TreeNode, costs: CostModel) -> None:
        self.nodes1 = list(t1.iter_postorder())
        self.nodes2 = list(t2.iter_postorder())
        self.labels1 = [n.label for n in self.nodes1]
        self.labels2 = [n.label for n in self.nodes2]
        self.lml1 = _leftmost_leaves(t1, self.nodes1)
        self.lml2 = _leftmost_leaves(t2, self.nodes2)
        self.costs = costs
        # prefix sums of whole-node delete / insert costs for empty cases
        self.del_prefix = _prefix([costs.delete(l) for l in self.labels1])
        self.ins_prefix = _prefix([costs.insert(l) for l in self.labels2])
        self.memo: Dict[_Key, float] = {}

    # -- cost of deleting / inserting an entire postorder interval ---------
    def delete_range(self, l: int, r: int) -> float:
        return self.del_prefix[r + 1] - self.del_prefix[l] if l <= r else 0.0

    def insert_range(self, l: int, r: int) -> float:
        return self.ins_prefix[r + 1] - self.ins_prefix[l] if l <= r else 0.0

    def distance(self, l1: int, r1: int, l2: int, r2: int) -> float:
        """Forest distance with an explicit evaluation stack (no recursion)."""
        root_key = (l1, r1, l2, r2)
        memo = self.memo
        stack: List[_Key] = [root_key]
        while stack:
            key = stack[-1]
            if key in memo:
                stack.pop()
                continue
            kl1, kr1, kl2, kr2 = key
            if kl1 > kr1:
                memo[key] = self.insert_range(kl2, kr2)
                stack.pop()
                continue
            if kl2 > kr2:
                memo[key] = self.delete_range(kl1, kr1)
                stack.pop()
                continue
            deps = self._dependencies(key)
            missing = [d for d in deps if d not in memo]
            if missing:
                stack.extend(missing)
                continue
            memo[key] = min(self._candidates(key))
            stack.pop()
        return memo[root_key]

    def _dependencies(self, key: _Key) -> List[_Key]:
        l1, r1, l2, r2 = key
        a1, a2 = self.lml1[r1], self.lml2[r2]
        return [
            (l1, r1 - 1, l2, r2),
            (l1, r1, l2, r2 - 1),
            (l1, a1 - 1, l2, a2 - 1),
            (a1, r1 - 1, a2, r2 - 1),
        ]

    def _candidates(self, key: _Key) -> List[float]:
        l1, r1, l2, r2 = key
        memo = self.memo
        a1, a2 = self.lml1[r1], self.lml2[r2]
        return [
            memo[(l1, r1 - 1, l2, r2)] + self.costs.delete(self.labels1[r1]),
            memo[(l1, r1, l2, r2 - 1)] + self.costs.insert(self.labels2[r2]),
            memo[(l1, a1 - 1, l2, a2 - 1)]
            + memo[(a1, r1 - 1, a2, r2 - 1)]
            + self.costs.relabel(self.labels1[r1], self.labels2[r2]),
        ]

    def backtrack(self) -> List[Tuple[int, int]]:
        """Extract one optimal mapping as postorder index pairs."""
        pairs: List[Tuple[int, int]] = []
        agenda: List[_Key] = [
            (0, len(self.nodes1) - 1, 0, len(self.nodes2) - 1)
        ]
        eps = 1e-9
        while agenda:
            key = agenda.pop()
            l1, r1, l2, r2 = key
            if l1 > r1 or l2 > r2:
                continue
            value = self.memo[key] if key in self.memo else self.distance(*key)
            candidates = self._candidates(key)
            a1, a2 = self.lml1[r1], self.lml2[r2]
            if abs(candidates[2] - value) <= eps:
                pairs.append((r1, r2))
                agenda.append((l1, a1 - 1, l2, a2 - 1))
                agenda.append((a1, r1 - 1, a2, r2 - 1))
            elif abs(candidates[0] - value) <= eps:
                agenda.append((l1, r1 - 1, l2, r2))
            else:
                agenda.append((l1, r1, l2, r2 - 1))
        pairs.sort()
        return pairs


def _leftmost_leaves(tree: TreeNode, nodes: Sequence[TreeNode]) -> List[int]:
    index = {id(node): i for i, node in enumerate(nodes)}
    lml = [0] * len(nodes)
    for i, node in enumerate(nodes):
        first = node.first_child
        lml[i] = i if first is None else lml[index[id(first)]]
    return lml


def _prefix(values: Sequence[float]) -> List[float]:
    out = [0.0]
    for value in values:
        out.append(out[-1] + value)
    return out


@dataclass
class EditMapping:
    """A minimum-cost edit mapping between two trees.

    Attributes
    ----------
    pairs:
        Mapped node pairs as 0-based postorder index pairs ``(i, j)``.
    cost:
        Total cost of the corresponding edit script (= the edit distance).
    nodes1, nodes2:
        The trees' nodes in postorder, for resolving indices.
    """

    pairs: List[Tuple[int, int]]
    cost: float
    nodes1: List[TreeNode]
    nodes2: List[TreeNode]

    @property
    def relabeled(self) -> List[Tuple[TreeNode, TreeNode]]:
        """Mapped pairs whose labels differ."""
        return [
            (self.nodes1[i], self.nodes2[j])
            for i, j in self.pairs
            if self.nodes1[i].label != self.nodes2[j].label
        ]

    @property
    def deleted(self) -> List[TreeNode]:
        """Nodes of ``T1`` without a correspondence."""
        mapped = {i for i, _ in self.pairs}
        return [n for i, n in enumerate(self.nodes1) if i not in mapped]

    @property
    def inserted(self) -> List[TreeNode]:
        """Nodes of ``T2`` without a correspondence."""
        mapped = {j for _, j in self.pairs}
        return [n for j, n in enumerate(self.nodes2) if j not in mapped]

    def operations(self) -> List[str]:
        """Human-readable edit script (relabels, deletes, inserts)."""
        ops = [
            f"relabel {a.label!r} -> {b.label!r}" for a, b in self.relabeled
        ]
        ops += [f"delete {n.label!r}" for n in self.deleted]
        ops += [f"insert {n.label!r}" for n in self.inserted]
        return ops

    def summary(self) -> Dict[str, int]:
        """Operation counts: ``{"relabel": …, "delete": …, "insert": …}``."""
        return {
            "relabel": len(self.relabeled),
            "delete": len(self.deleted),
            "insert": len(self.inserted),
        }


def tree_edit_mapping(
    t1: TreeNode, t2: TreeNode, costs: CostModel = UNIT_COSTS
) -> EditMapping:
    """Compute a minimum-cost edit mapping between ``t1`` and ``t2``.

    >>> from repro.trees import parse_bracket
    >>> m = tree_edit_mapping(parse_bracket("a(b,c)"), parse_bracket("a(b)"))
    >>> m.cost
    1.0
    >>> [n.label for n in m.deleted]
    ['c']
    """
    dp = _ForestDP(t1, t2, costs)
    cost = dp.distance(0, len(dp.nodes1) - 1, 0, len(dp.nodes2) - 1)
    pairs = dp.backtrack()
    return EditMapping(pairs=pairs, cost=cost, nodes1=dp.nodes1, nodes2=dp.nodes2)


def memoized_edit_distance(
    t1: TreeNode, t2: TreeNode, costs: CostModel = UNIT_COSTS
) -> float:
    """Edit distance via the memoized forest DP (test oracle for ZS)."""
    dp = _ForestDP(t1, t2, costs)
    return dp.distance(0, len(dp.nodes1) - 1, 0, len(dp.nodes2) - 1)


def mapping_cost(
    mapping: Sequence[Tuple[int, int]],
    t1: TreeNode,
    t2: TreeNode,
    costs: CostModel = UNIT_COSTS,
) -> float:
    """Cost of the edit script induced by a mapping (Tai's formula)."""
    nodes1 = list(t1.iter_postorder())
    nodes2 = list(t2.iter_postorder())
    mapped1 = {i for i, _ in mapping}
    mapped2 = {j for _, j in mapping}
    total = sum(
        costs.relabel(nodes1[i].label, nodes2[j].label) for i, j in mapping
    )
    total += sum(
        costs.delete(n.label) for i, n in enumerate(nodes1) if i not in mapped1
    )
    total += sum(
        costs.insert(n.label) for j, n in enumerate(nodes2) if j not in mapped2
    )
    return total


def is_valid_mapping(
    mapping: Sequence[Tuple[int, int]], t1: TreeNode, t2: TreeNode
) -> bool:
    """Check the paper's mapping conditions.

    One-to-one; preserves ancestor order; preserves sibling (left-to-right)
    order.  With 0-based postorder indices ``post`` and preorder ranks
    ``pre``, two pairs ``(i1, j1)``, ``(i2, j2)`` are compatible iff
    ``post`` comparisons and ``pre`` comparisons agree pairwise (this encodes
    both order conditions simultaneously).
    """
    nodes1 = list(t1.iter_postorder())
    nodes2 = list(t2.iter_postorder())
    pre1 = {id(n): k for k, n in enumerate(t1.iter_preorder())}
    pre2 = {id(n): k for k, n in enumerate(t2.iter_preorder())}
    seen1: Set[int] = set()
    seen2: Set[int] = set()
    for i, j in mapping:
        if i in seen1 or j in seen2:
            return False
        seen1.add(i)
        seen2.add(j)
    items = list(mapping)
    for a in range(len(items)):
        i1, j1 = items[a]
        p1, q1 = pre1[id(nodes1[i1])], pre2[id(nodes2[j1])]
        for b in range(a + 1, len(items)):
            i2, j2 = items[b]
            p2, q2 = pre1[id(nodes1[i2])], pre2[id(nodes2[j2])]
            if (i1 < i2) != (j1 < j2):
                return False
            if (p1 < p2) != (q1 < q2):
                return False
    return True
