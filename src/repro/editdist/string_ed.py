"""String (Levenshtein) edit distance.

Two roles in the reproduction:

* it is the substrate of the *q-gram* filtering analogy that motivates the
  binary branch embedding (paper §1, §3.4), and
* the Guha et al. (SIGMOD 2002) baseline filter lower-bounds the tree edit
  distance by the string edit distance of preorder/postorder label sequences
  (:mod:`repro.filters.traversal_string`).
"""

from __future__ import annotations

from typing import Optional, Sequence

__all__ = ["string_edit_distance", "string_edit_distance_bounded"]


def string_edit_distance(a: Sequence, b: Sequence) -> int:
    """Unit-cost Levenshtein distance between two sequences.

    Classic two-row dynamic program, ``O(|a||b|)`` time, ``O(min)`` space.

    >>> string_edit_distance("kitten", "sitting")
    3
    >>> string_edit_distance("kitten", "kitten")
    0
    >>> string_edit_distance(list("abc"), list("abd"))
    1
    """
    if len(a) < len(b):
        a, b = b, a
    if not b:
        return len(a)
    previous = list(range(len(b) + 1))
    for i, item_a in enumerate(a, start=1):
        current = [i] + [0] * len(b)
        for j, item_b in enumerate(b, start=1):
            cost = 0 if item_a == item_b else 1
            current[j] = min(
                previous[j] + 1,  # delete
                current[j - 1] + 1,  # insert
                previous[j - 1] + cost,  # substitute / keep
            )
        previous = current
    return previous[-1]


def string_edit_distance_bounded(
    a: Sequence, b: Sequence, bound: int
) -> Optional[int]:
    """Levenshtein distance with early termination.

    Returns the distance when it is ``<= bound``, otherwise ``None``.  Uses
    the standard band optimization: only cells within ``bound`` of the
    diagonal can contribute.
    """
    if bound < 0:
        return None
    if abs(len(a) - len(b)) > bound:
        return None
    if len(a) < len(b):
        a, b = b, a
    if not b:
        return len(a) if len(a) <= bound else None
    size_b = len(b)
    infinity = bound + 1
    previous = [j if j <= bound else infinity for j in range(size_b + 1)]
    for i, item_a in enumerate(a, start=1):
        lo = max(1, i - bound)
        hi = min(size_b, i + bound)
        current = [infinity] * (size_b + 1)
        if i <= bound:
            current[0] = i
        for j in range(lo, hi + 1):
            item_b = b[j - 1]
            cost = 0 if item_a == item_b else 1
            value = previous[j - 1] + cost
            other = previous[j] + 1
            if other < value:
                value = other
            other = current[j - 1] + 1
            if other < value:
                value = other
            current[j] = value
        if min(current[lo - 1 : hi + 1]) > bound:
            return None
        previous = current
    result = previous[size_b]
    return result if result <= bound else None
