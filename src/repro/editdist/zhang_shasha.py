"""The Zhang–Shasha tree edit distance (SIAM J. Comput. 1989).

This is the paper's *refinement-step* distance — the exact edit distance
``EDist(T1, T2)`` between rooted ordered labeled trees with relabel, insert
and delete operations allowed anywhere in the tree.

Complexity: ``O(|T1||T2| · min(depth,leaves)(T1) · min(depth,leaves)(T2))``
time and ``O(|T1||T2|)`` space — exactly the costs the paper's filters are
designed to avoid paying for every database object.

The implementation follows the classic formulation:

1. number nodes in postorder;
2. compute ``lml(i)``, the postorder number of the leftmost leaf descendant
   of node ``i``;
3. the *keyroots* are the highest nodes of each distinct left path;
4. for every keyroot pair, run the forest-distance dynamic program, recording
   subtree distances in the ``treedist`` table as they become available.

A unit-cost fast path avoids per-cell cost-callback dispatch, which matters
for a pure-Python inner loop.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from repro.editdist.costs import UNIT_COSTS, CostModel
from repro.obs import tracing
from repro.trees.node import Label, TreeNode

__all__ = [
    "tree_edit_distance",
    "PreparedTree",
    "prepare_tree",
    "PreparedTreeCache",
    "EditDistanceCounter",
]


class PreparedTree:
    """Postorder-flattened tree: the arrays the Zhang–Shasha DP consumes.

    Preparing a tree once and reusing it across many distance computations
    (as the refinement step of a similarity query does) avoids re-walking the
    tree structure per pair.
    """

    __slots__ = ("labels", "lml", "keyroots", "size")

    def __init__(
        self, labels: List[Label], lml: List[int], keyroots: List[int]
    ) -> None:
        self.labels = labels
        self.lml = lml
        self.keyroots = keyroots
        self.size = len(labels)


def prepare_tree(tree: TreeNode) -> PreparedTree:
    """Flatten a tree into the postorder arrays used by the DP."""
    nodes = list(tree.iter_postorder())
    index = {id(node): i for i, node in enumerate(nodes)}
    labels = [node.label for node in nodes]
    lml = [0] * len(nodes)
    for i, node in enumerate(nodes):
        first = node.first_child
        lml[i] = i if first is None else lml[index[id(first)]]
    # keyroot = the largest postorder index among nodes sharing a leftmost leaf
    highest: Dict[int, int] = {}
    for i, left in enumerate(lml):
        highest[left] = i
    keyroots = sorted(highest.values())
    return PreparedTree(labels, lml, keyroots)


def _distance_unit(a: PreparedTree, b: PreparedTree) -> float:
    """Unit-cost Zhang–Shasha DP (fast path)."""
    lml1, lml2 = a.lml, b.lml
    labels1, labels2 = a.labels, b.labels
    n, m = a.size, b.size
    treedist = [[0.0] * m for _ in range(n)]
    for kr1 in a.keyroots:
        l1 = lml1[kr1]
        rows = kr1 - l1 + 2
        for kr2 in b.keyroots:
            l2 = lml2[kr2]
            cols = kr2 - l2 + 2
            # forest distance matrix fd[di][dj]; fd[0][0] = empty vs empty
            fd = [[0.0] * cols for _ in range(rows)]
            fd0 = fd[0]
            for dj in range(1, cols):
                fd0[dj] = fd0[dj - 1] + 1.0
            for di in range(1, rows):
                fd[di][0] = fd[di - 1][0] + 1.0
            for di in range(1, rows):
                i1 = l1 + di - 1
                row = fd[di]
                above = fd[di - 1]
                label1 = labels1[i1]
                left1 = lml1[i1]
                whole_left = left1 == l1
                tdrow = treedist[i1]
                for dj in range(1, cols):
                    j1 = l2 + dj - 1
                    best = above[dj] + 1.0  # delete i1
                    other = row[dj - 1] + 1.0  # insert j1
                    if other < best:
                        best = other
                    if whole_left and lml2[j1] == l2:
                        other = above[dj - 1] + (
                            0.0 if label1 == labels2[j1] else 1.0
                        )
                        if other < best:
                            best = other
                        row[dj] = best
                        tdrow[j1] = best
                    else:
                        other = fd[left1 - l1][lml2[j1] - l2] + tdrow[j1]
                        if other < best:
                            best = other
                        row[dj] = best
    return treedist[n - 1][m - 1]


def _distance_general(a: PreparedTree, b: PreparedTree, costs: CostModel) -> float:
    """General-cost Zhang–Shasha DP."""
    lml1, lml2 = a.lml, b.lml
    labels1, labels2 = a.labels, b.labels
    n, m = a.size, b.size
    delete, insert, relabel = costs.delete, costs.insert, costs.relabel
    treedist = [[0.0] * m for _ in range(n)]
    for kr1 in a.keyroots:
        l1 = lml1[kr1]
        rows = kr1 - l1 + 2
        for kr2 in b.keyroots:
            l2 = lml2[kr2]
            cols = kr2 - l2 + 2
            fd = [[0.0] * cols for _ in range(rows)]
            for dj in range(1, cols):
                fd[0][dj] = fd[0][dj - 1] + insert(labels2[l2 + dj - 1])
            for di in range(1, rows):
                fd[di][0] = fd[di - 1][0] + delete(labels1[l1 + di - 1])
            for di in range(1, rows):
                i1 = l1 + di - 1
                row = fd[di]
                above = fd[di - 1]
                label1 = labels1[i1]
                left1 = lml1[i1]
                whole_left = left1 == l1
                tdrow = treedist[i1]
                del_cost = delete(label1)
                for dj in range(1, cols):
                    j1 = l2 + dj - 1
                    label2 = labels2[j1]
                    best = above[dj] + del_cost
                    other = row[dj - 1] + insert(label2)
                    if other < best:
                        best = other
                    if whole_left and lml2[j1] == l2:
                        other = above[dj - 1] + relabel(label1, label2)
                        if other < best:
                            best = other
                        row[dj] = best
                        tdrow[j1] = best
                    else:
                        other = fd[left1 - l1][lml2[j1] - l2] + tdrow[j1]
                        if other < best:
                            best = other
                        row[dj] = best
    return treedist[n - 1][m - 1]


def tree_edit_distance(
    t1: "TreeNode | PreparedTree",
    t2: "TreeNode | PreparedTree",
    costs: CostModel = UNIT_COSTS,
) -> float:
    """Exact tree edit distance ``EDist(T1, T2)``.

    Accepts either :class:`~repro.trees.node.TreeNode` roots or
    :class:`PreparedTree` objects (prepare once when computing many
    distances against the same tree).

    >>> from repro.trees import parse_bracket
    >>> tree_edit_distance(parse_bracket("a(b,c)"), parse_bracket("a(b,d)"))
    1.0
    """
    a = t1 if isinstance(t1, PreparedTree) else prepare_tree(t1)
    b = t2 if isinstance(t2, PreparedTree) else prepare_tree(t2)
    if costs.is_unit:
        return _distance_unit(a, b)
    return _distance_general(a, b, costs)


class PreparedTreeCache:
    """Bounded, thread-safe identity cache of :class:`PreparedTree` forms.

    Entries are keyed by ``id(tree)`` but also *hold a strong reference to
    the tree itself*, so an id can never be recycled by a new object while
    its entry is alive (caching bare ids is unsound: CPython reuses the
    addresses of garbage-collected objects).  The stored tree is compared
    with ``is`` on lookup as a second line of defense.  Eviction is LRU so
    long-running services cannot grow the cache without bound.
    """

    def __init__(self, maxsize: int = 4096) -> None:
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self._lock = threading.Lock()
        self._entries: "OrderedDict[int, Tuple[TreeNode, PreparedTree]]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, tree: TreeNode) -> PreparedTree:
        """Return the prepared form of ``tree``, preparing it on a miss."""
        key = id(tree)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and entry[0] is tree:
                self._entries.move_to_end(key)
                return entry[1]
        prepared = prepare_tree(tree)
        with self._lock:
            self._entries[key] = (tree, prepared)
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
        return prepared

    def clear(self) -> None:
        """Drop every cached entry."""
        with self._lock:
            self._entries.clear()


class EditDistanceCounter:
    """Counting wrapper used by the benchmark harness.

    Tracks how many exact edit-distance computations were performed — the
    paper's core efficiency metric is precisely how many of these a filter
    avoids — and caches prepared trees in a bounded identity cache.  Pass a
    shared :class:`PreparedTreeCache` to let several counters (e.g. one per
    in-flight query of a service) reuse each other's preparation work.
    """

    def __init__(
        self,
        costs: CostModel = UNIT_COSTS,
        cache: Optional[PreparedTreeCache] = None,
        cache_size: int = 4096,
    ) -> None:
        self.costs = costs
        self.calls = 0
        self._prepared = cache if cache is not None else PreparedTreeCache(cache_size)

    @property
    def cache(self) -> PreparedTreeCache:
        """The prepared-tree cache (shareable across counters)."""
        return self._prepared

    def prepared(self, tree: TreeNode) -> PreparedTree:
        """Return (and cache) the prepared form of ``tree``."""
        return self._prepared.get(tree)

    def distance(self, t1: TreeNode, t2: TreeNode) -> float:
        """Exact distance with call counting and preparation caching."""
        self.calls += 1
        a = self.prepared(t1)
        b = self.prepared(t2)
        if not tracing.enabled():  # keep the hot path allocation-free
            return tree_edit_distance(a, b, self.costs)
        with tracing.span(
            "editdist.zhang_shasha",
            n1=a.size,
            n2=b.size,
            keyroot_pairs=len(a.keyroots) * len(b.keyroots),
        ) as sp:
            result = tree_edit_distance(a, b, self.costs)
            sp.set(distance=result)
        return result

    def reset(self) -> None:
        """Zero the call counter (the preparation cache is kept)."""
        self.calls = 0
