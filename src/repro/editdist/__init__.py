"""Tree and string edit distance substrate.

The exact (Zhang–Shasha) tree edit distance used in the refinement step,
edit-mapping recovery, cost models, string edit distance and q-grams.
"""

from repro.editdist.alignment import alignment_distance
from repro.editdist.bounds import (
    label_lower_bound,
    naive_upper_bound,
    size_lower_bound,
)
from repro.editdist.costs import UNIT_COSTS, CostModel, weighted_costs
from repro.editdist.mapping import (
    EditMapping,
    is_valid_mapping,
    mapping_cost,
    memoized_edit_distance,
    tree_edit_mapping,
)
from repro.editdist.qgrams import (
    positional_qgrams,
    qgram_distance,
    qgram_lower_bound,
    qgram_overlap,
    qgram_profile,
    qgrams,
    shares_enough_qgrams,
)
from repro.editdist.string_ed import string_edit_distance, string_edit_distance_bounded
from repro.editdist.variants import constrained_edit_distance, selkow_edit_distance
from repro.editdist.zhang_shasha import (
    EditDistanceCounter,
    PreparedTree,
    PreparedTreeCache,
    prepare_tree,
    tree_edit_distance,
)

__all__ = [
    "tree_edit_distance",
    "prepare_tree",
    "PreparedTree",
    "PreparedTreeCache",
    "EditDistanceCounter",
    "CostModel",
    "UNIT_COSTS",
    "weighted_costs",
    "EditMapping",
    "tree_edit_mapping",
    "memoized_edit_distance",
    "mapping_cost",
    "is_valid_mapping",
    "string_edit_distance",
    "selkow_edit_distance",
    "constrained_edit_distance",
    "alignment_distance",
    "string_edit_distance_bounded",
    "qgrams",
    "qgram_profile",
    "qgram_overlap",
    "qgram_distance",
    "qgram_lower_bound",
    "shares_enough_qgrams",
    "positional_qgrams",
    "size_lower_bound",
    "label_lower_bound",
    "naive_upper_bound",
]
