"""Restricted edit-distance variants surveyed in the paper's §2.1.

The paper's related-work discussion contrasts Zhang–Shasha's general edit
distance with two classic restrictions, both implemented here:

* **Selkow's top-down distance** (Information Processing Letters 1977,
  ref. [14]): insertions and deletions are only allowed at the leaves —
  equivalently, a node can only map to a node at the same depth whose
  parent is also mapped.  Computed by a simple recursion: relabel the
  roots, then align the child subtree sequences.
* **Zhang's constrained edit distance** (Pattern Recognition 1995,
  ref. [22]): mappings are restricted so that disjoint subtrees map to
  disjoint subtrees.  Computed in ``O(|T1|·|T2|·(deg(T1)+deg(T2)))`` by
  Zhang's dynamic program over subtree/forest pairs.

Both restrictions shrink the space of allowed mappings, so each variant is
an **upper bound** of the unrestricted edit distance — useful both as
baselines and as cheap optimistic radii for nearest-neighbor search
(property-tested in ``tests/editdist/test_variants.py``).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.editdist.costs import UNIT_COSTS, CostModel
from repro.trees.node import TreeNode

__all__ = ["selkow_edit_distance", "constrained_edit_distance"]


def _subtree_cost(tree: TreeNode, price) -> Dict[int, float]:
    """Cost of wholesale-inserting/deleting every subtree, bottom-up."""
    total: Dict[int, float] = {}
    for node in tree.iter_postorder():
        total[id(node)] = price(node.label) + sum(
            total[id(child)] for child in node.children
        )
    return total


def _sequence_alignment(
    left: List[TreeNode],
    right: List[TreeNode],
    substitute,
    delete_cost,
    insert_cost,
) -> float:
    """Edit-distance alignment of two child sequences.

    ``substitute(a, b)`` prices matching subtree ``a`` against ``b``;
    ``delete_cost``/``insert_cost`` price dropping / adding whole subtrees.
    """
    rows = len(left) + 1
    cols = len(right) + 1
    previous = [0.0] * cols
    for j in range(1, cols):
        previous[j] = previous[j - 1] + insert_cost(right[j - 1])
    for i in range(1, rows):
        current = [previous[0] + delete_cost(left[i - 1])] + [0.0] * (cols - 1)
        for j in range(1, cols):
            best = previous[j] + delete_cost(left[i - 1])
            other = current[j - 1] + insert_cost(right[j - 1])
            if other < best:
                best = other
            other = previous[j - 1] + substitute(left[i - 1], right[j - 1])
            if other < best:
                best = other
            current[j] = best
        previous = current
    return previous[-1]


def selkow_edit_distance(
    t1: TreeNode, t2: TreeNode, costs: CostModel = UNIT_COSTS
) -> float:
    """Selkow's top-down tree edit distance (paper ref. [14]).

    Roots always correspond; below them, subtrees are matched, deleted or
    inserted wholesale at each level.

    >>> from repro.trees import parse_bracket
    >>> selkow_edit_distance(parse_bracket("a(b,c)"), parse_bracket("a(b)"))
    1.0
    """
    delete_total = _subtree_cost(t1, costs.delete)
    insert_total = _subtree_cost(t2, costs.insert)
    memo: Dict[Tuple[int, int], float] = {}

    def distance(u: TreeNode, v: TreeNode) -> float:
        key = (id(u), id(v))
        hit = memo.get(key)
        if hit is not None:
            return hit
        value = costs.relabel(u.label, v.label) + _sequence_alignment(
            list(u.children),
            list(v.children),
            distance,
            lambda node: delete_total[id(node)],
            lambda node: insert_total[id(node)],
        )
        memo[key] = value
        return value

    return distance(t1, t2)


def constrained_edit_distance(
    t1: TreeNode, t2: TreeNode, costs: CostModel = UNIT_COSTS
) -> float:
    """Zhang's constrained edit distance (paper ref. [22]).

    The mapping restriction: two separate subtrees of ``T1`` must map to
    two separate subtrees of ``T2`` (the "structure-preserving" intuition
    quoted in §2.1).  Implements Zhang's 1995 dynamic program.

    >>> from repro.trees import parse_bracket
    >>> constrained_edit_distance(parse_bracket("a(b,c)"), parse_bracket("a(c)"))
    1.0
    """
    delete_total = _subtree_cost(t1, costs.delete)
    insert_total = _subtree_cost(t2, costs.insert)
    # forest deletion/insertion costs (children of a node)
    delete_forest = {
        id(node): delete_total[id(node)] - costs.delete(node.label)
        for node in t1.iter_preorder()
    }
    insert_forest = {
        id(node): insert_total[id(node)] - costs.insert(node.label)
        for node in t2.iter_preorder()
    }
    tree_memo: Dict[Tuple[int, int], float] = {}
    forest_memo: Dict[Tuple[int, int], float] = {}

    def tree_distance(u: TreeNode, v: TreeNode) -> float:
        key = (id(u), id(v))
        hit = tree_memo.get(key)
        if hit is not None:
            return hit
        # case 1: u survives inside one of v's child subtrees
        best = float("inf")
        if v.children:
            best = insert_total[id(v)] - costs.insert(v.label) + min(
                tree_distance(u, child) - insert_total[id(child)]
                for child in v.children
            ) + costs.insert(v.label)
        # case 2: v survives inside one of u's child subtrees
        if u.children:
            other = delete_total[id(u)] - costs.delete(u.label) + min(
                tree_distance(child, v) - delete_total[id(child)]
                for child in u.children
            ) + costs.delete(u.label)
            if other < best:
                best = other
        # case 3: u maps to v, child forests aligned
        other = forest_distance(u, v) + costs.relabel(u.label, v.label)
        if other < best:
            best = other
        tree_memo[key] = best
        return best

    def forest_distance(u: TreeNode, v: TreeNode) -> float:
        """Distance between the child forests of ``u`` and ``v``."""
        key = (id(u), id(v))
        hit = forest_memo.get(key)
        if hit is not None:
            return hit
        children_u = list(u.children)
        children_v = list(v.children)
        # case A: all of F(u) goes into a single child forest of v
        best = float("inf")
        if children_v:
            best = insert_forest[id(v)] + min(
                forest_distance(u, child) - insert_forest[id(child)]
                for child in children_v
            )
        # case B: symmetric
        if children_u:
            other = delete_forest[id(u)] + min(
                forest_distance(child, v) - delete_forest[id(child)]
                for child in children_u
            )
            if other < best:
                best = other
        # case C: align the child sequences (each child subtree matched
        # wholesale against one other, deleted or inserted)
        other = _sequence_alignment(
            children_u,
            children_v,
            tree_distance,
            lambda node: delete_total[id(node)],
            lambda node: insert_total[id(node)],
        )
        if other < best:
            best = other
        forest_memo[key] = best
        return best

    return tree_distance(t1, t2)
