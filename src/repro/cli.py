"""Command-line interface: ``python -m repro <command> …``.

Commands
--------
``distance``   exact tree edit distance between two bracket trees
``bound``      the paper's lower bounds (count / positional, any q)
``diff``       minimum-cost edit script between two trees
``generate``   synthetic (§5) or DBLP-like datasets to a ``.trees`` file
``stats``      structural summary of a dataset file
``search``     range or k-NN query over a dataset file
``features``   build (``features build``) or inspect (``features stats``)
               a dataset's shared feature plane
``index``      build (``index build``) or inspect (``index stats``) a
               sublinear candidate-index sidecar over a feature plane
``serve-bench``  replay synthetic query traffic through TreeSearchService
``bench``      run (``bench run``) the declared perf-ledger suite to a
               ``BENCH_<n>.json`` record, or diff two records with
               noise-aware regression gates (``bench compare``)
``trace``      run one query fully traced: span tree + filter funnel
``metrics``    dump the process-wide metrics registry (Prometheus text)
``verify``     run the differential/metamorphic oracle harness
``lint``       run the project-invariant static checker (repro.analysis)
``join``       similarity self-join of a dataset file
``convert``    XML/JSON documents -> a ``.trees`` dataset file
``show``       draw a bracket tree
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.bench import average_pairwise_distance
from repro.core.lower_bounds import branch_lower_bound, positional_lower_bound
from repro.core.vectors import branch_distance
from repro.datasets import generate_dblp_dataset, generate_dataset, parse_spec
from repro.editdist import tree_edit_distance, tree_edit_mapping
from repro.filters import (
    BinaryBranchFilter,
    HistogramFilter,
    TraversalStringFilter,
)
from repro.index import CANDIDATE_SOURCES, INDEX_KINDS
from repro.search import knn_query, range_query, similarity_self_join
from repro.sharding.partition import PARTITIONERS
from repro.storage import load_forest, load_xml_directory, save_forest
from repro.trees import dataset_summary, parse_bracket, to_bracket
from repro.trees.json_io import parse_json_string
from repro.trees.xml_io import parse_xml_file
from repro.trees.render import render_tree

__all__ = ["main", "build_parser"]

_FILTERS = {
    "bibranch": BinaryBranchFilter,
    "histogram": HistogramFilter,
    "traversal": TraversalStringFilter,
}


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Similarity evaluation on tree-structured data "
        "(SIGMOD 2005 reproduction)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    distance = commands.add_parser(
        "distance", help="exact tree edit distance between two bracket trees"
    )
    distance.add_argument("tree1")
    distance.add_argument("tree2")

    bound = commands.add_parser("bound", help="edit-distance lower bounds")
    bound.add_argument("tree1")
    bound.add_argument("tree2")
    bound.add_argument("--q", type=int, default=2, help="branch level (>= 2)")

    diff = commands.add_parser("diff", help="minimum-cost edit script")
    diff.add_argument("tree1")
    diff.add_argument("tree2")

    show = commands.add_parser("show", help="draw a bracket tree")
    show.add_argument("tree")

    vector = commands.add_parser(
        "vector", help="print a tree's binary branch vector"
    )
    vector.add_argument("tree")
    vector.add_argument("--q", type=int, default=2)

    generate = commands.add_parser("generate", help="generate a dataset file")
    generate.add_argument("kind", choices=["synthetic", "dblp"])
    generate.add_argument("--out", required=True, help="output .trees file")
    generate.add_argument("--count", type=int, default=100)
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument(
        "--spec",
        default="N{4,0.5}N{50,2}L8D0.05",
        help="synthetic spec in the paper's caption notation",
    )

    stats = commands.add_parser("stats", help="summarize a dataset file")
    stats.add_argument("file")
    stats.add_argument(
        "--avg-distance",
        action="store_true",
        help="also estimate the average pairwise edit distance (slow)",
    )

    search = commands.add_parser("search", help="similarity query over a file")
    search.add_argument("file")
    search.add_argument("--query", required=True, help="bracket-notation tree")
    mode = search.add_mutually_exclusive_group(required=True)
    mode.add_argument("--range", type=float, dest="range_threshold")
    mode.add_argument("--knn", type=int, dest="knn_k")
    search.add_argument(
        "--filter", choices=sorted(_FILTERS), default="bibranch"
    )
    search.add_argument(
        "--shards",
        type=int,
        default=1,
        help="serve the query scatter-gather over N shard worker processes "
        "(1 = in-process, no workers)",
    )
    search.add_argument(
        "--partitioner",
        choices=sorted(PARTITIONERS),
        default="round-robin",
        help="shard placement policy (used with --shards > 1)",
    )
    search.add_argument(
        "--candidate-source",
        choices=list(CANDIDATE_SOURCES),
        default="auto",
        help="candidate generation path: 'loop' scores per candidate, "
        "'vectorized' runs the filter cascade over corpus-level matrix "
        "planes, 'vptree'/'ifi' prune candidates through a BDist metric "
        "index first, 'auto' vectorizes when a feature store is available",
    )
    search.add_argument(
        "--stats-json",
        action="store_true",
        help="print the SearchStats snapshot as JSON instead of the "
        "human-readable summary",
    )
    search.add_argument(
        "--trace",
        action="store_true",
        help="record spans for the query and print the span tree on stderr",
    )
    search.add_argument(
        "--funnel",
        action="store_true",
        help="collect the filter funnel and print its table on stderr "
        "(with --stats-json the funnel also rides in the JSON)",
    )
    search.add_argument(
        "--cost-report",
        action="store_true",
        help="collect the filter funnel and print the per-stage cost "
        "ledger (unit costs, refinements saved, net benefit) on stderr",
    )
    search.add_argument(
        "--profile",
        metavar="PATH",
        help="sample the query under the span-attributed profiler and "
        "write flamegraph collapsed stacks to PATH (JSON when PATH ends "
        "in .json)",
    )
    search.add_argument(
        "--profile-interval",
        type=float,
        default=0.001,
        help="profiler sampling interval in seconds (0 = every call "
        "event via the deterministic setprofile backend)",
    )

    features = commands.add_parser(
        "features", help="build or inspect a shared feature plane"
    )
    features_commands = features.add_subparsers(
        dest="features_command", required=True
    )
    features_build = features_commands.add_parser(
        "build",
        help="one-pass extraction of a dataset file to a feature-plane JSON",
    )
    features_build.add_argument("file", help="input .trees dataset file")
    features_build.add_argument("--out", required=True, help="output JSON path")
    features_build.add_argument(
        "--q",
        type=int,
        nargs="+",
        default=[2],
        help="branch levels to extract (each >= 2)",
    )
    features_stats = features_commands.add_parser(
        "stats", help="summary counters of a feature-plane JSON file"
    )
    features_stats.add_argument("file", help="feature-plane JSON file")

    index_cmd = commands.add_parser(
        "index",
        help="build or inspect a sublinear candidate-index sidecar "
        "(<plane>.index.json) over a feature plane",
    )
    index_commands = index_cmd.add_subparsers(dest="index_command", required=True)
    index_build = index_commands.add_parser(
        "build",
        help="build a candidate index over a feature-plane JSON and "
        "persist its sidecar next to the plane",
    )
    index_build.add_argument(
        "file", help="feature-plane JSON file (see `features build`)"
    )
    index_build.add_argument(
        "--kind", choices=list(INDEX_KINDS), default="vptree"
    )
    index_build.add_argument(
        "--q",
        type=int,
        default=None,
        help="branch level to index (default: the plane's first level)",
    )
    index_stats = index_commands.add_parser(
        "stats",
        help="structural counters of the index over a feature-plane JSON "
        "(restored from the sidecar when present and fresh, else built)",
    )
    index_stats.add_argument("file", help="feature-plane JSON file")
    index_stats.add_argument(
        "--kind", choices=list(INDEX_KINDS), default="vptree"
    )
    index_stats.add_argument(
        "--q",
        type=int,
        default=None,
        help="branch level to index (default: the plane's first level)",
    )

    serve_bench = commands.add_parser(
        "serve-bench",
        help="replay synthetic query traffic through TreeSearchService",
    )
    serve_bench.add_argument("file")
    serve_bench.add_argument("--queries", type=int, default=50)
    serve_bench.add_argument(
        "--threshold", type=float, default=2.0, help="range-query radius"
    )
    serve_bench.add_argument("--knn-k", type=int, default=3, dest="k")
    serve_bench.add_argument(
        "--range-fraction",
        type=float,
        default=0.5,
        help="fraction of fresh queries that are range queries (rest k-NN)",
    )
    serve_bench.add_argument(
        "--repeat",
        type=float,
        default=0.5,
        help="fraction of the stream that re-issues an earlier query",
    )
    serve_bench.add_argument(
        "--clients", type=int, default=4, help="concurrent client threads"
    )
    serve_bench.add_argument("--seed", type=int, default=0)
    serve_bench.add_argument(
        "--cache-size", type=int, default=1024, help="result-cache bound (0 = off)"
    )
    serve_bench.add_argument(
        "--filter", choices=sorted(_FILTERS), default="bibranch"
    )
    serve_bench.add_argument(
        "--shards",
        type=int,
        default=1,
        help="partition the corpus over N shard worker processes and serve "
        "scatter-gather (1 = single-process TreeSearchService)",
    )
    serve_bench.add_argument(
        "--partitioner",
        choices=sorted(PARTITIONERS),
        default="round-robin",
        help="shard placement policy (used with --shards > 1)",
    )
    serve_bench.add_argument(
        "--candidate-source",
        choices=list(CANDIDATE_SOURCES),
        default="auto",
        help="candidate generation path for the service (and each shard "
        "worker): 'loop' per-candidate, 'vectorized' matrix cascade, "
        "'vptree'/'ifi' metric-index pruning, 'auto' vectorize when "
        "possible",
    )
    serve_bench.add_argument(
        "--json",
        action="store_true",
        help="print the replay report and metrics snapshot as JSON",
    )
    serve_bench.add_argument(
        "--funnel",
        action="store_true",
        help="collect per-query filter funnels and print the aggregate "
        "selectivity table (exits non-zero on a funnel-invariant breach)",
    )
    serve_bench.add_argument(
        "--funnel-export",
        metavar="PATH",
        help="write the aggregated funnel statistics (and any invariant "
        "violations) as JSON to PATH",
    )
    serve_bench.add_argument(
        "--metrics-out",
        metavar="PATH",
        help="write the service metrics in Prometheus text format to PATH",
    )
    serve_bench.add_argument(
        "--chrome-trace",
        metavar="PATH",
        help="trace the replay and write a chrome://tracing event file",
    )
    serve_bench.add_argument(
        "--cost-report",
        action="store_true",
        help="collect funnels and print the per-stage cost ledger "
        "(with --json the report also rides in the JSON)",
    )
    serve_bench.add_argument(
        "--health-interval",
        type=float,
        default=0.0,
        help="with --shards > 1: seconds between background shard-health "
        "polls (0 = one explicit snapshot after the replay)",
    )

    bench = commands.add_parser(
        "bench",
        help="run or compare the machine-readable perf ledger",
        description="`bench run` executes the declared benchmark suite "
        "(serve throughput, vectorized filters, index candidates) over a "
        "dataset file or a generated synthetic corpus and writes one "
        "schema-versioned BENCH_<n>.json record; `bench compare` diffs "
        "two records with noise-aware thresholds and exits 1 on any "
        "regression (deterministic candidate counts are gated exactly).",
    )
    bench_commands = bench.add_subparsers(dest="bench_command", required=True)
    bench_run = bench_commands.add_parser(
        "run", help="run the declared suite and write a ledger record"
    )
    bench_run.add_argument(
        "file",
        nargs="?",
        help="optional .trees dataset; omitted = generate a synthetic "
        "corpus from --spec/--count/--corpus-seed",
    )
    bench_run.add_argument("--out", required=True, help="output JSON path")
    bench_run.add_argument(
        "--label",
        default=None,
        help="record label (default: the output file's stem)",
    )
    bench_run.add_argument("--queries", type=int, default=40)
    bench_run.add_argument("--threshold", type=float, default=1.5)
    bench_run.add_argument("--knn-k", type=int, default=3, dest="k")
    bench_run.add_argument(
        "--seed", type=int, default=0, help="query-stream seed"
    )
    bench_run.add_argument(
        "--count", type=int, default=120, help="synthetic corpus size"
    )
    bench_run.add_argument(
        "--spec",
        default="N{4,0.5}N{50,2}L8D0.05",
        help="synthetic spec in the paper's caption notation",
    )
    bench_run.add_argument(
        "--corpus-seed", type=int, default=0, help="synthetic corpus seed"
    )
    bench_compare = bench_commands.add_parser(
        "compare",
        help="diff two ledger records; exit 1 on regression",
    )
    bench_compare.add_argument("baseline", help="baseline BENCH_*.json")
    bench_compare.add_argument("current", help="current BENCH_*.json")
    bench_compare.add_argument(
        "--noise",
        type=float,
        default=0.5,
        help="relative tolerance for time/rate metrics (0.5 = flag only "
        "changes beyond 1.5x)",
    )
    bench_compare.add_argument(
        "--count-noise",
        type=float,
        default=0.0,
        help="relative tolerance for deterministic counters (0 = exact)",
    )
    bench_compare.add_argument(
        "--allow-corpus-mismatch",
        action="store_true",
        help="compare records measured over different corpora anyway",
    )
    bench_compare.add_argument(
        "--verbose",
        action="store_true",
        help="show every compared metric, not just regressions",
    )
    bench_compare.add_argument(
        "--json",
        action="store_true",
        help="print the comparison as JSON",
    )

    trace = commands.add_parser(
        "trace",
        help="run one query fully traced: span tree + filter funnel",
        description="Executes a single range or k-NN query with tracing and "
        "funnel collection forced on, then prints the matches, the recorded "
        "span tree and the per-query funnel table.",
    )
    trace.add_argument("file")
    trace.add_argument("--query", required=True, help="bracket-notation tree")
    trace_mode = trace.add_mutually_exclusive_group(required=True)
    trace_mode.add_argument("--range", type=float, dest="range_threshold")
    trace_mode.add_argument("--knn", type=int, dest="knn_k")
    trace.add_argument("--filter", choices=sorted(_FILTERS), default="bibranch")
    trace.add_argument(
        "--chrome-trace",
        metavar="PATH",
        help="also write the spans as a chrome://tracing event file",
    )
    trace.add_argument(
        "--json",
        action="store_true",
        help="print the trace document and funnel records as JSON instead "
        "of the rendered tree/table",
    )

    metrics = commands.add_parser(
        "metrics", help="inspect the process-wide metrics registry"
    )
    metrics_commands = metrics.add_subparsers(dest="metrics_command", required=True)
    metrics_dump = metrics_commands.add_parser(
        "dump",
        help="print the registry in Prometheus text format",
        description="With a dataset FILE, first replays a small seeded "
        "workload through a TreeSearchService registered on the process-wide "
        "registry, so the dump shows live serving series.",
    )
    metrics_dump.add_argument(
        "file", nargs="?", help="optional .trees dataset to generate traffic from"
    )
    metrics_dump.add_argument("--queries", type=int, default=20)
    metrics_dump.add_argument("--seed", type=int, default=0)
    metrics_dump.add_argument(
        "--filter", choices=sorted(_FILTERS), default="bibranch"
    )
    metrics_dump.add_argument(
        "--shards",
        type=int,
        default=1,
        help="serve the seeded workload over N shard worker processes and "
        "take a health snapshot, so the dump includes the per-shard "
        "repro_shard_* gauges",
    )
    metrics_dump.add_argument(
        "--json",
        action="store_true",
        help="print the JSON snapshot instead of Prometheus text",
    )

    verify = commands.add_parser(
        "verify",
        help="run the differential/metamorphic oracle harness",
        description="Checks every registered invariant (filter lower-bound "
        "soundness, metric properties, store/storage/service transparency) "
        "over a seeded corpus; violations are shrunk to minimal "
        "counterexamples and written as replayable JSON repro files.",
    )
    verify.add_argument("--seed", type=int, default=0)
    verify.add_argument(
        "--budget",
        choices=["small", "medium", "large"],
        default="small",
        help="corpus size / check count preset",
    )
    verify.add_argument(
        "--oracle",
        action="append",
        dest="oracles",
        metavar="NAME",
        help="run only this oracle (repeatable; default: all). "
        "Use --list-oracles to see the registry.",
    )
    verify.add_argument(
        "--list-oracles",
        action="store_true",
        help="print the oracle registry and exit",
    )
    verify.add_argument(
        "--no-shrink",
        action="store_true",
        help="skip counterexample shrinking (faster on failure)",
    )
    verify.add_argument(
        "--repro-dir",
        help="write one replayable JSON repro file per violation here",
    )
    verify.add_argument(
        "--replay",
        metavar="FILE",
        help="re-check a previously written repro file instead of running",
    )
    verify.add_argument(
        "--json",
        action="store_true",
        help="print the report snapshot as JSON",
    )

    lint = commands.add_parser(
        "lint",
        help="run the project-invariant static checker",
        description="AST-based checks of this repository's own contracts: "
        "filter soundness registration, lock discipline, span hygiene, "
        "metric label cardinality, recursion safety, export surfaces, "
        "blanket excepts, and the interprocedural rules built on the "
        "project call graph - lock-order cycles, shard-RPC pickle "
        "safety, versioned-schema drift and the typed-exception "
        "contract. Exits 1 on findings not in the baseline.",
    )
    lint.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to analyze (default: src/repro)",
    )
    lint.add_argument(
        "--json", action="store_true", help="emit a machine-readable report"
    )
    lint.add_argument(
        "--baseline",
        default=".repro-lint-baseline.json",
        help="baseline file of grandfathered findings",
    )
    lint.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline (report every finding)",
    )
    lint.add_argument(
        "--write-baseline",
        action="store_true",
        help="record the current findings as the new baseline and exit 0",
    )
    lint.add_argument(
        "--fix-hints",
        action="store_true",
        help="print each finding's fix hint (text reporter only)",
    )
    lint.add_argument(
        "--rules",
        metavar="RL00x[,RL00y]",
        help="run only these rules (comma-separated ids)",
    )
    lint.add_argument(
        "--explain",
        metavar="RL00x",
        help="print one rule's rationale and exit",
    )
    lint.add_argument(
        "--callgraph",
        metavar="FILE",
        help="export the project call graph instead of linting: JSON by "
        "default, Graphviz DOT when FILE ends in .dot, stdout when FILE "
        "is '-'",
    )

    convert = commands.add_parser(
        "convert", help="convert XML/JSON documents to a .trees file"
    )
    convert.add_argument("inputs", nargs="+", help="files or directories")
    convert.add_argument("--format", choices=["xml", "json"], required=True)
    convert.add_argument("--out", required=True)

    join = commands.add_parser("join", help="similarity self-join of a file")
    join.add_argument("file")
    join.add_argument("--threshold", type=float, required=True)
    join.add_argument(
        "--filter", choices=sorted(_FILTERS), default="bibranch"
    )
    return parser


def _cmd_distance(args) -> int:
    t1, t2 = parse_bracket(args.tree1), parse_bracket(args.tree2)
    print(f"{tree_edit_distance(t1, t2):g}")
    return 0


def _cmd_bound(args) -> int:
    t1, t2 = parse_bracket(args.tree1), parse_bracket(args.tree2)
    bdist = branch_distance(t1, t2, q=args.q)
    count = branch_lower_bound(t1, t2, q=args.q)
    positional = positional_lower_bound(t1, t2, q=args.q)
    print(f"BDist_q{args.q}: {bdist}")
    print(f"count bound: {count:g}")
    print(f"positional bound: {positional:g}")
    return 0


def _cmd_diff(args) -> int:
    t1, t2 = parse_bracket(args.tree1), parse_bracket(args.tree2)
    mapping = tree_edit_mapping(t1, t2)
    print(f"edit distance: {mapping.cost:g}")
    for operation in mapping.operations():
        print(f"  {operation}")
    return 0


def _cmd_show(args) -> int:
    print(render_tree(parse_bracket(args.tree)))
    return 0


def _cmd_vector(args) -> int:
    from repro.core import branch_vector

    vector = branch_vector(parse_bracket(args.tree), q=args.q)
    for branch, count in sorted(
        vector.counts.items(), key=lambda item: str(item[0])
    ):
        print(f"{count}\t{branch}")
    print(
        f"# {vector.dimensions} distinct branches, |T| = {vector.tree_size}",
        file=sys.stderr,
    )
    return 0


def _cmd_generate(args) -> int:
    if args.kind == "synthetic":
        spec = parse_spec(args.spec)
        trees = generate_dataset(spec, count=args.count, seed=args.seed)
        header = f"synthetic {spec.describe()} count={args.count} seed={args.seed}"
    else:
        trees = generate_dblp_dataset(args.count, seed=args.seed)
        header = f"dblp-like count={args.count} seed={args.seed}"
    written = save_forest(trees, args.out, header=header)
    print(f"wrote {written} trees to {args.out}")
    return 0


def _cmd_stats(args) -> int:
    trees = load_forest(args.file)
    summary = dataset_summary(trees)
    for key, value in summary.items():
        print(f"{key}: {value:g}" if isinstance(value, float) else f"{key}: {value}")
    if args.avg_distance:
        print(f"avg_distance: {average_pairwise_distance(trees):.3f}")
    return 0


def _cmd_search(args) -> int:
    from repro.obs import Tracer, collect_funnels, set_tracer

    trees = load_forest(args.file)
    if not trees:
        print("dataset is empty", file=sys.stderr)
        return 1
    query = parse_bracket(args.query)
    import contextlib

    # the profiler attributes samples to span paths, so profiling turns
    # the tracer on even without --trace (the tree only prints for --trace)
    tracer = set_tracer(Tracer()) if (args.trace or args.profile) else None
    profiler = None
    sink = None
    try:
        with contextlib.ExitStack() as stack:
            if args.funnel or args.cost_report:
                sink = stack.enter_context(collect_funnels())
            if args.profile:
                from repro.obs import SamplingProfiler

                profiler = stack.enter_context(
                    SamplingProfiler(interval=args.profile_interval)
                )
            if args.shards != 1:
                from repro.sharding import ShardedTreeService

                service = stack.enter_context(
                    ShardedTreeService(
                        trees,
                        shards=args.shards,
                        filter_name=args.filter,
                        partitioner=args.partitioner,
                        candidate_source=args.candidate_source,
                    )
                )
                if args.range_threshold is not None:
                    matches, stats = service.range(query, args.range_threshold)
                else:
                    matches, stats = service.knn(query, args.knn_k)
            else:
                # unfitted filter: the database fits it from its feature
                # store when supported, which is what gives the matrix
                # planes something to scatter from
                from repro.search.database import TreeDatabase

                database = TreeDatabase(trees, flt=_FILTERS[args.filter]())
                matrices = (
                    None
                    if args.candidate_source == "loop"
                    else database.matrices()
                )
                if (
                    args.candidate_source not in ("auto", "loop")
                    and matrices is None
                ):
                    print(
                        f"repro: error: filter {args.filter!r} has no "
                        "feature store for candidate source "
                        f"{args.candidate_source!r}",
                        file=sys.stderr,
                    )
                    return 2
                index = (
                    database.candidate_index(args.candidate_source)
                    if args.candidate_source in INDEX_KINDS
                    else None
                )
                flt = database.filter
                if args.range_threshold is not None:
                    matches, stats = range_query(
                        trees, query, args.range_threshold, flt,
                        database.counter, matrices=matrices, index=index,
                    )
                else:
                    matches, stats = knn_query(
                        trees, query, args.knn_k, flt,
                        database.counter, matrices=matrices, index=index,
                    )
    finally:
        if tracer is not None:
            set_tracer(None)
    for index, distance in matches:
        print(f"{index}\t{distance:g}\t{to_bracket(trees[index])}")
    if args.stats_json:
        import json

        if not args.funnel:
            stats.funnel = None  # keep the historic schema unless asked
        print(json.dumps(stats.to_dict(), sort_keys=True))
    else:
        print(
            f"# accessed {stats.candidates}/{stats.dataset_size} "
            f"({stats.accessed_percentage:.1f}%)",
            file=sys.stderr,
        )
    if sink is not None and args.funnel:
        for funnel in sink.funnels:
            print(funnel.format_table(), file=sys.stderr)
    if args.cost_report:
        from repro.perf import format_cost_reports

        print(format_cost_reports(sink.aggregate().cost_report()), file=sys.stderr)
    if profiler is not None:
        import json

        with open(args.profile, "w", encoding="utf-8") as handle:
            if args.profile.endswith(".json"):
                json.dump(profiler.to_dict(), handle, indent=2, sort_keys=True)
                handle.write("\n")
            else:
                handle.write(profiler.collapsed() + "\n")
        print(
            f"wrote {profiler.total} profile samples "
            f"({profiler.mode} mode) to {args.profile}",
            file=sys.stderr,
        )
    if tracer is not None and args.trace:
        print(tracer.format_tree(), file=sys.stderr)
    return 0


def _cmd_features(args) -> int:
    from repro.features import FeatureStore, load_feature_plane, save_feature_plane

    if args.features_command == "build":
        trees = load_forest(args.file)
        store = FeatureStore(tuple(args.q)).fit(trees)
        save_feature_plane(store, args.out)
        print(
            f"wrote feature plane for {len(store)} trees "
            f"({len(store.vocabulary)} interned branches, "
            f"q_levels={list(store.q_levels)}) to {args.out}"
        )
        return 0
    store = load_feature_plane(args.file)
    for key, value in store.stats().items():
        print(f"{key}: {value}")
    for family, shape in store.matrices().stats().items():
        print(
            f"matrix.{family}: rows={shape['rows']} width={shape['width']} "
            f"dtype={shape['dtype']} bytes={shape['bytes']}"
        )
    return 0


def _cmd_index(args) -> int:
    from repro.features import load_feature_plane
    from repro.index import build_candidate_index
    from repro.index.io import load_index_sidecar, save_index_sidecar

    store = load_feature_plane(args.file)
    if args.index_command == "build":
        index = build_candidate_index(args.kind, store, args.q)
        sidecar = save_index_sidecar(index, args.file)
        print(
            f"wrote {index.kind} index over {len(index)} trees "
            f"(q={index.q}) to {sidecar}"
        )
        return 0
    index = load_index_sidecar(store, args.file, kind=args.kind)
    restored = index is not None
    if index is None:
        index = build_candidate_index(args.kind, store, args.q)
    print(f"restored_from_sidecar: {restored}")
    for key, value in index.stats().items():
        print(f"{key}: {value}")
    return 0


def _cmd_serve_bench(args) -> int:
    import contextlib
    import json

    from repro.obs import Tracer, collect_funnels, set_tracer
    from repro.search.database import TreeDatabase
    from repro.service import (
        TreeSearchService,
        WorkloadSpec,
        format_report,
        generate_workload,
        replay,
    )

    trees = load_forest(args.file)
    if not trees:
        print("dataset is empty", file=sys.stderr)
        return 1
    spec = WorkloadSpec(
        queries=args.queries,
        range_fraction=args.range_fraction,
        threshold=args.threshold,
        k=min(args.k, len(trees)),
        repeat_fraction=args.repeat,
        seed=args.seed,
    )
    workload = generate_workload(trees, spec)
    collecting = args.funnel or args.funnel_export or args.cost_report
    tracer = set_tracer(Tracer()) if args.chrome_trace else None
    sink = None
    health = None
    try:
        with contextlib.ExitStack() as stack:
            if collecting:
                sink = stack.enter_context(collect_funnels())
            if args.shards != 1:
                from repro.sharding import ShardedTreeService

                service = stack.enter_context(
                    ShardedTreeService(
                        trees,
                        shards=args.shards,
                        filter_name=args.filter,
                        partitioner=args.partitioner,
                        max_workers=args.clients,
                        cache_size=args.cache_size,
                        candidate_source=args.candidate_source,
                        health_interval=args.health_interval,
                    )
                )
            else:
                # unfitted: let the database fit from its feature store so
                # the vectorized candidate path has planes to work with
                database = TreeDatabase(trees, flt=_FILTERS[args.filter]())
                service = stack.enter_context(
                    TreeSearchService(
                        database,
                        max_workers=args.clients,
                        cache_size=args.cache_size,
                        candidate_source=args.candidate_source,
                    )
                )
            _, report = replay(service, workload, clients=args.clients)
            if args.shards != 1:
                # final snapshot after the replay so the gauges (and any
                # imbalance warnings) reflect the full run, poller or not
                health = service.health()
    finally:
        if tracer is not None:
            set_tracer(None)

    violations = []
    if sink is not None:
        for position, funnel in enumerate(sink.funnels):
            for problem in funnel.check_invariants():
                violations.append(
                    f"query funnel {position} ({funnel.kind}): {problem}"
                )
    if args.metrics_out:
        with open(args.metrics_out, "w", encoding="utf-8") as handle:
            handle.write(service.metrics.prometheus_text())
        print(f"wrote metrics to {args.metrics_out}", file=sys.stderr)
    if args.chrome_trace:
        with open(args.chrome_trace, "w", encoding="utf-8") as handle:
            json.dump(tracer.to_chrome_trace(), handle)
        print(
            f"wrote {len(tracer.finished_spans())} spans to {args.chrome_trace}",
            file=sys.stderr,
        )
    if args.funnel_export:
        document = {
            "aggregate": sink.aggregate().to_dict(),
            "funnels_collected": len(sink.funnels),
            "invariant_violations": violations,
        }
        with open(args.funnel_export, "w", encoding="utf-8") as handle:
            json.dump(document, handle, sort_keys=True)
        print(f"wrote funnel statistics to {args.funnel_export}", file=sys.stderr)

    cost = sink.aggregate().cost_report() if args.cost_report else None
    if args.json:
        summary = report.to_dict()
        if sink is not None:
            summary["funnel"] = sink.aggregate().to_dict()
        if cost is not None:
            summary["cost_report"] = {
                kind: entry.to_dict() for kind, entry in cost.items()
            }
        if health is not None:
            summary["health"] = health
        print(json.dumps(summary, sort_keys=True))
    else:
        print(format_report(report))
        if args.funnel:
            print(sink.aggregate().format_table())
        if cost is not None:
            from repro.perf import format_cost_reports

            print(format_cost_reports(cost))
        if health is not None:
            for warning in health["warnings"]:
                print(f"shard health: {warning}", file=sys.stderr)
    if violations:
        for violation in violations:
            print(f"funnel invariant violated: {violation}", file=sys.stderr)
        return 1
    return 0


def _cmd_trace(args) -> int:
    import json

    from repro.obs import Tracer, collect_funnels, set_tracer

    trees = load_forest(args.file)
    if not trees:
        print("dataset is empty", file=sys.stderr)
        return 1
    query = parse_bracket(args.query)
    flt = _FILTERS[args.filter]().fit(trees)
    tracer = Tracer(sample_rate=1.0)
    set_tracer(tracer)
    try:
        with collect_funnels() as sink:
            if args.range_threshold is not None:
                matches, _ = range_query(trees, query, args.range_threshold, flt)
            else:
                matches, _ = knn_query(trees, query, args.knn_k, flt)
    finally:
        set_tracer(None)
    if args.chrome_trace:
        with open(args.chrome_trace, "w", encoding="utf-8") as handle:
            json.dump(tracer.to_chrome_trace(), handle)
    if args.json:
        print(
            json.dumps(
                {
                    "matches": [[index, distance] for index, distance in matches],
                    "trace": tracer.to_dict(),
                    "funnels": [funnel.to_dict() for funnel in sink.funnels],
                },
                sort_keys=True,
                default=repr,
            )
        )
        return 0
    for index, distance in matches:
        print(f"{index}\t{distance:g}\t{to_bracket(trees[index])}")
    print()
    print(tracer.format_tree())
    for funnel in sink.funnels:
        print()
        print(funnel.format_table())
    if args.chrome_trace:
        print(
            f"\nwrote {len(tracer.finished_spans())} spans to {args.chrome_trace}",
            file=sys.stderr,
        )
    return 0


def _cmd_metrics(args) -> int:
    from repro.obs import get_registry

    registry = get_registry()
    if args.file:
        from repro.search.database import TreeDatabase
        from repro.service import (
            ServiceMetrics,
            TreeSearchService,
            WorkloadSpec,
            generate_workload,
            replay,
        )

        trees = load_forest(args.file)
        if not trees:
            print("dataset is empty", file=sys.stderr)
            return 1
        spec = WorkloadSpec(
            queries=args.queries, k=min(3, len(trees)), seed=args.seed
        )
        workload = generate_workload(trees, spec)
        metrics = ServiceMetrics(registry=registry)
        if args.shards != 1:
            from repro.sharding import ShardedTreeService

            with ShardedTreeService(
                trees,
                shards=args.shards,
                filter_name=args.filter,
                metrics=metrics,
            ) as service:
                replay(service, workload)
                # publish the per-shard repro_shard_* gauges into the dump
                service.health()
        else:
            database = TreeDatabase(trees, flt=_FILTERS[args.filter]().fit(trees))
            with TreeSearchService(database, metrics=metrics) as service:
                replay(service, workload)
    if args.json:
        print(registry.to_json(indent=2))
    else:
        sys.stdout.write(registry.prometheus_text())
    return 0


def _cmd_bench(args) -> int:
    import json
    import os

    from repro.perf import (
        compare_records,
        format_comparison,
        load_record,
        make_record,
        save_record,
    )

    if args.bench_command == "run":
        from repro.bench.suite import run_bench_suite

        if args.file:
            trees = load_forest(args.file)
            corpus: dict = {
                "kind": "file",
                "file": os.path.basename(args.file),
                "trees": len(trees),
            }
        else:
            spec = parse_spec(args.spec)
            trees = generate_dataset(
                spec, count=args.count, seed=args.corpus_seed
            )
            corpus = {
                "kind": "synthetic",
                "spec": args.spec,
                "count": args.count,
                "seed": args.corpus_seed,
            }
        if not trees:
            print("dataset is empty", file=sys.stderr)
            return 1
        corpus.update(
            queries=args.queries,
            threshold=args.threshold,
            k=args.k,
            query_seed=args.seed,
        )
        label = args.label or os.path.splitext(os.path.basename(args.out))[0]
        suites = run_bench_suite(
            trees,
            queries=args.queries,
            threshold=args.threshold,
            k=args.k,
            seed=args.seed,
        )
        save_record(make_record(label, corpus, suites), args.out)
        print(f"wrote ledger record {label} ({len(suites)} suites) to {args.out}")
        return 0

    comparison = compare_records(
        load_record(args.baseline),
        load_record(args.current),
        noise=args.noise,
        count_noise=args.count_noise,
        allow_corpus_mismatch=args.allow_corpus_mismatch,
    )
    if args.json:
        print(json.dumps(comparison.to_dict(), sort_keys=True))
    else:
        print(format_comparison(comparison, verbose=args.verbose))
    return 0 if comparison.ok else 1


def _cmd_verify(args) -> int:
    import json

    from repro.verify.oracles import ORACLE_FACTORIES, make_oracles
    from repro.verify.runner import (
        format_replay,
        replay_repro_file,
        run_verification,
    )

    if args.list_oracles:
        for name in ORACLE_FACTORIES:
            oracle = ORACLE_FACTORIES[name]()
            print(f"{name}: {oracle.description}")
        return 0
    if args.replay:
        violation = replay_repro_file(args.replay)
        print(format_replay(violation))
        return 1 if violation.message else 0
    if args.oracles:
        make_oracles(args.oracles)  # fail fast on unknown names
    report = run_verification(
        seed=args.seed,
        budget=args.budget,
        oracles=args.oracles,
        shrink=not args.no_shrink,
        repro_dir=args.repro_dir,
    )
    if args.json:
        print(json.dumps(report.snapshot(), sort_keys=True, default=repr))
    else:
        print(report.format())
    return 0 if report.ok else 1


def _cmd_convert(args) -> int:
    import os

    trees = []
    for source in args.inputs:
        if os.path.isdir(source):
            pattern = "*.xml" if args.format == "xml" else "*.json"
            if args.format == "xml":
                trees.extend(load_xml_directory(source, pattern))
            else:
                from pathlib import Path

                for path in sorted(Path(source).glob(pattern)):
                    trees.append(parse_json_string(path.read_text()))
        elif args.format == "xml":
            trees.append(parse_xml_file(source))
        else:
            with open(source, "r", encoding="utf-8") as handle:
                trees.append(parse_json_string(handle.read()))
    written = save_forest(trees, args.out, header=f"converted from {args.format}")
    print(f"wrote {written} trees to {args.out}")
    return 0


def _cmd_join(args) -> int:
    trees = load_forest(args.file)
    flt = _FILTERS[args.filter]().fit(trees)
    pairs, stats = similarity_self_join(trees, args.threshold, flt)
    for i, j, distance in pairs:
        print(f"{i}\t{j}\t{distance:g}")
    print(
        f"# refined {stats.candidates}/{stats.dataset_size} pairs "
        f"({stats.accessed_percentage:.1f}%)",
        file=sys.stderr,
    )
    return 0


def _cmd_lint(args) -> int:
    from pathlib import Path

    from repro import analysis

    if args.explain:
        try:
            rule = analysis.get_rule(args.explain)
        except KeyError:
            print(f"repro lint: unknown rule {args.explain!r}", file=sys.stderr)
            return 2
        print(f"{rule.rule_id} ({rule.title}) [{rule.severity}]")
        print()
        print(rule.rationale)
        if rule.hint:
            print()
            print(f"fix: {rule.hint}")
        return 0

    if args.callgraph:
        import json as json_module

        project, files, parse_failures = analysis.load_project(
            [Path(p) for p in args.paths], root=Path.cwd()
        )
        if parse_failures:
            for failure in parse_failures:
                print(
                    f"repro lint: {failure.path}:{failure.line}: "
                    f"{failure.message}",
                    file=sys.stderr,
                )
            return 2
        graph = project.callgraph()
        if args.callgraph.endswith(".dot"):
            payload = graph.to_dot()
        else:
            payload = json_module.dumps(graph.to_json(), indent=2, sort_keys=True)
        if args.callgraph == "-":
            print(payload)
        else:
            Path(args.callgraph).write_text(payload + "\n", encoding="utf-8")
            print(
                f"call graph over {len(files)} file(s): "
                f"{len(graph.functions)} functions, {len(graph.edges)} "
                f"edges, {len(graph.cycles())} cycle(s) -> {args.callgraph}",
                file=sys.stderr,
            )
        return 0

    rules = None
    if args.rules:
        try:
            rules = [
                analysis.get_rule(rule_id)
                for rule_id in args.rules.split(",")
                if rule_id.strip()
            ]
        except KeyError as exc:
            print(f"repro lint: unknown rule {exc.args[0]!r}", file=sys.stderr)
            return 2

    run = analysis.analyze_paths(
        [Path(p) for p in args.paths], rules=rules, root=Path.cwd()
    )
    baseline_path = Path(args.baseline)
    if args.write_baseline:
        analysis.Baseline.from_findings(
            run.findings, comment="grandfathered by --write-baseline"
        ).save(baseline_path)
        print(
            f"wrote {len(run.findings)} finding(s) to {baseline_path}",
            file=sys.stderr,
        )
        return 0
    baseline = (
        analysis.Baseline.empty()
        if args.no_baseline
        else analysis.Baseline.load(baseline_path)
    )
    new, grandfathered = analysis.partition(run.findings, baseline)
    if args.json:
        print(analysis.render_json(new, grandfathered, run.suppressed, run.files))
    else:
        print(
            analysis.render_text(
                new,
                grandfathered,
                run.suppressed,
                len(run.files),
                show_hints=args.fix_hints,
            )
        )
    return 1 if new else 0


_HANDLERS = {
    "distance": _cmd_distance,
    "bound": _cmd_bound,
    "diff": _cmd_diff,
    "show": _cmd_show,
    "vector": _cmd_vector,
    "generate": _cmd_generate,
    "stats": _cmd_stats,
    "search": _cmd_search,
    "features": _cmd_features,
    "index": _cmd_index,
    "serve-bench": _cmd_serve_bench,
    "bench": _cmd_bench,
    "trace": _cmd_trace,
    "metrics": _cmd_metrics,
    "verify": _cmd_verify,
    "lint": _cmd_lint,
    "join": _cmd_join,
    "convert": _cmd_convert,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code.

    Library errors (bad bracket syntax, invalid specs, missing files) are
    reported on stderr with exit code 2 instead of a traceback.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _HANDLERS[args.command](args)
    except (ValueError, OSError) as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
