"""Packed sparse branch vectors: parallel int arrays instead of dicts.

A :class:`PackedVector` stores a tree's branch counts as two parallel
``array('q')`` columns — strictly ascending interned dimension ids and their
counts — plus a (normally empty) ``extra`` mapping for branches outside the
shared vocabulary.  Compared to the dict-of-branch-key representation of
:class:`~repro.core.vectors.BranchVector` this

* shares every branch key once corpus-wide (the vocabulary) instead of
  hashing tuple keys per tree,
* serializes to flat integer lists, and
* computes the L1 distance / overlap over *integer* dimension ids — a
  cached id → count map for typical vector widths (int hashing is several
  times cheaper than hashing branch-label tuples), switching to a numpy
  ``searchsorted`` merge once vectors grow past
  :data:`_NUMPY_THRESHOLD` dimensions.

The ``extra`` dict exists for the query side: a query tree may contain
branches the corpus vocabulary has never seen, and interning them would
mutate shared state on the (concurrent) read path.  Unknown branches are
kept by raw key; since data-side vectors never have unknown branches, the
array part and the dict part never interact and the distances stay exact.

Zero-copy construction
----------------------
The columns do not have to be ``array('q')`` objects the vector owns: any
int64 buffer view with sequence semantics works, in particular a
``memoryview(...).cast('q')`` slice over a
:class:`multiprocessing.shared_memory.SharedMemory` segment (what
:mod:`repro.sharding.plane` builds).  Such borrowed vectors carry an
``owner`` — the plane whose buffer backs them — and every comparison
checks ``owner.closed`` first, raising
:class:`~repro.exceptions.SharedPlaneClosedError` instead of reading
released memory.  Vectors without an owner (the default) skip the check.
"""

from __future__ import annotations

from array import array
from typing import Dict, Hashable, Mapping, Optional, Protocol, Sequence, Union

import numpy as np

from repro.core.vectors import BranchVector
from repro.exceptions import SharedPlaneClosedError, SignatureMismatchError
from repro.features.vocabulary import Vocabulary

__all__ = ["PackedVector", "VectorOwner", "pack_counts"]

BranchKey = Hashable

#: A packed column: an owned ``array('q')`` or a borrowed int64 buffer view
#: (``memoryview.cast('q')``).  Both support len/iter/index/equality and the
#: buffer protocol, which is all the distance kernels use.
IntColumn = Union["array[int]", Sequence[int]]

_EMPTY: Dict[BranchKey, int] = {}


class VectorOwner(Protocol):
    """What a borrowed-buffer vector needs from its owner: a liveness flag."""

    @property
    def closed(self) -> bool:
        """True once the backing buffer has been released."""
        ...

#: Below this many dimensions (on the smaller vector) a cached int-keyed
#: dict merge beats numpy's per-call overhead; measured crossover is around
#: 200 dims on CPython 3.11.
_NUMPY_THRESHOLD = 256


class PackedVector:
    """A tree's branch-count vector in packed (sorted-array) form.

    Attributes
    ----------
    dims:
        Strictly ascending interned dimension ids (``array('q')``).
    counts:
        Occurrence counts parallel to ``dims`` (``array('q')``).
    extra:
        Counts of out-of-vocabulary branches by raw key (queries only).
    tree_size:
        ``|T|`` — the total count across all dimensions.
    q:
        Branch level the vector was extracted at.
    owner:
        ``None`` for vectors that own their columns; otherwise the object
        (a shared-memory plane) whose buffer the columns borrow.  While
        ``owner.closed`` is true every comparison raises
        :class:`~repro.exceptions.SharedPlaneClosedError`.
    """

    __slots__ = ("dims", "counts", "extra", "tree_size", "q", "total", "owner",
                 "_np", "_map")

    def __init__(
        self,
        dims: IntColumn,
        counts: IntColumn,
        tree_size: int,
        q: int,
        extra: Optional[Mapping[BranchKey, int]] = None,
        owner: Optional[VectorOwner] = None,
    ) -> None:
        self.dims = dims
        self.counts = counts
        self.extra: Dict[BranchKey, int] = dict(extra) if extra else _EMPTY
        self.tree_size = tree_size
        self.q = q
        self.owner = owner
        self.total = sum(counts) + sum(self.extra.values())
        self._np = None
        self._map: Optional[Dict[int, int]] = None

    def _guard(self) -> None:
        """Refuse to touch a buffer whose owning plane has been closed."""
        owner = self.owner
        if owner is not None and owner.closed:
            raise SharedPlaneClosedError(
                f"packed vector (q={self.q}) used after its shared plane "
                "was closed"
            )

    @property
    def dimensions(self) -> int:
        """Number of non-zero dimensions (distinct branches in the tree)."""
        return len(self.dims) + len(self.extra)

    def _views(self):
        """Cached zero-copy numpy views over the packed columns."""
        views = self._np
        if views is None:
            views = (
                np.frombuffer(self.dims, dtype=np.int64),
                np.frombuffer(self.counts, dtype=np.int64),
            )
            self._np = views
        return views

    def _dim_map(self) -> Dict[int, int]:
        """Cached dimension id → count mapping (small-vector fast path)."""
        mapping = self._map
        if mapping is None:
            mapping = self._map = dict(zip(self.dims, self.counts))
        return mapping

    def _shared(self, other: "PackedVector") -> int:
        """``Σ min(count, count')`` over dimensions present in both arrays."""
        if not self.dims or not other.dims:
            return 0
        if min(len(self.dims), len(other.dims)) < _NUMPY_THRESHOLD:
            small, large = self, other
            if len(small.dims) > len(large.dims):
                small, large = large, small
            get = large._dim_map().get
            shared = 0
            for dim, count in small._dim_map().items():
                other_count = get(dim)
                if other_count is not None:
                    shared += count if count < other_count else other_count
            return shared
        dims_a, counts_a = self._views()
        dims_b, counts_b = other._views()
        if len(dims_a) > len(dims_b):
            dims_a, counts_a, dims_b, counts_b = dims_b, counts_b, dims_a, counts_a
        positions = np.searchsorted(dims_b, dims_a)
        positions[positions == len(dims_b)] = 0  # safe: masked out below
        mask = dims_b[positions] == dims_a
        if not mask.any():
            return 0
        hits = positions[mask]
        return int(np.minimum(counts_a[mask], counts_b[hits]).sum())

    def _shared_extra(self, other: "PackedVector") -> int:
        """Overlap contributed by out-of-vocabulary branches (rare path)."""
        mine, theirs = self.extra, other.extra
        if not mine or not theirs:
            return 0
        if len(mine) > len(theirs):
            mine, theirs = theirs, mine
        return sum(
            min(count, theirs[key]) for key, count in mine.items() if key in theirs
        )

    def _check_comparable(self, other: "PackedVector") -> None:
        self._guard()
        other._guard()
        if self.q != other.q:
            raise SignatureMismatchError(
                f"cannot compare q={self.q} and q={other.q} packed vectors"
            )

    def overlap(self, other: "PackedVector") -> int:
        """Number of shared branches (multiset intersection size)."""
        self._check_comparable(other)
        return self._shared(other) + self._shared_extra(other)

    def l1_distance(self, other: "PackedVector") -> int:
        """``BDist`` — the L1 distance, via ``Σ(c+c') − 2·Σ min(c, c')``."""
        self._check_comparable(other)
        shared = self._shared(other) + self._shared_extra(other)
        return self.total + other.total - 2 * shared

    def to_branch_vector(self, vocabulary: Vocabulary) -> BranchVector:
        """Unpack into the legacy dict-keyed :class:`BranchVector`."""
        self._guard()
        counts: Dict[BranchKey, int] = {
            vocabulary.key(dim): count for dim, count in zip(self.dims, self.counts)
        }
        counts.update(self.extra)
        return BranchVector(counts, self.tree_size, self.q)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PackedVector):
            return NotImplemented
        self._guard()
        other._guard()
        return (
            self.q == other.q
            and self.dims == other.dims
            and self.counts == other.counts
            and self.extra == other.extra
        )

    def detach(self) -> None:
        """Drop borrowed buffer references (the owning plane calls this).

        Replaces the columns with empty owned arrays and clears the cached
        numpy/dict views so no export pins the shared-memory mapping open.
        The vector stays guarded: with ``owner.closed`` true, comparisons
        keep raising :class:`~repro.exceptions.SharedPlaneClosedError`.
        """
        self.dims = array("q")
        self.counts = array("q")
        self._np = None
        self._map = None

    def __repr__(self) -> str:
        return (
            f"PackedVector(q={self.q}, dimensions={self.dimensions}, "
            f"tree_size={self.tree_size})"
        )


def pack_counts(
    counts: Mapping[BranchKey, int],
    vocabulary: Vocabulary,
    tree_size: int,
    q: int,
    grow: bool = True,
) -> PackedVector:
    """Intern a branch-count mapping into a :class:`PackedVector`.

    With ``grow=True`` (indexing path) unseen branches are interned into the
    shared vocabulary.  With ``grow=False`` (query path) the vocabulary is
    left untouched and unseen branches land in the vector's ``extra`` dict.
    """
    extra: Dict[BranchKey, int] = {}
    pairs = []
    if grow:
        intern = vocabulary.intern
        for key, count in counts.items():
            pairs.append((intern(key), count))
    else:
        lookup = vocabulary.lookup
        for key, count in counts.items():
            dim = lookup(key)
            if dim is None:
                extra[key] = count
            else:
                pairs.append((dim, count))
    pairs.sort()
    dims = array("q", (dim for dim, _ in pairs))
    packed_counts = array("q", (count for _, count in pairs))
    return PackedVector(dims, packed_counts, tree_size, q, extra=extra)
