"""Corpus-level matrix feature planes and the vectorized bound kernels.

The filter framework's per-candidate loop (``for data in signatures:
bound(query, data)``) pays interpreter cost per tree.  This module flips
that loop inside out: all packed per-tree vectors of one feature family
are stacked into a single contiguous ``np.int64`` matrix — a
:class:`MatrixPlane` — and a query's lower bounds against the *entire
corpus* come out of a handful of numpy passes.

Row ``i`` of every plane is tree ``i`` of the owning
:class:`~repro.features.store.FeatureStore`; planes grow by row appends
on incremental ``add`` (capacity-doubling, generation-stamped) and widen
by zero-padded columns when the vocabulary grows — sound because the
vocabulary is append-only, so no existing row can contain a
newly-interned dimension.

The L1 kernel is a *column gather*, not a dense ``np.abs(M - q)`` pass:
for sparse count vectors,

    ``L1(row, q) = row_total + q_total - 2 * Σ_d min(M[row, d], q[d])``

and only the query's (few) non-zero dimensions contribute to the
overlap sum, so one query costs ``O(rows × dims(q))`` instead of
``O(rows × vocabulary)``.  Query dimensions absent from the plane
(including a query vector's ``extra`` overflow) overlap nothing and
simply ride along in ``q_total`` — exactly the semantics of
:meth:`~repro.features.packed.PackedVector.l1_distance`.

Typing note: this module is the *only* place filter-side vectorization
touches numpy.  ``repro.filters`` is under the strict mypy gate, which
runs without numpy installed, so filters call the annotated helper
functions at the bottom of this module and never import numpy
themselves.
"""

from __future__ import annotations

import threading
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Hashable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro.exceptions import InvalidParameterError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.features.packed import PackedVector
    from repro.features.store import FeatureStore
    from repro.features.vocabulary import Vocabulary

__all__ = [
    "FeatureMatrices",
    "MatrixPlane",
    "as_indices",
    "branch_count_bounds",
    "branch_l1_counts",
    "branch_l1_packed",
    "ceil_div",
    "elementwise_max",
    "histogram_l1",
    "keep_at_most",
    "size_bounds",
    "stable_order",
]

_HISTOGRAM_FAMILIES = ("labels", "degrees")


def _column(values: Any) -> "np.ndarray":
    """A 1-D int64 view (zero-copy where possible) over ``values``.

    Accepts ``array('q')`` columns, ``memoryview`` slices of a shared
    plane, numpy arrays, and plain sequences.  Buffer-backed inputs are
    wrapped with :func:`np.frombuffer` — no copy — which is what lets a
    shard worker build its dense plane straight out of the
    shared-memory columns it attached.
    """
    if isinstance(values, np.ndarray):
        return values
    try:
        return np.frombuffer(values, dtype=np.int64)
    except TypeError:
        return np.asarray(values, dtype=np.int64)


def _row_index(rows: Sequence[int]) -> "np.ndarray":
    """Row selector as an index array; ``range`` avoids the O(n) iteration."""
    if isinstance(rows, range):
        return np.arange(rows.start, rows.stop, rows.step, dtype=np.intp)
    return np.asarray(rows, dtype=np.intp)


class MatrixPlane:
    """One feature family as a dense ``rows × width`` int64 matrix.

    ``matrix[i, d]`` is tree ``i``'s count for dimension ``d``;
    ``row_totals[i]`` caches ``matrix[i].sum()`` (plus any mass the
    packed source carried outside its in-vocabulary dims) so the L1
    kernel never re-reduces full rows.  Appends amortize via
    capacity doubling in both axes; :attr:`generation` records the
    store generation the plane was last synced at.
    """

    __slots__ = ("kind", "rows", "width", "generation", "_matrix", "_totals")

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self.rows = 0
        self.width = 0
        self.generation = -1
        self._matrix = np.zeros((0, 0), dtype=np.int64)
        self._totals = np.zeros(0, dtype=np.int64)

    @property
    def matrix(self) -> "np.ndarray":
        """The logical (non-capacity) matrix, as a view."""
        return self._matrix[: self.rows, : self.width]

    @property
    def row_totals(self) -> "np.ndarray":
        return self._totals[: self.rows]

    @property
    def nbytes(self) -> int:
        """Allocated footprint (capacity, not just the logical window)."""
        return int(self._matrix.nbytes + self._totals.nbytes)

    def _ensure(self, rows: int, width: int) -> None:
        """Grow capacity to hold ``rows × width``; widen the logical width.

        Freshly exposed columns are zero — correct, because the
        append-only vocabulary guarantees no existing row has counts in
        a dimension interned after that row was packed.
        """
        cap_rows, cap_width = self._matrix.shape
        if rows > cap_rows or width > cap_width:
            new_rows, new_width = cap_rows, cap_width
            while new_rows < rows:
                new_rows = max(8, new_rows * 2)
            while new_width < width:
                new_width = max(8, new_width * 2)
            # column-major: the hot kernel gathers whole columns
            # (matrix[:, query_dims]), which Fortran order makes contiguous
            grown = np.zeros((new_rows, new_width), dtype=np.int64, order="F")
            grown[: self.rows, : self.width] = self.matrix
            self._matrix = grown
            totals = np.zeros(new_rows, dtype=np.int64)
            totals[: self.rows] = self.row_totals
            self._totals = totals
        if width > self.width:
            self.width = width

    def ensure_width(self, width: int) -> None:
        """Widen so every dimension id ``< width`` is addressable."""
        self._ensure(self.rows, width)

    def append(self, dims: Any, counts: Any, total: Optional[int] = None) -> None:
        """Append one tree's sparse (dims, counts) as the next dense row."""
        dim_column = _column(dims)
        count_column = _column(counts)
        # dims need not be sorted (histogram columns intern in feature
        # iteration order), so the width requirement is the max, not the last
        needed = int(dim_column.max()) + 1 if len(dim_column) else 0
        self._ensure(self.rows + 1, max(self.width, needed))
        if len(dim_column):
            self._matrix[self.rows, dim_column] = count_column
        self._totals[self.rows] = (
            int(count_column.sum()) if total is None else total
        )
        self.rows += 1

    def adopt(self, matrix: "np.ndarray", totals: "np.ndarray") -> None:
        """Install persisted dense contents (the sidecar load path)."""
        if matrix.ndim != 2 or matrix.shape[0] != len(totals):
            raise InvalidParameterError(
                f"matrix sidecar misaligned for {self.kind!r}: "
                f"{matrix.shape} rows vs {len(totals)} totals"
            )
        self._matrix = np.asfortranarray(matrix, dtype=np.int64)
        self._totals = np.array(totals, dtype=np.int64)
        self.rows, self.width = self._matrix.shape

    def l1(
        self,
        dims: "np.ndarray",
        counts: "np.ndarray",
        total: int,
        rows: Optional[Sequence[int]] = None,
    ) -> "np.ndarray":
        """Column-gather L1 of a sparse query against ``rows`` (or all)."""
        if isinstance(rows, range) and rows == range(self.rows):
            rows = None  # full-corpus range: take the contiguous fast path
        if rows is None:
            totals = self.row_totals
            if not len(dims):
                return totals + total
            gathered = self.matrix[:, dims]
        else:
            row_index = _row_index(rows)
            totals = self._totals[row_index]
            if not len(dims):
                return totals + total
            gathered = self._matrix[np.ix_(row_index, dims)]
        overlap = np.minimum(gathered, counts).sum(axis=1)
        return totals + total - 2 * overlap

    def describe(self) -> Dict[str, object]:
        """Shape/footprint summary for ``repro features stats``."""
        return {
            "rows": self.rows,
            "width": self.width,
            "dtype": "int64",
            "bytes": self.nbytes,
        }

    def __repr__(self) -> str:
        return (
            f"MatrixPlane({self.kind!r}, {self.rows}x{self.width}, "
            f"generation={self.generation})"
        )


class FeatureMatrices:
    """Lazy bundle of every :class:`MatrixPlane` derivable from one store.

    Planes are built on first use and re-synced (row appends + column
    widening) against the store before every kernel call, so incremental
    :meth:`FeatureStore.add` just works: the generation stamp moves
    forward and only the new suffix of trees is packed into rows.  All
    sync runs under one lock; the service layer only queries under its
    read lock (adds take the write lock), so sync never races a
    mutation.
    """

    def __init__(self, store: "FeatureStore") -> None:
        self._store = store
        self._lock = threading.Lock()
        self._branch: Dict[int, MatrixPlane] = {}
        self._sizes = np.zeros(0, dtype=np.int64)
        self._histograms: Dict[str, Tuple[MatrixPlane, Dict[Hashable, int]]] = {}

    # ------------------------------------------------------------------
    # Plane construction / sync
    # ------------------------------------------------------------------
    def branch_plane(self, q: Optional[int] = None) -> MatrixPlane:
        """The packed-branch-count plane at level ``q``, synced to the store."""
        store = self._store
        level = store._check_q(q)
        with self._lock:
            plane = self._branch.get(level)
            if plane is None:
                plane = MatrixPlane(f"branch-q{level}")
                self._branch[level] = plane
            vectors = store.packed_vectors(level)
            for vector in vectors[plane.rows:]:
                plane.append(vector.dims, vector.counts, total=vector.total)
            plane.ensure_width(len(store.vocabulary))
            plane.generation = store.generation
            return plane

    def adopt_branch_plane(
        self, q: int, matrix: "np.ndarray", totals: "np.ndarray"
    ) -> None:
        """Install a persisted branch plane (see :mod:`repro.features.io`)."""
        store = self._store
        level = store._check_q(q)
        if matrix.shape[0] != len(store):
            raise InvalidParameterError(
                f"matrix sidecar has {matrix.shape[0]} rows for a "
                f"{len(store)}-tree store"
            )
        with self._lock:
            plane = MatrixPlane(f"branch-q{level}")
            plane.adopt(matrix, totals)
            plane.generation = store.generation
            self._branch[level] = plane

    def size_column(self, rows: Optional[Sequence[int]] = None) -> "np.ndarray":
        """Tree sizes as an int64 column (works for packed-only stores)."""
        store = self._store
        with self._lock:
            have = len(self._sizes)
            count = len(store)
            if have < count:
                fresh = np.fromiter(
                    (store.tree_size(index) for index in range(have, count)),
                    dtype=np.int64,
                    count=count - have,
                )
                self._sizes = np.concatenate([self._sizes, fresh])
            sizes = self._sizes
        if rows is None:
            return sizes
        return sizes[_row_index(rows)]

    def histogram_plane(
        self, family: str
    ) -> Tuple[MatrixPlane, Dict[Hashable, int]]:
        """The unfolded label/degree histogram plane plus its key→column map.

        Raises :class:`InvalidParameterError` for packed-only stores
        (shard workers): histogram records never cross the shared plane,
        so callers fall back to the per-candidate loop there.
        """
        if family not in _HISTOGRAM_FAMILIES:
            raise InvalidParameterError(
                f"no histogram matrix family {family!r} "
                f"(have: {_HISTOGRAM_FAMILIES})"
            )
        store = self._store
        with self._lock:
            entry = self._histograms.get(family)
            if entry is None:
                entry = (MatrixPlane(f"histogram-{family}"), {})
                self._histograms[family] = entry
            plane, index = entry
            count = len(store)
            for position in range(plane.rows, count):
                counts: Mapping[Any, int] = getattr(
                    store.features(position), family
                )
                dims = np.fromiter(
                    (index.setdefault(key, len(index)) for key in counts),
                    dtype=np.int64,
                    count=len(counts),
                )
                values = np.fromiter(
                    counts.values(), dtype=np.int64, count=len(counts)
                )
                plane.append(dims, values)
            plane.ensure_width(len(index))
            plane.generation = store.generation
            return plane, index

    # ------------------------------------------------------------------
    # Query kernels
    # ------------------------------------------------------------------
    def branch_l1(
        self,
        q: Optional[int],
        counts: Mapping[Any, int],
        rows: Optional[Sequence[int]] = None,
    ) -> "np.ndarray":
        """L1 of a query branch-count mapping against every (selected) row."""
        plane = self.branch_plane(q)
        lookup = self._store.vocabulary.lookup
        dims: List[int] = []
        values: List[int] = []
        total = 0
        for key, count in counts.items():
            total += count
            dimension = lookup(key)
            if dimension is not None:
                dims.append(dimension)
                values.append(count)
        return plane.l1(
            np.asarray(dims, dtype=np.int64),
            np.asarray(values, dtype=np.int64),
            total,
            rows,
        )

    def branch_l1_packed(
        self,
        q: Optional[int],
        vector: "PackedVector",
        vocabulary: "Vocabulary",
        rows: Optional[Sequence[int]] = None,
    ) -> "np.ndarray":
        """L1 of a packed query vector (interned against ``vocabulary``).

        Fast path when the vector already speaks the store's vocabulary;
        otherwise the query is translated through its branch keys — L1
        is invariant under the (bijective) re-interning, so standalone-
        fitted filters get exactly the values of
        :meth:`PackedVector.l1_distance`.
        """
        if vocabulary is self._store.vocabulary:
            plane = self.branch_plane(q)
            return plane.l1(
                _column(vector.dims), _column(vector.counts), vector.total, rows
            )
        counts: Dict[Hashable, int] = {
            vocabulary.key(dimension): count
            for dimension, count in zip(vector.dims, vector.counts)
        }
        counts.update(vector.extra)
        return self.branch_l1(q, counts, rows)

    def histogram_l1(
        self,
        family: str,
        counts: Mapping[Any, int],
        rows: Optional[Sequence[int]] = None,
    ) -> "np.ndarray":
        """L1 between a query histogram dict and every (selected) row."""
        plane, index = self.histogram_plane(family)
        dims: List[int] = []
        values: List[int] = []
        total = 0
        for key, count in counts.items():
            total += count
            dimension = index.get(key)
            if dimension is not None:
                dims.append(dimension)
                values.append(count)
        return plane.l1(
            np.asarray(dims, dtype=np.int64),
            np.asarray(values, dtype=np.int64),
            total,
            rows,
        )

    def stats(self) -> Dict[str, Dict[str, object]]:
        """Per-family shape/dtype/footprint — `repro features stats` body."""
        out: Dict[str, Dict[str, object]] = {}
        for q in self._store.q_levels:
            plane = self.branch_plane(q)
            out[plane.kind] = plane.describe()
        try:
            for family in _HISTOGRAM_FAMILIES:
                plane, _ = self.histogram_plane(family)
                out[plane.kind] = plane.describe()
        # expected-absence control flow, not a swallowed failure: a
        # packed-only store never materialized histogram planes, and
        # stats() reports whatever planes exist
        # repro-lint: disable=RL012
        except InvalidParameterError:
            pass  # packed-only store: histograms never crossed the plane
        sizes = self.size_column()
        out["sizes"] = {
            "rows": int(len(sizes)),
            "width": 1,
            "dtype": "int64",
            "bytes": int(sizes.nbytes),
        }
        return out

    def __repr__(self) -> str:
        return f"FeatureMatrices({len(self._store)} trees)"


# ----------------------------------------------------------------------
# Filter-facing helpers (fully annotated; no numpy types in signatures).
#
# ``repro.filters`` is strict-typed without numpy on the mypy path, so
# these are the only callables filters use; ``Sequence[int]`` /
# ``Sequence[float]`` describe the returned ndarrays accurately enough
# for every consumer (len, iteration, indexing, comparison).
# ----------------------------------------------------------------------


def branch_l1_counts(
    matrices: "FeatureMatrices",
    q: Optional[int],
    counts: Mapping[Any, int],
    rows: Optional[Sequence[int]],
) -> Sequence[int]:
    """Per-row packed-branch L1 for a query given as a count mapping."""
    return matrices.branch_l1(q, counts, rows)


def branch_l1_packed(
    matrices: "FeatureMatrices",
    q: Optional[int],
    vector: "PackedVector",
    vocabulary: "Vocabulary",
    rows: Optional[Sequence[int]],
) -> Sequence[int]:
    """Per-row packed-branch L1 for an already-packed query vector."""
    return matrices.branch_l1_packed(q, vector, vocabulary, rows)


def branch_count_bounds(
    matrices: "FeatureMatrices",
    q: Optional[int],
    vector: "PackedVector",
    vocabulary: "Vocabulary",
    factor: int,
    rows: Optional[Sequence[int]],
) -> Sequence[int]:
    """``ceil(L1 / factor)`` per row — the BranchCount lower bound."""
    return ceil_div(matrices.branch_l1_packed(q, vector, vocabulary, rows), factor)


def histogram_l1(
    matrices: "FeatureMatrices",
    family: str,
    counts: Mapping[Any, int],
    rows: Optional[Sequence[int]],
) -> Sequence[int]:
    """Per-row histogram L1 for the given (unfolded) family."""
    return matrices.histogram_l1(family, counts, rows)


def size_bounds(
    matrices: "FeatureMatrices", query_size: int, rows: Optional[Sequence[int]]
) -> Sequence[int]:
    """``| |T_i| - |Q| |`` per row — the size-difference lower bound."""
    return np.abs(matrices.size_column(rows) - query_size)


def ceil_div(values: Sequence[int], divisor: int) -> Sequence[int]:
    """Elementwise ``ceil(values / divisor)`` in exact integer arithmetic."""
    return -(-np.asarray(values) // divisor)


def keep_at_most(
    rows: Sequence[int], values: Sequence[float], limit: float
) -> Sequence[int]:
    """The subset of ``rows`` whose parallel ``values`` are ``<= limit``."""
    return _row_index(rows)[np.asarray(values) <= limit]


def elementwise_max(columns: Sequence[Sequence[float]]) -> Sequence[float]:
    """Elementwise maximum across parallel per-row bound columns."""
    return np.maximum.reduce([np.asarray(column) for column in columns])


def stable_order(values: Sequence[float]) -> List[int]:
    """Indices sorted by ``(value, index)`` — the knn frontier order."""
    return [int(index) for index in np.argsort(np.asarray(values), kind="stable")]


def as_indices(rows: Sequence[int]) -> List[int]:
    """Plain python ints (ndarray rows are int64 — not JSON-serializable)."""
    return [int(row) for row in rows]
