"""One-pass extraction of every per-tree derived artifact.

The filters and indexes of this package each need a different projection of
the same traversal: branch windows with (preorder, postorder) positions for
the BiBranch filters and the inverted file, label/degree/height histograms
for the Kailing comparator, preorder/postorder label strings for the Guha
baseline, and the tree size for everything.  Fitting them independently
walks the corpus once *per filter*.  :func:`extract_features` walks each
tree exactly once — a single explicit-stack traversal that assigns both
traversal numbers, maintains child heights on the way back up, and cuts
q-level branch windows for every requested level — and materializes all
artifacts together in a :class:`TreeFeatures` record.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from repro.core.branches import BinaryBranch
from repro.core.positional import PositionalProfile
from repro.core.qlevel import QLevelBranch, _window_labels, qlevel_bound_factor
from repro.exceptions import InvalidParameterError
from repro.trees.binary import EPSILON
from repro.trees.node import TreeNode

__all__ = ["TreeFeatures", "extract_features"]

BranchKey = Hashable


class TreeFeatures:
    """Every derived artifact of one tree, produced by a single traversal.

    Attributes
    ----------
    size:
        ``|T|`` — number of nodes.
    branch_counts:
        Per q level, the branch → occurrence-count mapping (the sparse
        branch vector before interning).
    profiles:
        Per q level, the :class:`~repro.core.positional.PositionalProfile`.
    labels / degrees:
        Unfolded label and degree histograms.
    heights:
        Ascending multiset of node heights.
    pre_labels / post_labels:
        Preorder and postorder label sequences (traversal strings).
    leaf_count:
        Number of leaves.
    """

    __slots__ = (
        "size",
        "branch_counts",
        "profiles",
        "labels",
        "degrees",
        "heights",
        "pre_labels",
        "post_labels",
        "leaf_count",
    )

    def __init__(
        self,
        size: int,
        branch_counts: Dict[int, Dict[BranchKey, int]],
        profiles: Dict[int, PositionalProfile],
        labels: Dict[object, int],
        degrees: Dict[int, int],
        heights: List[int],
        pre_labels: List,
        post_labels: List,
        leaf_count: int,
    ) -> None:
        self.size = size
        self.branch_counts = branch_counts
        self.profiles = profiles
        self.labels = labels
        self.degrees = degrees
        self.heights = heights
        self.pre_labels = pre_labels
        self.post_labels = post_labels
        self.leaf_count = leaf_count

    def __repr__(self) -> str:
        return (
            f"TreeFeatures(size={self.size}, "
            f"q_levels={sorted(self.branch_counts)}, leaves={self.leaf_count})"
        )


def _branch_of(node: TreeNode) -> BinaryBranch:
    first = node.first_child
    sibling = node.next_sibling
    return BinaryBranch(
        node.label,
        EPSILON if first is None else first.label,
        EPSILON if sibling is None else sibling.label,
    )


def extract_features(
    tree: TreeNode, q_levels: Sequence[int] = (2,)
) -> TreeFeatures:
    """Walk ``tree`` once and compute all per-tree artifacts.

    ``q_levels`` selects the branch levels to extract windows for (each
    validated by :func:`~repro.core.qlevel.qlevel_bound_factor`).  Per node
    the work is ``O(Σ_q 2^q)`` for the windows plus ``O(1)`` bookkeeping for
    the histograms, positions and traversal strings.

    >>> from repro.trees import parse_bracket
    >>> features = extract_features(parse_bracket("a(b,c)"))
    >>> features.size, features.leaf_count, features.heights
    (3, 2, [0, 0, 1])
    >>> features.pre_labels, features.post_labels
    (['a', 'b', 'c'], ['b', 'c', 'a'])
    """
    levels = tuple(dict.fromkeys(q_levels))  # dedupe, keep order
    if not levels:
        raise InvalidParameterError("at least one branch level is required")
    for q in levels:
        qlevel_bound_factor(q)  # validates q >= 2

    pre_by_q: Dict[int, Dict[BranchKey, List[int]]] = {q: {} for q in levels}
    post_by_q: Dict[int, Dict[BranchKey, List[int]]] = {q: {} for q in levels}
    pairs_by_q: Dict[int, Dict[BranchKey, List[Tuple[int, int]]]] = {
        q: {} for q in levels
    }
    labels: Counter = Counter()
    degrees: Counter = Counter()
    heights_by_id: Dict[int, int] = {}
    heights: List[int] = []
    pre_labels: List = []
    post_labels: List = []
    leaf_count = 0

    pre_counter = 0
    post_counter = 0
    # stack holds (node, pre); pre is None before the node is expanded
    stack: List[Tuple[TreeNode, Optional[int]]] = [(tree, None)]
    while stack:
        node, pre = stack.pop()
        if pre is None:
            pre_counter += 1
            pre_labels.append(node.label)
            stack.append((node, pre_counter))
            for child in reversed(node.children):
                stack.append((child, None))
            continue
        post_counter += 1
        label = node.label
        post_labels.append(label)
        labels[label] += 1
        degrees[node.degree] += 1
        if node.is_leaf:
            leaf_count += 1
            height = 0
        else:
            height = 1 + max(
                heights_by_id.pop(id(child)) for child in node.children
            )
        heights_by_id[id(node)] = height
        heights.append(height)
        for q in levels:
            if q == 2:
                branch: BranchKey = _branch_of(node)
            else:
                branch = QLevelBranch(_window_labels(node, q))
            pre_by_q[q].setdefault(branch, []).append(pre)
            post_by_q[q].setdefault(branch, []).append(post_counter)
            pairs_by_q[q].setdefault(branch, []).append((pre, post_counter))

    size = post_counter
    heights.sort()
    for q in levels:
        for positions in pre_by_q[q].values():
            positions.sort()
        for positions in post_by_q[q].values():
            positions.sort()

    branch_counts = {
        q: {branch: len(pairs) for branch, pairs in pairs_by_q[q].items()}
        for q in levels
    }
    profiles = {
        q: PositionalProfile(pre_by_q[q], post_by_q[q], pairs_by_q[q], size, q)
        for q in levels
    }
    return TreeFeatures(
        size=size,
        branch_counts=branch_counts,
        profiles=profiles,
        labels=dict(labels),
        degrees=dict(degrees),
        heights=heights,
        pre_labels=pre_labels,
        post_labels=post_labels,
        leaf_count=leaf_count,
    )
