"""FeatureStore — the per-corpus shared signature plane.

One :class:`FeatureStore` owns every derived per-tree artifact of a corpus:
positional profiles and packed branch vectors at each configured q level,
the unfolded histograms, traversal strings and sizes — all produced by the
one-pass extractor (:mod:`repro.features.extract`) and interned against a
single shared :class:`~repro.features.vocabulary.Vocabulary`.

The layers above consume it instead of re-traversing the corpus:

* filters build their signatures as *views* over the store
  (:meth:`~repro.filters.base.LowerBoundFilter.fit_from_store`),
* :class:`~repro.search.database.TreeDatabase` owns a store and extends it
  incrementally on ``add``,
* :class:`~repro.service.engine.TreeSearchService` uses the store's
  :attr:`generation` counter for selective result-cache invalidation, and
* :mod:`repro.features.io` / :func:`repro.storage.save_database` persist
  the plane so a reloaded database skips extraction entirely (observable
  via :attr:`extraction_passes`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.positional import PositionalProfile
from repro.exceptions import InvalidParameterError
from repro.features.extract import TreeFeatures, extract_features
from repro.features.packed import PackedVector, pack_counts
from repro.features.vocabulary import Vocabulary
from repro.obs import tracing
from repro.trees.node import TreeNode

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.features.matrix import FeatureMatrices

__all__ = ["FeatureStore"]


class FeatureStore:
    """All derived per-tree artifacts of a corpus, extracted once, shared.

    Parameters
    ----------
    q_levels:
        Branch levels to extract windows for (deduplicated; each ``>= 2``).

    Examples
    --------
    >>> from repro.trees import parse_bracket
    >>> store = FeatureStore().fit([parse_bracket("a(b,c)"),
    ...                             parse_bracket("a(b,d)")])
    >>> len(store), store.generation, store.extraction_passes
    (2, 0, 2)
    >>> store.packed_vector(0).l1_distance(store.packed_vector(1))
    4
    >>> store.add(parse_bracket("x(y)"))
    2
    >>> len(store), store.generation
    (3, 1)
    """

    def __init__(self, q_levels: Sequence[int] = (2,)) -> None:
        self.q_levels: Tuple[int, ...] = tuple(dict.fromkeys(q_levels))
        if not self.q_levels:
            raise InvalidParameterError("feature store needs at least one q level")
        self.vocabulary = Vocabulary()
        #: one entry per tree; ``None`` for trees adopted in packed-only
        #: form from a shared plane (see :meth:`from_packed`)
        self._features: List[Optional[TreeFeatures]] = []
        self._packed: Dict[int, List[PackedVector]] = {q: [] for q in self.q_levels}
        #: bumped once per mutation *after* the initial fit; consumers (the
        #: service result cache) key freshness decisions off this counter.
        self.generation = 0
        #: number of one-pass tree traversals performed by this store; a
        #: plane restored from disk starts at 0 and stays there until the
        #: next `add` — the round-trip tests assert on exactly this.
        self.extraction_passes = 0
        #: lazily-built corpus-level matrix planes (vectorized kernels)
        self._matrices: Optional["FeatureMatrices"] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_packed(
        cls,
        vocabulary: Vocabulary,
        packed: Dict[int, Sequence[PackedVector]],
        q_levels: Sequence[int],
    ) -> "FeatureStore":
        """Adopt externally built packed vectors as a packed-only store.

        This is how a shard worker turns an attached shared-memory plane
        into a store without re-extracting anything: the vectors (usually
        buffer-backed, zero-copy) and the interning vocabulary come from
        the coordinator.  Only the packed accessors (:meth:`packed_vector`,
        :meth:`packed_vectors`, :meth:`pack_query`, :meth:`tree_size`) work
        for adopted trees; :meth:`features`/:meth:`profile` raise, since
        the full artifacts were never shipped.  :meth:`add` still works and
        appends fully extracted trees on top of the adopted prefix.
        """
        store = cls(q_levels)
        store.vocabulary = vocabulary
        lengths = {len(vectors) for vectors in packed.values()}
        if len(lengths) > 1:
            raise InvalidParameterError(
                f"packed columns disagree on tree count: {sorted(lengths)}"
            )
        count = lengths.pop() if lengths else 0
        for q in store.q_levels:
            if q not in packed:
                raise InvalidParameterError(
                    f"packed vectors missing for q={q} "
                    f"(given: {sorted(packed)})"
                )
            store._packed[q] = list(packed[q])
        store._features = [None] * count
        return store

    def fit(self, trees: Sequence[TreeNode]) -> "FeatureStore":
        """Extract all artifacts for ``trees`` (one traversal each)."""
        with tracing.span(
            "features.fit", trees=len(trees), q_levels=repr(self.q_levels)
        ):
            for tree in trees:
                self._extract(tree)
        return self

    def add(self, tree: TreeNode) -> int:
        """Incrementally extract one tree; bumps :attr:`generation`.

        Returns the new tree's index.  Packed vectors of existing trees are
        untouched — the vocabulary is append-only, so previously assigned
        dimension ids stay valid.
        """
        index = self._extract(tree)
        self.generation += 1
        return index

    def _extract(self, tree: TreeNode) -> int:
        if not tracing.enabled():
            features = extract_features(tree, self.q_levels)
        else:
            with tracing.span("features.extract") as sp:
                features = extract_features(tree, self.q_levels)
                sp.set(nodes=features.size)
        self.extraction_passes += 1
        return self._append(features)

    def _append(self, features: TreeFeatures) -> int:
        """Install one tree's features (shared by extraction and load)."""
        index = len(self._features)
        self._features.append(features)
        for q in self.q_levels:
            self._packed[q].append(
                pack_counts(
                    features.branch_counts[q],
                    self.vocabulary,
                    features.size,
                    q,
                    grow=True,
                )
            )
        return index

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._features)

    def __iter__(self) -> Iterator[Optional[TreeFeatures]]:
        return iter(self._features)

    def features(self, index: int) -> TreeFeatures:
        """The full artifact record of one tree.

        Raises for trees adopted packed-only from a shared plane — their
        profiles/histograms were never transferred, only the packed
        columns (see :meth:`from_packed`).
        """
        features = self._features[index]
        if features is None:
            raise InvalidParameterError(
                f"tree {index} was adopted packed-only (from a shared "
                "plane); its full feature record is unavailable"
            )
        return features

    def _check_q(self, q: Optional[int]) -> int:
        if q is None:
            return self.q_levels[0]
        if q not in self.q_levels:
            raise InvalidParameterError(
                f"q={q} not extracted by this store (levels: {self.q_levels})"
            )
        return q

    def tree_size(self, index: int) -> int:
        """``|T|`` of an indexed tree."""
        features = self._features[index]
        if features is None:
            # adopted packed-only: the packed vector carries the size
            return self._packed[self.q_levels[0]][index].tree_size
        return features.size

    def profile(self, index: int, q: Optional[int] = None) -> PositionalProfile:
        """Positional profile of one tree at branch level ``q``."""
        return self.features(index).profiles[self._check_q(q)]

    def packed_vector(self, index: int, q: Optional[int] = None) -> PackedVector:
        """Packed branch vector of one tree at branch level ``q``."""
        return self._packed[self._check_q(q)][index]

    def packed_vectors(self, q: Optional[int] = None) -> List[PackedVector]:
        """All packed vectors at one q level (shared list — do not mutate)."""
        return self._packed[self._check_q(q)]

    def pack_query(self, tree: TreeNode, q: Optional[int] = None) -> PackedVector:
        """Pack a *query* tree against the store vocabulary without growing it.

        Unseen branches land in the vector's ``extra`` dict, so concurrent
        queries never mutate shared state.
        """
        q = self._check_q(q)
        features = extract_features(tree, (q,))
        return pack_counts(
            features.branch_counts[q],
            self.vocabulary,
            features.size,
            q,
            grow=False,
        )

    def matrices(self) -> "FeatureMatrices":
        """Corpus-level dense matrix planes over this store.

        Built lazily and cached; the returned bundle re-syncs itself
        against the store (row appends, column widening) before every
        kernel call, so it stays valid across incremental :meth:`add`.
        """
        if self._matrices is None:
            from repro.features.matrix import FeatureMatrices

            self._matrices = FeatureMatrices(self)
        return self._matrices

    def stats(self) -> Dict[str, object]:
        """Summary counters for the CLI / diagnostics."""
        return {
            "trees": len(self._features),
            "q_levels": list(self.q_levels),
            "vocabulary_size": len(self.vocabulary),
            "generation": self.generation,
            "extraction_passes": self.extraction_passes,
            "total_nodes": sum(
                self.tree_size(index) for index in range(len(self._features))
            ),
            "packed_dimensions": {
                q: sum(len(v.dims) for v in vectors)
                for q, vectors in self._packed.items()
            },
        }

    def __repr__(self) -> str:
        return (
            f"FeatureStore({len(self)} trees, q_levels={self.q_levels}, "
            f"vocabulary={len(self.vocabulary)}, generation={self.generation})"
        )
