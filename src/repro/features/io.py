"""Persistence of the feature plane (vocabulary + packed artifacts).

A fitted :class:`~repro.features.store.FeatureStore` is the dominant setup
cost of a database after parsing; persisting it lets a reloaded database
skip extraction entirely (its ``extraction_passes`` counter stays 0 — the
round-trip tests assert exactly that).

The JSON document stores the interned vocabulary once (branch keys in id
order, labels encoded with the same tagged scheme as the inverted-file
serializer in :mod:`repro.core.index_io`) and, per tree, only the
irreducible raw material: sizes, degree histograms, height multisets and
per-branch position lists in occurrence order.  Everything else — packed
vectors, sorted position sequences, traversal strings, label histograms —
is *derived* at load time from those, without touching any tree:

* sorted pre/post sequences: sort the occurrence-order lists;
* packed vectors: occurrence counts are the pair-list lengths, interned
  against the restored vocabulary (ids match by construction — the
  vocabulary is restored in id order);
* traversal strings / label histogram: the branch key's root label is the
  label of the node at that branch's preorder (and postorder) position.

Next to the JSON plane lives an optional binary *matrix sidecar*
(``<path>.matrices.npz``): the dense corpus-level branch planes of
:mod:`repro.features.matrix`, so a reloaded database starts with its
vectorized candidate-generation kernels warm instead of re-scattering
every packed vector on first query.  The sidecar is strictly an
accelerator — it is validated against the store (version, generation,
tree count) and silently ignored when stale or absent, in which case the
planes are rebuilt lazily as usual.
"""

from __future__ import annotations

import json
import os
import warnings
import zipfile
from collections import Counter
from typing import Dict, List, Union

import numpy as np

from repro.core.branches import BinaryBranch
from repro.core.index_io import _decode_label, _encode_label
from repro.core.positional import PositionalProfile
from repro.core.qlevel import QLevelBranch
from repro.exceptions import TreeParseError
from repro.features.extract import TreeFeatures
from repro.features.store import FeatureStore

__all__ = [
    "save_feature_plane",
    "load_feature_plane",
    "matrix_sidecar_path",
    "save_matrix_sidecar",
    "load_matrix_sidecar",
    "sidecar_fallback",
]

_FORMAT = "repro-features"
_VERSION = 1

PathLike = Union[str, os.PathLike]


def sidecar_fallback(sidecar: str, reason: str) -> None:
    """Record that a sidecar was ignored in favour of a lazy rebuild.

    Sidecars (the ``.matrices.npz`` dense planes, the ``.index.json``
    candidate index) are strictly accelerators: a corrupt or stale one is
    skipped, never fatal.  That degradation must still be *observable* —
    this bumps ``repro_sidecar_fallback_total{sidecar,reason}`` on the
    process-wide registry so a fleet silently rebuilding on every load
    shows up on dashboards instead of only in latency.
    """
    from repro.obs.metrics import get_registry

    get_registry().counter(
        "repro_sidecar_fallback_total",
        "sidecar files ignored (corrupt/stale/version) in favour of rebuild",
        ("sidecar", "reason"),
    ).inc(sidecar=sidecar, reason=reason)


def matrix_sidecar_path(path: PathLike) -> str:
    """Where the dense matrix sidecar of plane ``path`` lives."""
    return f"{os.fspath(path)}.matrices.npz"


def _encode_key(key) -> List:
    if isinstance(key, BinaryBranch):
        labels = tuple(key)
    elif isinstance(key, QLevelBranch):
        labels = key.labels
    else:
        raise TreeParseError(f"unknown branch type {type(key).__name__}")
    return [_encode_label(label) for label in labels]


def _decode_key(encoded: List):
    labels = tuple(_decode_label(item) for item in encoded)
    if len(labels) == 3:
        # 2-level windows are always BinaryBranch triples in the store
        return BinaryBranch(*labels)
    return QLevelBranch(labels)


def _root_label(key):
    return key.root if isinstance(key, BinaryBranch) else key.labels[0]


def save_feature_plane(store: FeatureStore, path: PathLike) -> None:
    """Serialize a fitted feature store to ``path`` as JSON."""
    vocabulary = store.vocabulary
    trees = []
    for features in store:
        profiles: Dict[str, List] = {}
        for q in store.q_levels:
            entries = []
            for branch, pairs in features.profiles[q].pairs.items():
                dim = vocabulary.lookup(branch)
                assert dim is not None  # store-side branches are interned
                entries.append(
                    [dim, [pre for pre, _ in pairs], [post for _, post in pairs]]
                )
            profiles[str(q)] = entries
        trees.append(
            {
                "size": features.size,
                "leaves": features.leaf_count,
                "degrees": sorted(features.degrees.items()),
                "heights": features.heights,
                "profiles": profiles,
            }
        )
    document = {
        "format": _FORMAT,
        "version": _VERSION,
        "q_levels": list(store.q_levels),
        "generation": store.generation,
        "vocabulary": [_encode_key(key) for key in vocabulary],
        "trees": trees,
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle)
    save_matrix_sidecar(store, path)


def save_matrix_sidecar(store: FeatureStore, path: PathLike) -> str:
    """Persist the store's dense branch planes next to the JSON plane.

    Only the branch planes are written — they are the rebuild-heavy
    families; histogram planes key on arbitrary labels and are cheap to
    rebuild from the restored features.  Returns the sidecar path.
    """
    matrices = store.matrices()
    payload: Dict[str, np.ndarray] = {
        "meta": np.asarray(
            [_VERSION, store.generation, len(store)], dtype=np.int64
        ),
        "q_levels": np.asarray(store.q_levels, dtype=np.int64),
    }
    for q in store.q_levels:
        plane = matrices.branch_plane(q)
        payload[f"branch_q{q}"] = plane.matrix
        payload[f"branch_q{q}_totals"] = plane.row_totals
    sidecar = matrix_sidecar_path(path)
    with open(sidecar, "wb") as handle:
        np.savez_compressed(handle, **payload)
    return sidecar


def load_matrix_sidecar(store: FeatureStore, path: PathLike) -> bool:
    """Adopt a matrix sidecar into ``store`` if present and fresh.

    Returns True when the dense planes were installed; False (store
    untouched, planes rebuilt lazily later) when the sidecar is missing
    or does not match the store's version/generation/size.
    """
    sidecar = matrix_sidecar_path(path)
    if not os.path.exists(sidecar):
        return False
    try:
        with np.load(sidecar) as data:
            meta = data["meta"]
            if int(meta[0]) != _VERSION:
                sidecar_fallback("matrices", "version")
                return False
            if int(meta[1]) != store.generation or int(meta[2]) != len(store):
                sidecar_fallback("matrices", "stale")
                return False
            if tuple(int(q) for q in data["q_levels"]) != store.q_levels:
                sidecar_fallback("matrices", "stale")
                return False
            for q in store.q_levels:
                key = f"branch_q{q}"
                if key not in data or f"{key}_totals" not in data:
                    sidecar_fallback("matrices", "stale")
                    return False
            for q in store.q_levels:
                store.matrices().adopt_branch_plane(
                    q, data[f"branch_q{q}"], data[f"branch_q{q}_totals"]
                )
    except (OSError, ValueError, KeyError, IndexError, zipfile.BadZipFile) as error:
        # truncated/garbled archive: np.load (zip layer) raises a mix of
        # these depending on where the corruption sits — never fatal, the
        # planes rebuild lazily exactly as if the sidecar were absent
        warnings.warn(
            f"ignoring corrupt matrix sidecar {sidecar}: {error}",
            stacklevel=2,
        )
        sidecar_fallback("matrices", "corrupt")
        return False
    return True


def load_feature_plane(path: PathLike) -> FeatureStore:
    """Restore a feature store written by :func:`save_feature_plane`.

    The restored store performs **no** tree traversals
    (``store.extraction_passes == 0``); all artifacts are rebuilt from the
    persisted raw material.
    """
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    if document.get("format") != _FORMAT:
        raise TreeParseError(f"{path}: not a repro feature plane")
    if document.get("version") != _VERSION:
        raise TreeParseError(
            f"{path}: unsupported feature-plane version {document.get('version')!r}"
        )
    store = FeatureStore(q_levels=document["q_levels"])
    keys = [_decode_key(encoded) for encoded in document["vocabulary"]]
    for key in keys:
        store.vocabulary.intern(key)
    derive_q = store.q_levels[0]
    for record in document["trees"]:
        size = record["size"]
        branch_counts: Dict[int, Dict] = {}
        profiles: Dict[int, PositionalProfile] = {}
        for q in store.q_levels:
            pre: Dict = {}
            post: Dict = {}
            pairs: Dict = {}
            counts: Dict = {}
            for dim, raw_pre, raw_post in record["profiles"][str(q)]:
                branch = keys[dim]
                pre[branch] = sorted(raw_pre)
                post[branch] = sorted(raw_post)
                pairs[branch] = list(zip(raw_pre, raw_post))
                counts[branch] = len(raw_pre)
            branch_counts[q] = counts
            profiles[q] = PositionalProfile(pre, post, pairs, size, q)
        pre_labels: List = [None] * size
        post_labels: List = [None] * size
        for branch, occurrence_pairs in profiles[derive_q].pairs.items():
            label = _root_label(branch)
            for pre_position, post_position in occurrence_pairs:
                pre_labels[pre_position - 1] = label
                post_labels[post_position - 1] = label
        features = TreeFeatures(
            size=size,
            branch_counts=branch_counts,
            profiles=profiles,
            labels=dict(Counter(pre_labels)),
            degrees={degree: count for degree, count in record["degrees"]},
            heights=list(record["heights"]),
            pre_labels=pre_labels,
            post_labels=post_labels,
            leaf_count=record["leaves"],
        )
        store._append(features)
    store.generation = document.get("generation", 0)
    load_matrix_sidecar(store, path)
    return store
