"""Shared integer vocabulary for branch keys.

Every derived artifact in the feature plane that refers to a branch — packed
vectors, the persisted feature plane, benchmark dumps — speaks in small
integer dimension ids instead of repeating the (hash-heavy, tuple-shaped)
branch keys.  One :class:`Vocabulary` is shared across a whole corpus, so
identical branches in different trees intern to the same id and packed
vectors become directly comparable integer arrays.

Branch keys from different q levels may share a vocabulary: 2-level
:class:`~repro.core.branches.BinaryBranch` triples and q-level
:class:`~repro.core.qlevel.QLevelBranch` tuples are distinct hashables, so
their ids never collide.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterator, List, Tuple

__all__ = ["Vocabulary"]

BranchKey = Hashable


class Vocabulary:
    """An append-only intern table: branch key ↔ dense integer id.

    Ids are assigned in first-seen order starting at 0; the table never
    forgets or reassigns, so ids embedded in packed vectors stay valid for
    the vocabulary's lifetime.

    >>> vocabulary = Vocabulary()
    >>> vocabulary.intern("a(b,c)")
    0
    >>> vocabulary.intern("a(b,c)")
    0
    >>> vocabulary.lookup("a(b,c)"), vocabulary.lookup("unseen")
    (0, None)
    >>> vocabulary.key(0)
    'a(b,c)'
    """

    __slots__ = ("_ids", "_keys")

    def __init__(self) -> None:
        self._ids: Dict[BranchKey, int] = {}
        self._keys: List[BranchKey] = []

    def __len__(self) -> int:
        return len(self._keys)

    def __contains__(self, key: BranchKey) -> bool:
        return key in self._ids

    def __iter__(self) -> Iterator[BranchKey]:
        return iter(self._keys)

    def intern(self, key: BranchKey) -> int:
        """Id of ``key``, assigning the next free id on first sight."""
        ids = self._ids
        value = ids.get(key)
        if value is None:
            value = len(self._keys)
            ids[key] = value
            self._keys.append(key)
        return value

    def lookup(self, key: BranchKey):
        """Id of ``key`` or ``None`` — never grows the table (query-safe)."""
        return self._ids.get(key)

    def key(self, dimension: int) -> BranchKey:
        """Inverse mapping: the branch key of a dimension id."""
        return self._keys[dimension]

    def items(self) -> Iterator[Tuple[BranchKey, int]]:
        """``(key, id)`` pairs in id order."""
        return ((key, index) for index, key in enumerate(self._keys))

    def __repr__(self) -> str:
        return f"Vocabulary({len(self)} keys)"
