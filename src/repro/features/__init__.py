"""The shared feature plane: one-pass signature extraction for a corpus.

Every per-tree artifact the filter-and-refine stack derives — branch
vectors, positional profiles, histograms, traversal strings — is computed
by a single traversal per tree (:func:`extract_features`), interned against
a corpus-wide :class:`Vocabulary`, packed into integer-array vectors
(:class:`PackedVector`), and owned by one :class:`FeatureStore` that the
filters, the database, the serving layer and the persistence code all
share.  See ``docs/FEATURES.md``.
"""

from repro.features.extract import TreeFeatures, extract_features
from repro.features.io import load_feature_plane, save_feature_plane
from repro.features.matrix import FeatureMatrices, MatrixPlane
from repro.features.packed import PackedVector, pack_counts
from repro.features.store import FeatureStore
from repro.features.vocabulary import Vocabulary

__all__ = [
    "FeatureMatrices",
    "FeatureStore",
    "MatrixPlane",
    "PackedVector",
    "TreeFeatures",
    "Vocabulary",
    "extract_features",
    "load_feature_plane",
    "pack_counts",
    "save_feature_plane",
]
