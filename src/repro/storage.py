"""Persistence for tree collections.

Tree datasets are stored as plain text: one bracket-notation tree per line
(blank lines and ``#`` comments ignored).  The format is portable,
diff-friendly, and — unlike pickling the linked node structure — safe for
arbitrarily deep trees.  A loader for directories of XML documents covers
the paper's XML-repository use case.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Iterable, List, Optional, Union

from repro.exceptions import TreeParseError
from repro.trees.node import TreeNode
from repro.trees.parse import parse_bracket, to_bracket
from repro.trees.xml_io import parse_xml_file

__all__ = ["save_forest", "load_forest", "load_xml_directory"]

PathLike = Union[str, os.PathLike]


def save_forest(
    trees: Iterable[TreeNode],
    path: PathLike,
    header: Optional[str] = None,
) -> int:
    """Write trees to ``path`` in bracket notation, one per line.

    Returns the number of trees written.

    >>> import tempfile, os
    >>> from repro.trees import parse_bracket
    >>> path = os.path.join(tempfile.mkdtemp(), "demo.trees")
    >>> save_forest([parse_bracket("a(b,c)")], path, header="demo")
    1
    >>> load_forest(path)
    [TreeNode('a', 2 children, size=3)]
    """
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        if header:
            for line in header.splitlines():
                handle.write(f"# {line}\n")
        for tree in trees:
            handle.write(to_bracket(tree))
            handle.write("\n")
            count += 1
    return count


def load_forest(path: PathLike) -> List[TreeNode]:
    """Read a bracket-notation tree collection written by :func:`save_forest`.

    Raises :class:`~repro.exceptions.TreeParseError` with the offending line
    number when a line cannot be parsed.
    """
    trees: List[TreeNode] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            text = line.strip()
            if not text or text.startswith("#"):
                continue
            try:
                trees.append(parse_bracket(text))
            except TreeParseError as exc:
                raise TreeParseError(
                    f"{path}:{line_number}: {exc}"
                ) from exc
    return trees


def load_xml_directory(
    directory: PathLike,
    pattern: str = "*.xml",
    **xml_options,
) -> List[TreeNode]:
    """Parse every XML file under ``directory`` (sorted by name) into trees.

    ``xml_options`` are forwarded to
    :func:`repro.trees.xml_io.xml_to_tree` (``include_attributes``,
    ``include_text``, ``max_text``).
    """
    root = Path(directory)
    if not root.is_dir():
        raise FileNotFoundError(f"not a directory: {directory}")
    return [
        parse_xml_file(str(path), **xml_options)
        for path in sorted(root.glob(pattern))
    ]
